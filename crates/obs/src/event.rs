//! The counter taxonomy: every event the simulators can record.
//!
//! Each [`Event`] names one machine-checked signal of the paper's
//! evaluation — atom multiplications, squeezed zero atoms, balancer stall
//! cycles (Eq 3–5), per-component energy (Table VI / Fig 13/16) — so a
//! counter value is meaningful on its own and stable across refactors.
//! OBSERVABILITY.md documents the full table (name, unit, paper anchor).
//!
//! Counters are `u64` only. Energy is recorded in integer femtojoules,
//! converted from `f64` picojoules *at the recording site* (where the
//! value is a pure function of that call's inputs): integer addition
//! commutes, so parallel accumulation is bit-identical at any thread
//! count — the property the `repro --metrics` regression gate relies on.

/// How a counter aggregates concurrent contributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Contributions add up (`fetch_add`).
    Sum,
    /// Contributions take the maximum (`fetch_max`) — highwater marks.
    Max,
}

macro_rules! events {
    ($(($variant:ident, $name:literal, $kind:ident, $unit:literal, $paper:literal, $doc:literal),)+) => {
        /// One observable simulator event (see module docs).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Event {
            $(#[doc = $doc] $variant,)+
        }

        impl Event {
            /// Number of defined events.
            pub const COUNT: usize = [$(Event::$variant,)+].len();

            /// Every event, in declaration order.
            pub const ALL: [Event; Event::COUNT] = [$(Event::$variant,)+];

            /// Stable dotted counter name (`stage.metric`).
            pub fn name(self) -> &'static str {
                match self {
                    $(Event::$variant => $name,)+
                }
            }

            /// Aggregation kind.
            pub fn kind(self) -> Kind {
                match self {
                    $(Event::$variant => Kind::$kind,)+
                }
            }

            /// Unit of the counter value.
            pub fn unit(self) -> &'static str {
                match self {
                    $(Event::$variant => $unit,)+
                }
            }

            /// The paper equation/figure/section the counter maps to.
            pub fn paper_ref(self) -> &'static str {
                match self {
                    $(Event::$variant => $paper,)+
                }
            }

            /// One-line description (same text as the rustdoc).
            pub fn describe(self) -> &'static str {
                match self {
                    $(Event::$variant => $doc,)+
                }
            }

            /// Dense index in `[0, COUNT)`.
            #[inline]
            pub fn index(self) -> usize {
                self as usize
            }
        }
    };
}

events! {
    // Atomizer (on-the-fly zero-atom squeezing, §IV-C1).
    (AtomizerCycles, "atomizer.cycles", Sum, "cycles", "§IV-C1",
     "Atomizer scan cycles (one non-zero atom emitted per cycle)."),
    (AtomizerWords, "atomizer.words", Sum, "words", "§IV-C1",
     "Activation words consumed by the Atomizer."),
    (AtomizerMaxHold, "atomizer.max_hold", Max, "cycles", "§IV-C1",
     "Longest any word occupied the Atomizer (bounded by the slot count)."),

    // Stream compression (zero-atom squeeze, §III-B / Fig 6 phase 2).
    (CompressActValues, "compress.act_values", Sum, "values", "Fig 6",
     "Non-zero activation values compressed into atom streams."),
    (CompressActAtoms, "compress.act_atoms", Sum, "atoms", "Fig 6",
     "Non-zero activation atoms emitted by compression."),
    (CompressActZeroAtomsSqueezed, "compress.act_zero_atoms_squeezed", Sum, "atoms", "Fig 2",
     "Zero activation atoms squeezed out (bit-level sparsity exploited)."),
    (CompressWeightValues, "compress.weight_values", Sum, "values", "Fig 6",
     "Non-zero weight values compressed into atom streams."),
    (CompressWeightAtoms, "compress.weight_atoms", Sum, "atoms", "Fig 6",
     "Non-zero weight atoms emitted by compression."),
    (CompressWeightZeroAtomsSqueezed, "compress.weight_zero_atoms_squeezed", Sum, "atoms", "Fig 2",
     "Zero weight atoms squeezed out (bit-level sparsity exploited)."),

    // Functional intersection kernel (Eq 1–4, §III-B phase 3).
    (IntersectCalls, "intersect.calls", Sum, "calls", "§III-B",
     "Non-empty stream intersections executed."),
    (IntersectSteps, "intersect.steps", Sum, "steps", "Eq 3/4",
     "Systolic pipeline steps (t x ceil(S/N) + epsilon summed over intersections)."),
    (IntersectSegments, "intersect.segments", Sum, "segments", "Eq 3",
     "Static-stream segments processed (ceil(S/N) summed)."),
    (IntersectAtomMults, "intersect.atom_mults", Sum, "multiplications", "Fig 6",
     "Effectual atom multiplications in the functional kernel (t x S summed)."),
    (IntersectDeliveries, "intersect.deliveries", Sum, "deliveries", "§IV-C2",
     "Partial-sum deliveries on last-atom flags (S x values summed)."),
    (IntersectValueRuns, "intersect.value_runs", Sum, "values", "§IV-C2",
     "Activation value runs folded into pre-shifted sums."),

    // Cycle-level Atomputer (systolic multiplier chain, §IV-C2).
    (AtomputerCycles, "atomputer.cycles", Sum, "cycles", "Eq 3",
     "Cycle-level tile cycles including stalls."),
    (AtomputerAtomMults, "atomputer.atom_mults", Sum, "multiplications", "Fig 6",
     "Effectual atom multiplications in the cycle-level tile."),

    // Cycle-level Atomulator (crossbar + FIFO + accumulate banks, §IV-C4).
    (AtomulatorDeliveries, "atomulator.deliveries", Sum, "deliveries", "§IV-C4",
     "Partials routed through the crossbar to accumulate-buffer banks."),
    (AtomulatorCrossbarConflicts, "atomulator.crossbar_conflicts", Sum, "conflicts", "§IV-C4",
     "Same-cycle deliveries colliding on one accumulate-buffer bank."),
    (AtomulatorFifoHighwater, "atomulator.fifo_highwater", Max, "entries", "§IV-C4",
     "Deepest FIFO occupancy observed in any cycle-level tile run."),
    (AtomulatorStallCycles, "atomulator.stall_cycles", Sum, "cycles", "§IV-C4",
     "Pipeline stalls from FIFO backpressure."),

    // Load balancer (§IV-E, Eq 5, Fig 18).
    (BalanceInvocations, "balance.invocations", Sum, "calls", "§IV-E",
     "Balancer invocations (one per simulated layer)."),
    (BalanceMakespanCycles, "balance.makespan_cycles", Sum, "cycles", "Eq 5",
     "Slowest-tile cycles summed over balanced layers."),
    (BalanceTotalCycles, "balance.total_cycles", Sum, "cycles", "Eq 5",
     "Total tile work summed over balanced layers."),
    (BalanceIdleCycles, "balance.idle_cycles", Sum, "cycles", "Fig 18",
     "Tile idle (stall) cycles from residual workload imbalance."),

    // Analytic layer model (Eq 3–5).
    (AnalyticLayers, "analytic.layers", Sum, "layers", "Eq 5",
     "Layers simulated by the analytic model."),
    (AnalyticCycles, "analytic.cycles", Sum, "cycles", "Eq 5",
     "Analytic layer makespans summed."),
    (AnalyticAtomMults, "analytic.atom_mults", Sum, "multiplications", "Eq 5",
     "Effectual atom multiplications in the analytic model."),
    (AnalyticDeliveries, "analytic.deliveries", Sum, "deliveries", "§IV-C2",
     "Accumulator deliveries in the analytic model."),
    (AnalyticDramBits, "analytic.dram_bits", Sum, "bits", "Fig 8",
     "Off-chip traffic (compressed block COO-2D) in the analytic model."),
    (AnalyticBufferBits, "analytic.buffer_bits", Sum, "bits", "Fig 13/16",
     "On-chip buffer traffic in the analytic model."),

    // Per-component energy attribution (integer femtojoules; Table VI names).
    (EnergyAtomMultFj, "energy.atom_mult_fj", Sum, "fJ", "Fig 13/16",
     "Energy attributed to atom multiplications (multiplier + shift + accumulate)."),
    (EnergyDeliveryFj, "energy.delivery_fj", Sum, "fJ", "Fig 13/16",
     "Energy attributed to Atomulator deliveries (addr-gen + crossbar + FIFO + bank write)."),
    (EnergyAggregateFj, "energy.aggregate_fj", Sum, "fJ", "Fig 13/16",
     "Energy attributed to accumulate-buffer aggregation."),
    (EnergyAtomizerFj, "energy.atomizer_fj", Sum, "fJ", "Fig 13/16",
     "Energy attributed to Atomizer scan cycles."),
    (EnergyInputReadFj, "energy.input_read_fj", Sum, "fJ", "Fig 13/16",
     "Energy attributed to input-buffer reads."),
    (EnergyWeightReadFj, "energy.weight_read_fj", Sum, "fJ", "Fig 13/16",
     "Energy attributed to weight-buffer reads."),
    (EnergyOutputWriteFj, "energy.output_write_fj", Sum, "fJ", "Fig 13/16",
     "Energy attributed to output-buffer writes."),
    (EnergyDramFj, "energy.dram_fj", Sum, "fJ", "Fig 13/16",
     "Energy attributed to off-chip DRAM traffic."),
    (EnergyLeakageFj, "energy.leakage_fj", Sum, "fJ", "Fig 13/16",
     "Leakage energy over the simulated cycles."),

    // hwmodel event-counter activity (all simulators, incl. baselines).
    (HwmodelComputeEvents, "hwmodel.compute_events", Sum, "events", "Table VI",
     "Compute events priced by any simulator's energy counter."),
    (HwmodelBufferEvents, "hwmodel.buffer_events", Sum, "events", "Table VI",
     "Buffer accesses priced by any simulator's energy counter."),
    (HwmodelDramRequests, "hwmodel.dram_requests", Sum, "requests", "Table VI",
     "DRAM traffic batches priced by any simulator's energy counter."),

    // Compile-once/run-many engine (static weight side vs per-input work).
    (EngineCompileNetworks, "engine.compile.networks", Sum, "networks", "§III/Fig 5",
     "Networks compiled into static per-layer artifacts."),
    (EngineCompileLayers, "engine.compile.layers", Sum, "layers", "§III/Fig 5",
     "Layers whose weight side was flattened, compressed and shuffled."),
    (EngineCompileWeightAtoms, "engine.compile.weight_atoms", Sum, "atoms", "§III/Fig 5",
     "Static weight atoms produced by the compile phase."),
    (EngineSessions, "engine.run.sessions", Sum, "sessions", "§III/Fig 5",
     "Inference sessions opened against a compiled network."),
    (EngineRunLayers, "engine.run.layers", Sum, "layers", "§III/Fig 5",
     "Per-input layer executions served from compiled artifacts."),
    (EngineRunActAtoms, "engine.run.act_atoms", Sum, "atoms", "§III/Fig 5",
     "Activation atoms streamed during session runs."),
    (FaultInjectedWeightBuffer, "fault.injected.weight_buffer", Sum, "faults", "§IV-B",
     "Bit flips injected into weight-buffer packed records."),
    (FaultInjectedWeightStream, "fault.injected.weight_stream", Sum, "faults", "§III-B",
     "Bit flips injected into in-flight weight atom stream entries."),
    (FaultInjectedActStream, "fault.injected.act_stream", Sum, "faults", "§III-B",
     "Bit flips injected into in-flight activation atom stream entries."),
    (FaultInjectedAccum, "fault.injected.accum", Sum, "faults", "§IV-C4",
     "Bit flips injected into accumulate-buffer words."),
    (FaultInjectedFifo, "fault.injected.fifo", Sum, "faults", "§IV-C4",
     "Atomulator FIFO entries dropped or duplicated by injection."),
    (FaultDetectedWeightBuffer, "fault.detected.weight_buffer", Sum, "faults", "§IV-B",
     "Weight-buffer faults caught by the stream checksum monitor."),
    (FaultDetectedWeightStream, "fault.detected.weight_stream", Sum, "faults", "§III-B",
     "Weight-stream faults caught by the stream checksum monitor."),
    (FaultDetectedActStream, "fault.detected.act_stream", Sum, "faults", "§III-B",
     "Activation-stream faults caught by the stream checksum monitor."),
    (FaultDetectedAccum, "fault.detected.accum", Sum, "faults", "§IV-C4",
     "Accumulate-buffer faults caught by the conservation/digest monitors."),
    (FaultDetectedFifo, "fault.detected.fifo", Sum, "faults", "§IV-C4",
     "FIFO faults caught by the enqueue-accounting monitor."),
    (FaultRetries, "fault.retries", Sum, "retries", "§IV-C",
     "Tile re-executions triggered by detected faults."),
    (FaultRecoveredTiles, "fault.recovered_tiles", Sum, "tiles", "§IV-C",
     "Faulted tiles whose re-execution completed cleanly."),
    (FaultLayerFallbacks, "fault.layer_fallbacks", Sum, "layers", "§IV-C",
     "Layers replayed on the dense reference path after retry exhaustion."),
    (FaultWastedAtomMults, "fault.wasted_atom_mults", Sum, "mults", "§IV-C",
     "Atom multiplications discarded with rejected tile attempts."),
    (FaultRetryEnergyFj, "fault.retry_energy_fj", Sum, "fJ", "§V-E",
     "Energy attributed to discarded tile attempts and their re-execution."),
    (EngineCacheHits, "engine.cache.hits", Sum, "loads", "§III",
     "Model-cache lookups served by a verified on-disk artifact."),
    (EngineCacheMisses, "engine.cache.misses", Sum, "compiles", "§III",
     "Model-cache lookups with no artifact on disk (cold compiles)."),
    (EngineCacheRejected, "engine.cache.rejected", Sum, "artifacts", "§III",
     "On-disk artifacts rejected (corruption, version skew, key mismatch) and recompiled."),
    (EngineCacheWrites, "engine.cache.writes", Sum, "artifacts", "§III",
     "Artifacts written atomically to the model cache after a miss or rejection."),
    (EngineCacheStoreFail, "engine.cache.store_fail", Sum, "errors", "§III",
     "Artifact store failures (I/O); non-fatal, the compiled network is still returned."),
    (EngineCacheBytesWritten, "engine.cache.bytes_written", Sum, "bytes", "§III",
     "Artifact bytes persisted to the model cache."),
    (EngineCacheBytesRead, "engine.cache.bytes_read", Sum, "bytes", "§III",
     "Artifact bytes read back from the model cache during lookups."),

    // Sharded fleet simulator + NoC (Fig 7 multi-core organization).
    (FleetRuns, "fleet.runs", Sum, "runs", "Fig 7",
     "Fleet inference passes executed across the sharded core array."),
    (FleetCores, "fleet.cores", Max, "cores", "Fig 7",
     "Largest core count any fleet run was sharded across."),
    (FleetShards, "fleet.shards", Sum, "shards", "Fig 7",
     "Per-layer shard executions driven through the compiled engine."),
    (FleetBusyCycles, "fleet.busy_cycles", Sum, "cycles", "Eq 5",
     "Per-core compute cycles summed over all cores and layers."),
    (FleetIdleCycles, "fleet.idle_cycles", Sum, "cycles", "Eq 5",
     "Cycles cores waited on the slowest shard or on NoC exchange."),
    (FleetMakespanCycles, "fleet.makespan_cycles", Sum, "cycles", "Eq 5",
     "Cross-core makespans (compute + exchange) summed over layers."),
    (FleetLinkBits, "fleet.link_bits", Sum, "bits", "Fig 7",
     "Compressed activation bits moved over inter-core NoC links."),
    (FleetLinkBusyCycles, "fleet.link_busy_cycles", Sum, "cycles", "Fig 7",
     "Cycles NoC links spent serializing activation flits."),
    (FleetQueueHighwater, "fleet.queue_highwater", Max, "entries", "Fig 7",
     "Deepest per-port NoC FIFO occupancy observed in any exchange."),
    (FleetCoreDeaths, "fleet.core_deaths", Sum, "deaths", "§IV-C",
     "Injected core-death events taken by fleet runs."),
    (FleetReshards, "fleet.reshards", Sum, "reshards", "§IV-C",
     "Deterministic resharding passes after a core death."),

    // Multi-tenant serving layer (continuous batching over compiled nets).
    (ServeRequests, "serve.requests", Sum, "requests", "§III",
     "Inference requests submitted to the serving queue (admitted or not)."),
    (ServeServed, "serve.served", Sum, "requests", "§III",
     "Requests completed by a dispatched batch."),
    (ServeRejected, "serve.rejected", Sum, "requests", "§III",
     "Requests refused by admission control (queue at capacity)."),
    (ServeBatches, "serve.batches", Sum, "batches", "§III",
     "Coalesced batches dispatched to an execution lane."),
    (ServeBatchMax, "serve.batch_max", Max, "requests", "§III",
     "Largest coalesced batch dispatched."),
    (ServeQueueHighwater, "serve.queue_highwater", Max, "requests", "§III",
     "Deepest serving-queue occupancy observed at any admission."),
    (ServeFleetBatches, "serve.fleet_batches", Sum, "batches", "Fig 7",
     "Batches large enough to route through the multi-core batch fleet."),
    (ServeBusyTicks, "serve.busy_ticks", Sum, "microticks", "Eq 5",
     "Execution-lane busy time across all dispatched batches."),
    (ServeFaultPenaltyTicks, "serve.fault_penalty_ticks", Sum, "microticks", "§IV-C",
     "Extra lane time charged to fault detection and recovery under load."),
    (ServeShed, "serve.shed", Sum, "requests", "§III",
     "Requests shed at dispatch because their deadline had already expired."),
    (ServeDeadlineEarlyDispatches, "serve.deadline_early_dispatches", Sum, "batches", "§III",
     "Batches the SLO-aware trigger pulled in ahead of the normal bound."),
    (ServeBrownoutRejected, "serve.brownout_rejected", Sum, "requests", "§III",
     "Best-effort admissions shed by brownout at the queue high-water mark."),
    (ServeBreakerTrips, "serve.breaker_trips", Sum, "trips", "§IV-C",
     "Circuit-breaker trips on a lane after consecutive faulted batches."),
    (ServeBreakerOpenBatches, "serve.breaker_open_batches", Sum, "batches", "§IV-C",
     "Batches served on the degraded single-core route while a breaker was open."),
    (ServeBreakerHalfOpens, "serve.breaker_half_opens", Sum, "probes", "§IV-C",
     "Half-open probes dispatched on the primary route after a breaker cooldown."),
    (ServeBreakerReruns, "serve.breaker_reruns", Sum, "batches", "§IV-C",
     "Batches re-run with recovery forced on after the primary route aborted on a fault."),
    (ServeRetries, "serve.retries", Sum, "requests", "§III",
     "Client retries re-offered after a rejection, paced by deterministic backoff."),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Event::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate counter name");
        for e in Event::ALL {
            assert!(e.name().contains('.'), "{} is not stage.metric", e.name());
            assert!(!e.unit().is_empty() && !e.paper_ref().is_empty());
            assert!(!e.describe().is_empty());
        }
    }

    #[test]
    fn indices_are_dense() {
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
        assert_eq!(Event::COUNT, Event::ALL.len());
    }

    #[test]
    fn highwater_counters_are_max_kind() {
        assert_eq!(Event::AtomulatorFifoHighwater.kind(), Kind::Max);
        assert_eq!(Event::AtomizerMaxHold.kind(), Kind::Max);
        assert_eq!(Event::FleetQueueHighwater.kind(), Kind::Max);
        assert_eq!(Event::FleetCores.kind(), Kind::Max);
        assert_eq!(Event::IntersectAtomMults.kind(), Kind::Sum);
    }
}
