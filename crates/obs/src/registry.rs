//! The counter registry: one atomic cell per [`Event`], plus immutable
//! [`Snapshot`]s with deterministic merge semantics.

use crate::event::{Event, Kind};
use std::sync::atomic::{AtomicU64, Ordering};

/// A set of counters, one per [`Event`].
///
/// All operations are lock-free relaxed atomics. `Sum` counters add and
/// `Max` counters take the running maximum — both commutative, so the
/// final values never depend on thread interleaving.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; Event::COUNT],
}

impl Registry {
    /// A zeroed registry.
    pub const fn new() -> Self {
        Self {
            counters: [const { AtomicU64::new(0) }; Event::COUNT],
        }
    }

    /// Records `n` occurrences of `event` according to its [`Kind`].
    #[inline]
    pub fn record(&self, event: Event, n: u64) {
        let cell = &self.counters[event.index()];
        match event.kind() {
            Kind::Sum => {
                cell.fetch_add(n, Ordering::Relaxed);
            }
            Kind::Max => {
                cell.fetch_max(n, Ordering::Relaxed);
            }
        }
    }

    /// Current value of one counter.
    pub fn get(&self, event: Event) -> u64 {
        self.counters[event.index()].load(Ordering::Relaxed)
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for cell in &self.counters {
            cell.store(0, Ordering::Relaxed);
        }
    }

    /// An immutable copy of the current counter values.
    pub fn snapshot(&self) -> Snapshot {
        let mut values = [0u64; Event::COUNT];
        for (v, cell) in values.iter_mut().zip(&self.counters) {
            *v = cell.load(Ordering::Relaxed);
        }
        Snapshot { values }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen copy of all counter values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    values: [u64; Event::COUNT],
}

impl Snapshot {
    /// An all-zero snapshot.
    pub fn zero() -> Self {
        Self {
            values: [0; Event::COUNT],
        }
    }

    /// Value of one counter.
    pub fn get(&self, event: Event) -> u64 {
        self.values[event.index()]
    }

    /// Merges another snapshot into this one, respecting each counter's
    /// [`Kind`]: sums add, highwater marks take the maximum. Merging is
    /// commutative and associative, so partial snapshots can be combined
    /// in any order without changing the result.
    pub fn merge(&mut self, other: &Snapshot) {
        for event in Event::ALL {
            let i = event.index();
            match event.kind() {
                Kind::Sum => self.values[i] += other.values[i],
                Kind::Max => self.values[i] = self.values[i].max(other.values[i]),
            }
        }
    }

    /// `(name, value)` pairs sorted by counter name — the canonical order
    /// of the metrics JSON. Every defined counter appears, including
    /// zero-valued ones, so the schema is stable run to run.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Event::ALL
            .iter()
            .map(|e| (e.name(), self.values[e.index()]))
            .collect();
        out.sort_unstable_by_key(|&(name, _)| name);
        out
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Self::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_sum_and_max() {
        let r = Registry::new();
        r.record(Event::IntersectAtomMults, 3);
        r.record(Event::IntersectAtomMults, 4);
        assert_eq!(r.get(Event::IntersectAtomMults), 7);
        r.record(Event::AtomulatorFifoHighwater, 5);
        r.record(Event::AtomulatorFifoHighwater, 2);
        assert_eq!(r.get(Event::AtomulatorFifoHighwater), 5);
    }

    #[test]
    fn reset_zeroes_everything() {
        let r = Registry::new();
        for e in Event::ALL {
            r.record(e, 9);
        }
        assert!(!r.snapshot().is_zero());
        r.reset();
        assert!(r.snapshot().is_zero());
        assert_eq!(r.get(Event::BalanceInvocations), 0);
    }

    #[test]
    fn snapshot_merge_respects_kinds() {
        let r1 = Registry::new();
        r1.record(Event::AtomizerCycles, 10);
        r1.record(Event::AtomizerMaxHold, 3);
        let r2 = Registry::new();
        r2.record(Event::AtomizerCycles, 5);
        r2.record(Event::AtomizerMaxHold, 7);
        let mut a = r1.snapshot();
        a.merge(&r2.snapshot());
        assert_eq!(a.get(Event::AtomizerCycles), 15); // sums add
        assert_eq!(a.get(Event::AtomizerMaxHold), 7); // maxes take max
    }

    #[test]
    fn merge_is_commutative() {
        let r1 = Registry::new();
        r1.record(Event::CompressActAtoms, 11);
        r1.record(Event::AtomulatorFifoHighwater, 2);
        let r2 = Registry::new();
        r2.record(Event::CompressActAtoms, 22);
        r2.record(Event::AtomulatorFifoHighwater, 9);
        let mut ab = r1.snapshot();
        ab.merge(&r2.snapshot());
        let mut ba = r2.snapshot();
        ba.merge(&r1.snapshot());
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_with_zero_is_identity() {
        let r = Registry::new();
        r.record(Event::BalanceIdleCycles, 42);
        let snap = r.snapshot();
        let mut merged = snap.clone();
        merged.merge(&Snapshot::zero());
        assert_eq!(merged, snap);
    }

    #[test]
    fn entries_are_sorted_and_complete() {
        let r = Registry::new();
        r.record(Event::HwmodelDramRequests, 1);
        let entries = r.snapshot().entries();
        assert_eq!(entries.len(), Event::COUNT);
        for pair in entries.windows(2) {
            assert!(pair[0].0 < pair[1].0, "unsorted: {:?}", pair);
        }
        assert!(entries
            .iter()
            .any(|&(n, v)| n == "hwmodel.dram_requests" && v == 1));
    }
}
