//! Scoped tracing spans: opt-in wall-clock timing on stderr.
//!
//! Spans are deliberately **not** counters: wall time is nondeterministic,
//! so it must never leak into the `--metrics` JSON the regression gate
//! byte-compares. When tracing is off (the default), [`span`] performs one
//! relaxed load and allocates nothing.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Globally enables or disables span tracing.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether span tracing is enabled.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// A scoped timing span. Reports its wall time on stderr when dropped
/// (only if tracing was enabled at entry); nested spans indent by depth.
#[must_use = "a span measures the scope it is bound to"]
#[derive(Debug)]
pub struct Span {
    name: Option<String>,
    start: Option<Instant>,
}

/// Opens a span named `name`. No-op (no allocation, no clock read) unless
/// tracing is enabled.
pub fn span(name: &str) -> Span {
    if !tracing_enabled() {
        return Span {
            name: None,
            start: None,
        };
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    Span {
        name: Some(name.to_string()),
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(name), Some(start)) = (self.name.take(), self.start) else {
            return;
        };
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth.saturating_sub(1));
            depth
        });
        let indent = "  ".repeat(depth.saturating_sub(1));
        eprintln!(
            "[trace] {indent}{name}: {:.3}ms",
            start.elapsed().as_secs_f64() * 1e3
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers both flag states: tests run concurrently in one
    // process, and TRACING is global — splitting this in two would race.
    #[test]
    fn span_state_follows_the_tracing_flag() {
        // Tracing defaults to off; the span must carry no state.
        let s = span("test.disabled");
        assert!(s.start.is_none() && s.name.is_none());
        drop(s); // must not print or adjust depth
        DEPTH.with(|d| assert_eq!(d.get(), 0));

        set_tracing(true);
        {
            let _outer = span("test.outer");
            DEPTH.with(|d| assert_eq!(d.get(), 1));
            {
                let _inner = span("test.inner");
                DEPTH.with(|d| assert_eq!(d.get(), 2));
            }
            DEPTH.with(|d| assert_eq!(d.get(), 1));
        }
        DEPTH.with(|d| assert_eq!(d.get(), 0));
        set_tracing(false);
    }
}
