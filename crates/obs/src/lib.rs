//! # obs — zero-cost-when-disabled simulator observability
//!
//! A process-global event-counter registry, stats snapshots and scoped
//! tracing spans, threaded through `atomstream`, `ristretto-sim`,
//! `hwmodel` and the `repro` harness. Three design rules make the
//! collected metrics usable as a CI regression gate:
//!
//! 1. **Zero-cost when disabled.** Recording is gated on one relaxed
//!    atomic load; the default is off, so instrumented hot loops pay a
//!    predictable branch and nothing else. `repro --metrics` /
//!    `repro stats-check` flip the gate on.
//! 2. **Integers only.** Counters are `u64` sums or highwater maxima —
//!    both commutative — and floating-point quantities (energy) are
//!    converted to fixed point *at the recording site*, where they are a
//!    pure function of one call's inputs. The snapshot is therefore
//!    bit-identical at any worker-thread count.
//! 3. **Stable schema.** Every counter of the [`Event`] taxonomy appears
//!    in every snapshot (zeros included), sorted by name, so golden files
//!    diff cleanly. OBSERVABILITY.md documents the taxonomy and which
//!    paper equation/figure each counter maps to.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod event;
mod registry;
mod span;

pub use event::{Event, Kind};
pub use registry::{Registry, Snapshot};
pub use span::{set_tracing, span, tracing_enabled, Span};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Registry = Registry::new();

/// Globally enables or disables counter recording.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether counter recording is enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records `n` occurrences of `event` into the global registry
/// (no-op while disabled).
#[inline]
pub fn record(event: Event, n: u64) {
    if enabled() {
        GLOBAL.record(event, n);
    }
}

/// Zeroes the global registry.
pub fn reset() {
    GLOBAL.reset();
}

/// Snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    GLOBAL.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global registry and flag are process-wide; this is the only test
    // that touches them, so it cannot race with the Registry unit tests
    // (which all use local instances).
    #[test]
    fn global_gate_roundtrip() {
        assert!(!enabled(), "recording must default to off");
        record(Event::IntersectCalls, 5);
        assert_eq!(snapshot().get(Event::IntersectCalls), 0);

        enable(true);
        record(Event::IntersectCalls, 5);
        record(Event::AtomulatorFifoHighwater, 3);
        let snap = snapshot();
        assert_eq!(snap.get(Event::IntersectCalls), 5);
        assert_eq!(snap.get(Event::AtomulatorFifoHighwater), 3);

        reset();
        assert!(snapshot().is_zero());
        enable(false);
    }
}
