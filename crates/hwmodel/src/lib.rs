//! # hwmodel — 28nm area / power / energy component library
//!
//! The paper implements Ristretto and its baselines in a TSMC 28nm HPC+
//! process (Synopsys DC at 500 MHz) and models SRAM with CACTI-P and DRAM
//! per the Tetris methodology. This crate substitutes an *analytic*
//! component library:
//!
//! * [`components`] — area (mm²) and per-operation energy (pJ) for every
//!   datapath primitive the accelerators instantiate (atom multipliers,
//!   shift units, accumulators, address generators, crossbars, FIFOs,
//!   inner-joins, booth encoders, fusion units, scalar MACs);
//! * [`sram`] — a CACTI-like SRAM macro model (area and pJ/access scaling
//!   with capacity and port width);
//! * [`dram`] — per-bit off-chip access energy;
//! * [`energy`] — an event-counter → energy-breakdown accumulator shared by
//!   all simulators.
//!
//! Constants are calibrated so the paper's default Ristretto configuration
//! reproduces the Table VI area breakdown (the assembly itself lives in
//! `ristretto-sim`, which owns the configuration); the test suite pins the
//! calibration. Absolute joules are not the point — the evaluation compares
//! *relative* energy, which depends on event counts and component ratios.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod components;
pub mod dram;
pub mod energy;
pub mod sram;
pub mod tech;

pub use components::ComponentLib;
pub use dram::DRAM_ENERGY_PJ_PER_BIT;
pub use energy::{EnergyBreakdown, EnergyCounter};
pub use sram::SramMacro;
pub use tech::TechNode;
