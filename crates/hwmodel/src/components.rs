//! Datapath component library: area (mm²) and per-operation energy (pJ) at
//! 28nm for every primitive the simulated accelerators instantiate.
//!
//! The constants are calibrated against two anchors:
//!
//! 1. the paper's Table VI area breakdown for the default single-core
//!    Ristretto (32 tiles × 32 2-bit multipliers, 1.296 mm² total), and
//! 2. standard 28/45nm per-op energy estimates (an 8-bit multiply ≈ 0.2 pJ
//!    at 45nm, scaled to 28nm; SRAM/DRAM per-access energies follow
//!    CACTI-like scaling in [`crate::sram`] / [`crate::dram`]).
//!
//! Multiplier area/energy scale quadratically with operand width; shifters
//! scale with output width × number of selectable offsets; crossbars with
//! port count squared. Those scaling laws are what produce the paper's
//! Fig 19a granularity ablation (a 1-bit-atom design pays ≈3× area/power in
//! shift and accumulation resources for the same BitOps/cycle).

use serde::{Deserialize, Serialize};

/// Area/energy library. A value object so alternative calibrations can be
/// constructed for sensitivity studies; [`ComponentLib::n28`] is the
/// paper-calibrated instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentLib {
    /// Area of a 1×1-bit AND-style multiplier cell (mm²); an N×N multiplier
    /// costs `N²` cells plus reduction overhead.
    pub mult_cell_area: f64,
    /// Energy of one 1×1-bit multiply cell toggle (pJ).
    pub mult_cell_energy: f64,
    /// Area of one 2:1 mux-bit of a shifter datapath (mm²); a shifter over
    /// `width` bits with `options` selectable offsets costs
    /// `width · log2(options)` mux-bits.
    pub shift_mux_area: f64,
    /// Energy per shift operation per mux-bit (pJ).
    pub shift_mux_energy: f64,
    /// Area of one register/adder bit of an accumulator (mm²).
    pub acc_bit_area: f64,
    /// Energy per accumulate per bit (pJ).
    pub acc_bit_energy: f64,
    /// Area of the Atomizer's leading-one detector + latch (mm²) — tiny:
    /// Table VI charges 0.001 mm² for all 32 of them.
    pub atomizer_area: f64,
    /// Energy per atomizer scan step (pJ).
    pub atomizer_energy: f64,
    /// Area of one output-coordinate address generator (mm²), Eq 1/2
    /// datapath: two small adders plus a bounds check.
    pub addr_gen_area: f64,
    /// Energy per generated address (pJ).
    pub addr_gen_energy: f64,
    /// Area of one crossbar cross-point per bit (mm²).
    pub xbar_point_area: f64,
    /// Energy per crossbar traversal per bit (pJ).
    pub xbar_bit_energy: f64,
    /// Area of one FIFO entry bit (mm²).
    pub fifo_bit_area: f64,
    /// Energy per FIFO push/pop per bit (pJ).
    pub fifo_bit_energy: f64,
    /// Area of a SparTen inner-join over a 128-bit bitmask section (mm²).
    /// The paper notes one inner-join is >60% of a CU's area.
    pub inner_join_area: f64,
    /// Energy per inner-join extraction (pJ).
    pub inner_join_energy: f64,
    /// Area of a Laconic booth (term) encoder for one 16-bit operand (mm²).
    pub booth_encoder_area: f64,
    /// Energy per booth encoding (pJ).
    pub booth_encoder_energy: f64,
    /// Leakage power density (mW per mm²) charged per cycle to idle logic.
    pub leakage_mw_per_mm2: f64,
}

impl ComponentLib {
    /// The 28nm calibration used throughout the reproduction.
    pub const fn n28() -> Self {
        Self {
            mult_cell_area: 2.4e-6,
            mult_cell_energy: 3.5e-3,
            shift_mux_area: 6.2e-7,
            shift_mux_energy: 2.8e-4,
            acc_bit_area: 1.05e-6,
            acc_bit_energy: 6.0e-4,
            atomizer_area: 3.1e-5,
            atomizer_energy: 0.05,
            addr_gen_area: 2.0e-5,
            addr_gen_energy: 0.06,
            xbar_point_area: 5.0e-8,
            xbar_bit_energy: 1.0e-3,
            fifo_bit_area: 4.0e-7,
            fifo_bit_energy: 1.1e-3,
            inner_join_area: 9.0e-3,
            inner_join_energy: 1.9,
            booth_encoder_area: 6.0e-4,
            booth_encoder_energy: 0.18,
            leakage_mw_per_mm2: 0.9,
        }
    }

    /// Area of an `n`×`n`-bit unsigned multiplier (mm²).
    pub fn multiplier_area(&self, n: u8) -> f64 {
        let n = n as f64;
        self.mult_cell_area * n * n
    }

    /// Energy of one `n`×`n`-bit multiply (pJ).
    pub fn multiplier_energy(&self, n: u8) -> f64 {
        let n = n as f64;
        self.mult_cell_energy * n * n
    }

    /// Area of a shifter over `width` bits selecting among `options`
    /// offsets (mm²). One option means a wire: zero area.
    pub fn shifter_area(&self, width: u8, options: u8) -> f64 {
        if options <= 1 {
            return 0.0;
        }
        let stages = (options as f64).log2().ceil();
        self.shift_mux_area * width as f64 * stages
    }

    /// Energy per shift through such a shifter (pJ).
    pub fn shifter_energy(&self, width: u8, options: u8) -> f64 {
        if options <= 1 {
            return 0.0;
        }
        let stages = (options as f64).log2().ceil();
        self.shift_mux_energy * width as f64 * stages
    }

    /// Area of a `width`-bit accumulator (register + adder) (mm²).
    pub fn accumulator_area(&self, width: u8) -> f64 {
        self.acc_bit_area * width as f64
    }

    /// Energy per accumulate into a `width`-bit accumulator (pJ).
    pub fn accumulator_energy(&self, width: u8) -> f64 {
        self.acc_bit_energy * width as f64
    }

    /// Area of a `ports`×`ports` crossbar carrying `width`-bit payloads.
    pub fn crossbar_area(&self, ports: usize, width: u8) -> f64 {
        self.xbar_point_area * (ports * ports) as f64 * width as f64
    }

    /// Energy of one payload traversal through that crossbar (pJ). Scales
    /// with the port count (wire length) and payload width.
    pub fn crossbar_energy(&self, ports: usize, width: u8) -> f64 {
        self.xbar_bit_energy * width as f64 * (ports as f64).sqrt()
    }

    /// Area of a FIFO of `depth` entries × `width` bits (mm²).
    pub fn fifo_area(&self, depth: usize, width: u8) -> f64 {
        self.fifo_bit_area * depth as f64 * width as f64
    }

    /// Energy of one push or pop of a `width`-bit FIFO entry (pJ).
    pub fn fifo_energy(&self, width: u8) -> f64 {
        self.fifo_bit_energy * width as f64
    }

    /// Area of a Bit Fusion *fusion unit*: 16 2-bit BitBricks plus the
    /// spatial composition network (able to run 1×8b / 4×4b / 16×2b per
    /// cycle).
    pub fn fusion_unit_area(&self) -> f64 {
        // 16 bitbricks + shift/add composition tree, roughly the area of a
        // dedicated 8x8 multiplier plus 30% composition overhead.
        16.0 * self.multiplier_area(2) * 1.6 + self.shifter_area(16, 4) + self.accumulator_area(24)
    }

    /// Energy of one fusion-unit cycle at full utilization (pJ). The 1.8
    /// factor covers the spatial composition network and pipeline
    /// registers around the BitBricks.
    pub fn fusion_unit_energy(&self) -> f64 {
        16.0 * self.multiplier_energy(2) * 1.8
            + self.shifter_energy(16, 4)
            + self.accumulator_energy(24)
    }

    /// Area of a SparTen-style scalar 8-bit MAC (mm²).
    pub fn scalar_mac8_area(&self) -> f64 {
        self.multiplier_area(8) + self.accumulator_area(24)
    }

    /// Energy per scalar 8-bit MAC operation (pJ).
    pub fn scalar_mac8_energy(&self) -> f64 {
        self.multiplier_energy(8) + self.accumulator_energy(24)
    }

    /// Area of one Laconic bit-serial multiplier lane: exponent adder plus
    /// decode/accumulate (mm²).
    pub fn bit_serial_lane_area(&self) -> f64 {
        // 4-bit exponent adder + decoder + 24-bit accumulator slice.
        self.accumulator_area(4) + self.shifter_area(16, 16) + self.accumulator_area(24) * 0.5
    }

    /// Energy per bit-serial term-pair operation (pJ).
    pub fn bit_serial_lane_energy(&self) -> f64 {
        self.accumulator_energy(4) + self.shifter_energy(16, 16) + self.accumulator_energy(24) * 0.5
    }

    /// Leakage energy (pJ) of `area_mm2` of logic over `cycles` cycles at
    /// `freq_mhz`.
    pub fn leakage_pj(&self, area_mm2: f64, cycles: u64, freq_mhz: u32) -> f64 {
        // mW * s = mJ -> pJ: mW * cycles/freq(MHz) µs = nJ... carefully:
        // P[mW] * t[s] = 1e-3 W*s = 1e-3 J; t = cycles / (freq_mhz * 1e6).
        let watts = self.leakage_mw_per_mm2 * area_mm2 * 1e-3;
        let secs = cycles as f64 / (freq_mhz as f64 * 1e6);
        watts * secs * 1e12
    }
}

impl Default for ComponentLib {
    fn default() -> Self {
        Self::n28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: ComponentLib = ComponentLib::n28();

    #[test]
    fn multiplier_scales_quadratically() {
        assert!((LIB.multiplier_area(4) / LIB.multiplier_area(2) - 4.0).abs() < 1e-9);
        assert!((LIB.multiplier_energy(8) / LIB.multiplier_energy(2) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn eight_bit_multiply_energy_near_literature() {
        // ~0.12 pJ at 28nm (0.2 pJ at 45nm scaled).
        let e = LIB.multiplier_energy(8);
        assert!((0.06..0.25).contains(&e), "8b multiply energy {e} pJ");
    }

    #[test]
    fn shifter_grows_with_options() {
        let narrow = LIB.shifter_area(16, 4);
        let wide = LIB.shifter_area(16, 8);
        assert!(wide > narrow);
        assert_eq!(LIB.shifter_area(16, 1), 0.0);
        assert_eq!(LIB.shifter_energy(16, 1), 0.0);
    }

    #[test]
    fn crossbar_quadratic_in_ports() {
        let small = LIB.crossbar_area(16, 24);
        let big = LIB.crossbar_area(32, 24);
        assert!((big / small - 4.0).abs() < 1e-9);
    }

    #[test]
    fn inner_join_dominates_a_sparten_cu() {
        // Paper §II-B2a: one inner-join is >60% of a CU's area+power.
        let cu = LIB.inner_join_area + LIB.scalar_mac8_area() + 0.004; // + small control
        assert!(
            LIB.inner_join_area / cu > 0.6,
            "{}",
            LIB.inner_join_area / cu
        );
    }

    #[test]
    fn fusion_unit_bigger_than_bare_mac() {
        assert!(LIB.fusion_unit_area() > LIB.scalar_mac8_area() * 0.8);
        assert!(LIB.fusion_unit_energy() > 0.0);
    }

    #[test]
    fn leakage_accumulates_linearly() {
        let one = LIB.leakage_pj(1.0, 1000, 500);
        let two = LIB.leakage_pj(2.0, 1000, 500);
        assert!((two / one - 2.0).abs() < 1e-9);
        // 1 mm² at 0.9 mW for 2 µs = 1.8 nJ = 1800 pJ.
        assert!((one - 1800.0).abs() < 1.0, "{one}");
    }
}
