//! Off-chip DRAM access energy.
//!
//! The paper follows the Tetris methodology for DRAM energy per access. We
//! charge a flat per-bit energy typical of DDR3/LPDDR at 28nm-era systems;
//! only *relative* traffic differences matter to the evaluation (Ristretto
//! moves compressed streams, the dense baselines move full tensors).

/// DRAM access energy per bit (pJ/bit).
pub const DRAM_ENERGY_PJ_PER_BIT: f64 = 20.0;

/// Energy (pJ) to move `bits` of traffic to or from DRAM.
pub fn dram_energy_pj(bits: u64) -> f64 {
    bits as f64 * DRAM_ENERGY_PJ_PER_BIT
}

/// Energy (pJ) to move `bytes` of traffic to or from DRAM.
pub fn dram_energy_pj_bytes(bytes: u64) -> f64 {
    dram_energy_pj(bytes * 8)
}

/// First-order loop-tiling DRAM traffic for one layer: activations of
/// `a_bits` total and weights of `w_bits` total, staged through input and
/// weight buffers of the given capacities (bits).
///
/// When either operand fits on chip the other streams once; otherwise the
/// scheduler re-fetches one operand per tile pass of the other, and we
/// charge the cheaper loop order. This is what makes compression pay: a
/// compressed tensor that now fits on chip eliminates every re-fetch
/// (paper §IV-B / Fig 13/16).
pub fn tiled_traffic_bits(a_bits: u64, w_bits: u64, in_buf_bits: u64, w_buf_bits: u64) -> u64 {
    let (act, weight) = tiled_traffic_split(a_bits, w_bits, in_buf_bits, w_buf_bits);
    act + weight
}

/// [`tiled_traffic_bits`] broken down by operand: `(activation_bits,
/// weight_bits)` actually moved over the DRAM interface, including any
/// re-fetch passes. The components always sum to `tiled_traffic_bits`,
/// which lets multi-core traffic models charge broadcast/redistribution
/// against the activation share only (weights are core-resident).
pub fn tiled_traffic_split(
    a_bits: u64,
    w_bits: u64,
    in_buf_bits: u64,
    w_buf_bits: u64,
) -> (u64, u64) {
    let a_fits = a_bits <= in_buf_bits;
    let w_fits = w_bits <= w_buf_bits;
    if a_fits || w_fits {
        return (a_bits, w_bits);
    }
    let act_refetched = a_bits * w_bits.div_ceil(w_buf_bits.max(1));
    let weight_refetched = w_bits * a_bits.div_ceil(in_buf_bits.max(1));
    if act_refetched + w_bits <= weight_refetched + a_bits {
        (act_refetched, w_bits)
    } else {
        (a_bits, weight_refetched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_traffic() {
        assert_eq!(dram_energy_pj(0), 0.0);
        assert!((dram_energy_pj(100) - 2000.0).abs() < 1e-9);
        assert!((dram_energy_pj_bytes(1) - dram_energy_pj(8)).abs() < 1e-9);
    }

    #[test]
    fn tiled_traffic_single_pass_when_anything_fits() {
        // Either operand resident -> both stream once.
        assert_eq!(tiled_traffic_bits(100, 1000, 200, 10), 1100);
        assert_eq!(tiled_traffic_bits(1000, 100, 10, 200), 1100);
        // Neither fits: cheaper loop order chosen.
        let t = tiled_traffic_bits(1000, 1000, 100, 100);
        assert_eq!(t, 1000 * 10 + 1000);
        // Compression shrinking a tensor below the buffer kills re-fetch.
        assert!(tiled_traffic_bits(90, 1000, 100, 100) < t);
    }

    #[test]
    fn split_components_sum_to_total() {
        for (a, w, ib, wb) in [
            (100, 1000, 200, 10),
            (1000, 100, 10, 200),
            (1000, 1000, 100, 100),
            (1000, 999, 100, 128),
            (0, 0, 1, 1),
            (7, 13, 1, 1),
        ] {
            let (act, weight) = tiled_traffic_split(a, w, ib, wb);
            assert_eq!(act + weight, tiled_traffic_bits(a, w, ib, wb));
        }
        // Re-fetching activations inflates only the activation share.
        let (act, weight) = tiled_traffic_split(1000, 1000, 100, 100);
        assert_eq!((act, weight), (10_000, 1000));
    }

    #[test]
    fn dram_dwarfs_sram_per_bit() {
        use crate::sram::SramMacro;
        let sram = SramMacro::new(64 << 10, 64);
        let sram_per_bit = sram.read_energy_pj(64) / 64.0;
        assert!(DRAM_ENERGY_PJ_PER_BIT > 10.0 * sram_per_bit);
    }
}
