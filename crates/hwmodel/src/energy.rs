//! Event-counter → energy-breakdown accumulation, shared by all the
//! accelerator simulators.
//!
//! Simulators record *events* (multiplies, shifts, buffer and DRAM
//! accesses); this module prices them and produces the compute /
//! on-chip-buffer / DRAM / leakage breakdown the paper's Figures 13 and 16
//! report.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// An energy breakdown in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Datapath energy: multiplies, shifts, accumulations, encoders,
    /// matching logic, crossbars.
    pub compute_pj: f64,
    /// On-chip buffer energy (SRAM + register files).
    pub buffer_pj: f64,
    /// Off-chip DRAM energy.
    pub dram_pj: f64,
    /// Leakage energy over the run's cycle count.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.buffer_pj + self.dram_pj + self.leakage_pj
    }

    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() * 1e-6
    }

    /// Ratio of this breakdown's total to another's (used for the
    /// normalized energy plots).
    pub fn relative_to(&self, baseline: &EnergyBreakdown) -> f64 {
        let b = baseline.total_pj();
        if b == 0.0 {
            f64::INFINITY
        } else {
            self.total_pj() / b
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + rhs.compute_pj,
            buffer_pj: self.buffer_pj + rhs.buffer_pj,
            dram_pj: self.dram_pj + rhs.dram_pj,
            leakage_pj: self.leakage_pj + rhs.leakage_pj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

/// A running event-count accumulator that prices events as they arrive.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyCounter {
    breakdown: EnergyBreakdown,
    events: u64,
}

impl EnergyCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` compute events of `pj_each` picojoules.
    pub fn compute(&mut self, count: u64, pj_each: f64) {
        self.breakdown.compute_pj += count as f64 * pj_each;
        self.events += count;
        obs::record(obs::Event::HwmodelComputeEvents, count);
    }

    /// Records `count` buffer accesses of `pj_each` picojoules.
    pub fn buffer(&mut self, count: u64, pj_each: f64) {
        self.breakdown.buffer_pj += count as f64 * pj_each;
        self.events += count;
        obs::record(obs::Event::HwmodelBufferEvents, count);
    }

    /// Records `count` rework events of `pj_each` picojoules — compute
    /// discarded and re-done after a fault-detection rollback. Priced into
    /// the compute bucket (the rework burns the same datapath energy as
    /// the first attempt did).
    pub fn rework(&mut self, count: u64, pj_each: f64) {
        self.breakdown.compute_pj += count as f64 * pj_each;
        self.events += count;
        obs::record(obs::Event::HwmodelComputeEvents, count);
    }

    /// Records DRAM traffic of `bits` bits.
    pub fn dram_bits(&mut self, bits: u64) {
        self.breakdown.dram_pj += crate::dram::dram_energy_pj(bits);
        self.events += 1;
        obs::record(obs::Event::HwmodelDramRequests, 1);
    }

    /// Records leakage energy directly (pJ).
    pub fn leakage(&mut self, pj: f64) {
        self.breakdown.leakage_pj += pj;
    }

    /// The priced breakdown so far.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.breakdown
    }

    /// Number of discrete events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &EnergyCounter) {
        self.breakdown += other.breakdown;
        self.events += other.events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_total() {
        let mut c = EnergyCounter::new();
        c.compute(10, 0.5);
        c.buffer(2, 3.0);
        c.dram_bits(10);
        c.leakage(1.0);
        let b = c.breakdown();
        assert!((b.compute_pj - 5.0).abs() < 1e-12);
        assert!((b.buffer_pj - 6.0).abs() < 1e-12);
        assert!((b.dram_pj - 200.0).abs() < 1e-12);
        assert!((b.total_pj() - 212.0).abs() < 1e-12);
        assert_eq!(c.events(), 13);
    }

    #[test]
    fn merge_and_relative() {
        let mut a = EnergyCounter::new();
        a.compute(1, 10.0);
        let mut b = EnergyCounter::new();
        b.compute(1, 30.0);
        let rel = a.breakdown().relative_to(&b.breakdown());
        assert!((rel - 1.0 / 3.0).abs() < 1e-12);
        b.merge(&a);
        assert!((b.breakdown().total_pj() - 40.0).abs() < 1e-12);
        assert_eq!(b.events(), 2);
    }

    #[test]
    fn add_assign_breakdowns() {
        let mut x = EnergyBreakdown {
            compute_pj: 1.0,
            ..Default::default()
        };
        x += EnergyBreakdown {
            dram_pj: 2.0,
            ..Default::default()
        };
        assert!((x.total_pj() - 3.0).abs() < 1e-12);
        assert!((x.total_uj() - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn relative_to_zero_baseline_is_infinite() {
        let x = EnergyBreakdown {
            compute_pj: 1.0,
            ..Default::default()
        };
        assert!(x.relative_to(&EnergyBreakdown::default()).is_infinite());
    }
}
