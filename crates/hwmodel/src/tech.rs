//! Technology node parameters.

use serde::{Deserialize, Serialize};

/// A CMOS technology node. Only 28nm (the paper's node) ships constants;
/// other nodes scale area and energy by first-order Dennard-style factors,
/// which is sufficient for the relative comparisons the evaluation makes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechNode {
    /// Feature size in nanometres.
    pub nm: u32,
    /// Nominal clock frequency in MHz (the paper synthesizes at 500 MHz).
    pub freq_mhz: u32,
}

impl TechNode {
    /// The paper's TSMC 28nm HPC+ node at 500 MHz.
    pub const N28: TechNode = TechNode {
        nm: 28,
        freq_mhz: 500,
    };

    /// Area scaling factor relative to 28nm (∝ (nm/28)²).
    pub fn area_scale(&self) -> f64 {
        let r = self.nm as f64 / 28.0;
        r * r
    }

    /// Dynamic-energy scaling factor relative to 28nm (∝ nm/28, first
    /// order: capacitance × V² with V scaling weakly).
    pub fn energy_scale(&self) -> f64 {
        self.nm as f64 / 28.0
    }

    /// Clock period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        1_000.0 / self.freq_mhz as f64
    }

    /// Converts a per-op energy (pJ) into the power (mW) of one unit
    /// operating every cycle at this node's frequency.
    pub fn power_mw(&self, energy_pj_per_op: f64) -> f64 {
        // mW = pJ/op * ops/s * 1e-9 = pJ * MHz * 1e-3.
        energy_pj_per_op * self.freq_mhz as f64 * 1e-3
    }
}

impl Default for TechNode {
    fn default() -> Self {
        TechNode::N28
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n28_defaults() {
        let t = TechNode::default();
        assert_eq!(t.nm, 28);
        assert_eq!(t.freq_mhz, 500);
        assert!((t.area_scale() - 1.0).abs() < 1e-12);
        assert!((t.energy_scale() - 1.0).abs() < 1e-12);
        assert!((t.period_ns() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_monotone() {
        let n16 = TechNode {
            nm: 16,
            freq_mhz: 500,
        };
        let n65 = TechNode {
            nm: 65,
            freq_mhz: 500,
        };
        assert!(n16.area_scale() < 1.0 && n65.area_scale() > 1.0);
        assert!(n16.energy_scale() < 1.0 && n65.energy_scale() > 1.0);
    }

    #[test]
    fn power_conversion() {
        let t = TechNode::N28;
        // 1 pJ per op at 500 MHz = 0.5 mW.
        assert!((t.power_mw(1.0) - 0.5).abs() < 1e-12);
    }
}
