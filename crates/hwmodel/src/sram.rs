//! CACTI-like SRAM macro model.
//!
//! The paper models on-chip buffers and register files with CACTI-P. We
//! substitute a first-order analytic model: area scales linearly with
//! capacity (≈1.6 mm²/MB at 28nm, matching the paper's buffer areas in
//! Table VI), and per-access energy scales with port width and the square
//! root of capacity (bitline/wordline length).

use serde::{Deserialize, Serialize};

/// Area per kilobyte of SRAM at 28nm (mm²). Calibrated so Table VI's
/// 64 KB input / 192 KB weight / 96 KB output buffers land on 0.118 /
/// 0.302 / 0.154 mm².
pub const SRAM_AREA_PER_KB: f64 = 0.00157;

/// Baseline read energy (pJ) per access for a 64-bit port on a 1 KB macro.
const BASE_READ_PJ: f64 = 1.1;
/// Write energy ratio relative to read.
const WRITE_RATIO: f64 = 1.15;
/// Register-file energy/area premium relative to SRAM.
const REGFILE_PREMIUM: f64 = 2.2;

/// An on-chip SRAM (or register-file) macro.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    capacity_bytes: usize,
    port_bits: u32,
    regfile: bool,
}

impl SramMacro {
    /// An SRAM macro of `capacity_bytes` with a `port_bits`-wide port.
    ///
    /// # Panics
    /// Panics if capacity or port width is zero.
    pub fn new(capacity_bytes: usize, port_bits: u32) -> Self {
        assert!(capacity_bytes > 0, "SRAM capacity must be non-zero");
        assert!(port_bits > 0, "SRAM port width must be non-zero");
        Self {
            capacity_bytes,
            port_bits,
            regfile: false,
        }
    }

    /// A register-file macro (denser ports, higher energy/area per bit) —
    /// used for Ristretto's accumulate buffers.
    pub fn regfile(capacity_bytes: usize, port_bits: u32) -> Self {
        let mut m = Self::new(capacity_bytes, port_bits);
        m.regfile = true;
        m
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Port width in bits.
    pub fn port_bits(&self) -> u32 {
        self.port_bits
    }

    /// Macro area (mm²).
    pub fn area_mm2(&self) -> f64 {
        let premium = if self.regfile { REGFILE_PREMIUM } else { 1.0 };
        SRAM_AREA_PER_KB * (self.capacity_bytes as f64 / 1024.0) * premium
    }

    /// Energy of one read of `bits` bits (pJ). Reads wider than the port
    /// are charged as multiple accesses.
    pub fn read_energy_pj(&self, bits: u64) -> f64 {
        self.access_energy(bits, false)
    }

    /// Energy of one write of `bits` bits (pJ).
    pub fn write_energy_pj(&self, bits: u64) -> f64 {
        self.access_energy(bits, true)
    }

    fn access_energy(&self, bits: u64, write: bool) -> f64 {
        if bits == 0 {
            return 0.0;
        }
        let accesses = bits.div_ceil(self.port_bits as u64) as f64;
        let kb = self.capacity_bytes as f64 / 1024.0;
        // Bitline/wordline energy scales with sqrt(capacity); very small
        // register-file banks bottom out at a flop-array floor.
        let per_access = BASE_READ_PJ * (self.port_bits as f64 / 64.0) * kb.sqrt().max(0.3);
        let premium = if self.regfile { REGFILE_PREMIUM } else { 1.0 };
        let rw = if write { WRITE_RATIO } else { 1.0 };
        accesses * per_access * premium * rw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_buffer_areas() {
        // Input 64 KB -> ~0.118, weight 192 KB -> ~0.302, output 96 KB -> ~0.154.
        let input = SramMacro::new(64 << 10, 128).area_mm2();
        let weight = SramMacro::new(192 << 10, 128).area_mm2();
        let output = SramMacro::new(96 << 10, 128).area_mm2();
        assert!((input - 0.118).abs() / 0.118 < 0.20, "input {input}");
        assert!((weight - 0.302).abs() / 0.302 < 0.20, "weight {weight}");
        assert!((output - 0.154).abs() / 0.154 < 0.20, "output {output}");
    }

    #[test]
    fn energy_scales_with_capacity_and_width() {
        let small = SramMacro::new(1 << 10, 64);
        let big = SramMacro::new(256 << 10, 64);
        assert!(big.read_energy_pj(64) > small.read_energy_pj(64));
        assert!(small.read_energy_pj(128) > small.read_energy_pj(64));
        assert!(small.write_energy_pj(64) > small.read_energy_pj(64));
        assert_eq!(small.read_energy_pj(0), 0.0);
    }

    #[test]
    fn wide_reads_charged_as_multiple_accesses() {
        let m = SramMacro::new(32 << 10, 64);
        let one = m.read_energy_pj(64);
        let four = m.read_energy_pj(256);
        assert!((four / one - 4.0).abs() < 1e-9);
    }

    #[test]
    fn regfile_premium() {
        let sram = SramMacro::new(8 << 10, 32);
        let rf = SramMacro::regfile(8 << 10, 32);
        assert!(rf.area_mm2() > sram.area_mm2());
        assert!(rf.read_energy_pj(32) > sram.read_energy_pj(32));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = SramMacro::new(0, 64);
    }
}
