//! Property-based tests for the hardware cost models.

use hwmodel::dram::{dram_energy_pj, tiled_traffic_bits};
use hwmodel::{ComponentLib, EnergyBreakdown, EnergyCounter, SramMacro};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sram_energy_monotone_in_capacity(kb1 in 1usize..64, kb2 in 64usize..1024, bits in 1u64..512) {
        let small = SramMacro::new(kb1 << 10, 64);
        let big = SramMacro::new(kb2 << 10, 64);
        prop_assert!(big.read_energy_pj(bits) >= small.read_energy_pj(bits));
        prop_assert!(big.area_mm2() > small.area_mm2());
    }

    #[test]
    fn sram_writes_cost_at_least_reads(kb in 1usize..512, bits in 1u64..512) {
        let m = SramMacro::new(kb << 10, 64);
        prop_assert!(m.write_energy_pj(bits) >= m.read_energy_pj(bits));
    }

    #[test]
    fn sram_energy_additive_in_port_multiples(kb in 1usize..256, chunks in 1u64..16) {
        let m = SramMacro::new(kb << 10, 64);
        let one = m.read_energy_pj(64);
        let many = m.read_energy_pj(64 * chunks);
        prop_assert!((many - one * chunks as f64).abs() < 1e-6);
    }

    #[test]
    fn tiled_traffic_lower_bounded_by_tensor_sizes(
        a in 1u64..1_000_000,
        w in 1u64..1_000_000,
        ib in 1u64..1_000_000,
        wb in 1u64..1_000_000,
    ) {
        let t = tiled_traffic_bits(a, w, ib, wb);
        prop_assert!(t >= a + w, "traffic {t} below single-pass {}", a + w);
    }

    #[test]
    fn tiled_traffic_monotone_in_tensor_size(
        a in 1u64..500_000,
        w in 1u64..500_000,
        ib in 1u64..500_000,
        wb in 1u64..500_000,
        extra in 1u64..100_000,
    ) {
        prop_assert!(tiled_traffic_bits(a + extra, w, ib, wb) >= tiled_traffic_bits(a, w, ib, wb));
        prop_assert!(tiled_traffic_bits(a, w + extra, ib, wb) >= tiled_traffic_bits(a, w, ib, wb));
    }

    #[test]
    fn bigger_buffers_never_increase_traffic(
        a in 1u64..500_000,
        w in 1u64..500_000,
        ib in 1u64..500_000,
        wb in 1u64..500_000,
        extra in 1u64..500_000,
    ) {
        prop_assert!(tiled_traffic_bits(a, w, ib + extra, wb) <= tiled_traffic_bits(a, w, ib, wb));
        prop_assert!(tiled_traffic_bits(a, w, ib, wb + extra) <= tiled_traffic_bits(a, w, ib, wb));
    }

    #[test]
    fn dram_energy_linear(bits in 0u64..1_000_000, k in 1u64..8) {
        prop_assert!((dram_energy_pj(bits * k) - dram_energy_pj(bits) * k as f64).abs() < 1e-6);
    }

    #[test]
    fn multiplier_cost_monotone_in_width(lib_n in Just(ComponentLib::n28()), n1 in 1u8..8, extra in 1u8..8) {
        let n2 = n1 + extra;
        prop_assert!(lib_n.multiplier_area(n2) > lib_n.multiplier_area(n1));
        prop_assert!(lib_n.multiplier_energy(n2) > lib_n.multiplier_energy(n1));
    }

    #[test]
    fn shifter_cost_monotone_in_options(width in 1u8..32, opt in 2u8..16, extra in 1u8..16) {
        let lib = ComponentLib::n28();
        prop_assert!(lib.shifter_area(width, opt + extra) >= lib.shifter_area(width, opt));
        prop_assert!(lib.shifter_energy(width, opt + extra) >= lib.shifter_energy(width, opt));
    }

    #[test]
    fn energy_counter_totals_are_sums(
        mults in 0u64..10_000,
        reads in 0u64..10_000,
        dram in 0u64..10_000,
    ) {
        let mut c = EnergyCounter::new();
        c.compute(mults, 0.5);
        c.buffer(reads, 2.0);
        c.dram_bits(dram);
        let b: EnergyBreakdown = c.breakdown();
        let expected = mults as f64 * 0.5 + reads as f64 * 2.0 + dram_energy_pj(dram);
        prop_assert!((b.total_pj() - expected).abs() < 1e-6);
    }
}
