//! Property-based tests for the condensed streaming computation.
//!
//! These encode the invariants of DESIGN.md §6: CSC ≡ dense convolution for
//! arbitrary shapes/widths/sparsity, decomposition round-trips, atom-order
//! invariance, and the Eq 3 step count.

use atomstream::atom::AtomBits;
use atomstream::compress::{compress_activations, compress_weights, compress_weights_naive};
use atomstream::conv_csc::{conv2d_csc, CscConfig};
use atomstream::cycles::ideal_steps;
use atomstream::decompose::{atomize_signed, atomize_unsigned, multiply_via_atoms, recompose};
use atomstream::flatten::{FlatActivation, FlatWeight};
use atomstream::intersect::{intersect, FullConvAcc, IntersectConfig};
use proptest::prelude::*;
use qnn::conv::{conv2d, ConvGeometry};
use qnn::quant::BitWidth;
use qnn::tensor::{Tensor3, Tensor4};

fn atom_bits() -> impl Strategy<Value = AtomBits> {
    (1u8..=4).prop_map(|b| AtomBits::new(b).unwrap())
}

fn bitwidth() -> impl Strategy<Value = BitWidth> {
    prop_oneof![
        Just(BitWidth::W2),
        Just(BitWidth::W4),
        Just(BitWidth::W6),
        Just(BitWidth::W8)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn signed_decompose_roundtrips(v in -127i32..=127, gran in atom_bits()) {
        let atoms = atomize_signed(v, 8, gran).unwrap();
        prop_assert_eq!(recompose(&atoms), v as i64);
        prop_assert!(atoms.iter().all(|a| a.mag > 0));
        prop_assert!(atoms.iter().all(|a| a.mag as u16 <= gran.max_magnitude()));
        prop_assert_eq!(atoms.iter().filter(|a| a.last).count(), usize::from(v != 0));
    }

    #[test]
    fn unsigned_decompose_roundtrips(v in 0i32..=255, gran in atom_bits()) {
        let atoms = atomize_unsigned(v, 8, gran).unwrap();
        prop_assert_eq!(recompose(&atoms), v as i64);
        prop_assert!(atoms.iter().all(|a| !a.negative));
    }

    #[test]
    fn atom_multiplication_is_exact(a in 0i32..=255, w in -127i32..=127, gran in atom_bits()) {
        prop_assert_eq!(multiply_via_atoms(a, w, 8, 8, gran).unwrap(), (a as i64) * (w as i64));
    }

    #[test]
    fn csc_matches_dense_reference(
        seed in 0u64..10_000,
        c in 1usize..=3,
        o in 1usize..=4,
        k in 1usize..=3,
        h in 3usize..=7,
        w in 3usize..=7,
        stride in 1usize..=2,
        pad in 0usize..=2,
        gran in atom_bits(),
        a_bits in bitwidth(),
        w_bits in bitwidth(),
        mults in 1usize..=8,
        density_pct in 10u32..=90,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        prop_assume!(pad < k || pad == 0);
        let mut rng = qnn::rng::SeededRng::new(seed);
        let a_max = a_bits.unsigned_max();
        let w_max = w_bits.signed_max();
        let density = density_pct as f64 / 100.0;
        let fmap = Tensor3::from_fn(c, h, w, |_, _, _| {
            if rng.bernoulli(density) { rng.below(a_max as usize + 1) as i32 } else { 0 }
        }).unwrap();
        let kernels = Tensor4::from_fn(o, c, k, k, |_, _, _, _| {
            if rng.bernoulli(density) {
                let m = rng.below(w_max as usize + 1) as i32;
                if rng.bernoulli(0.5) { -m } else { m }
            } else { 0 }
        }).unwrap();
        let geom = ConvGeometry::new(stride, pad).unwrap();
        let dense = conv2d(&fmap, &kernels, geom).unwrap();
        let cfg = CscConfig { atom_bits: gran, multipliers: mults, tile_h: 1 + seed as usize % 4, tile_w: 2 + seed as usize % 3 };
        let csc = conv2d_csc(&fmap, &kernels, geom, a_bits, w_bits, &cfg).unwrap();
        prop_assert_eq!(csc.output, dense);
    }

    #[test]
    fn weight_atom_order_is_irrelevant(
        seed in 0u64..10_000,
        n in 1usize..=12,
        mults in 1usize..=6,
    ) {
        // Random flat weights within a 3x3 kernel, 2 output channels.
        let mut rng = qnn::rng::SeededRng::new(seed);
        let mut flat_w = Vec::new();
        for _ in 0..n {
            let v = rng.below(15) as i32 - 7;
            if v != 0 {
                flat_w.push(FlatWeight {
                    value: v,
                    x: rng.below(3) as u16,
                    y: rng.below(3) as u16,
                    out_ch: rng.below(2) as u16,
                });
            }
        }
        let mut flat_a = Vec::new();
        for yy in 0..3u16 {
            for xx in 0..3u16 {
                if rng.bernoulli(0.6) {
                    flat_a.push(FlatActivation { value: rng.below(16) as i32, x: xx, y: yy });
                }
            }
        }
        let flat_a: Vec<_> = flat_a.into_iter().filter(|f| f.value != 0).collect();
        let acts = compress_activations(&flat_a, 4, AtomBits::B2).unwrap();
        let shuffled = compress_weights(&flat_w, 4, AtomBits::B2).unwrap();
        let naive = compress_weights_naive(&flat_w, 4, AtomBits::B2).unwrap();
        let cfg = IntersectConfig { multipliers: mults };
        let mut acc_a = FullConvAcc::new(2, 3, 3, 3).unwrap();
        let mut acc_b = FullConvAcc::new(2, 3, 3, 3).unwrap();
        let sa = intersect(&shuffled, &acts, cfg, &mut acc_a, 0, 0).unwrap();
        let sb = intersect(&naive, &acts, cfg, &mut acc_b, 0, 0).unwrap();
        prop_assert_eq!(acc_a, acc_b);
        prop_assert_eq!(sa.steps, sb.steps);
        prop_assert_eq!(sa.atom_mults, sb.atom_mults);
    }

    #[test]
    fn intersection_steps_obey_eq3(
        t in 1u64..200,
        s in 1u64..200,
        n in 1u64..=64,
    ) {
        // Build t activation atoms (single-atom values) and s weight atoms.
        let flat_a: Vec<FlatActivation> =
            (0..t).map(|i| FlatActivation { value: 1, x: (i % 8) as u16, y: (i / 8) as u16 }).collect();
        let acts = compress_activations(&flat_a, 2, AtomBits::B2).unwrap();
        prop_assume!(acts.len() as u64 == t);
        let flat_w: Vec<FlatWeight> =
            (0..s).map(|i| FlatWeight { value: 1, x: 0, y: 0, out_ch: (i % 1024) as u16 }).collect();
        let weights = compress_weights(&flat_w, 2, AtomBits::B2).unwrap();
        let mut acc = FullConvAcc::new(1024, 25, 8, 1).unwrap();
        let stats = intersect(&weights, &acts, IntersectConfig { multipliers: n as usize }, &mut acc, 0, 0).unwrap();
        prop_assert_eq!(stats.steps, ideal_steps(t, s, n));
        prop_assert_eq!(stats.atom_mults, t * s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sixteen_bit_paths_agree_with_dense(
        seed in 0u64..10_000,
        h in 2usize..=4,
        w in 2usize..=4,
        k in 1usize..=2,
    ) {
        use atomstream::wide::conv2d_csc_temporal16;
        prop_assume!(h >= k && w >= k);
        let mut rng = qnn::rng::SeededRng::new(seed);
        let fmap = Tensor3::from_fn(1, h, w, |_, _, _| {
            if rng.bernoulli(0.7) { rng.below(65536) as i32 } else { 0 }
        }).unwrap();
        let kernels = Tensor4::from_fn(2, 1, k, k, |_, _, _, _| {
            rng.below(131071) as i32 - 65535
        }).unwrap();
        let geom = ConvGeometry::default();
        let dense = conv2d(&fmap, &kernels, geom).unwrap();
        let cfg = CscConfig::default();
        // Spatial extension (§IV-D): direct 16-bit CSC.
        let spatial = conv2d_csc(&fmap, &kernels, geom, BitWidth::W16, BitWidth::W16, &cfg).unwrap();
        prop_assert_eq!(&spatial.output, &dense);
        // Temporal decomposition: four 8-bit passes.
        let temporal = conv2d_csc_temporal16(&fmap, &kernels, geom, &cfg).unwrap();
        prop_assert_eq!(&temporal.output, &dense);
    }
}
