//! Error type for the `atomstream` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by atomization and stream construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomError {
    /// Atom granularity outside the supported `1..=8` range.
    BadGranularity(u8),
    /// A value does not fit the declared bit-width.
    ValueTooWide {
        /// Offending value.
        value: i64,
        /// Declared value bit-width.
        bits: u8,
    },
    /// A negative value was given to an unsigned atomizer.
    NegativeUnsigned(i64),
    /// Stream construction saw inconsistent tile shapes.
    TileShapeMismatch {
        /// Expected shape.
        expected: (usize, usize),
        /// Provided shape.
        actual: (usize, usize),
    },
    /// A precompiled weight stream was executed under a different atom
    /// granularity than it was compiled with.
    GranularityMismatch {
        /// Granularity the stream was compiled with (bits).
        compiled: u8,
        /// Granularity requested at run time (bits).
        requested: u8,
    },
    /// A weight-buffer image field does not fit its packed bit allocation
    /// (e.g. an atom shift beyond 4 bits or a kernel coordinate beyond 4
    /// bits); packing would silently truncate high bits.
    PackFieldOverflow {
        /// Name of the packed field that overflowed.
        field: &'static str,
        /// Value that was asked to be packed.
        value: u32,
        /// Largest value the field's bit allocation can hold.
        max: u32,
    },
    /// A stream's online FNV-1a checksum no longer matches the digest
    /// recorded at compile time — the stream's bits were corrupted between
    /// compilation and intersection.
    StreamChecksumMismatch {
        /// Input channel whose stream failed verification.
        channel: usize,
        /// Digest recorded at compile time.
        expected: u64,
        /// Digest observed online.
        actual: u64,
    },
    /// A weight stream carries a kernel coordinate outside the accumulator's
    /// kernel extent: the Eq 1 address `k − 1 − x_w` would underflow. Caught
    /// up front, before the intersection loop can compute a wrapped address.
    WeightCoordOutOfKernel {
        /// Index of the offending entry in the stream.
        index: usize,
        /// The entry's kernel column.
        x: u16,
        /// The entry's kernel row.
        y: u16,
        /// Kernel extent the accumulator was built for.
        kernel: usize,
    },
    /// An error bubbled up from the `qnn` substrate.
    Qnn(qnn::error::QnnError),
}

impl fmt::Display for AtomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomError::BadGranularity(b) => write!(f, "atom granularity {b} outside 1..=8"),
            AtomError::ValueTooWide { value, bits } => {
                write!(
                    f,
                    "value {value} does not fit declared width of {bits} bits"
                )
            }
            AtomError::NegativeUnsigned(v) => {
                write!(f, "negative value {v} given to unsigned atomizer")
            }
            AtomError::TileShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "tile shape {actual:?} does not match expected {expected:?}"
                )
            }
            AtomError::GranularityMismatch {
                compiled,
                requested,
            } => {
                write!(
                    f,
                    "stream compiled at {compiled}-bit atoms run at {requested}-bit atoms"
                )
            }
            AtomError::PackFieldOverflow { field, value, max } => {
                write!(
                    f,
                    "weight-buffer field `{field}` value {value} exceeds packed maximum {max}"
                )
            }
            AtomError::StreamChecksumMismatch {
                channel,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "stream checksum mismatch on channel {channel}: \
                     compiled {expected:#018x}, observed {actual:#018x}"
                )
            }
            AtomError::WeightCoordOutOfKernel {
                index,
                x,
                y,
                kernel,
            } => {
                write!(
                    f,
                    "weight atom {index} at kernel coordinate ({y}, {x}) exceeds \
                     kernel extent {kernel}"
                )
            }
            AtomError::Qnn(e) => write!(f, "substrate error: {e}"),
        }
    }
}

impl Error for AtomError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AtomError::Qnn(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<qnn::error::QnnError> for AtomError {
    fn from(e: qnn::error::QnnError) -> Self {
        AtomError::Qnn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_concise() {
        assert!(AtomError::BadGranularity(9).to_string().contains('9'));
        let e: AtomError = qnn::error::QnnError::ZeroStride.into();
        assert!(e.to_string().contains("stride"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn pack_field_overflow_names_the_field() {
        let e = AtomError::PackFieldOverflow {
            field: "shift",
            value: 19,
            max: 15,
        };
        let s = e.to_string();
        assert!(
            s.contains("shift") && s.contains("19") && s.contains("15"),
            "{s}"
        );
    }

    #[test]
    fn checksum_mismatch_names_channel_and_digests() {
        let e = AtomError::StreamChecksumMismatch {
            channel: 3,
            expected: 0xdead,
            actual: 0xbeef,
        };
        let s = e.to_string();
        assert!(
            s.contains('3') && s.contains("dead") && s.contains("beef"),
            "{s}"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomError>();
    }

    #[test]
    fn weight_coord_error_names_atom_and_extent() {
        let e = AtomError::WeightCoordOutOfKernel {
            index: 4,
            x: 7,
            y: 2,
            kernel: 3,
        };
        let s = e.to_string();
        assert!(
            s.contains('4') && s.contains('7') && s.contains('2') && s.contains('3'),
            "{s}"
        );
    }
}
