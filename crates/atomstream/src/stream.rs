//! Sparsity-condensed atom streams with metadata.
//!
//! A stream is the unit the Atomputer computes on: a sequence of non-zero
//! atoms, each carrying the coordinate metadata the Atomulator needs to
//! place its partial products (paper §III-B, Fig 6).
//!
//! Weight streams additionally obey the *stream shuffle* restrictions of
//! §IV-C2 / Fig 9 when built with [`WeightStream::shuffled`]:
//!
//! 1. atoms of the same weight *slice* (same shift offset) are grouped
//!    contiguously, enabling the decoupled shift (only the activation shift
//!    is applied per multiplication; the weight-slice shift is applied once
//!    at accumulate-buffer aggregation);
//! 2. within a slice, atoms are ordered channel-first (output channel
//!    varies fastest), eliminating accumulate-buffer coordinate contention.

use crate::atom::{Atom, AtomBits};
use crate::error::AtomError;
use crate::wire::{FNV_OFFSET, FNV_PRIME};
use serde::{Deserialize, Serialize};

/// Folds one byte into a running FNV-1a 64 hash.
#[inline]
fn fnv1a(hash: u64, byte: u8) -> u64 {
    (hash ^ byte as u64).wrapping_mul(FNV_PRIME)
}

/// Folds a little-endian `u16` into a running FNV-1a 64 hash.
#[inline]
fn fnv1a_u16(hash: u64, v: u16) -> u64 {
    let [a, b] = v.to_le_bytes();
    fnv1a(fnv1a(hash, a), b)
}

/// Folds one atom (mag, shift, sign, last) into a running FNV-1a 64 hash.
#[inline]
fn fnv1a_atom(hash: u64, atom: &Atom) -> u64 {
    let mut h = fnv1a(hash, atom.mag);
    h = fnv1a(h, atom.shift);
    h = fnv1a(h, atom.negative as u8);
    fnv1a(h, atom.last as u8)
}

/// One entry of an activation stream: a non-zero atom plus its in-tile
/// spatial coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActEntry {
    /// The atom (unsigned for post-ReLU activations).
    pub atom: Atom,
    /// Column within the tile.
    pub x: u16,
    /// Row within the tile.
    pub y: u16,
}

/// One entry of a weight stream: a non-zero atom plus kernel coordinates
/// and the output channel its products belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightEntry {
    /// The atom (sign bit carries the weight's sign).
    pub atom: Atom,
    /// Kernel column.
    pub x: u16,
    /// Kernel row.
    pub y: u16,
    /// Output channel (which kernel this weight belongs to).
    pub out_ch: u16,
}

/// A condensed activation atom stream for one channel of one tile.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivationStream {
    entries: Vec<ActEntry>,
}

impl ActivationStream {
    /// Wraps pre-built entries.
    pub fn from_entries(entries: Vec<ActEntry>) -> Self {
        Self { entries }
    }

    /// The stream's entries in order.
    pub fn entries(&self) -> &[ActEntry] {
        &self.entries
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct activation values (counted via last flags).
    pub fn value_count(&self) -> usize {
        self.entries.iter().filter(|e| e.atom.last).count()
    }

    /// Order-sensitive FNV-1a 64 checksum over every entry's atom and
    /// coordinates. Any single-bit corruption of any field — including a
    /// dropped, duplicated or reordered entry — changes the digest, which
    /// is what the online detection layer verifies before intersection.
    pub fn checksum(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for e in &self.entries {
            h = fnv1a_atom(h, &e.atom);
            h = fnv1a_u16(h, e.x);
            h = fnv1a_u16(h, e.y);
        }
        h
    }
}

/// A condensed weight atom stream for one input channel (spanning all the
/// kernels / output channels mapped to a compute tile).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WeightStream {
    entries: Vec<WeightEntry>,
}

impl WeightStream {
    /// Wraps pre-built entries without reordering (naive order).
    pub fn from_entries(entries: Vec<WeightEntry>) -> Self {
        Self { entries }
    }

    /// Builds the stream in the shuffled order of §IV-C2: grouped by shift
    /// slice (ascending), channel-first within a slice. Shuffling never
    /// changes results (each atom meets every activation atom) but it is
    /// what makes the decoupled shift and contention-free routing work.
    pub fn shuffled(mut entries: Vec<WeightEntry>) -> Self {
        entries.sort_by_key(|e| (e.atom.shift, e.y, e.x, e.out_ch));
        Self { entries }
    }

    /// The stream's entries in order.
    pub fn entries(&self) -> &[WeightEntry] {
        &self.entries
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits the stream into the contiguous shift-slice groups the
    /// accumulate buffer aggregates between (only meaningful on a
    /// [`WeightStream::shuffled`] stream).
    pub fn slice_groups(&self) -> Vec<&[WeightEntry]> {
        let mut groups = Vec::new();
        let mut start = 0;
        for i in 1..=self.entries.len() {
            if i == self.entries.len()
                || self.entries[i].atom.shift != self.entries[start].atom.shift
            {
                groups.push(&self.entries[start..i]);
                start = i;
            }
        }
        groups
    }

    /// Order-sensitive FNV-1a 64 checksum over every entry's atom,
    /// coordinates and output channel. Computed once at compile time by the
    /// weight-stream compiler and re-verified online before each
    /// intersection, so any bit flip in the static weight side is caught
    /// before it can pollute the accumulate buffer.
    pub fn checksum(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for e in &self.entries {
            h = fnv1a_atom(h, &e.atom);
            h = fnv1a_u16(h, e.x);
            h = fnv1a_u16(h, e.y);
            h = fnv1a_u16(h, e.out_ch);
        }
        h
    }
}

/// Builds weight entries for one kernel 2-D slice (one `(out_ch, in_ch)`
/// plane), atomizing each non-zero weight.
///
/// # Errors
/// Propagates [`AtomError::ValueTooWide`] for weights that exceed `w_bits`.
pub fn weight_entries_for_slice(
    slice: &[i32],
    kh: usize,
    kw: usize,
    out_ch: u16,
    w_bits: u8,
    atom_bits: AtomBits,
) -> Result<Vec<WeightEntry>, AtomError> {
    debug_assert_eq!(slice.len(), kh * kw);
    let mut entries = Vec::new();
    for ky in 0..kh {
        for kx in 0..kw {
            let v = slice[ky * kw + kx];
            if v == 0 {
                continue;
            }
            for atom in crate::decompose::atomize_signed(v, w_bits, atom_bits)? {
                entries.push(WeightEntry {
                    atom,
                    x: kx as u16,
                    y: ky as u16,
                    out_ch,
                });
            }
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::atomize_unsigned;

    fn act_entry(v: i32, x: u16, y: u16) -> Vec<ActEntry> {
        atomize_unsigned(v, 8, AtomBits::B2)
            .unwrap()
            .into_iter()
            .map(|atom| ActEntry { atom, x, y })
            .collect()
    }

    #[test]
    fn activation_stream_value_count() {
        let mut entries = act_entry(29, 0, 0); // 3 atoms
        entries.extend(act_entry(3, 1, 0)); // 1 atom
        let s = ActivationStream::from_entries(entries);
        assert_eq!(s.len(), 4);
        assert_eq!(s.value_count(), 2);
    }

    #[test]
    fn weight_slice_entries_skip_zeros() {
        // 2x2 kernel slice [5, 0, -3, 0]: 5 -> atoms (1@0, 1@2), -3 -> (3@0).
        let e = weight_entries_for_slice(&[5, 0, -3, 0], 2, 2, 7, 4, AtomBits::B2).unwrap();
        assert_eq!(e.len(), 3);
        assert!(e.iter().all(|w| w.out_ch == 7));
        assert_eq!((e[2].x, e[2].y, e[2].atom.negative), (0, 1, true));
    }

    #[test]
    fn shuffled_groups_by_slice_then_channel_first() {
        let mk = |mag, shift, out_ch| WeightEntry {
            atom: Atom {
                mag,
                shift,
                negative: false,
                last: true,
            },
            x: 0,
            y: 0,
            out_ch,
        };
        let s = WeightStream::shuffled(vec![mk(1, 2, 1), mk(2, 0, 1), mk(3, 0, 0), mk(1, 2, 0)]);
        let shifts: Vec<u8> = s.entries().iter().map(|e| e.atom.shift).collect();
        assert_eq!(shifts, vec![0, 0, 2, 2]);
        let chans: Vec<u16> = s.entries().iter().map(|e| e.out_ch).collect();
        assert_eq!(chans, vec![0, 1, 0, 1]);
        let groups = s.slice_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn slice_groups_on_empty_stream() {
        let s = WeightStream::default();
        assert!(s.slice_groups().is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn act_checksum_is_sensitive_to_every_field() {
        let base = ActivationStream::from_entries(act_entry(29, 1, 2));
        let reference = base.checksum();
        assert_eq!(base.checksum(), reference, "checksum must be pure");
        let mut flipped = base.entries().to_vec();
        flipped[0].atom.mag ^= 1;
        assert_ne!(
            ActivationStream::from_entries(flipped).checksum(),
            reference
        );
        let mut moved = base.entries().to_vec();
        moved[0].x ^= 1;
        assert_ne!(ActivationStream::from_entries(moved).checksum(), reference);
        let mut truncated = base.entries().to_vec();
        truncated.pop();
        assert_ne!(
            ActivationStream::from_entries(truncated).checksum(),
            reference
        );
    }

    #[test]
    fn weight_checksum_detects_duplication_and_reorder() {
        let e = weight_entries_for_slice(&[5, 0, -3, 0], 2, 2, 7, 4, AtomBits::B2).unwrap();
        let reference = WeightStream::from_entries(e.clone()).checksum();
        let mut dup = e.clone();
        dup.push(dup[0]);
        assert_ne!(WeightStream::from_entries(dup).checksum(), reference);
        let mut swapped = e.clone();
        swapped.swap(0, 1);
        assert_ne!(WeightStream::from_entries(swapped).checksum(), reference);
        let mut sign = e;
        sign[0].atom.negative = !sign[0].atom.negative;
        assert_ne!(WeightStream::from_entries(sign).checksum(), reference);
    }
}
