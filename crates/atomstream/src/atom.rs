//! Atoms: the N-bit fragments of quantized values.
//!
//! An `m`-bit integer is the sum of ⌈m/N⌉ terms, each the product of an
//! N-bit *atom* and a power-of-two shift (paper §III-A). Only non-zero
//! atoms are ever stored or computed on.

use crate::error::AtomError;
use serde::{Deserialize, Serialize};

/// Atom granularity in bits (the paper evaluates 1/2/3-bit; 2-bit is the
/// default design point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AtomBits(u8);

impl AtomBits {
    /// 1-bit atoms (Fig 19 ablation).
    pub const B1: AtomBits = AtomBits(1);
    /// 2-bit atoms — the paper's default.
    pub const B2: AtomBits = AtomBits(2);
    /// 3-bit atoms (Fig 19 ablation).
    pub const B3: AtomBits = AtomBits(3);
    /// 4-bit atoms.
    pub const B4: AtomBits = AtomBits(4);

    /// Creates a granularity, validating `1..=8`.
    ///
    /// # Errors
    /// Returns [`AtomError::BadGranularity`] outside that range.
    pub fn new(bits: u8) -> Result<Self, AtomError> {
        if (1..=8).contains(&bits) {
            Ok(AtomBits(bits))
        } else {
            Err(AtomError::BadGranularity(bits))
        }
    }

    /// The raw bit count.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Largest atom magnitude: `2^N - 1`.
    pub fn max_magnitude(self) -> u16 {
        (1u16 << self.0) - 1
    }

    /// Number of atom slots in a `value_bits`-wide magnitude: ⌈m/N⌉.
    pub fn slots(self, value_bits: u8) -> u8 {
        value_bits.div_ceil(self.0)
    }
}

impl Default for AtomBits {
    fn default() -> Self {
        AtomBits::B2
    }
}

impl std::fmt::Display for AtomBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}b-atom", self.0)
    }
}

/// The set of legal shift offsets for a value of `value_bits` decomposed at
/// `atom_bits` granularity — the paper's Table IV: an 8-bit activation under
/// 2-bit atoms shifts by {0, 2, 4, 6}.
pub fn shift_range(value_bits: u8, atom_bits: AtomBits) -> Vec<u8> {
    (0..atom_bits.slots(value_bits))
        .map(|s| s * atom_bits.bits())
        .collect()
}

/// One non-zero atom of a quantized value, with the metadata the
/// compression phase generates (paper §III-B step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Atom magnitude, `1..=2^N-1` (zero atoms are squeezed out).
    pub mag: u8,
    /// Shift offset: the atom's bit position within the value's magnitude.
    pub shift: u8,
    /// Sign bit: `true` when the originating value is negative.
    pub negative: bool,
    /// Last-atom flag: `true` on the final atom of a value, telling the
    /// accumulator to deliver and clear (paper §IV-C2).
    pub last: bool,
}

impl Atom {
    /// The signed term this atom contributes: `±mag · 2^shift`.
    pub fn term(&self) -> i64 {
        let t = (self.mag as i64) << self.shift;
        if self.negative {
            -t
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_validation() {
        assert!(AtomBits::new(0).is_err());
        assert!(AtomBits::new(9).is_err());
        assert_eq!(AtomBits::new(2).unwrap(), AtomBits::B2);
        assert_eq!(AtomBits::default(), AtomBits::B2);
    }

    #[test]
    fn slots_round_up() {
        assert_eq!(AtomBits::B2.slots(8), 4);
        assert_eq!(AtomBits::B2.slots(4), 2);
        assert_eq!(AtomBits::B3.slots(8), 3);
        assert_eq!(AtomBits::B1.slots(8), 8);
        assert_eq!(AtomBits::B3.slots(2), 1);
    }

    #[test]
    fn table_iv_shift_ranges() {
        // Paper Table IV, 2-bit atoms.
        assert_eq!(shift_range(8, AtomBits::B2), vec![0, 2, 4, 6]);
        assert_eq!(shift_range(6, AtomBits::B2), vec![0, 2, 4]);
        assert_eq!(shift_range(4, AtomBits::B2), vec![0, 2]);
        assert_eq!(shift_range(2, AtomBits::B2), vec![0]);
        // 1-bit atoms widen the range to {0..7} (Fig 19 discussion).
        assert_eq!(shift_range(8, AtomBits::B1), (0..8).collect::<Vec<u8>>());
        // 16-bit spatial extension (§IV-D).
        assert_eq!(
            shift_range(16, AtomBits::B2),
            vec![0, 2, 4, 6, 8, 10, 12, 14]
        );
    }

    #[test]
    fn atom_term_signs_and_shifts() {
        let a = Atom {
            mag: 3,
            shift: 2,
            negative: false,
            last: false,
        };
        assert_eq!(a.term(), 12);
        let b = Atom {
            mag: 1,
            shift: 4,
            negative: true,
            last: true,
        };
        assert_eq!(b.term(), -16);
    }

    #[test]
    fn max_magnitude() {
        assert_eq!(AtomBits::B1.max_magnitude(), 1);
        assert_eq!(AtomBits::B2.max_magnitude(), 3);
        assert_eq!(AtomBits::B3.max_magnitude(), 7);
        assert_eq!(AtomBits::new(8).unwrap().max_magnitude(), 255);
    }

    #[test]
    fn display() {
        assert_eq!(AtomBits::B2.to_string(), "2b-atom");
    }
}
