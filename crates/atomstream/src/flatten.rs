//! Flattening: tensors → compact 1-D value streams with metadata
//! (phase 1 of the condensed streaming computation, paper §III-B / Fig 6).
//!
//! Feature-map tiles are flattened in zigzag (row-major) order through the
//! block COO-2D format; kernel channel slices are flattened per input
//! channel across all kernels (output channels), which is the unit a
//! compute tile consumes.

use crate::error::AtomError;
use qnn::formats::coo::BlockCoo2d;
use qnn::tensor::{Tensor3, Tensor4};
use serde::{Deserialize, Serialize};

/// A flattened non-zero activation value with its in-tile coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatActivation {
    /// The non-zero value.
    pub value: i32,
    /// Column within the tile.
    pub x: u16,
    /// Row within the tile.
    pub y: u16,
}

/// A flattened non-zero weight value with kernel coordinates and output
/// channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatWeight {
    /// The non-zero value.
    pub value: i32,
    /// Kernel column.
    pub x: u16,
    /// Kernel row.
    pub y: u16,
    /// Output channel (kernel index).
    pub out_ch: u16,
}

/// Flattens one channel-tile of a feature map into a compact value stream,
/// in zigzag order. Equivalent to reading the block COO-2D entries.
pub fn flatten_tile(
    fmap: &Tensor3,
    channel: usize,
    y0: usize,
    x0: usize,
    tile_h: usize,
    tile_w: usize,
) -> Vec<FlatActivation> {
    let coo = BlockCoo2d::from_fmap_tile(fmap, channel, y0, x0, tile_h, tile_w);
    coo.entries()
        .iter()
        .map(|e| FlatActivation {
            value: e.value,
            x: e.x,
            y: e.y,
        })
        .collect()
}

/// Allocation-free twin of [`flatten_tile`]: scans the channel plane
/// directly (no intermediate dense tile buffer) and appends the entries to
/// a caller-owned, reusable vector — the flatten path of the scratch-arena
/// kernel. Entry order and content are identical to [`flatten_tile`]:
/// row-major over the tile, zeros skipped, out-of-bounds cells contributing
/// nothing (they would have been zero padding).
pub fn flatten_tile_into(
    fmap: &Tensor3,
    channel: usize,
    y0: usize,
    x0: usize,
    tile_h: usize,
    tile_w: usize,
    out: &mut Vec<FlatActivation>,
) {
    out.clear();
    let (_, h, w) = fmap.shape();
    let plane = fmap.channel(channel);
    for dy in 0..tile_h {
        let y = y0 + dy;
        if y >= h {
            break;
        }
        let x_end = (x0 + tile_w).min(w);
        if x0 >= x_end {
            break;
        }
        let row = &plane[y * w + x0..y * w + x_end];
        for (dx, &value) in row.iter().enumerate() {
            if value != 0 {
                out.push(FlatActivation {
                    value,
                    x: dx as u16,
                    y: dy as u16,
                });
            }
        }
    }
}

/// Flattens the kernel slices of one *input channel* across all kernels:
/// the weights a compute tile keeps static while that channel's activations
/// stream through. Entries are ordered kernel-major, zigzag within a slice.
///
/// # Errors
/// Returns [`AtomError::TileShapeMismatch`] if `in_channel` is out of range.
pub fn flatten_kernel_channel(
    kernels: &Tensor4,
    in_channel: usize,
) -> Result<Vec<FlatWeight>, AtomError> {
    let (o, i, kh, kw) = kernels.shape();
    if in_channel >= i {
        return Err(AtomError::TileShapeMismatch {
            expected: (i, i),
            actual: (in_channel, i),
        });
    }
    let mut out = Vec::new();
    for oc in 0..o {
        let slice = kernels.kernel_slice(oc, in_channel);
        for ky in 0..kh {
            for kx in 0..kw {
                let v = slice[ky * kw + kx];
                if v != 0 {
                    out.push(FlatWeight {
                        value: v,
                        x: kx as u16,
                        y: ky as u16,
                        out_ch: oc as u16,
                    });
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_tile_zigzag_skips_zeros() {
        let fmap = Tensor3::from_vec(1, 2, 2, vec![0, 7, 9, 0]).unwrap();
        let flat = flatten_tile(&fmap, 0, 0, 0, 2, 2);
        assert_eq!(flat.len(), 2);
        assert_eq!((flat[0].value, flat[0].x, flat[0].y), (7, 1, 0));
        assert_eq!((flat[1].value, flat[1].x, flat[1].y), (9, 0, 1));
    }

    #[test]
    fn flatten_tile_beyond_boundary_pads_with_zeros() {
        let fmap = Tensor3::from_vec(1, 2, 2, vec![1, 2, 3, 4]).unwrap();
        let flat = flatten_tile(&fmap, 0, 1, 1, 2, 2);
        // Only (1,1)=4 is inside.
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].value, 4);
        assert_eq!((flat[0].x, flat[0].y), (0, 0));
    }

    #[test]
    fn flatten_kernels_orders_kernel_major() {
        // Two kernels, one input channel, 2x2.
        let k = Tensor4::from_vec(2, 1, 2, 2, vec![1, 0, 0, 2, 0, 3, 0, 0]).unwrap();
        let flat = flatten_kernel_channel(&k, 0).unwrap();
        let vals: Vec<(i32, u16)> = flat.iter().map(|w| (w.value, w.out_ch)).collect();
        assert_eq!(vals, vec![(1, 0), (2, 0), (3, 1)]);
        assert_eq!((flat[1].x, flat[1].y), (1, 1));
    }

    #[test]
    fn flatten_tile_into_matches_flatten_tile() {
        let fmap = Tensor3::from_fn(2, 5, 7, |c, y, x| {
            if (c + y * 3 + x) % 4 == 0 {
                (c * 10 + y + x) as i32 + 1
            } else {
                0
            }
        })
        .unwrap();
        let mut buf = Vec::new();
        for c in 0..2 {
            for (y0, x0, th, tw) in [(0, 0, 2, 3), (4, 6, 2, 3), (3, 5, 4, 4), (0, 0, 5, 7)] {
                let reference = flatten_tile(&fmap, c, y0, x0, th, tw);
                flatten_tile_into(&fmap, c, y0, x0, th, tw, &mut buf);
                assert_eq!(buf, reference, "tile ({y0},{x0}) {th}x{tw} channel {c}");
            }
        }
    }

    #[test]
    fn flatten_kernel_channel_validates_index() {
        let k = Tensor4::zeros(1, 2, 1, 1).unwrap();
        assert!(flatten_kernel_channel(&k, 2).is_err());
        assert!(flatten_kernel_channel(&k, 1).is_ok());
    }
}
