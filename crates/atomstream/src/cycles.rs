//! Closed-form cycle estimates for the condensed streaming computation
//! (paper Eq 3–5).
//!
//! For a feature-map tile with `t` non-zero activation atoms streamed
//! against `S` static weight atoms on `N` multipliers:
//!
//! ```text
//! C_t = t · ⌈S/N⌉ + ε,   ε = mod(S,N) − 1   (mod ≠ 0)
//!                        ε = N − 1          (mod = 0)        (Eq 3, 4)
//! ```
//!
//! Because kernels are shared by every tile of an input feature map, a whole
//! feature map with `T` non-zero atoms costs `C_T ≈ T · ⌈S/N⌉` (Eq 5) —
//! the statistic Ristretto's load balancer allocates by.

/// The pipeline-drain term ε of Eq 4.
pub fn intersect_epsilon(s: u64, n: u64) -> u64 {
    assert!(n > 0, "multiplier count must be non-zero");
    if s == 0 {
        return 0;
    }
    let m = s % n;
    if m != 0 {
        m - 1
    } else {
        n - 1
    }
}

/// Ideal intersection step count for one tile (Eq 3).
///
/// Saturates at `u64::MAX` instead of overflowing, mirroring the
/// `shl_guarded` treatment in `wide.rs` — the estimate stays a valid lower
/// bound even for degenerate atom counts.
pub fn ideal_steps(t: u64, s: u64, n: u64) -> u64 {
    assert!(n > 0, "multiplier count must be non-zero");
    if t == 0 || s == 0 {
        return 0;
    }
    t.checked_mul(s.div_ceil(n))
        .and_then(|c| c.checked_add(intersect_epsilon(s, n)))
        .unwrap_or(u64::MAX)
}

/// Whole-feature-map cycle estimate (Eq 5): `T · ⌈S/N⌉`, where `T` sums the
/// non-zero atoms over all tiles of the input feature map.
///
/// Saturates at `u64::MAX` instead of overflowing (see [`ideal_steps`]).
pub fn tile_cycles(total_act_atoms: u64, weight_atoms: u64, n: u64) -> u64 {
    assert!(n > 0, "multiplier count must be non-zero");
    if total_act_atoms == 0 || weight_atoms == 0 {
        return 0;
    }
    total_act_atoms.saturating_mul(weight_atoms.div_ceil(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_cases_from_eq4() {
        assert_eq!(intersect_epsilon(7, 3), 0); // mod = 1 -> 0
        assert_eq!(intersect_epsilon(8, 3), 1); // mod = 2 -> 1
        assert_eq!(intersect_epsilon(9, 3), 2); // mod = 0 -> N-1
        assert_eq!(intersect_epsilon(3, 8), 2); // mod = 3 -> 2
        assert_eq!(intersect_epsilon(0, 8), 0);
    }

    #[test]
    fn ideal_steps_matches_formula() {
        assert_eq!(ideal_steps(5, 7, 3), 5 * 3);
        assert_eq!(ideal_steps(5, 9, 3), 5 * 3 + 2);
        assert_eq!(ideal_steps(10, 32, 32), 10 + 31);
        assert_eq!(ideal_steps(0, 9, 3), 0);
        assert_eq!(ideal_steps(4, 0, 3), 0);
    }

    #[test]
    fn epsilon_is_small_relative_to_main_term() {
        // The paper omits ε in Eq 5 because it is bounded by N-1.
        for s in 1..200u64 {
            for n in [1u64, 4, 16, 32] {
                assert!(intersect_epsilon(s, n) < n);
            }
        }
    }

    #[test]
    fn tile_cycles_scales_linearly_in_atoms() {
        assert_eq!(tile_cycles(100, 64, 32), 100 * 2);
        assert_eq!(tile_cycles(100, 65, 32), 100 * 3);
        assert_eq!(tile_cycles(0, 64, 32), 0);
    }

    #[test]
    fn tile_cycles_saturates_instead_of_overflowing() {
        // Exactly representable boundary: u64::MAX · ⌈1/1⌉ fits.
        assert_eq!(tile_cycles(u64::MAX, 1, 1), u64::MAX);
        // 2^32 · 2^32 overflows u64 — must saturate, not wrap to 0.
        assert_eq!(tile_cycles(1 << 32, 1 << 32, 1), u64::MAX);
        assert_eq!(tile_cycles(u64::MAX, 2, 1), u64::MAX);
    }

    #[test]
    fn ideal_steps_saturates_instead_of_overflowing() {
        // Product fits but adding ε would overflow: saturate.
        assert_eq!(ideal_steps(u64::MAX, 1, 1), u64::MAX);
        // Product itself overflows: saturate.
        assert_eq!(ideal_steps(1 << 32, 1 << 32, 1), u64::MAX);
        assert_eq!(ideal_steps(u64::MAX, 3, 2), u64::MAX);
        // Near the boundary but representable: exact value, no saturation.
        let t = (u64::MAX - 1) / 3;
        assert_eq!(ideal_steps(t, 3, 1), t * 3 + intersect_epsilon(3, 1));
    }
}
