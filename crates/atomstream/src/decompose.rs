//! Integer ↔ atom-stream decomposition (paper §III-A, Fig 5).
//!
//! The magnitude of a value is split into N-bit atoms; zero atoms are
//! dropped. Each surviving atom carries its shift offset, the sign of the
//! originating value, and a `last` flag on the value's final atom.
//!
//! The worked example of Fig 5 — multiplying −11 by 13 with 2-bit atoms —
//! appears as a doctest on [`multiply_via_atoms`].

use crate::atom::{Atom, AtomBits};
use crate::error::AtomError;

/// Decomposes a *signed* value (a weight) into its non-zero atoms, ordered
/// from least- to most-significant shift. Returns an empty vector for zero.
///
/// # Errors
/// Returns [`AtomError::ValueTooWide`] when `|v|` needs more than
/// `value_bits` bits (the symmetric-quantized range is `±(2^{b-1}-1)`, so
/// magnitudes always fit `value_bits - 1` bits; we accept up to
/// `value_bits` to also cover unsigned inputs routed through here).
pub fn atomize_signed(v: i32, value_bits: u8, atom_bits: AtomBits) -> Result<Vec<Atom>, AtomError> {
    let mag = v.unsigned_abs();
    if value_bits < 32 && mag >= (1u32 << value_bits) {
        return Err(AtomError::ValueTooWide {
            value: v as i64,
            bits: value_bits,
        });
    }
    Ok(atomize_magnitude(mag, v < 0, atom_bits))
}

/// Decomposes an *unsigned* value (a post-ReLU activation) into its
/// non-zero atoms.
///
/// # Errors
/// Returns [`AtomError::NegativeUnsigned`] for negative input and
/// [`AtomError::ValueTooWide`] when the value exceeds `value_bits`.
pub fn atomize_unsigned(
    v: i32,
    value_bits: u8,
    atom_bits: AtomBits,
) -> Result<Vec<Atom>, AtomError> {
    if v < 0 {
        return Err(AtomError::NegativeUnsigned(v as i64));
    }
    if value_bits < 32 && (v as u32) >= (1u32 << value_bits) {
        return Err(AtomError::ValueTooWide {
            value: v as i64,
            bits: value_bits,
        });
    }
    Ok(atomize_magnitude(v as u32, false, atom_bits))
}

fn atomize_magnitude(mut mag: u32, negative: bool, atom_bits: AtomBits) -> Vec<Atom> {
    let mask = (1u32 << atom_bits.bits()) - 1;
    let mut atoms = Vec::new();
    let mut shift = 0u8;
    while mag != 0 {
        let a = mag & mask;
        if a != 0 {
            atoms.push(Atom {
                mag: a as u8,
                shift,
                negative,
                last: false,
            });
        }
        mag >>= atom_bits.bits();
        shift += atom_bits.bits();
    }
    if let Some(last) = atoms.last_mut() {
        last.last = true;
    }
    atoms
}

/// Reassembles a value from its atoms: `Σ ±mag·2^shift`.
pub fn recompose(atoms: &[Atom]) -> i64 {
    atoms.iter().map(Atom::term).sum()
}

/// Multiplies two integers through their atom streams — the 1-D convolution
/// of Fig 5. This is the scalar seed of the full condensed streaming
/// computation; [`crate::intersect`] generalizes it to whole tensors.
///
/// ```
/// use atomstream::atom::AtomBits;
/// use atomstream::decompose::multiply_via_atoms;
/// // Paper Fig 5: a 4-bit activation times an 8-bit weight, 2-bit atoms.
/// assert_eq!(multiply_via_atoms(13, -11, 4, 8, AtomBits::B2).unwrap(), -143);
/// ```
///
/// # Errors
/// Propagates atomization errors; `a` is treated as unsigned (activation)
/// and `w` as signed (weight).
pub fn multiply_via_atoms(
    a: i32,
    w: i32,
    a_bits: u8,
    w_bits: u8,
    atom_bits: AtomBits,
) -> Result<i64, AtomError> {
    let a_atoms = atomize_unsigned(a, a_bits, atom_bits)?;
    let w_atoms = atomize_signed(w, w_bits, atom_bits)?;
    let mut acc = 0i64;
    // Outer product of the two streams with proper shifting — equivalently
    // the sum over all steps of the 1-D convolution's intersection region.
    for wa in &w_atoms {
        for aa in &a_atoms {
            let p = (wa.mag as i64 * aa.mag as i64) << (wa.shift + aa.shift);
            acc += if wa.negative { -p } else { p };
        }
    }
    Ok(acc)
}

/// The number of 1-D convolution steps Fig 5 takes for two atom streams of
/// the given lengths: `len_a + len_w - 1` (each step slides the dynamic
/// stream by one atom).
pub fn conv1d_steps(len_a: usize, len_w: usize) -> usize {
    if len_a == 0 || len_w == 0 {
        0
    } else {
        len_a + len_w - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_29_decomposes_into_three_terms() {
        // §III-A: 29 (01_11_01) = {1·2^4, 3·2^2, 1·2^0}.
        let atoms = atomize_unsigned(29, 8, AtomBits::B2).unwrap();
        let terms: Vec<i64> = atoms.iter().map(Atom::term).collect();
        assert_eq!(terms, vec![1, 3 << 2, 1 << 4]);
        assert!(atoms.last().unwrap().last);
        assert!(atoms[..2].iter().all(|a| !a.last));
        assert_eq!(recompose(&atoms), 29);
    }

    #[test]
    fn fig5_example_minus_11_times_13() {
        // -11 = mag 1011 -> atoms (3, shift 0), (2, shift 2), both negative.
        let w = atomize_signed(-11, 8, AtomBits::B2).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].mag, w[0].shift, w[0].negative), (3, 0, true));
        assert_eq!((w[1].mag, w[1].shift, w[1].negative), (2, 2, true));
        // 13 = 1101 -> atoms (1, shift 0), (3, shift 2).
        let a = atomize_unsigned(13, 4, AtomBits::B2).unwrap();
        assert_eq!((a[0].mag, a[0].shift), (1, 0));
        assert_eq!((a[1].mag, a[1].shift), (3, 2));
        assert_eq!(
            multiply_via_atoms(13, -11, 4, 8, AtomBits::B2).unwrap(),
            -143
        );
        // Fig 5 runs five steps for streams of length 2 and 4 (dense atoms);
        // with zero atoms squeezed out both streams have 2 -> 3 steps.
        assert_eq!(conv1d_steps(2, 4), 5);
        assert_eq!(conv1d_steps(2, 2), 3);
    }

    #[test]
    fn zero_produces_empty_stream() {
        assert!(atomize_signed(0, 8, AtomBits::B2).unwrap().is_empty());
        assert!(atomize_unsigned(0, 8, AtomBits::B2).unwrap().is_empty());
        assert_eq!(recompose(&[]), 0);
        assert_eq!(conv1d_steps(0, 5), 0);
    }

    #[test]
    fn zero_atoms_are_squeezed() {
        // 0b0100_0001 = 65: atoms at shifts 0 and 6 only.
        let atoms = atomize_unsigned(65, 8, AtomBits::B2).unwrap();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].shift, 0);
        assert_eq!(atoms[1].shift, 6);
    }

    #[test]
    fn roundtrip_all_8bit_values() {
        for gran in [AtomBits::B1, AtomBits::B2, AtomBits::B3, AtomBits::B4] {
            for v in -127i32..=127 {
                let atoms = atomize_signed(v, 8, gran).unwrap();
                assert_eq!(recompose(&atoms), v as i64, "v={v} gran={gran}");
                // Exactly one last flag on non-empty streams.
                assert_eq!(atoms.iter().filter(|a| a.last).count(), usize::from(v != 0));
                // No zero atoms.
                assert!(atoms.iter().all(|a| a.mag > 0));
            }
        }
    }

    #[test]
    fn multiplication_matrix_exhaustive_small() {
        for a in 0i32..=15 {
            for w in -7i32..=7 {
                for gran in [AtomBits::B1, AtomBits::B2, AtomBits::B3] {
                    assert_eq!(
                        multiply_via_atoms(a, w, 4, 4, gran).unwrap(),
                        (a * w) as i64,
                        "a={a} w={w} gran={gran}"
                    );
                }
            }
        }
    }

    #[test]
    fn range_validation() {
        assert!(matches!(
            atomize_unsigned(16, 4, AtomBits::B2),
            Err(AtomError::ValueTooWide { .. })
        ));
        assert!(matches!(
            atomize_unsigned(-1, 4, AtomBits::B2),
            Err(AtomError::NegativeUnsigned(_))
        ));
        assert!(atomize_signed(-8, 4, AtomBits::B2).is_ok());
        assert!(matches!(
            atomize_signed(-17, 4, AtomBits::B2),
            Err(AtomError::ValueTooWide { .. })
        ));
    }

    #[test]
    fn shifts_stay_within_table_iv_range() {
        use crate::atom::shift_range;
        let legal = shift_range(8, AtomBits::B2);
        for v in 0..=255i32 {
            for a in atomize_unsigned(v, 8, AtomBits::B2).unwrap() {
                assert!(legal.contains(&a.shift));
            }
        }
    }
}
