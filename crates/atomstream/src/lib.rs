//! # atomstream — condensed streaming computation (CSC)
//!
//! The core algorithmic contribution of *Ristretto: An Atomized Processing
//! Architecture for Sparsity-Condensed Stream Flow in CNN* (MICRO 2022).
//!
//! The key idea: both high-level sparse convolution and low-level
//! mixed-precision integer multiplication are outer products between compact
//! streams of non-zero elements. An `m`-bit integer is a stream of
//! ⌈m/N⌉ N-bit *atoms*; multiplying two integers is a 1-D convolution of
//! their atom streams (paper Fig 5). A sparse convolution multiplies every
//! non-zero weight with every non-zero activation of a channel. Because
//! data reuse exists at both levels, the two merge into one dataflow:
//!
//! 1. **Flattening** ([`flatten`]) — feature-map tiles and kernels become
//!    compact 1-D value streams carrying coordinate metadata;
//! 2. **Compression** ([`compress`], [`decompose`]) — zero values *and*
//!    zero atoms are squeezed out, leaving atom streams with shift offsets,
//!    sign bits and last-atom flags;
//! 3. **Intersection** ([`intersect`]) — a 1-D convolution between the
//!    static weight atom stream and the sliding activation atom stream,
//!    with per-product alignment and metadata-directed accumulation.
//!
//! [`conv_csc`] assembles the full pipeline into a drop-in sparse
//! mixed-precision convolution that matches `qnn`'s dense reference
//! bit-exactly, and [`cycles`] provides the closed-form step count
//! (paper Eq 3–5) that drives Ristretto's load balancer.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod atom;
pub mod compress;
pub mod conv_csc;
pub mod cycles;
pub mod decompose;
pub mod error;
pub mod flatten;
pub mod intersect;
pub mod kernel;
pub mod stream;
pub mod wide;
pub mod wire;

/// Glob import of the commonly used items.
pub mod prelude {
    pub use crate::atom::{shift_range, Atom, AtomBits};
    pub use crate::compress::{compress_activations, compress_weights};
    pub use crate::conv_csc::{
        conv2d_csc, conv2d_csc_streams, conv2d_csc_streams_reference, conv2d_csc_streams_with,
        CscConfig, CscOutput, CscStats, WeightStreamSet,
    };
    pub use crate::cycles::{ideal_steps, intersect_epsilon, tile_cycles};
    pub use crate::decompose::{atomize_signed, atomize_unsigned, recompose};
    pub use crate::error::AtomError;
    pub use crate::flatten::{flatten_kernel_channel, flatten_tile, flatten_tile_into};
    pub use crate::intersect::{intersect, FullConvAcc, IntersectConfig, IntersectStats};
    pub use crate::kernel::{plan_group_geometry, CscScratch};
    pub use crate::stream::{ActivationStream, WeightStream};
    pub use crate::wire::{fnv1a_bytes, WireError, WireReader, WireWriter};
}
