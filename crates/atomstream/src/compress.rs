//! Compression: value streams → condensed atom streams
//! (phase 2 of the condensed streaming computation, paper §III-B / Fig 6).
//!
//! Squeezes zero atoms out of the flattened non-zero values, generating per
//! atom: shift offset, sign bit and last-atom flag. After this phase both
//! value-level and bit-level sparsity have been fully exploited.

use crate::atom::AtomBits;
use crate::decompose::{atomize_signed, atomize_unsigned};
use crate::error::AtomError;
use crate::flatten::{FlatActivation, FlatWeight};
use crate::stream::{ActEntry, ActivationStream, WeightEntry, WeightStream};

/// Compresses flattened activations into a condensed atom stream.
///
/// # Errors
/// Propagates [`AtomError::ValueTooWide`] / [`AtomError::NegativeUnsigned`]
/// for values that do not fit `a_bits` as unsigned integers.
pub fn compress_activations(
    flat: &[FlatActivation],
    a_bits: u8,
    atom_bits: AtomBits,
) -> Result<ActivationStream, AtomError> {
    let mut entries = Vec::new();
    for f in flat {
        for atom in atomize_unsigned(f.value, a_bits, atom_bits)? {
            entries.push(ActEntry {
                atom,
                x: f.x,
                y: f.y,
            });
        }
    }
    // Squeeze statistics: every value occupies `slots` atom positions in
    // the dense layout; whatever compression did not emit was a zero atom.
    let slots_total = flat.len() as u64 * atom_bits.slots(a_bits) as u64;
    obs::record(obs::Event::CompressActValues, flat.len() as u64);
    obs::record(obs::Event::CompressActAtoms, entries.len() as u64);
    obs::record(
        obs::Event::CompressActZeroAtomsSqueezed,
        slots_total.saturating_sub(entries.len() as u64),
    );
    Ok(ActivationStream::from_entries(entries))
}

/// Compresses flattened weights into a condensed atom stream in the
/// *shuffled* order of §IV-C2 (slice-grouped, channel-first).
///
/// # Errors
/// Propagates [`AtomError::ValueTooWide`] for weights that exceed `w_bits`.
pub fn compress_weights(
    flat: &[FlatWeight],
    w_bits: u8,
    atom_bits: AtomBits,
) -> Result<WeightStream, AtomError> {
    Ok(WeightStream::shuffled(weight_entries(
        flat, w_bits, atom_bits,
    )?))
}

/// Compresses flattened weights *without* the stream shuffle (naive value
/// order) — used to verify that atom order never changes results.
///
/// # Errors
/// Propagates [`AtomError::ValueTooWide`] for weights that exceed `w_bits`.
pub fn compress_weights_naive(
    flat: &[FlatWeight],
    w_bits: u8,
    atom_bits: AtomBits,
) -> Result<WeightStream, AtomError> {
    Ok(WeightStream::from_entries(weight_entries(
        flat, w_bits, atom_bits,
    )?))
}

fn weight_entries(
    flat: &[FlatWeight],
    w_bits: u8,
    atom_bits: AtomBits,
) -> Result<Vec<WeightEntry>, AtomError> {
    let mut entries = Vec::new();
    for f in flat {
        for atom in atomize_signed(f.value, w_bits, atom_bits)? {
            entries.push(WeightEntry {
                atom,
                x: f.x,
                y: f.y,
                out_ch: f.out_ch,
            });
        }
    }
    let slots_total = flat.len() as u64 * atom_bits.slots(w_bits) as u64;
    obs::record(obs::Event::CompressWeightValues, flat.len() as u64);
    obs::record(obs::Event::CompressWeightAtoms, entries.len() as u64);
    obs::record(
        obs::Event::CompressWeightZeroAtomsSqueezed,
        slots_total.saturating_sub(entries.len() as u64),
    );
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_compression_counts_atoms() {
        let flat = vec![
            FlatActivation {
                value: 29,
                x: 0,
                y: 0,
            }, // 3 atoms
            FlatActivation {
                value: 65,
                x: 1,
                y: 0,
            }, // 2 atoms (shifts 0, 6)
        ];
        let s = compress_activations(&flat, 8, AtomBits::B2).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.value_count(), 2);
        // Coordinates latch across all atoms of a value.
        assert!(s.entries()[..3].iter().all(|e| e.x == 0));
        assert!(s.entries()[3..].iter().all(|e| e.x == 1));
    }

    #[test]
    fn weight_compression_shuffles_by_slice() {
        let flat = vec![
            FlatWeight {
                value: 5,
                x: 0,
                y: 0,
                out_ch: 1,
            }, // atoms at shifts 0, 2
            FlatWeight {
                value: -4,
                x: 1,
                y: 0,
                out_ch: 0,
            }, // atom at shift 2
        ];
        let s = compress_weights(&flat, 4, AtomBits::B2).unwrap();
        let shifts: Vec<u8> = s.entries().iter().map(|e| e.atom.shift).collect();
        assert_eq!(shifts, vec![0, 2, 2]);
        let naive = compress_weights_naive(&flat, 4, AtomBits::B2).unwrap();
        let naive_shifts: Vec<u8> = naive.entries().iter().map(|e| e.atom.shift).collect();
        assert_eq!(naive_shifts, vec![0, 2, 2]);
        // Same multiset of entries either way.
        let mut a = s.entries().to_vec();
        let mut b = naive.entries().to_vec();
        let key = |e: &WeightEntry| (e.atom.shift, e.atom.mag, e.x, e.y, e.out_ch);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_streams() {
        assert!(compress_activations(&[], 8, AtomBits::B2)
            .unwrap()
            .is_empty());
        assert!(compress_weights(&[], 8, AtomBits::B2).unwrap().is_empty());
    }
}
