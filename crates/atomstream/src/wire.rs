//! Hand-rolled little-endian wire format primitives for compiled artifacts.
//!
//! This module is the byte-level foundation of the persisted
//! `CompiledNetwork` artifact format (see `ristretto-sim`'s `artifact`
//! module for the layout). It deliberately avoids any external
//! serialization dependency: every value is written little-endian through
//! [`WireWriter`] and read back through [`WireReader`], and every section
//! payload is guarded by the same FNV-1a 64-bit checksum the runtime
//! stream-integrity machinery uses ([`crate::stream`]).
//!
//! Section framing is `[name_len: u16][name bytes][payload_len: u64]
//! [payload bytes][fnv1a(payload): u64]`. A reader must name the section
//! it expects; a name mismatch, a short buffer, or a checksum mismatch
//! each produce a distinct [`WireError`] naming the offending section, so
//! corruption reports point at the damaged region rather than a generic
//! parse failure.

use crate::atom::{Atom, AtomBits};
use crate::conv_csc::WeightStreamSet;
use crate::error::AtomError;
use crate::stream::{WeightEntry, WeightStream};
use qnn::quant::BitWidth;
use std::fmt;

/// FNV-1a 64-bit offset basis (shared with the runtime stream checksums).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime (shared with the runtime stream checksums).
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash over a byte slice.
///
/// This is the section checksum of the artifact wire format and the
/// content hash behind the model cache key; it matches the per-byte
/// absorption the runtime stream checksums use.
#[must_use]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Typed decode failures for the artifact wire format.
///
/// Every variant names the section being decoded when the failure struck,
/// so a corrupted artifact report reads "section `layer0.streams`:
/// checksum mismatch" rather than a bare offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the requested value could be read.
    Truncated {
        /// Section being decoded when the buffer ran out.
        section: String,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The leading magic bytes did not match the expected tag.
    BadMagic {
        /// Magic bytes found at the head of the buffer.
        found: [u8; 8],
        /// Magic bytes the format requires.
        expected: [u8; 8],
    },
    /// The format version is not one this build can decode.
    VersionSkew {
        /// Version recorded in the artifact.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A section arrived out of order or under the wrong name.
    SectionMismatch {
        /// Section name the decoder expected next.
        expected: String,
        /// Section name found in the byte stream.
        found: String,
    },
    /// A section payload failed its FNV-1a checksum.
    ChecksumMismatch {
        /// Section whose payload was damaged.
        section: String,
        /// Checksum recorded in the artifact.
        expected: u64,
        /// Checksum recomputed over the payload bytes.
        actual: u64,
    },
    /// A section decoded structurally but carried an invalid value.
    Invalid {
        /// Section holding the invalid value.
        section: String,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// Bytes remained after the decoder consumed the full layout.
    TrailingBytes {
        /// Section (or scope) that finished with bytes left over.
        section: String,
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl WireError {
    /// The section name the error is attributed to, when one applies.
    #[must_use]
    pub fn section(&self) -> Option<&str> {
        match self {
            WireError::Truncated { section, .. }
            | WireError::ChecksumMismatch { section, .. }
            | WireError::Invalid { section, .. }
            | WireError::TrailingBytes { section, .. } => Some(section),
            WireError::SectionMismatch { expected, .. } => Some(expected),
            WireError::BadMagic { .. } | WireError::VersionSkew { .. } => None,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                section,
                needed,
                available,
            } => write!(
                f,
                "section `{section}`: truncated (needed {needed} bytes, {available} available)"
            ),
            WireError::BadMagic { found, expected } => write!(
                f,
                "bad magic {found:02x?} (expected {expected:02x?}): not a compiled-network artifact"
            ),
            WireError::VersionSkew { found, supported } => write!(
                f,
                "format version {found} is not supported (this build reads version {supported})"
            ),
            WireError::SectionMismatch { expected, found } => write!(
                f,
                "expected section `{expected}` but found `{found}`"
            ),
            WireError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "section `{section}`: checksum mismatch (recorded {expected:#018x}, recomputed {actual:#018x})"
            ),
            WireError::Invalid { section, detail } => {
                write!(f, "section `{section}`: invalid contents: {detail}")
            }
            WireError::TrailingBytes { section, remaining } => write!(
                f,
                "section `{section}`: {remaining} trailing bytes after decode"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian byte-stream writer with checksummed section framing.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Create an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `bool` as a single 0/1 byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string (`u16` length).
    ///
    /// # Panics
    /// Panics if the string is longer than `u16::MAX` bytes; artifact
    /// names are short identifiers, so this is a programming error.
    pub fn put_str(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("wire strings are short identifiers");
        self.put_u16(len);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes with no framing.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write a named, checksummed section.
    ///
    /// The closure fills a fresh payload writer; the payload is then
    /// framed as `[name_len: u16][name][payload_len: u64][payload]
    /// [fnv1a(payload): u64]`.
    pub fn section(&mut self, name: &str, fill: impl FnOnce(&mut WireWriter)) {
        let mut payload = WireWriter::new();
        fill(&mut payload);
        let payload = payload.into_bytes();
        self.put_str(name);
        self.put_u64(payload.len() as u64);
        let checksum = fnv1a_bytes(&payload);
        self.buf.extend_from_slice(&payload);
        self.put_u64(checksum);
    }

    /// Consume the writer and return the accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Little-endian byte-stream reader that mirrors [`WireWriter`].
///
/// Every read is bounds-checked and reports [`WireError::Truncated`] with
/// the current section label on underflow.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
    label: String,
}

impl<'a> WireReader<'a> {
    /// Wrap a byte slice; `label` names the enclosing scope for errors.
    #[must_use]
    pub fn new(buf: &'a [u8], label: &str) -> Self {
        Self {
            buf,
            pos: 0,
            label: label.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(WireError::Truncated {
                section: self.label.clone(),
                needed: n,
                available,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, WireError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `bool` written by [`WireWriter::put_bool`].
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Invalid {
                section: self.label.clone(),
                detail: format!("bool byte must be 0 or 1, found {other}"),
            }),
        }
    }

    /// Read a `u64` and convert to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Invalid {
            section: self.label.clone(),
            detail: format!("length {v} does not fit in usize"),
        })
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let len = usize::from(self.get_u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid {
            section: self.label.clone(),
            detail: "string is not valid UTF-8".to_string(),
        })
    }

    /// Read `n` raw bytes with no framing.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Open a named section written by [`WireWriter::section`].
    ///
    /// Verifies the section name and the payload checksum **before**
    /// handing back a sub-reader scoped to the payload, so a damaged
    /// section is reported against its own name and never partially
    /// decoded.
    pub fn section(&mut self, expected: &str) -> Result<WireReader<'a>, WireError> {
        let found = self.get_str()?;
        if found != expected {
            return Err(WireError::SectionMismatch {
                expected: expected.to_string(),
                found,
            });
        }
        let len = self.get_usize()?;
        let payload = {
            let available = self.buf.len() - self.pos;
            if available < len + 8 {
                return Err(WireError::Truncated {
                    section: expected.to_string(),
                    needed: len + 8,
                    available,
                });
            }
            let payload = &self.buf[self.pos..self.pos + len];
            self.pos += len;
            payload
        };
        let recorded = self.get_u64()?;
        let actual = fnv1a_bytes(payload);
        if recorded != actual {
            return Err(WireError::ChecksumMismatch {
                section: expected.to_string(),
                expected: recorded,
                actual,
            });
        }
        Ok(WireReader::new(payload, expected))
    }

    /// Assert the reader consumed every byte of its scope.
    pub fn finish(self) -> Result<(), WireError> {
        let remaining = self.buf.len() - self.pos;
        if remaining != 0 {
            return Err(WireError::TrailingBytes {
                section: self.label,
                remaining,
            });
        }
        Ok(())
    }

    /// Bytes left unconsumed in this reader's scope.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Encode a [`WeightStreamSet`] as a raw (unframed) wire payload.
///
/// The caller is expected to wrap the payload in a checksummed section;
/// the per-channel stream checksums from compile time are stored verbatim
/// so the decoder can verify each stream independently of the section
/// checksum.
pub fn write_weight_stream_set(w: &mut WireWriter, set: &WeightStreamSet) {
    w.put_u64(set.out_channels() as u64);
    w.put_u64(set.in_channels() as u64);
    w.put_u64(set.kernel() as u64);
    w.put_u8(set.w_bits().bits());
    w.put_u8(set.atom_bits().bits());
    for c in 0..set.in_channels() {
        let stream = set.stream(c);
        w.put_u64(stream.len() as u64);
        for e in stream.entries() {
            w.put_u8(e.atom.mag);
            w.put_u8(e.atom.shift);
            let flags = u8::from(e.atom.negative) | (u8::from(e.atom.last) << 1);
            w.put_u8(flags);
            w.put_u16(e.x);
            w.put_u16(e.y);
            w.put_u16(e.out_ch);
        }
        w.put_u64(set.checksum(c));
    }
}

/// Decode a [`WeightStreamSet`] written by [`write_weight_stream_set`].
///
/// Each channel's recorded checksum is re-verified against the decoded
/// entries via [`WeightStreamSet::from_parts`], so bit damage that
/// somehow survives the section checksum still surfaces as a typed
/// stream-integrity error.
pub fn read_weight_stream_set(r: &mut WireReader<'_>) -> Result<WeightStreamSet, WireError> {
    let section = r.label.clone();
    let invalid = |detail: String| WireError::Invalid {
        section: section.clone(),
        detail,
    };
    let out_channels = r.get_usize()?;
    let in_channels = r.get_usize()?;
    let kernel = r.get_usize()?;
    let w_bits = BitWidth::new(r.get_u8()?).map_err(|e| invalid(e.to_string()))?;
    let atom_bits = AtomBits::new(r.get_u8()?).map_err(|e| invalid(e.to_string()))?;
    let mut streams = Vec::with_capacity(in_channels);
    let mut checksums = Vec::with_capacity(in_channels);
    for _ in 0..in_channels {
        let len = r.get_usize()?;
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            let mag = r.get_u8()?;
            let shift = r.get_u8()?;
            let flags = r.get_u8()?;
            if flags & !0b11 != 0 {
                return Err(invalid(format!(
                    "atom flag byte {flags:#x} has unknown bits"
                )));
            }
            let x = r.get_u16()?;
            let y = r.get_u16()?;
            let out_ch = r.get_u16()?;
            entries.push(WeightEntry {
                atom: Atom {
                    mag,
                    shift,
                    negative: flags & 0b01 != 0,
                    last: flags & 0b10 != 0,
                },
                x,
                y,
                out_ch,
            });
        }
        streams.push(WeightStream::from_entries(entries));
        checksums.push(r.get_u64()?);
    }
    debug_assert_eq!(streams.len(), in_channels);
    WeightStreamSet::from_parts(streams, checksums, out_channels, kernel, w_bits, atom_bits)
        .map_err(|e: AtomError| invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn scalars_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(0xab);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_i32(-42);
        w.put_i64(i64::MIN);
        w.put_bool(true);
        w.put_bool(false);
        w.put_str("layer0.meta");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0xbeef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "layer0.meta");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_read_names_the_scope() {
        let mut r = WireReader::new(&[1, 2], "header");
        let err = r.get_u32().unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                section: "header".to_string(),
                needed: 4,
                available: 2,
            }
        );
    }

    #[test]
    fn section_round_trips_and_checks_name() {
        let mut w = WireWriter::new();
        w.section("alpha", |s| s.put_u64(7));
        w.section("beta", |s| s.put_str("x"));
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes, "artifact");
        let mut alpha = r.section("alpha").unwrap();
        assert_eq!(alpha.get_u64().unwrap(), 7);
        alpha.finish().unwrap();
        let err = r.section("gamma").unwrap_err();
        assert_eq!(
            err,
            WireError::SectionMismatch {
                expected: "gamma".to_string(),
                found: "beta".to_string(),
            }
        );
    }

    #[test]
    fn every_payload_bit_flip_is_detected() {
        let mut w = WireWriter::new();
        w.section("alpha", |s| {
            s.put_u64(0x1122_3344_5566_7788);
            s.put_str("payload");
        });
        let clean = w.into_bytes();
        for i in 0..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[i] ^= 1 << bit;
                let mut r = WireReader::new(&dirty, "artifact");
                let outcome = r.section("alpha").map(|_| ());
                assert!(
                    outcome.is_err(),
                    "flip at byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut w = WireWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, "scope");
        assert_eq!(r.get_u8().unwrap(), 1);
        let err = r.finish().unwrap_err();
        assert_eq!(
            err,
            WireError::TrailingBytes {
                section: "scope".to_string(),
                remaining: 1,
            }
        );
    }
}
