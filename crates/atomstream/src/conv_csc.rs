//! Full mixed-precision sparse convolution via condensed streaming
//! computation — the end-to-end pipeline of Fig 6, bit-exact against the
//! dense reference convolution of [`qnn::conv::conv2d`].
//!
//! Per input channel the kernels' channel slice is flattened and compressed
//! once (offline in hardware); the feature map channel is tiled, each tile
//! flattened + compressed (the Atomizer's job) and intersected against the
//! static weight stream; output coordinates follow Eq 1/2, and the strided
//! output is extracted from full-convolution space at the end.

use crate::atom::AtomBits;
use crate::compress::{compress_activations, compress_weights};
use crate::error::AtomError;
use crate::flatten::{flatten_kernel_channel, flatten_tile, flatten_tile_into};
use crate::intersect::{intersect, FullConvAcc, IntersectConfig, IntersectStats};
use crate::kernel::{intersect_planned, CscScratch, WorkSlot};
use crate::stream::WeightStream;
use qnn::conv::ConvGeometry;
use qnn::error::QnnError;
use qnn::quant::BitWidth;
use qnn::tensor::{AccTensor3, Tensor3, Tensor4};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of a CSC convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CscConfig {
    /// Atom granularity (2-bit is the paper's default).
    pub atom_bits: AtomBits,
    /// Atom multipliers per compute tile (`N`, the static stream length).
    pub multipliers: usize,
    /// Feature-map tile height.
    pub tile_h: usize,
    /// Feature-map tile width.
    pub tile_w: usize,
}

impl Default for CscConfig {
    /// The paper's default: 2-bit atoms, 32 multipliers, 8×8 tiles.
    fn default() -> Self {
        Self {
            atom_bits: AtomBits::B2,
            multipliers: 32,
            tile_h: 8,
            tile_w: 8,
        }
    }
}

/// Aggregate work counters for a whole CSC convolution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CscStats {
    /// Intersection counters summed over all channels and tiles.
    pub intersect: IntersectStats,
    /// Non-zero activation values streamed.
    pub act_values: u64,
    /// Non-zero activation atoms streamed (`T` summed over channels).
    pub act_atoms: u64,
    /// Non-zero weight atoms held static (`S` summed over channels).
    pub weight_atoms: u64,
    /// Number of `(channel, tile)` intersections executed.
    pub tiles_processed: u64,
}

impl CscStats {
    /// Accumulates another convolution's counters into this one.
    pub fn merge(&mut self, other: &CscStats) {
        self.intersect.merge(&other.intersect);
        self.act_values += other.act_values;
        self.act_atoms += other.act_atoms;
        self.weight_atoms += other.weight_atoms;
        self.tiles_processed += other.tiles_processed;
    }
}

/// Result of a CSC convolution: the output accumulator plus work counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CscOutput {
    /// Convolution output, identical to the dense reference.
    pub output: AccTensor3,
    /// Work counters.
    pub stats: CscStats,
}

/// A layer's static weight side, compiled once and shared across inputs.
///
/// The paper's weight stream is *static* (§III, Fig 5): kernels are
/// flattened and compressed offline, then intersected against each input's
/// sliding activation stream. This type captures exactly that offline
/// artifact — one shuffled [`WeightStream`] per input channel — so repeated
/// inference amortizes the flatten + compress + shuffle work.
///
/// ```
/// use atomstream::atom::AtomBits;
/// use atomstream::conv_csc::WeightStreamSet;
/// use qnn::quant::BitWidth;
/// use qnn::tensor::Tensor4;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = Tensor4::from_vec(1, 1, 2, 2, vec![1, -2, 0, 3])?;
/// let set = WeightStreamSet::compile(&k, BitWidth::W4, AtomBits::B2)?;
/// assert_eq!(set.in_channels(), 1);
/// assert!(set.total_atoms() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightStreamSet {
    streams: Vec<WeightStream>,
    /// Per-channel FNV-1a digests recorded at compile time; the online
    /// detection layer re-hashes each stream before intersection and
    /// rejects any channel whose bits changed since compilation.
    checksums: Vec<u64>,
    out_channels: usize,
    in_channels: usize,
    kernel: usize,
    w_bits: BitWidth,
    atom_bits: AtomBits,
}

impl WeightStreamSet {
    /// Flattens and compresses every input channel's kernel slices into
    /// static shuffled weight streams (the compile phase).
    ///
    /// # Errors
    /// Rejects non-square kernels ([`AtomError::TileShapeMismatch`]) and
    /// weights that do not fit the declared `w_bits`.
    pub fn compile(
        kernels: &Tensor4,
        w_bits: BitWidth,
        atom_bits: AtomBits,
    ) -> Result<Self, AtomError> {
        let (o, i, kh, kw) = kernels.shape();
        if kh != kw {
            return Err(AtomError::TileShapeMismatch {
                expected: (kh, kh),
                actual: (kh, kw),
            });
        }
        let streams: Vec<WeightStream> = (0..i)
            .into_par_iter()
            .map(|ci| {
                let w_flat = flatten_kernel_channel(kernels, ci)?;
                compress_weights(&w_flat, w_bits.bits(), atom_bits)
            })
            .collect::<Result<_, _>>()?;
        let checksums = streams.iter().map(WeightStream::checksum).collect();
        Ok(Self {
            streams,
            checksums,
            out_channels: o,
            in_channels: i,
            kernel: kh,
            w_bits,
            atom_bits,
        })
    }

    /// Reassembles a compiled set from externally stored parts (the
    /// artifact deserialization path).
    ///
    /// The recorded per-channel digests are re-verified against the
    /// reconstructed streams before the set is accepted, so a persisted
    /// artifact whose stream bytes drifted from its recorded checksums is
    /// rejected with the same typed error the online integrity monitor
    /// raises.
    ///
    /// # Errors
    /// Returns [`AtomError::StreamChecksumMismatch`] naming the first
    /// channel whose recomputed digest disagrees with the recorded one.
    ///
    /// # Panics
    /// Panics if `checksums` and `streams` differ in length; callers
    /// reconstruct both from the same channel count.
    pub fn from_parts(
        streams: Vec<WeightStream>,
        checksums: Vec<u64>,
        out_channels: usize,
        kernel: usize,
        w_bits: BitWidth,
        atom_bits: AtomBits,
    ) -> Result<Self, AtomError> {
        assert_eq!(
            streams.len(),
            checksums.len(),
            "one recorded checksum per stream"
        );
        let in_channels = streams.len();
        let set = Self {
            streams,
            checksums,
            out_channels,
            in_channels,
            kernel,
            w_bits,
            atom_bits,
        };
        for channel in 0..set.in_channels {
            set.verify_channel(channel)?;
        }
        Ok(set)
    }

    /// The per-input-channel static streams, in channel order.
    pub fn streams(&self) -> &[WeightStream] {
        &self.streams
    }

    /// The static stream for one input channel.
    pub fn stream(&self, channel: usize) -> &WeightStream {
        &self.streams[channel]
    }

    /// Output channels covered by each stream.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Number of input channels (= number of streams).
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Square kernel extent.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Declared weight bit-width the streams were compiled with.
    pub fn w_bits(&self) -> BitWidth {
        self.w_bits
    }

    /// Atom granularity the streams were compiled with.
    pub fn atom_bits(&self) -> AtomBits {
        self.atom_bits
    }

    /// Total non-zero weight atoms across all channels (`S` summed).
    pub fn total_atoms(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Non-zero weight atoms in one channel's stream.
    pub fn atoms(&self, channel: usize) -> u64 {
        self.streams[channel].len() as u64
    }

    /// The compile-time FNV-1a digest for one channel's stream.
    ///
    /// # Panics
    /// Panics if `channel` is out of range.
    pub fn checksum(&self, channel: usize) -> u64 {
        self.checksums[channel]
    }

    /// Re-hashes one channel's stream and compares it against the digest
    /// recorded at compile time — the always-on integrity monitor the run
    /// paths invoke before intersecting a channel.
    ///
    /// # Errors
    /// Returns [`AtomError::StreamChecksumMismatch`] naming the channel and
    /// both digests when the stream's bits changed since compilation.
    ///
    /// # Panics
    /// Panics if `channel` is out of range.
    pub fn verify_channel(&self, channel: usize) -> Result<(), AtomError> {
        let actual = self.streams[channel].checksum();
        let expected = self.checksums[channel];
        if actual != expected {
            return Err(AtomError::StreamChecksumMismatch {
                channel,
                expected,
                actual,
            });
        }
        Ok(())
    }
}

/// Runs a sparse mixed-precision convolution through the CSC pipeline.
///
/// `a_bits`/`w_bits` declare the quantized widths of activations and
/// weights; the result is bit-exact with [`qnn::conv::conv2d`] on the same
/// inputs for every combination of widths, granularity, stride and padding.
///
/// ```
/// use atomstream::conv_csc::{conv2d_csc, CscConfig};
/// use qnn::conv::{conv2d, ConvGeometry};
/// use qnn::quant::BitWidth;
/// use qnn::tensor::{Tensor3, Tensor4};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fmap = Tensor3::from_vec(1, 3, 3, vec![1, 0, 2, 0, 3, 0, 4, 0, 5])?;
/// let k = Tensor4::from_vec(1, 1, 2, 2, vec![1, -2, 0, 3])?;
/// let geom = ConvGeometry::default();
/// let csc = conv2d_csc(&fmap, &k, geom, BitWidth::W4, BitWidth::W4, &CscConfig::default())?;
/// assert_eq!(csc.output, conv2d(&fmap, &k, geom)?);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Returns geometry errors from the `qnn` substrate (channel mismatch,
/// kernel larger than padded input) and atomization errors when values do
/// not fit the declared widths.
pub fn conv2d_csc(
    fmap: &Tensor3,
    kernels: &Tensor4,
    geom: ConvGeometry,
    a_bits: BitWidth,
    w_bits: BitWidth,
    cfg: &CscConfig,
) -> Result<CscOutput, AtomError> {
    let weights = WeightStreamSet::compile(kernels, w_bits, cfg.atom_bits)?;
    conv2d_csc_streams(fmap, &weights, geom, a_bits, cfg)
}

/// Runs the per-input half of a CSC convolution against precompiled weight
/// streams (the run phase of the compile/run split).
///
/// Only activation-side work happens here — tiling, flattening, zero-atom
/// squeezing and the stream intersections. [`conv2d_csc`] is exactly
/// [`WeightStreamSet::compile`] followed by this function, so both paths
/// produce byte-identical outputs and [`CscStats`].
///
/// ```
/// use atomstream::atom::AtomBits;
/// use atomstream::conv_csc::{conv2d_csc, conv2d_csc_streams, CscConfig, WeightStreamSet};
/// use qnn::conv::ConvGeometry;
/// use qnn::quant::BitWidth;
/// use qnn::tensor::{Tensor3, Tensor4};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fmap = Tensor3::from_vec(1, 3, 3, vec![1, 0, 2, 0, 3, 0, 4, 0, 5])?;
/// let k = Tensor4::from_vec(1, 1, 2, 2, vec![1, -2, 0, 3])?;
/// let (geom, cfg) = (ConvGeometry::default(), CscConfig::default());
/// let weights = WeightStreamSet::compile(&k, BitWidth::W4, cfg.atom_bits)?;
/// let run = conv2d_csc_streams(&fmap, &weights, geom, BitWidth::W4, &cfg)?;
/// let direct = conv2d_csc(&fmap, &k, geom, BitWidth::W4, BitWidth::W4, &cfg)?;
/// assert_eq!(run, direct);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Returns [`AtomError::GranularityMismatch`] when `cfg.atom_bits` differs
/// from the granularity the streams were compiled with, plus the geometry
/// and atomization errors of [`conv2d_csc`].
pub fn conv2d_csc_streams(
    fmap: &Tensor3,
    weights: &WeightStreamSet,
    geom: ConvGeometry,
    a_bits: BitWidth,
    cfg: &CscConfig,
) -> Result<CscOutput, AtomError> {
    conv2d_csc_streams_with(fmap, weights, geom, a_bits, cfg, &CscScratch::new())
}

/// Validated run-phase dimensions shared by every kernel variant:
/// `(c, h, w, o, k, out_h, out_w)`.
type RunDims = (usize, usize, usize, usize, usize, usize, usize);

/// Validates the run-phase inputs shared by every kernel variant and
/// returns `(c, h, w, o, k, out_h, out_w)`.
fn validate_run(
    fmap: &Tensor3,
    weights: &WeightStreamSet,
    geom: ConvGeometry,
    cfg: &CscConfig,
) -> Result<RunDims, AtomError> {
    let (c, h, w) = fmap.shape();
    let (o, i, k) = (
        weights.out_channels(),
        weights.in_channels(),
        weights.kernel(),
    );
    if c != i {
        return Err(QnnError::ChannelMismatch { fmap: c, kernel: i }.into());
    }
    if cfg.atom_bits != weights.atom_bits() {
        return Err(AtomError::GranularityMismatch {
            compiled: weights.atom_bits().bits(),
            requested: cfg.atom_bits.bits(),
        });
    }
    let out_h = geom.out_extent(h, k)?;
    let out_w = geom.out_extent(w, k)?;
    if cfg.tile_h == 0 || cfg.tile_w == 0 {
        return Err(QnnError::EmptyDimension("tile extent").into());
    }
    Ok((c, h, w, o, k, out_h, out_w))
}

/// The production run phase: [`conv2d_csc_streams`] with an explicit,
/// reusable [`CscScratch`] arena.
///
/// Retaining the arena across calls (one arena per layer, as the inference
/// engine's `Session` does) amortizes weight-plan compilation and makes
/// steady-state inference allocate zero accumulator planes per input; see
/// [`CscScratch`]. Results — output, [`CscStats`] and recorded
/// observability events — are byte-identical to
/// [`conv2d_csc_streams_reference`] on every input, with any arena state.
///
/// # Errors
/// Exactly the error surface of [`conv2d_csc_streams`].
pub fn conv2d_csc_streams_with(
    fmap: &Tensor3,
    weights: &WeightStreamSet,
    geom: ConvGeometry,
    a_bits: BitWidth,
    cfg: &CscConfig,
    scratch: &CscScratch,
) -> Result<CscOutput, AtomError> {
    let _span = obs::span("csc.conv2d");
    let (c, h, w, o, k, out_h, out_w) = validate_run(fmap, weights, geom, cfg)?;
    let icfg = IntersectConfig {
        multipliers: cfg.multipliers,
    };

    // Input channels are independent until the final accumulation, so fan
    // them out: each channel intersects into its own checked-out scratch
    // accumulator, merged afterwards in channel order. i64 plane addition
    // commutes, so the merged result is bit-identical to the sequential
    // single-accumulator path regardless of the thread count.
    let per_channel: Vec<Result<(Option<WorkSlot>, CscStats), AtomError>> = (0..c)
        .into_par_iter()
        .map(|ci| {
            let mut stats = CscStats::default();
            // Online integrity monitor: reject a weight stream whose bits
            // changed since compilation before it can pollute the
            // accumulate buffer.
            weights.verify_channel(ci)?;
            // The static stream was compiled offline; only its size is
            // accounted here so stats match the compile-inline path.
            let w_stream = weights.stream(ci);
            stats.weight_atoms += w_stream.len() as u64;
            if w_stream.is_empty() {
                return Ok((None, stats));
            }

            // Pre-intersection filter, activation side: one pass over the
            // channel plane yields the per-tile occupancy bitmap. An
            // entirely zero channel is skipped before any accumulator is
            // even checked out (merging its zero planes would be the
            // identity).
            let mut slot = scratch.checkout(o, h, w, k)?;
            slot.occ
                .scan(fmap.channel(ci), h, w, cfg.tile_h, cfg.tile_w);
            if slot.occ.total() == 0 {
                scratch.checkin(slot);
                return Ok((None, stats));
            }

            // Static side: the channel's weight stream compiled into (or
            // fetched from) the plan cache, keyed by its checksum so the
            // verified bits and the executed plan can never diverge.
            let (fh, fw) = slot.acc.plane_shape();
            let plan_slot = scratch.plan_slot(ci);
            let mut plan_guard = plan_slot.lock().expect("plan slot lock");
            let plan = plan_guard.prepare(w_stream, weights.checksum(ci), k, o, fh, fw)?;
            plan.planes_into(&mut slot.dirty);

            // Online phase: walk only the occupied tiles; the Atomizer
            // squeezes zero atoms out of each tile's non-zero activations
            // on the fly, into reused scratch buffers.
            for (ty, y0) in (0..h).step_by(cfg.tile_h).enumerate() {
                for (tx, x0) in (0..w).step_by(cfg.tile_w).enumerate() {
                    if !slot.occ.occupied(ty, tx) {
                        continue;
                    }
                    flatten_tile_into(fmap, ci, y0, x0, cfg.tile_h, cfg.tile_w, &mut slot.flat);
                    let a_stream = compress_activations(&slot.flat, a_bits.bits(), cfg.atom_bits)?;
                    stats.act_values += a_stream.value_count() as u64;
                    stats.act_atoms += a_stream.len() as u64;
                    stats.tiles_processed += 1;
                    let s = intersect_planned(
                        plan,
                        &a_stream,
                        icfg,
                        &mut slot.acc,
                        y0,
                        x0,
                        &mut slot.folded,
                    );
                    stats.intersect.merge(&s);
                }
            }
            drop(plan_guard);
            Ok((Some(slot), stats))
        })
        .collect();

    // Merge in channel order into the first non-empty channel's slot —
    // plane-granular, so only the planes actually written move.
    let mut stats = CscStats::default();
    let mut base: Option<WorkSlot> = None;
    for result in per_channel {
        let (slot, channel_stats) = result?;
        stats.merge(&channel_stats);
        if let Some(slot) = slot {
            match base.as_mut() {
                None => base = Some(slot),
                Some(b) => {
                    b.acc.merge_planes_from(&slot.acc, &slot.dirty);
                    b.dirty.extend_from_slice(&slot.dirty);
                    scratch.checkin(slot);
                }
            }
        }
    }

    let output = match &base {
        Some(b) => b.acc.extract(geom, out_h, out_w)?,
        None => AccTensor3::zeros(o, out_h, out_w)?,
    };
    if let Some(b) = base {
        scratch.checkin(b);
    }
    Ok(CscOutput { output, stats })
}

/// The reference run phase: the straight-line value-major kernel
/// ([`intersect`]) with a fresh accumulator per channel and no
/// pre-intersection filtering.
///
/// Kept verbatim as the differential oracle's "before" side: the
/// production path ([`conv2d_csc_streams_with`]) must be byte-identical to
/// this function — output, stats and recorded observability events — on
/// every input, which `repro diffcheck` and the determinism suites verify.
/// It is also the baseline the `BENCH_*.json` trajectory measures speedups
/// against.
///
/// # Errors
/// Exactly the error surface of [`conv2d_csc_streams`].
pub fn conv2d_csc_streams_reference(
    fmap: &Tensor3,
    weights: &WeightStreamSet,
    geom: ConvGeometry,
    a_bits: BitWidth,
    cfg: &CscConfig,
) -> Result<CscOutput, AtomError> {
    let _span = obs::span("csc.conv2d");
    let (c, h, w, o, k, out_h, out_w) = validate_run(fmap, weights, geom, cfg)?;
    let icfg = IntersectConfig {
        multipliers: cfg.multipliers,
    };

    // Per-channel fan-out, fresh accumulators, full-plane merge: the
    // original kernel structure.
    let per_channel: Vec<Result<(Option<FullConvAcc>, CscStats), AtomError>> = (0..c)
        .into_par_iter()
        .map(|ci| {
            let mut stats = CscStats::default();
            weights.verify_channel(ci)?;
            let w_stream = weights.stream(ci);
            stats.weight_atoms += w_stream.len() as u64;
            if w_stream.is_empty() {
                return Ok((None, stats));
            }

            let mut acc = FullConvAcc::new(o, h, w, k)?;
            for y0 in (0..h).step_by(cfg.tile_h) {
                for x0 in (0..w).step_by(cfg.tile_w) {
                    let a_flat = flatten_tile(fmap, ci, y0, x0, cfg.tile_h, cfg.tile_w);
                    if a_flat.is_empty() {
                        continue;
                    }
                    let a_stream = compress_activations(&a_flat, a_bits.bits(), cfg.atom_bits)?;
                    stats.act_values += a_stream.value_count() as u64;
                    stats.act_atoms += a_stream.len() as u64;
                    stats.tiles_processed += 1;
                    let s = intersect(w_stream, &a_stream, icfg, &mut acc, y0, x0)?;
                    stats.intersect.merge(&s);
                }
            }
            Ok((Some(acc), stats))
        })
        .collect();

    let mut acc = FullConvAcc::new(o, h, w, k)?;
    let mut stats = CscStats::default();
    for result in per_channel {
        let (channel_acc, channel_stats) = result?;
        if let Some(channel_acc) = channel_acc {
            acc.merge(&channel_acc);
        }
        stats.merge(&channel_stats);
    }

    let output = acc.extract(geom, out_h, out_w)?;
    Ok(CscOutput { output, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::conv::conv2d;

    fn check_against_dense(
        fmap: &Tensor3,
        kernels: &Tensor4,
        geom: ConvGeometry,
        a_bits: BitWidth,
        w_bits: BitWidth,
        cfg: &CscConfig,
    ) -> CscStats {
        let dense = conv2d(fmap, kernels, geom).expect("dense conv");
        let csc = conv2d_csc(fmap, kernels, geom, a_bits, w_bits, cfg).expect("csc conv");
        assert_eq!(csc.output, dense);
        csc.stats
    }

    #[test]
    fn fig6_style_example() {
        // 8-bit 2x2 feature map tile convolved with two 4-bit 2x2 kernels.
        let fmap = Tensor3::from_vec(1, 2, 2, vec![29, 0, 13, 200]).unwrap();
        let kernels = Tensor4::from_vec(2, 1, 2, 2, vec![5, 0, -3, 1, 0, 7, -7, 2]).unwrap();
        let geom = ConvGeometry::unit_stride(1);
        let stats = check_against_dense(
            &fmap,
            &kernels,
            geom,
            BitWidth::W8,
            BitWidth::W4,
            &CscConfig::default(),
        );
        assert!(stats.act_atoms > 0 && stats.weight_atoms > 0);
        // Zero value at (1,0) contributes no atoms: 29 (3 atoms) + 13 (2) +
        // 200 = 0b11001000 (2 atoms) = 7.
        assert_eq!(stats.act_atoms, 7);
    }

    #[test]
    fn multi_channel_strided_padded() {
        let fmap = Tensor3::from_fn(3, 6, 5, |c, y, x| {
            if (c + 2 * y + x) % 3 == 0 {
                ((c * 31 + y * 7 + x * 13) % 255) as i32
            } else {
                0
            }
        })
        .unwrap();
        let kernels = Tensor4::from_fn(4, 3, 3, 3, |o, i, ky, kx| {
            let v = (o * 17 + i * 5 + ky * 3 + kx) as i32 % 15 - 7;
            if v % 4 == 0 {
                0
            } else {
                v
            }
        })
        .unwrap();
        for stride in [1usize, 2] {
            for pad in [0usize, 1, 2] {
                let geom = ConvGeometry::new(stride, pad).unwrap();
                check_against_dense(
                    &fmap,
                    &kernels,
                    geom,
                    BitWidth::W8,
                    BitWidth::W4,
                    &CscConfig {
                        tile_h: 3,
                        tile_w: 2,
                        ..CscConfig::default()
                    },
                );
            }
        }
    }

    #[test]
    fn all_granularities_and_widths() {
        let fmap = Tensor3::from_vec(
            2,
            3,
            3,
            vec![
                3, 0, 1, 0, 2, 0, 1, 0, 3, //
                0, 1, 0, 2, 0, 3, 0, 1, 0,
            ],
        )
        .unwrap();
        let kernels = Tensor4::from_vec(
            2,
            2,
            2,
            2,
            vec![1, -1, 0, 1, -1, 0, 1, 0, 0, 1, -1, 1, 1, 0, 0, -1],
        )
        .unwrap();
        for gran in [AtomBits::B1, AtomBits::B2, AtomBits::B3] {
            for (ab, wb) in [
                (BitWidth::W2, BitWidth::W2),
                (BitWidth::W4, BitWidth::W2),
                (BitWidth::W8, BitWidth::W8),
            ] {
                let cfg = CscConfig {
                    atom_bits: gran,
                    multipliers: 4,
                    tile_h: 2,
                    tile_w: 2,
                };
                check_against_dense(&fmap, &kernels, ConvGeometry::default(), ab, wb, &cfg);
            }
        }
    }

    #[test]
    fn tile_shape_never_changes_result() {
        let fmap = Tensor3::from_fn(2, 7, 9, |c, y, x| ((c + y * x) % 5) as i32).unwrap();
        let kernels = Tensor4::from_fn(3, 2, 3, 3, |o, i, ky, kx| {
            ((o + i + ky + kx) % 7) as i32 - 3
        })
        .unwrap();
        let geom = ConvGeometry::unit_stride(1);
        let reference = conv2d(&fmap, &kernels, geom).unwrap();
        for (th, tw) in [(1, 1), (2, 3), (7, 9), (4, 4), (16, 16)] {
            let cfg = CscConfig {
                tile_h: th,
                tile_w: tw,
                ..CscConfig::default()
            };
            let out = conv2d_csc(&fmap, &kernels, geom, BitWidth::W4, BitWidth::W4, &cfg)
                .unwrap()
                .output;
            assert_eq!(out, reference, "tile {th}x{tw}");
        }
    }

    #[test]
    fn stats_step_count_obeys_eq3_per_tile() {
        // Single channel, one tile covering everything: steps should equal
        // ideal_steps(t, S, N).
        let fmap = Tensor3::from_vec(1, 2, 2, vec![3, 1, 0, 2]).unwrap();
        let kernels = Tensor4::from_vec(1, 1, 2, 2, vec![1, 2, 3, 0]).unwrap();
        let cfg = CscConfig {
            multipliers: 2,
            tile_h: 2,
            tile_w: 2,
            ..CscConfig::default()
        };
        let csc = conv2d_csc(
            &fmap,
            &kernels,
            ConvGeometry::unit_stride(1),
            BitWidth::W2,
            BitWidth::W2,
            &cfg,
        )
        .unwrap();
        let t = csc.stats.act_atoms;
        let s = csc.stats.weight_atoms;
        assert_eq!(
            csc.stats.intersect.steps,
            crate::cycles::ideal_steps(t, s, 2)
        );
    }

    #[test]
    fn precompiled_streams_match_direct_path() {
        let fmap = Tensor3::from_fn(2, 5, 5, |c, y, x| ((c + y * 2 + x) % 4) as i32).unwrap();
        let kernels = Tensor4::from_fn(3, 2, 3, 3, |o, i, ky, kx| {
            ((o + i + ky + kx) % 5) as i32 - 2
        })
        .unwrap();
        let geom = ConvGeometry::unit_stride(1);
        let cfg = CscConfig {
            tile_h: 3,
            tile_w: 3,
            ..CscConfig::default()
        };
        let weights = WeightStreamSet::compile(&kernels, BitWidth::W4, cfg.atom_bits).unwrap();
        assert_eq!(weights.in_channels(), 2);
        assert_eq!(weights.out_channels(), 3);
        assert_eq!(weights.kernel(), 3);
        assert_eq!(weights.w_bits(), BitWidth::W4);
        let direct = conv2d_csc(&fmap, &kernels, geom, BitWidth::W8, BitWidth::W4, &cfg).unwrap();
        let via_streams = conv2d_csc_streams(&fmap, &weights, geom, BitWidth::W8, &cfg).unwrap();
        assert_eq!(via_streams, direct);
        assert_eq!(weights.total_atoms(), direct.stats.weight_atoms);
        assert_eq!(
            weights.atoms(0) + weights.atoms(1),
            direct.stats.weight_atoms
        );
    }

    #[test]
    fn compile_records_verifiable_checksums() {
        let kernels = Tensor4::from_fn(2, 3, 3, 3, |o, i, ky, kx| {
            ((o * 7 + i * 3 + ky + kx) % 5) as i32 - 2
        })
        .unwrap();
        let weights = WeightStreamSet::compile(&kernels, BitWidth::W4, AtomBits::B2).unwrap();
        for ci in 0..3 {
            assert_eq!(weights.checksum(ci), weights.stream(ci).checksum());
            weights.verify_channel(ci).unwrap();
        }
    }

    #[test]
    fn corrupted_stream_fails_verification_and_run() {
        let fmap = Tensor3::from_fn(2, 4, 4, |c, y, x| ((c + y + x) % 3) as i32).unwrap();
        let kernels = Tensor4::from_fn(2, 2, 2, 2, |o, i, ky, kx| {
            ((o + i + ky + kx) % 3) as i32 - 1
        })
        .unwrap();
        let mut weights = WeightStreamSet::compile(&kernels, BitWidth::W4, AtomBits::B2).unwrap();
        // Corrupt one entry's magnitude in channel 1, exactly as the fault
        // injector's weight-stream model does.
        let mut entries = weights.streams[1].entries().to_vec();
        entries[0].atom.mag ^= 1;
        weights.streams[1] = WeightStream::from_entries(entries);
        assert!(weights.verify_channel(0).is_ok());
        let err = weights.verify_channel(1).unwrap_err();
        assert!(matches!(
            err,
            AtomError::StreamChecksumMismatch { channel: 1, .. }
        ));
        let run = conv2d_csc_streams(
            &fmap,
            &weights,
            ConvGeometry::default(),
            BitWidth::W4,
            &CscConfig::default(),
        );
        assert!(matches!(
            run,
            Err(AtomError::StreamChecksumMismatch { channel: 1, .. })
        ));
    }

    #[test]
    fn granularity_mismatch_is_rejected() {
        let fmap = Tensor3::from_vec(1, 2, 2, vec![1, 0, 2, 3]).unwrap();
        let kernels = Tensor4::from_vec(1, 1, 2, 2, vec![1, -1, 0, 2]).unwrap();
        let weights = WeightStreamSet::compile(&kernels, BitWidth::W4, AtomBits::B1).unwrap();
        let cfg = CscConfig::default(); // B2 atoms
        assert!(matches!(
            conv2d_csc_streams(&fmap, &weights, ConvGeometry::default(), BitWidth::W4, &cfg),
            Err(AtomError::GranularityMismatch {
                compiled: 1,
                requested: 2
            })
        ));
    }

    #[test]
    fn rejects_non_square_kernels_and_channel_mismatch() {
        let fmap = Tensor3::zeros(2, 4, 4).unwrap();
        let bad_k = Tensor4::zeros(1, 2, 2, 3).unwrap();
        assert!(matches!(
            conv2d_csc(
                &fmap,
                &bad_k,
                ConvGeometry::default(),
                BitWidth::W4,
                BitWidth::W4,
                &CscConfig::default()
            ),
            Err(AtomError::TileShapeMismatch { .. })
        ));
        let mismatch = Tensor4::zeros(1, 3, 2, 2).unwrap();
        assert!(conv2d_csc(
            &fmap,
            &mismatch,
            ConvGeometry::default(),
            BitWidth::W4,
            BitWidth::W4,
            &CscConfig::default()
        )
        .is_err());
    }
}
