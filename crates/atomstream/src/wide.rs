//! 16-bit (and wider) inference support — paper §IV-D.
//!
//! Two methodologies:
//!
//! * **Spatial extension** — widen the shifters so atoms of a 16-bit value
//!   shift over `{0, 2, …, 14}`; [`crate::conv_csc::conv2d_csc`] already
//!   supports this (pass `BitWidth::W16`), since atomization is
//!   width-generic.
//! * **Temporal decomposition** — split a 16-bit model into 8-bit
//!   sub-models computed in sequence with much smaller shifters:
//!   `a·w = Σ_{i,j∈{lo,hi}} a_i·w_j · 2^{8(i+j)}`. [`conv2d_csc_temporal16`]
//!   runs the four 8-bit sub-convolutions and recombines them.

use crate::conv_csc::{conv2d_csc, CscConfig, CscOutput, CscStats};
use crate::error::AtomError;
use crate::intersect::shl_guarded;
use qnn::conv::ConvGeometry;
use qnn::quant::BitWidth;
use qnn::tensor::{AccTensor3, Tensor3, Tensor4};

/// Splits an unsigned 16-bit value into `(hi, lo)` 8-bit halves.
///
/// # Panics
/// Panics (debug) if `v` is outside `0..=65535`.
pub fn split_unsigned16(v: i32) -> (i32, i32) {
    debug_assert!(
        (0..=0xFFFF).contains(&v),
        "value {v} outside unsigned 16-bit range"
    );
    (v >> 8, v & 0xFF)
}

/// Splits a signed 16-bit value into `(hi, lo)` where both halves carry the
/// original sign over an 8-bit magnitude: `v = hi·2^8 + lo`.
///
/// # Panics
/// Panics (debug) if `|v|` exceeds 16-bit magnitude range.
pub fn split_signed16(v: i32) -> (i32, i32) {
    debug_assert!(
        v.unsigned_abs() <= 0xFFFF,
        "value {v} outside signed 16-bit range"
    );
    let mag = v.unsigned_abs();
    let (hi, lo) = ((mag >> 8) as i32, (mag & 0xFF) as i32);
    if v < 0 {
        (-hi, -lo)
    } else {
        (hi, lo)
    }
}

fn map_tensor3(t: &Tensor3, f: impl Fn(i32) -> i32) -> Tensor3 {
    let (c, h, w) = t.shape();
    Tensor3::from_vec(c, h, w, t.as_slice().iter().map(|&v| f(v)).collect())
        .expect("shape preserved")
}

fn map_tensor4(t: &Tensor4, f: impl Fn(i32) -> i32) -> Tensor4 {
    let (o, i, kh, kw) = t.shape();
    Tensor4::from_vec(o, i, kh, kw, t.as_slice().iter().map(|&v| f(v)).collect())
        .expect("shape preserved")
}

/// 16-bit × 16-bit convolution by temporal decomposition into four 8-bit
/// CSC sub-convolutions (§IV-D). Activations are unsigned 16-bit, weights
/// signed 16-bit. Returns the exact convolution plus the summed work
/// counters of the four passes.
///
/// # Errors
/// Propagates substrate and atomization errors from the sub-convolutions.
pub fn conv2d_csc_temporal16(
    fmap: &Tensor3,
    kernels: &Tensor4,
    geom: ConvGeometry,
    cfg: &CscConfig,
) -> Result<CscOutput, AtomError> {
    let a_parts = [
        (map_tensor3(fmap, |v| split_unsigned16(v).1), 0u32),
        (map_tensor3(fmap, |v| split_unsigned16(v).0), 8u32),
    ];
    let w_parts = [
        (map_tensor4(kernels, |v| split_signed16(v).1), 0u32),
        (map_tensor4(kernels, |v| split_signed16(v).0), 8u32),
    ];

    let (o, _, kh, _) = kernels.shape();
    let out_h = geom.out_extent(fmap.height(), kh)?;
    let out_w = geom.out_extent(fmap.width(), kh)?;
    let mut total = AccTensor3::zeros(o, out_h, out_w)?;
    let mut stats = CscStats::default();
    for (a_part, a_shift) in &a_parts {
        for (w_part, w_shift) in &w_parts {
            let sub = conv2d_csc(a_part, w_part, geom, BitWidth::W8, BitWidth::W8, cfg)?;
            // Realigning the hi sub-planes shifts partial sums that already
            // carry the full per-cell accumulation, so this is the widest
            // shift of the whole pipeline — guard it against silent i64
            // overflow like every shift in the intersect kernel.
            let shift = a_shift + w_shift;
            for (c, y, x, _) in sub_iter(&sub.output) {
                total.add(c, y, x, shl_guarded(sub.output.get(c, y, x), shift));
            }
            stats.merge(&sub.stats);
        }
    }
    Ok(CscOutput {
        output: total,
        stats,
    })
}

fn sub_iter(t: &AccTensor3) -> impl Iterator<Item = (usize, usize, usize, i64)> + '_ {
    let (c, h, w) = t.shape();
    (0..c).flat_map(move |ci| {
        (0..h).flat_map(move |y| (0..w).map(move |x| (ci, y, x, t.get(ci, y, x))))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qnn::conv::conv2d;
    use qnn::rng::SeededRng;

    /// Activation magnitudes biased hard toward the unsigned 16-bit
    /// maximum, the operands that stress the accumulation shifts most.
    fn extreme_act() -> impl Strategy<Value = i32> {
        prop_oneof![
            3 => Just(0xFFFFi32),
            1 => Just(0i32),
            1 => 0i32..=0xFFFF,
        ]
    }

    /// Weight magnitudes biased toward ±(2^16 − 1), the widest operands the
    /// spatial extension accepts.
    fn extreme_weight() -> impl Strategy<Value = i32> {
        prop_oneof![
            2 => Just(0xFFFFi32),
            2 => Just(-0xFFFFi32),
            1 => Just(0i32),
            1 => -0xFFFFi32..=0xFFFF,
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite audit: maximal-magnitude 16-bit operands through both
        /// 16-bit paths. Every partial sum runs through the guarded shifts
        /// (`shl_guarded`), so a silent i64 overflow would abort the debug
        /// build rather than corrupt the comparison against the dense
        /// reference.
        #[test]
        fn maximal_magnitude_16bit_matches_dense(
            acts in proptest::collection::vec(extreme_act(), 2 * 4 * 4),
            wts in proptest::collection::vec(extreme_weight(), 2 * 2 * 3 * 3),
        ) {
            let fmap = Tensor3::from_vec(2, 4, 4, acts).unwrap();
            let kernels = Tensor4::from_vec(2, 2, 3, 3, wts).unwrap();
            let geom = ConvGeometry::unit_stride(1);
            let dense = conv2d(&fmap, &kernels, geom).unwrap();
            let spatial = conv2d_csc(
                &fmap,
                &kernels,
                geom,
                BitWidth::W16,
                BitWidth::W16,
                &CscConfig::default(),
            )
            .unwrap();
            prop_assert_eq!(&spatial.output, &dense);
            let temporal =
                conv2d_csc_temporal16(&fmap, &kernels, geom, &CscConfig::default()).unwrap();
            prop_assert_eq!(&temporal.output, &dense);
        }
    }

    #[test]
    fn split_roundtrips() {
        for v in [0, 1, 255, 256, 65535, 4097] {
            let (hi, lo) = split_unsigned16(v);
            assert_eq!(hi * 256 + lo, v);
            assert!((0..=255).contains(&lo) && (0..=255).contains(&hi));
        }
        for v in [-65535, -4097, -256, -1, 0, 1, 300, 65535] {
            let (hi, lo) = split_signed16(v);
            assert_eq!(hi * 256 + lo, v, "v = {v}");
            assert!(hi.abs() <= 255 && lo.abs() <= 255);
        }
    }

    #[test]
    fn temporal_decomposition_matches_dense_16bit() {
        let mut rng = SeededRng::new(161);
        let fmap = Tensor3::from_fn(2, 5, 5, |_, _, _| {
            if rng.bernoulli(0.6) {
                rng.below(65536) as i32
            } else {
                0
            }
        })
        .unwrap();
        let kernels = Tensor4::from_fn(3, 2, 3, 3, |_, _, _, _| {
            let m = rng.below(32768) as i32;
            if rng.bernoulli(0.5) {
                -m
            } else {
                m
            }
        })
        .unwrap();
        let geom = ConvGeometry::unit_stride(1);
        let dense = conv2d(&fmap, &kernels, geom).unwrap();
        let temporal = conv2d_csc_temporal16(&fmap, &kernels, geom, &CscConfig::default()).unwrap();
        assert_eq!(temporal.output, dense);
    }

    #[test]
    fn spatial_extension_matches_dense_16bit() {
        // §IV-D spatial extension: just run CSC at 16-bit widths directly.
        let mut rng = SeededRng::new(162);
        let fmap = Tensor3::from_fn(1, 4, 4, |_, _, _| rng.below(65536) as i32).unwrap();
        let kernels =
            Tensor4::from_fn(2, 1, 2, 2, |_, _, _, _| rng.below(60000) as i32 - 30000).unwrap();
        let geom = ConvGeometry::default();
        let dense = conv2d(&fmap, &kernels, geom).unwrap();
        let spatial = conv2d_csc(
            &fmap,
            &kernels,
            geom,
            BitWidth::W16,
            BitWidth::W16,
            &CscConfig::default(),
        )
        .unwrap();
        assert_eq!(spatial.output, dense);
    }

    #[test]
    fn temporal_and_spatial_agree() {
        let mut rng = SeededRng::new(163);
        let fmap = Tensor3::from_fn(1, 3, 3, |_, _, _| rng.below(65536) as i32).unwrap();
        let kernels =
            Tensor4::from_fn(1, 1, 2, 2, |_, _, _, _| rng.below(131071) as i32 - 65535).unwrap();
        let geom = ConvGeometry::default();
        let t = conv2d_csc_temporal16(&fmap, &kernels, geom, &CscConfig::default()).unwrap();
        let s = conv2d_csc(
            &fmap,
            &kernels,
            geom,
            BitWidth::W16,
            BitWidth::W16,
            &CscConfig::default(),
        )
        .unwrap();
        assert_eq!(t.output, s.output);
        // Temporal decomposition needs smaller shifters but at least as
        // many intersection steps.
        assert!(t.stats.intersect.steps >= s.stats.intersect.steps);
    }
}
