//! The production intersection kernel: a scratch-arena, plan-compiled,
//! occupancy-filtered rewrite of [`crate::intersect::intersect`] that is
//! byte-identical to it on every input.
//!
//! Three structural levels separate this kernel from the reference:
//!
//! 1. **Zero-alloc scratch arena** ([`CscScratch`]) — per-channel
//!    [`FullConvAcc`] planes, the folded-value vec and the flattened-tile
//!    vec are pooled and reused across convolutions. Planes are returned to
//!    the pool with a *dirty-region reset* (only the output-channel planes
//!    the weight plan actually wrote are zeroed), so steady-state inference
//!    allocates no accumulator planes per input.
//! 2. **Bitmap / inner-join pre-intersection filter** — a one-pass
//!    `TileOccupancy` scan of the channel plane produces a per-tile
//!    occupancy bitmap; empty tiles (and entirely zero channels) are
//!    skipped before any flatten/compress/multiply work, in the spirit of
//!    SCNN/SparTen's index intersection. On the static side,
//!    `WeightPlan` regroups the weight stream per output channel, so the
//!    planes a channel can touch are known up front (the dirty list) and
//!    consecutive atoms write the same accumulator region.
//! 3. **Branch-free inner loop** (`intersect_planned`) — the sign is
//!    hoisted into a signed coefficient `±(mag << shift)` at plan-compile
//!    time, each atom's plane base index is precomputed once per bind, and
//!    the per-`add` assert plus 3-term index recomputation of the
//!    reference are replaced by one slice-bounds check per atom over a
//!    flat `i64` lane.
//!
//! # Byte-identity argument
//!
//! The rewrite is exact, not approximate, because every transformation is
//! an identity over `i64` arithmetic:
//!
//! - *Coefficient hoisting*: the reference delivers
//!   `±((mag · vsum) << shift)`; the plan delivers
//!   `(±(mag << shift)) · vsum`. These are equal as `i64` operations
//!   (two's-complement multiplication and shift commute this way
//!   bit-exactly, including on wrap), and both sides guard the shift with
//!   the same `shl_guarded` debug assertion.
//! - *Atom regrouping*: per-cell accumulation order changes, but `i64`
//!   addition is commutative and associative (mod 2⁶⁴), so every
//!   accumulator word ends identical.
//! - *Value folding*: both kernels fold a value's atoms in stream order
//!   with the same `shl_guarded` adds, producing the same `vsum`.
//! - *Skipping*: a tile is skipped iff its occupancy count is zero iff its
//!   flattened stream is empty — exactly the tiles the reference skips.
//!   An all-zero channel contributes an all-zero accumulator in the
//!   reference, which is the identity under plane merge.
//!
//! The dual-kernel differential oracle in `bench`'s `diffcheck` plus the
//! determinism suites enforce this equivalence on every run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::AtomError;
use crate::intersect::{
    shl_guarded, validate_weight_coords, FullConvAcc, IntersectConfig, IntersectStats,
};
use crate::stream::{ActivationStream, WeightStream};
use qnn::error::QnnError;

/// A weight stream compiled into the fast kernel's execution form: atoms
/// regrouped per output channel, signs and shifts folded into signed
/// coefficients, and Eq 1 kernel offsets inverted once.
#[derive(Debug, Clone, Default)]
pub(crate) struct WeightPlan {
    k: usize,
    out_c: usize,
    /// `±(mag << shift)` per atom, in out-channel-grouped order.
    coef: Vec<i64>,
    /// Per-atom `(out_ch, k−1−y, k−1−x)`, kept to rebind `base` when the
    /// plane shape changes.
    addr: Vec<(u16, u32, u32)>,
    /// Contiguous `(out_ch, start, end)` runs into `coef`/`addr`/`base`.
    groups: Vec<(u16, u32, u32)>,
    /// Per-atom plane base index `(oc·fh + ky_inv)·fw + kx_inv` for the
    /// currently bound plane shape.
    base: Vec<usize>,
    /// Plane shape `(fh, fw)` the `base` indices were computed for.
    bound: Option<(usize, usize)>,
}

impl WeightPlan {
    /// Compiles `stream` for kernel extent `k` and `out_c` output channels.
    ///
    /// Atoms are regrouped by output channel with a stable counting sort;
    /// within a channel the original stream order is preserved. Weight
    /// coordinates are validated against `k` here, once per compile,
    /// instead of wrapping deep inside the accumulation loop.
    ///
    /// # Errors
    /// Returns [`AtomError::WeightCoordOutOfKernel`] naming the offending
    /// atom when a kernel coordinate lies outside extent `k`.
    ///
    /// # Panics
    /// Panics if an entry's output channel is `≥ out_c` (the same "address
    /// out of bounds" contract as [`FullConvAcc::add`]).
    fn compile(stream: &WeightStream, k: usize, out_c: usize) -> Result<Self, AtomError> {
        validate_weight_coords(stream, k)?;
        let entries = stream.entries();
        let mut counts = vec![0u32; out_c];
        for e in entries {
            assert!((e.out_ch as usize) < out_c, "address out of bounds");
            counts[e.out_ch as usize] += 1;
        }
        // Prefix sums give each channel's run start; a second pass scatters
        // the atoms stably into grouped order.
        let mut starts = vec![0u32; out_c];
        let mut acc = 0u32;
        for (oc, &n) in counts.iter().enumerate() {
            starts[oc] = acc;
            acc += n;
        }
        let mut coef = vec![0i64; entries.len()];
        let mut addr = vec![(0u16, 0u32, 0u32); entries.len()];
        let mut cursor = starts.clone();
        for e in entries {
            let slot = cursor[e.out_ch as usize] as usize;
            cursor[e.out_ch as usize] += 1;
            let magnitude = shl_guarded(e.atom.mag as i64, e.atom.shift as u32);
            coef[slot] = if e.atom.negative {
                -magnitude
            } else {
                magnitude
            };
            addr[slot] = (
                e.out_ch,
                (k - 1 - e.y as usize) as u32,
                (k - 1 - e.x as usize) as u32,
            );
        }
        let groups = counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(oc, &n)| (oc as u16, starts[oc], starts[oc] + n))
            .collect();
        Ok(Self {
            k,
            out_c,
            coef,
            addr,
            groups,
            base: Vec::new(),
            bound: None,
        })
    }

    /// Number of atoms in the plan (= the compiled stream's length).
    fn atoms(&self) -> usize {
        self.coef.len()
    }

    /// Precomputes each atom's plane base index for plane shape
    /// `(fh, fw)`. Idempotent per shape; a plan serving one layer binds
    /// once and never again.
    fn bind(&mut self, fh: usize, fw: usize) {
        if self.bound == Some((fh, fw)) {
            return;
        }
        self.base.clear();
        self.base
            .extend(self.addr.iter().map(|&(oc, ky_inv, kx_inv)| {
                (oc as usize * fh + ky_inv as usize) * fw + kx_inv as usize
            }));
        self.bound = Some((fh, fw));
    }

    /// Appends the output-channel planes this plan writes (its dirty list)
    /// in ascending channel order.
    pub(crate) fn planes_into(&self, dirty: &mut Vec<u16>) {
        dirty.extend(self.groups.iter().map(|&(oc, _, _)| oc));
    }
}

/// The `(out_ch, atom_count)` run table the branch-free plan kernel would
/// build for one stream — the persisted "plan geometry" of the artifact
/// format.
///
/// The run table is a pure function of the stream, so artifacts store it
/// only as a cross-check: the loader recomputes it with this function and
/// rejects any artifact whose recorded geometry disagrees (a mismatch
/// means the streams and the plan section drifted apart).
///
/// # Errors
/// Propagates the plan compiler's coordinate validation
/// ([`AtomError::WeightCoordOutOfKernel`]).
pub fn plan_group_geometry(
    stream: &WeightStream,
    k: usize,
    out_c: usize,
) -> Result<Vec<(u16, u32)>, AtomError> {
    let plan = WeightPlan::compile(stream, k, out_c)?;
    Ok(plan.groups.iter().map(|&(oc, s, e)| (oc, e - s)).collect())
}

/// A cached, lazily compiled [`WeightPlan`] for one input channel, keyed by
/// the stream's compile-time checksum so a swapped stream recompiles
/// instead of executing a stale plan.
#[derive(Debug, Default)]
pub(crate) struct PlanSlot {
    /// `(stream checksum, k, out_c)` the held plan was compiled for.
    key: Option<(u64, usize, usize)>,
    plan: WeightPlan,
}

impl PlanSlot {
    /// Returns the plan for `stream`, compiling or rebinding as needed.
    ///
    /// # Errors
    /// Propagates [`WeightPlan::compile`] errors.
    pub(crate) fn prepare(
        &mut self,
        stream: &WeightStream,
        checksum: u64,
        k: usize,
        out_c: usize,
        fh: usize,
        fw: usize,
    ) -> Result<&WeightPlan, AtomError> {
        let key = (checksum, k, out_c);
        if self.key != Some(key) {
            self.plan = WeightPlan::compile(stream, k, out_c)?;
            self.key = Some(key);
        }
        self.plan.bind(fh, fw);
        Ok(&self.plan)
    }
}

/// Per-tile activation occupancy of one channel plane: a packed bitmap
/// (one bit per tile) plus non-zero counts, produced by a single pass over
/// the plane. The pre-intersection filter consults it to skip empty tiles
/// — and entirely empty channels — before any flatten or compress work.
#[derive(Debug, Clone, Default)]
pub(crate) struct TileOccupancy {
    tiles_x: usize,
    counts: Vec<u32>,
    bits: Vec<u64>,
    total: u64,
}

impl TileOccupancy {
    /// Scans channel `plane` (row-major `h × w`) under `(tile_h, tile_w)`
    /// tiling, reusing this struct's buffers.
    pub(crate) fn scan(&mut self, plane: &[i32], h: usize, w: usize, tile_h: usize, tile_w: usize) {
        debug_assert_eq!(plane.len(), h * w);
        let tiles_y = h.div_ceil(tile_h);
        let tiles_x = w.div_ceil(tile_w);
        self.tiles_x = tiles_x;
        self.counts.clear();
        self.counts.resize(tiles_y * tiles_x, 0);
        self.bits.clear();
        self.bits.resize((tiles_y * tiles_x).div_ceil(64), 0);
        self.total = 0;
        for y in 0..h {
            let row = &plane[y * w..(y + 1) * w];
            let ty = y / tile_h;
            for (tx, chunk) in row.chunks(tile_w).enumerate() {
                let nz = chunk.iter().filter(|&&v| v != 0).count() as u32;
                if nz > 0 {
                    let ti = ty * tiles_x + tx;
                    self.counts[ti] += nz;
                    self.bits[ti / 64] |= 1 << (ti % 64);
                    self.total += nz as u64;
                }
            }
        }
    }

    /// Whether tile `(ty, tx)` holds at least one non-zero activation.
    pub(crate) fn occupied(&self, ty: usize, tx: usize) -> bool {
        let ti = ty * self.tiles_x + tx;
        self.bits[ti / 64] >> (ti % 64) & 1 != 0
    }

    /// Total non-zero activations in the plane (zero ⇒ the whole channel
    /// can be skipped).
    pub(crate) fn total(&self) -> u64 {
        self.total
    }
}

/// One tile's activation values folded for the inner loop: per value the
/// pre-shifted atom sum (`Σ mag << shift`, the decoupled shift of §IV-C2)
/// and its flat in-plane offset `y·fw + x`, as two parallel arrays the
/// multiply loop streams through.
#[derive(Debug, Clone, Default)]
pub(crate) struct FoldedValues {
    voff: Vec<usize>,
    vsum: Vec<i64>,
    /// `max(voff) + 1` — the lane length every atom's adds stay within.
    span: usize,
}

impl FoldedValues {
    /// Folds `acts` (value coordinates relative to a tile whose plane rows
    /// are `fw` wide), reusing this struct's buffers.
    fn fold(&mut self, acts: &ActivationStream, fw: usize) {
        self.voff.clear();
        self.vsum.clear();
        self.span = 0;
        let mut vsum: i64 = 0;
        for a in acts.entries() {
            vsum += shl_guarded(a.atom.mag as i64, a.atom.shift as u32);
            if a.atom.last {
                let off = a.y as usize * fw + a.x as usize;
                self.voff.push(off);
                self.vsum.push(vsum);
                self.span = self.span.max(off + 1);
                vsum = 0;
            }
        }
        debug_assert_eq!(vsum, 0, "activation stream must end on a last flag");
    }

    /// Number of folded values.
    fn len(&self) -> usize {
        self.voff.len()
    }
}

/// Intersects a compiled weight plan with a sliding activation stream —
/// the fast twin of [`crate::intersect::intersect`], byte-identical to it
/// on the same inputs (see the module docs for the identity argument).
///
/// The loop is atom-major over the plan's out-channel-grouped order: per
/// atom one flat `i64` lane of the accumulator is sliced once, then every
/// folded value delivers `coef · vsum` at its offset. No sign branch, no
/// per-add assert, no index recomputation.
///
/// # Panics
/// Panics if a generated address falls outside `acc` (one slice-bounds
/// check per atom) — which cannot happen when `acc` was sized for the
/// enclosing feature map and the plan's kernel, the same contract as the
/// reference kernel.
pub(crate) fn intersect_planned(
    plan: &WeightPlan,
    acts: &ActivationStream,
    cfg: IntersectConfig,
    acc: &mut FullConvAcc,
    origin_y: usize,
    origin_x: usize,
    folded: &mut FoldedValues,
) -> IntersectStats {
    assert!(cfg.multipliers > 0, "need at least one multiplier");
    debug_assert_eq!(acc.kernel(), plan.k, "plan/accumulator kernel mismatch");
    debug_assert_eq!(acc.out_channels(), plan.out_c);
    let s_total = plan.atoms() as u64;
    let t_total = acts.len() as u64;
    if s_total == 0 || t_total == 0 {
        return IntersectStats::default();
    }
    let (fh, fw) = acc.plane_shape();
    debug_assert_eq!(
        plan.bound,
        Some((fh, fw)),
        "plan bound to a different plane shape"
    );
    let _ = fh;
    folded.fold(acts, fw);
    let origin_off = origin_y * fw + origin_x;
    let data = acc.cells_mut();
    for (&rel, &coef) in plan.base.iter().zip(&plan.coef) {
        let start = rel + origin_off;
        let lane = &mut data[start..start + folded.span];
        for (&off, &vs) in folded.voff.iter().zip(&folded.vsum) {
            lane[off] += coef * vs;
        }
    }
    let stats = IntersectStats::schedule(
        t_total,
        s_total,
        folded.len() as u64,
        cfg.multipliers as u64,
    );
    stats.record_obs(folded.len() as u64);
    stats
}

/// One checked-out unit of reusable per-channel working state: the
/// accumulator planes, the dirty-plane list, and the flatten/fold buffers.
#[derive(Debug)]
pub(crate) struct WorkSlot {
    /// The channel's full-convolution accumulator (all-zero at checkout).
    pub(crate) acc: FullConvAcc,
    /// Output-channel planes written since checkout (possibly with
    /// duplicates; sorted and deduplicated at check-in).
    pub(crate) dirty: Vec<u16>,
    /// Reusable flatten buffer for one tile's non-zero values.
    pub(crate) flat: Vec<crate::flatten::FlatActivation>,
    /// Reusable folded-value arrays for the inner loop.
    pub(crate) folded: FoldedValues,
    /// Reusable per-channel tile occupancy.
    pub(crate) occ: TileOccupancy,
}

/// The reusable scratch arena threaded through
/// [`crate::conv_csc::conv2d_csc_streams_with`]: compiled weight plans
/// (one per input channel) plus a pool of `WorkSlot`s whose accumulator
/// planes are recycled across convolutions.
///
/// A `CscScratch` retained across [`conv2d_csc_streams_with`] calls (as
/// the inference engine's `Session` does, one arena per layer) makes
/// steady-state inference allocate **zero** accumulator planes per input:
/// after warm-up every checkout is served from the pool, observable via
/// [`CscScratch::plane_allocations`]. A fresh arena per call degrades
/// gracefully to the reference kernel's allocation behaviour.
///
/// Pool invariant: every pooled accumulator is all-zero. Check-in restores
/// it by zeroing only the dirty planes — O(planes written), not O(pool).
///
/// [`conv2d_csc_streams_with`]: crate::conv_csc::conv2d_csc_streams_with
#[derive(Debug, Default)]
pub struct CscScratch {
    plans: Mutex<Vec<Arc<Mutex<PlanSlot>>>>,
    slots: Mutex<Vec<WorkSlot>>,
    plane_allocs: AtomicU64,
}

impl CscScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `FullConvAcc` plane allocations this arena has performed
    /// since creation. In steady state (same layer shapes, same thread
    /// count) this stays constant across further inputs — the zero-alloc
    /// property the engine's scratch-reuse test pins.
    pub fn plane_allocations(&self) -> u64 {
        self.plane_allocs.load(Ordering::Relaxed)
    }

    /// The plan cache slot for input channel `ci`.
    pub(crate) fn plan_slot(&self, ci: usize) -> Arc<Mutex<PlanSlot>> {
        let mut plans = self.plans.lock().expect("plan cache lock");
        while plans.len() <= ci {
            plans.push(Arc::new(Mutex::new(PlanSlot::default())));
        }
        Arc::clone(&plans[ci])
    }

    /// Checks out a work slot whose accumulator matches the requested
    /// shape, allocating one only when the pool has no match.
    ///
    /// # Errors
    /// Propagates [`FullConvAcc::new`] geometry errors.
    pub(crate) fn checkout(
        &self,
        out_c: usize,
        in_h: usize,
        in_w: usize,
        k: usize,
    ) -> Result<WorkSlot, QnnError> {
        // Validate the shape (including overflow) before touching the pool
        // so degenerate geometry errors are identical with and without
        // pooled slots.
        let probe_fh = in_h.checked_add(k.wrapping_sub(1));
        let probe_fw = in_w.checked_add(k.wrapping_sub(1));
        {
            let mut slots = self.slots.lock().expect("slot pool lock");
            if let (Some(fh), Some(fw)) = (probe_fh, probe_fw) {
                if let Some(i) = slots.iter().position(|s| {
                    s.acc.out_channels() == out_c
                        && s.acc.plane_shape() == (fh, fw)
                        && s.acc.kernel() == k
                }) {
                    let slot = slots.swap_remove(i);
                    debug_assert!(slot.acc.is_all_zero(), "pooled accumulator not reset");
                    return Ok(slot);
                }
            }
        }
        let acc = FullConvAcc::new(out_c, in_h, in_w, k)?;
        self.plane_allocs.fetch_add(1, Ordering::Relaxed);
        Ok(WorkSlot {
            acc,
            dirty: Vec::new(),
            flat: Vec::new(),
            folded: FoldedValues::default(),
            occ: TileOccupancy::default(),
        })
    }

    /// Returns a slot to the pool, restoring the all-zero invariant by
    /// zeroing exactly the dirty planes.
    pub(crate) fn checkin(&self, mut slot: WorkSlot) {
        slot.dirty.sort_unstable();
        slot.dirty.dedup();
        slot.acc.zero_planes(&slot.dirty);
        slot.dirty.clear();
        debug_assert!(slot.acc.is_all_zero(), "dirty-region reset incomplete");
        self.slots.lock().expect("slot pool lock").push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomBits;
    use crate::compress::{compress_activations, compress_weights};
    use crate::flatten::{FlatActivation, FlatWeight};
    use crate::intersect::intersect;

    fn acts(values: &[(i32, u16, u16)], bits: u8) -> ActivationStream {
        let flat: Vec<FlatActivation> = values
            .iter()
            .map(|&(value, x, y)| FlatActivation { value, x, y })
            .collect();
        compress_activations(&flat, bits, AtomBits::B2).unwrap()
    }

    fn weights(values: &[(i32, u16, u16, u16)], bits: u8) -> WeightStream {
        let flat: Vec<FlatWeight> = values
            .iter()
            .map(|&(value, x, y, out_ch)| FlatWeight {
                value,
                x,
                y,
                out_ch,
            })
            .collect();
        compress_weights(&flat, bits, AtomBits::B2).unwrap()
    }

    /// Runs both kernels on the same inputs and asserts byte-identical
    /// accumulators and stats.
    #[allow(clippy::too_many_arguments)]
    fn check_twin(
        w: &WeightStream,
        a: &ActivationStream,
        cfg: IntersectConfig,
        out_c: usize,
        h: usize,
        wdt: usize,
        k: usize,
        origin: (usize, usize),
    ) {
        let mut reference = FullConvAcc::new(out_c, h, wdt, k).unwrap();
        let expected = intersect(w, a, cfg, &mut reference, origin.0, origin.1).unwrap();
        let mut fast = FullConvAcc::new(out_c, h, wdt, k).unwrap();
        let plan = {
            let mut p = WeightPlan::compile(w, k, out_c).unwrap();
            let (fh, fw) = fast.plane_shape();
            p.bind(fh, fw);
            p
        };
        let mut folded = FoldedValues::default();
        let got = intersect_planned(&plan, a, cfg, &mut fast, origin.0, origin.1, &mut folded);
        assert_eq!(fast, reference);
        assert_eq!(got, expected);
    }

    #[test]
    fn twin_kernels_agree_on_mixed_signs_and_channels() {
        let w = weights(
            &[
                (5, 0, 0, 0),
                (-3, 1, 0, 2),
                (7, 1, 1, 0),
                (-11, 0, 1, 1),
                (2, 0, 0, 2),
            ],
            8,
        );
        let a = acts(&[(29, 0, 0), (13, 1, 0), (200, 0, 1), (6, 1, 1)], 8);
        check_twin(&w, &a, IntersectConfig::default(), 3, 2, 2, 2, (0, 0));
        check_twin(
            &w,
            &a,
            IntersectConfig { multipliers: 1 },
            3,
            4,
            5,
            2,
            (2, 3),
        );
    }

    #[test]
    fn twin_kernels_agree_on_empty_streams() {
        let w = weights(&[(3, 0, 0, 0)], 4);
        let a = acts(&[], 4);
        check_twin(&w, &a, IntersectConfig::default(), 1, 2, 2, 1, (0, 0));
        let w = weights(&[], 4);
        let a = acts(&[(3, 0, 0)], 4);
        check_twin(&w, &a, IntersectConfig::default(), 1, 2, 2, 1, (0, 0));
    }

    #[test]
    fn plan_compile_rejects_out_of_kernel_coords() {
        let w = weights(&[(1, 0, 0, 0), (2, 2, 1, 0)], 4);
        let err = WeightPlan::compile(&w, 2, 1).unwrap_err();
        assert!(matches!(
            err,
            AtomError::WeightCoordOutOfKernel { x: 2, y: 1, .. }
        ));
    }

    #[test]
    fn plan_groups_cover_exactly_the_touched_planes() {
        let w = weights(&[(5, 0, 0, 3), (-3, 1, 0, 1), (2, 1, 1, 3)], 4);
        let plan = WeightPlan::compile(&w, 2, 5).unwrap();
        let mut dirty = Vec::new();
        plan.planes_into(&mut dirty);
        assert_eq!(dirty, vec![1, 3]);
        // Grouped order preserves within-channel stream order and covers
        // every atom exactly once.
        assert_eq!(plan.atoms(), w.len());
        let total: u32 = plan.groups.iter().map(|&(_, s, e)| e - s).sum();
        assert_eq!(total as usize, w.len());
    }

    #[test]
    fn occupancy_scan_matches_flatten_emptiness() {
        use qnn::tensor::Tensor3;
        let fmap = Tensor3::from_fn(
            1,
            7,
            9,
            |_, y, x| {
                if (y * x) % 4 == 1 {
                    (y + x) as i32
                } else {
                    0
                }
            },
        )
        .unwrap();
        let (th, tw) = (3, 2);
        let (_, h, w) = fmap.shape();
        let mut occ = TileOccupancy::default();
        occ.scan(fmap.channel(0), h, w, th, tw);
        let mut total = 0u64;
        for (ty, y0) in (0..h).step_by(th).enumerate() {
            for (tx, x0) in (0..w).step_by(tw).enumerate() {
                let flat = crate::flatten::flatten_tile(&fmap, 0, y0, x0, th, tw);
                assert_eq!(
                    occ.occupied(ty, tx),
                    !flat.is_empty(),
                    "tile ({ty},{tx}) occupancy disagrees with flatten"
                );
                total += flat.len() as u64;
            }
        }
        assert_eq!(occ.total(), total);
    }

    #[test]
    fn scratch_pool_reuses_planes_and_keeps_them_zero() {
        let scratch = CscScratch::new();
        let slot = scratch.checkout(2, 3, 3, 2).unwrap();
        assert_eq!(scratch.plane_allocations(), 1);
        scratch.checkin(slot);
        // Same shape: served from the pool, no new allocation.
        let mut slot = scratch.checkout(2, 3, 3, 2).unwrap();
        assert_eq!(scratch.plane_allocations(), 1);
        assert!(slot.acc.is_all_zero());
        // Dirty a plane, check in, and verify the reset restored zeros.
        slot.acc.add(1, 0, 0, 42);
        slot.dirty.push(1);
        slot.dirty.push(1);
        scratch.checkin(slot);
        let slot = scratch.checkout(2, 3, 3, 2).unwrap();
        assert!(slot.acc.is_all_zero());
        assert_eq!(scratch.plane_allocations(), 1);
        // A different shape allocates a second accumulator.
        let other = scratch.checkout(1, 2, 2, 1).unwrap();
        assert_eq!(scratch.plane_allocations(), 2);
        scratch.checkin(slot);
        scratch.checkin(other);
    }

    #[test]
    fn scratch_checkout_propagates_geometry_errors() {
        let scratch = CscScratch::new();
        assert!(matches!(
            scratch.checkout(1, usize::MAX, 1, 2).unwrap_err(),
            QnnError::ExtentOverflow { .. }
        ));
        assert!(matches!(
            scratch.checkout(0, 1, 1, 1).unwrap_err(),
            QnnError::EmptyDimension(_)
        ));
    }

    #[test]
    fn plan_slot_recompiles_on_checksum_change() {
        let w1 = weights(&[(5, 0, 0, 0)], 4);
        let w2 = weights(&[(-3, 1, 1, 1)], 4);
        let mut slot = PlanSlot::default();
        let p1_atoms = slot
            .prepare(&w1, w1.checksum(), 2, 2, 3, 3)
            .unwrap()
            .atoms();
        assert_eq!(p1_atoms, w1.len());
        // Same checksum: cached (no recompile), rebind is idempotent.
        slot.prepare(&w1, w1.checksum(), 2, 2, 3, 3).unwrap();
        // New checksum: recompiled for the new stream.
        let p2_atoms = slot
            .prepare(&w2, w2.checksum(), 2, 2, 3, 3)
            .unwrap()
            .atoms();
        assert_eq!(p2_atoms, w2.len());
    }
}
