//! Intersection: 1-D convolution between condensed atom streams
//! (phase 3 of the condensed streaming computation, paper §III-B / Fig 6).
//!
//! The weight stream is held *static* (split into segments of `N`, the
//! number of atom multipliers); the activation stream slides through each
//! segment one atom per step. Every activation atom therefore meets every
//! weight atom. Per product only the **activation** shift is applied (the
//! decoupled shift of §IV-C2); per-value partial sums are delivered on the
//! activation's last-atom flag, and the **weight** shift plus sign are
//! applied once at accumulate-buffer aggregation.
//!
//! Output coordinates follow the paper's Eq 1/2: with kernel size `k`,
//! `x_out = k − 1 − x_w + x_in` in full-convolution space of width
//! `W_in + k − 1`; strided/padded outputs are extracted afterwards
//! ([`FullConvAcc::extract`]), matching §IV-C3's handling of non-unit
//! strides in the accumulate buffer.

use crate::error::AtomError;
use crate::stream::{ActivationStream, WeightStream};
use qnn::conv::ConvGeometry;
use qnn::error::QnnError;
use qnn::tensor::AccTensor3;
use serde::{Deserialize, Serialize};

/// Configuration of the intersection engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntersectConfig {
    /// Number of atom multipliers `N` — the static stream segment length.
    pub multipliers: usize,
}

impl Default for IntersectConfig {
    /// The paper's default compute tile: 32 2-bit multipliers.
    fn default() -> Self {
        Self { multipliers: 32 }
    }
}

/// Work counters produced by one intersection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntersectStats {
    /// Pipeline steps (cycles of the Atomputer's systolic chain),
    /// matching the paper's Eq 3: `t·⌈S/N⌉ + ε`.
    pub steps: u64,
    /// Effectual atom multiplications (`t · S`).
    pub atom_mults: u64,
    /// Accumulator deliveries to the accumulate buffer
    /// (`S · value_count(activations)`).
    pub deliveries: u64,
    /// Static-stream segments processed (`⌈S/N⌉`).
    pub segments: u64,
}

impl IntersectStats {
    /// Derives the hardware-schedule counters for one intersection from the
    /// stream lengths alone: `t_atoms` sliding activation atoms against
    /// `s_atoms` static weight atoms condensing `value_count` activation
    /// values, on `multipliers` atom multipliers.
    ///
    /// All products saturate at `u64::MAX` instead of wrapping — the same
    /// treatment [`crate::cycles::ideal_steps`] and
    /// [`crate::cycles::tile_cycles`] received for adversarial atom counts —
    /// and `steps` *is* `ideal_steps` (Eq 3), so the live counters and the
    /// closed-form cycle model can never disagree. Both intersection
    /// kernels route their stats through this one constructor.
    ///
    /// # Panics
    /// Panics if `multipliers` is zero.
    pub fn schedule(t_atoms: u64, s_atoms: u64, value_count: u64, multipliers: u64) -> Self {
        assert!(multipliers > 0, "need at least one multiplier");
        if t_atoms == 0 || s_atoms == 0 {
            return Self::default();
        }
        Self {
            steps: crate::cycles::ideal_steps(t_atoms, s_atoms, multipliers),
            atom_mults: t_atoms.saturating_mul(s_atoms),
            deliveries: s_atoms.saturating_mul(value_count),
            segments: s_atoms.div_ceil(multipliers),
        }
    }

    /// Accumulates another intersection's counters into this one,
    /// saturating at `u64::MAX` (a whole-network sum of per-tile counters
    /// must stay a valid lower bound, not wrap to a small number).
    pub fn merge(&mut self, other: &IntersectStats) {
        self.steps = self.steps.saturating_add(other.steps);
        self.atom_mults = self.atom_mults.saturating_add(other.atom_mults);
        self.deliveries = self.deliveries.saturating_add(other.deliveries);
        self.segments = self.segments.saturating_add(other.segments);
    }

    /// Emits this intersection's counters to the observability layer — one
    /// bulk record per intersection, never per inner-loop iteration. Shared
    /// by both kernels so the recorded event totals are kernel-independent.
    pub(crate) fn record_obs(&self, value_runs: u64) {
        obs::record(obs::Event::IntersectCalls, 1);
        obs::record(obs::Event::IntersectSteps, self.steps);
        obs::record(obs::Event::IntersectSegments, self.segments);
        obs::record(obs::Event::IntersectAtomMults, self.atom_mults);
        obs::record(obs::Event::IntersectDeliveries, self.deliveries);
        obs::record(obs::Event::IntersectValueRuns, value_runs);
    }
}

/// Accumulator in full-convolution coordinate space: per output channel a
/// `(H_in + k − 1) × (W_in + k − 1)` plane of `i64` partial sums.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FullConvAcc {
    out_c: usize,
    k: usize,
    fh: usize,
    fw: usize,
    data: Vec<i64>,
}

impl FullConvAcc {
    /// Creates a zeroed accumulator for an `in_h × in_w` input convolved
    /// with `out_c` kernels of extent `k`.
    ///
    /// # Errors
    /// Returns [`QnnError::EmptyDimension`] for zero extents and
    /// [`QnnError::ExtentOverflow`] when the full-convolution plane extents
    /// (`in + k − 1`) or the total cell count (`out_c · fh · fw`) do not fit
    /// a machine word — degenerate adversarial geometry must surface as a
    /// typed error, not a debug panic or a wrapped (tiny) allocation.
    pub fn new(out_c: usize, in_h: usize, in_w: usize, k: usize) -> Result<Self, QnnError> {
        if out_c == 0 {
            return Err(QnnError::EmptyDimension("out_c"));
        }
        if in_h == 0 || in_w == 0 {
            return Err(QnnError::EmptyDimension("in extent"));
        }
        if k == 0 {
            return Err(QnnError::EmptyDimension("k"));
        }
        let fh = in_h.checked_add(k - 1).ok_or(QnnError::ExtentOverflow {
            what: "full-conv plane height",
        })?;
        let fw = in_w.checked_add(k - 1).ok_or(QnnError::ExtentOverflow {
            what: "full-conv plane width",
        })?;
        let cells = out_c
            .checked_mul(fh)
            .and_then(|c| c.checked_mul(fw))
            .ok_or(QnnError::ExtentOverflow {
                what: "full-conv plane cells",
            })?;
        Ok(Self {
            out_c,
            k,
            fh,
            fw,
            data: vec![0; cells],
        })
    }

    /// Full-convolution plane shape `(fh, fw)`.
    pub fn plane_shape(&self) -> (usize, usize) {
        (self.fh, self.fw)
    }

    /// Kernel extent this accumulator was built for.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Number of output-channel planes.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Adds `v` at full-conv coordinates `(out_ch, fy, fx)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds (the hardware's `comp`
    /// validator guarantees in-bounds addresses; the functional model treats
    /// a violation as a bug).
    #[inline]
    pub fn add(&mut self, out_ch: usize, fy: usize, fx: usize, v: i64) {
        assert!(
            out_ch < self.out_c && fy < self.fh && fx < self.fw,
            "address out of bounds"
        );
        self.data[(out_ch * self.fh + fy) * self.fw + fx] += v;
    }

    /// Reads the accumulated value at `(out_ch, fy, fx)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, out_ch: usize, fy: usize, fx: usize) -> i64 {
        assert!(
            out_ch < self.out_c && fy < self.fh && fx < self.fw,
            "address out of bounds"
        );
        self.data[(out_ch * self.fh + fy) * self.fw + fx]
    }

    /// The raw accumulator words in `(out_ch, fy, fx)` row-major order —
    /// the accumulate-buffer contents a fault injector perturbs.
    pub fn cells(&self) -> &[i64] {
        &self.data
    }

    /// Mutable view of the raw accumulator words (fault-injection surface).
    pub fn cells_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Sum of every accumulator word in `i128` (never overflows: the sum of
    /// `|data| ≤ out_c·fh·fw` words each bounded by `i64` fits `i128` with
    /// headroom). This is the conserved quantity the accumulate-buffer
    /// integrity monitor checks: after intersecting streams with weight
    /// term sum `W` and activation value sum `A`, the plane total must
    /// equal `W · A`.
    pub fn total_sum(&self) -> i128 {
        self.data.iter().map(|&v| v as i128).sum()
    }

    /// Adds another accumulator plane-wise (`self += other`). Used to merge
    /// per-channel (or per-thread) partial accumulators: i64 addition
    /// commutes, so any merge order reproduces the sequential result
    /// bit-exactly.
    ///
    /// # Panics
    /// Panics if the two accumulators were built for different shapes.
    pub fn merge(&mut self, other: &FullConvAcc) {
        assert!(
            self.out_c == other.out_c && self.fh == other.fh && self.fw == other.fw,
            "accumulator shape mismatch"
        );
        for (dst, src) in self.data.iter_mut().zip(&other.data) {
            *dst += src;
        }
    }

    /// Adds the listed output-channel planes of `other` into `self`
    /// (`self[p] += other[p]` for each plane `p`). The plane-granular
    /// counterpart of [`FullConvAcc::merge`]: a scratch-arena kernel that
    /// tracked which planes it touched merges only those, leaving the
    /// (all-zero) rest of both accumulators untouched. Byte-identical to a
    /// full [`FullConvAcc::merge`] whenever `other`'s unlisted planes are
    /// zero, since adding zero planes is the identity.
    ///
    /// # Panics
    /// Panics if the shapes differ or a plane index is out of range.
    pub fn merge_planes_from(&mut self, other: &FullConvAcc, planes: &[u16]) {
        assert!(
            self.out_c == other.out_c && self.fh == other.fh && self.fw == other.fw,
            "accumulator shape mismatch"
        );
        let plane = self.fh * self.fw;
        for &p in planes {
            let p = p as usize;
            assert!(p < self.out_c, "plane index out of bounds");
            let range = p * plane..(p + 1) * plane;
            for (dst, src) in self.data[range.clone()].iter_mut().zip(&other.data[range]) {
                *dst += src;
            }
        }
    }

    /// Zeroes the listed output-channel planes — the dirty-region reset a
    /// scratch arena performs before returning an accumulator to its pool,
    /// proportional to the planes actually written instead of the whole
    /// allocation.
    ///
    /// # Panics
    /// Panics if a plane index is out of range.
    pub fn zero_planes(&mut self, planes: &[u16]) {
        let plane = self.fh * self.fw;
        for &p in planes {
            let p = p as usize;
            assert!(p < self.out_c, "plane index out of bounds");
            self.data[p * plane..(p + 1) * plane].fill(0);
        }
    }

    /// Whether every accumulator word is zero (the pool invariant a scratch
    /// arena maintains between checkouts).
    pub fn is_all_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }

    /// Extracts the strided, padded convolution output:
    /// `out[oy][ox] = fc[oy·s + k−1−p][ox·s + k−1−p]` (paper §IV-C3 — the
    /// stride access is realized at the accumulate buffer). Full-conv
    /// positions that fall outside the plane contribute zero (they depend
    /// only on padding zeros).
    ///
    /// # Errors
    /// Propagates geometry validation errors.
    pub fn extract(
        &self,
        geom: ConvGeometry,
        out_h: usize,
        out_w: usize,
    ) -> Result<AccTensor3, QnnError> {
        let mut out = AccTensor3::zeros(self.out_c, out_h, out_w)?;
        let base = self.k as isize - 1 - geom.padding as isize;
        for oc in 0..self.out_c {
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let fy = base + (oy * geom.stride) as isize;
                    let fx = base + (ox * geom.stride) as isize;
                    if fy >= 0 && fx >= 0 && (fy as usize) < self.fh && (fx as usize) < self.fw {
                        out.set(oc, oy, ox, self.get(oc, fy as usize, fx as usize));
                    }
                }
            }
        }
        Ok(out)
    }
}

/// One condensed activation value: the pre-shifted sum of its atoms
/// (`Σ mag << shift`, i.e. the value's magnitude) plus its tile coordinate.
struct ValueRun {
    vsum: i64,
    y: u16,
    x: u16,
}

/// Left-shifts with an overflow guard: in debug builds, verifies the shift
/// is in range and loses no significant bits (a silent wrap here would
/// corrupt results on wide-precision extensions, e.g. 16-bit operands
/// whose aligned partial sums approach the top of `i64`). Plain `<<` does
/// not trap on value overflow even with debug assertions on, unlike `+`
/// and `*`, so the guard must be explicit.
#[inline]
pub(crate) fn shl_guarded(v: i64, shift: u32) -> i64 {
    debug_assert!(shift < i64::BITS, "shift {shift} out of range for i64");
    let r = v << shift;
    debug_assert_eq!(
        r >> shift,
        v,
        "i64 overflow in shifted accumulation ({v} << {shift})"
    );
    r
}

/// Signed sum of a weight stream's aligned atom terms,
/// `Σ ±(mag << shift)`, in `i128`. Together with [`act_value_sum`] this
/// gives the conservation law of one intersection: the total added to the
/// accumulator plane equals `weight_term_sum · act_value_sum`, because each
/// weight atom delivers `±(mag << shift) · vsum` once per activation value.
pub fn weight_term_sum(weights: &WeightStream) -> i128 {
    weights
        .entries()
        .iter()
        .map(|e| {
            let term = (e.atom.mag as i128) << e.atom.shift;
            if e.atom.negative {
                -term
            } else {
                term
            }
        })
        .sum()
}

/// Sum of an activation stream's decoded values, `Σ (mag << shift)`, in
/// `i128` — the activation side of the intersection conservation law.
pub fn act_value_sum(acts: &ActivationStream) -> i128 {
    acts.entries()
        .iter()
        .map(|e| (e.atom.mag as i128) << e.atom.shift)
        .sum()
}

/// Intersects a static weight stream with a sliding activation stream,
/// accumulating partial products into `acc` at tile origin
/// `(origin_y, origin_x)` (both in *input* coordinates).
///
/// Returns the work counters; `acc` is updated in place. The computation is
/// exact for any atom order in either stream.
///
/// The loop is activation-value–major: each activation value's atoms are
/// folded once into a pre-shifted sum (`Σ mag_a << shift_a`), then every
/// weight atom delivers `±(mag_w · vsum) << shift_w` per value. This is
/// bit-identical to the hardware's segment-major schedule — per weight atom
/// the delivered quantity `Σ (mag_w·mag_a) << shift_a` factors as
/// `mag_w · Σ mag_a << shift_a` by distributivity (exact in `i64`), and
/// deliveries land in the same stream order — but rescans the activation
/// stream once per weight atom *value count* instead of once per atom. The
/// hardware-schedule counters (`steps`, `atom_mults`, `segments`) follow
/// arithmetically from the stream lengths and are unchanged.
///
/// # Errors
/// Returns [`AtomError::WeightCoordOutOfKernel`] when a weight entry's
/// kernel coordinate lies outside `acc.kernel()` — the Eq 1 address
/// `k − 1 − x_w` would underflow, so the mismatch is rejected up front,
/// naming the offending atom, instead of surfacing as a misleading
/// "address out of bounds" panic deep in the accumulation loop.
///
/// # Panics
/// Panics if a generated address falls outside `acc` — which cannot happen
/// when `acc` was sized for the enclosing feature map and kernel.
pub fn intersect(
    weights: &WeightStream,
    acts: &ActivationStream,
    cfg: IntersectConfig,
    acc: &mut FullConvAcc,
    origin_y: usize,
    origin_x: usize,
) -> Result<IntersectStats, AtomError> {
    assert!(cfg.multipliers > 0, "need at least one multiplier");
    let k = acc.kernel();
    validate_weight_coords(weights, k)?;
    let s_total = weights.len() as u64;
    let t_total = acts.len() as u64;
    if s_total == 0 || t_total == 0 {
        return Ok(IntersectStats::default());
    }

    // Fold each activation value's atoms into one pre-shifted sum (the
    // decoupled shift of §IV-C2: only the activation shift is applied per
    // atom; the weight shift and sign are applied once at delivery).
    let mut values = Vec::with_capacity(acts.value_count());
    let mut vsum: i64 = 0;
    for a in acts.entries() {
        vsum += shl_guarded(a.atom.mag as i64, a.atom.shift as u32);
        if a.atom.last {
            values.push(ValueRun {
                vsum,
                y: a.y,
                x: a.x,
            });
            vsum = 0;
        }
    }
    debug_assert_eq!(vsum, 0, "activation stream must end on a last flag");

    for w in weights.entries() {
        // Eq 1 coordinates, full-convolution space; hoisted per weight atom.
        let base_y = origin_y + (k - 1 - w.y as usize);
        let base_x = origin_x + (k - 1 - w.x as usize);
        let mag = w.atom.mag as i64;
        let shift = w.atom.shift as u32;
        let out_ch = w.out_ch as usize;
        if w.atom.negative {
            for v in &values {
                let aligned = shl_guarded(mag * v.vsum, shift);
                acc.add(
                    out_ch,
                    base_y + v.y as usize,
                    base_x + v.x as usize,
                    -aligned,
                );
            }
        } else {
            for v in &values {
                let aligned = shl_guarded(mag * v.vsum, shift);
                acc.add(
                    out_ch,
                    base_y + v.y as usize,
                    base_x + v.x as usize,
                    aligned,
                );
            }
        }
    }

    // Hardware-schedule counters, derived arithmetically: every activation
    // atom meets every weight atom (t·S multiplications), each weight atom
    // delivers once per activation value, and the static stream splits into
    // ⌈S/N⌉ segments. Steps per the paper's Eq 3/4: the ping-pong weight
    // registers overlap segment drain with the next segment's fill, so only
    // the final segment's drain is exposed.
    let stats = IntersectStats::schedule(
        t_total,
        s_total,
        values.len() as u64,
        cfg.multipliers as u64,
    );
    // Observability: one bulk record per intersection, not per inner-loop
    // iteration — the hot loops above stay untouched.
    stats.record_obs(values.len() as u64);
    Ok(stats)
}

/// Rejects any weight entry whose kernel coordinate lies outside extent `k`
/// before the intersection loop can compute a wrapped Eq 1 address.
pub(crate) fn validate_weight_coords(weights: &WeightStream, k: usize) -> Result<(), AtomError> {
    for (index, w) in weights.entries().iter().enumerate() {
        if w.y as usize >= k || w.x as usize >= k {
            return Err(AtomError::WeightCoordOutOfKernel {
                index,
                x: w.x,
                y: w.y,
                kernel: k,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomBits;
    use crate::compress::{compress_activations, compress_weights};
    use crate::flatten::{FlatActivation, FlatWeight};

    fn acts(values: &[(i32, u16, u16)], bits: u8) -> ActivationStream {
        let flat: Vec<FlatActivation> = values
            .iter()
            .map(|&(value, x, y)| FlatActivation { value, x, y })
            .collect();
        compress_activations(&flat, bits, AtomBits::B2).unwrap()
    }

    fn weights(values: &[(i32, u16, u16, u16)], bits: u8) -> WeightStream {
        let flat: Vec<FlatWeight> = values
            .iter()
            .map(|&(value, x, y, out_ch)| FlatWeight {
                value,
                x,
                y,
                out_ch,
            })
            .collect();
        compress_weights(&flat, bits, AtomBits::B2).unwrap()
    }

    #[test]
    fn single_pair_reproduces_fig5() {
        // One activation 13 at (0,0), one weight -11 at kernel (0,0), k=1.
        let a = acts(&[(13, 0, 0)], 4);
        let w = weights(&[(-11, 0, 0, 0)], 8);
        let mut acc = FullConvAcc::new(1, 1, 1, 1).unwrap();
        let stats = intersect(&w, &a, IntersectConfig::default(), &mut acc, 0, 0).unwrap();
        assert_eq!(acc.get(0, 0, 0), -143);
        assert_eq!(stats.atom_mults, 4); // 2 act atoms x 2 weight atoms
        assert_eq!(stats.deliveries, 2); // one per weight atom
    }

    #[test]
    fn empty_streams_do_no_work() {
        let a = acts(&[], 4);
        let w = weights(&[(3, 0, 0, 0)], 4);
        let mut acc = FullConvAcc::new(1, 1, 1, 1).unwrap();
        assert_eq!(
            intersect(&w, &a, IntersectConfig::default(), &mut acc, 0, 0).unwrap(),
            IntersectStats::default()
        );
        let a = acts(&[(3, 0, 0)], 4);
        let w = weights(&[], 4);
        assert_eq!(
            intersect(&w, &a, IntersectConfig::default(), &mut acc, 0, 0).unwrap(),
            IntersectStats::default()
        );
        assert_eq!(acc.get(0, 0, 0), 0);
    }

    #[test]
    fn eq1_coordinates_full_convolution() {
        // 2x2 input, single weight at kernel (1,1) of a 2x2 kernel:
        // fc[y][x] += w * in[y_in][x_in] at fy = (k-1-1) + y_in = y_in.
        let a = acts(&[(1, 0, 0), (2, 1, 0), (3, 0, 1), (1, 1, 1)], 4);
        let w = weights(&[(1, 1, 1, 0)], 4);
        let mut acc = FullConvAcc::new(1, 2, 2, 2).unwrap();
        intersect(&w, &a, IntersectConfig::default(), &mut acc, 0, 0).unwrap();
        assert_eq!(acc.get(0, 0, 0), 1);
        assert_eq!(acc.get(0, 0, 1), 2);
        assert_eq!(acc.get(0, 1, 0), 3);
        assert_eq!(acc.get(0, 1, 1), 1);
        // Weight at kernel (0,0) lands at fy = y_in + 1 instead.
        let w2 = weights(&[(1, 0, 0, 0)], 4);
        let mut acc2 = FullConvAcc::new(1, 2, 2, 2).unwrap();
        intersect(&w2, &a, IntersectConfig::default(), &mut acc2, 0, 0).unwrap();
        assert_eq!(acc2.get(0, 1, 1), 1);
        assert_eq!(acc2.get(0, 2, 2), 1);
    }

    #[test]
    fn step_count_matches_eq3() {
        // 5 activation values of 1 atom each, 7 weight atoms, N = 3.
        let a = acts(&[(1, 0, 0), (2, 1, 0), (1, 2, 0), (2, 3, 0), (1, 4, 0)], 2);
        assert_eq!(a.len(), 5);
        let w = weights(
            &[
                (1, 0, 0, 0),
                (2, 1, 0, 0),
                (1, 2, 0, 1),
                (2, 0, 1, 1),
                (1, 1, 1, 2),
                (2, 2, 1, 2),
                (1, 0, 2, 3),
            ],
            2,
        );
        assert_eq!(w.len(), 7);
        let mut acc = FullConvAcc::new(4, 3, 5, 3).unwrap();
        let stats = intersect(&w, &a, IntersectConfig { multipliers: 3 }, &mut acc, 0, 0).unwrap();
        // ceil(7/3) = 3 segments; eps = mod(7,3)-1 = 0... mod=1 -> eps=0.
        assert_eq!(stats.segments, 3);
        assert_eq!(stats.steps, (5 * 3));
        assert_eq!(stats.atom_mults, 35);
    }

    #[test]
    fn extract_applies_stride_and_padding() {
        let mut acc = FullConvAcc::new(1, 3, 3, 2).unwrap();
        // Fill fc plane (4x4) with distinct values.
        for fy in 0..4 {
            for fx in 0..4 {
                acc.add(0, fy, fx, (fy * 10 + fx) as i64);
            }
        }
        // stride 1, pad 0: out[oy][ox] = fc[oy+1][ox+1].
        let out = acc.extract(ConvGeometry::default(), 2, 2).unwrap();
        assert_eq!(out.get(0, 0, 0), 11);
        assert_eq!(out.get(0, 1, 1), 22);
        // stride 2, pad 0: out[0][0] = fc[1][1], out[0][1] = fc[1][3].
        let g2 = ConvGeometry::new(2, 0).unwrap();
        let out2 = acc.extract(g2, 1, 2).unwrap();
        assert_eq!(out2.get(0, 0, 1), 13);
        // pad 1: out[0][0] = fc[0][0].
        let gp = ConvGeometry::unit_stride(1);
        let outp = acc.extract(gp, 4, 4).unwrap();
        assert_eq!(outp.get(0, 0, 0), 0);
        assert_eq!(outp.get(0, 1, 1), 11);
    }

    #[test]
    fn merge_reproduces_single_accumulator() {
        let a1 = acts(&[(9, 0, 0)], 4);
        let a2 = acts(&[(6, 1, 1)], 4);
        let w = weights(&[(7, 0, 0, 0), (-5, 1, 1, 1)], 4);
        let cfg = IntersectConfig::default();
        // Sequential: both intersections into one accumulator.
        let mut whole = FullConvAcc::new(2, 2, 2, 2).unwrap();
        intersect(&w, &a1, cfg, &mut whole, 0, 0).unwrap();
        intersect(&w, &a2, cfg, &mut whole, 0, 0).unwrap();
        // Split: one accumulator each, merged afterwards.
        let mut p1 = FullConvAcc::new(2, 2, 2, 2).unwrap();
        let mut p2 = FullConvAcc::new(2, 2, 2, 2).unwrap();
        intersect(&w, &a1, cfg, &mut p1, 0, 0).unwrap();
        intersect(&w, &a2, cfg, &mut p2, 0, 0).unwrap();
        p1.merge(&p2);
        assert_eq!(p1, whole);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = FullConvAcc::new(1, 2, 2, 2).unwrap();
        let b = FullConvAcc::new(1, 3, 3, 2).unwrap();
        a.merge(&b);
    }

    #[test]
    fn plane_total_obeys_conservation_law() {
        let a = acts(&[(9, 0, 0), (6, 1, 1), (13, 0, 1)], 4);
        let w = weights(&[(7, 0, 0, 0), (-5, 1, 1, 1), (3, 0, 1, 2)], 4);
        let mut acc = FullConvAcc::new(3, 2, 2, 2).unwrap();
        intersect(&w, &a, IntersectConfig::default(), &mut acc, 0, 0).unwrap();
        assert_eq!(acc.total_sum(), weight_term_sum(&w) * act_value_sum(&a));
        assert_eq!(weight_term_sum(&w), 7 - 5 + 3);
        assert_eq!(act_value_sum(&a), 9 + 6 + 13);
        // A single flipped bit in any accumulator word breaks the law.
        acc.cells_mut()[5] ^= 1 << 3;
        assert_ne!(acc.total_sum(), weight_term_sum(&w) * act_value_sum(&a));
        assert_eq!(acc.cells().len(), 3 * 3 * 3);
    }

    #[test]
    fn segment_count_independent_of_result() {
        let a = acts(&[(9, 0, 0), (6, 1, 1)], 4);
        let w = weights(&[(7, 0, 0, 0), (-5, 1, 1, 1), (3, 0, 1, 2)], 4);
        let mut acc_wide = FullConvAcc::new(3, 2, 2, 2).unwrap();
        let mut acc_narrow = FullConvAcc::new(3, 2, 2, 2).unwrap();
        let s1 = intersect(
            &w,
            &a,
            IntersectConfig { multipliers: 64 },
            &mut acc_wide,
            0,
            0,
        )
        .unwrap();
        let s2 = intersect(
            &w,
            &a,
            IntersectConfig { multipliers: 1 },
            &mut acc_narrow,
            0,
            0,
        )
        .unwrap();
        assert_eq!(acc_wide, acc_narrow);
        assert!(s2.steps > s1.steps);
        assert_eq!(s1.atom_mults, s2.atom_mults);
    }

    #[test]
    fn rejects_weight_coord_outside_kernel_extent() {
        use crate::atom::Atom;
        use crate::stream::WeightEntry;
        // A stream compiled for a 3x3 kernel run against a k=2 accumulator:
        // Eq 1's `k - 1 - y` would underflow for the entry at (2, 2).
        let entries = vec![
            WeightEntry {
                atom: Atom {
                    mag: 1,
                    shift: 0,
                    negative: false,
                    last: true,
                },
                x: 0,
                y: 0,
                out_ch: 0,
            },
            WeightEntry {
                atom: Atom {
                    mag: 2,
                    shift: 0,
                    negative: false,
                    last: true,
                },
                x: 2,
                y: 2,
                out_ch: 0,
            },
        ];
        let w = WeightStream::from_entries(entries);
        let a = acts(&[(3, 0, 0)], 4);
        let mut acc = FullConvAcc::new(1, 2, 2, 2).unwrap();
        let err = intersect(&w, &a, IntersectConfig::default(), &mut acc, 0, 0).unwrap_err();
        assert_eq!(
            err,
            AtomError::WeightCoordOutOfKernel {
                index: 1,
                x: 2,
                y: 2,
                kernel: 2,
            }
        );
        // Nothing may have been accumulated before the rejection.
        assert!(acc.is_all_zero());
    }

    #[test]
    fn new_rejects_overflowing_extents_with_typed_error() {
        // in + k - 1 overflows usize.
        assert_eq!(
            FullConvAcc::new(1, usize::MAX, 1, 2).unwrap_err(),
            QnnError::ExtentOverflow {
                what: "full-conv plane height"
            }
        );
        assert_eq!(
            FullConvAcc::new(1, 1, usize::MAX, 2).unwrap_err(),
            QnnError::ExtentOverflow {
                what: "full-conv plane width"
            }
        );
        // Extents fit but the cell product overflows.
        assert_eq!(
            FullConvAcc::new(usize::MAX, 2, 2, 2).unwrap_err(),
            QnnError::ExtentOverflow {
                what: "full-conv plane cells"
            }
        );
    }

    #[test]
    fn schedule_saturates_instead_of_wrapping() {
        // Adversarial atom counts whose products overflow u64: every counter
        // must clamp to u64::MAX, exactly like cycles::ideal_steps.
        let s = IntersectStats::schedule(u64::MAX, u64::MAX, u64::MAX, 32);
        assert_eq!(s.steps, u64::MAX);
        assert_eq!(s.atom_mults, u64::MAX);
        assert_eq!(s.deliveries, u64::MAX);
        assert_eq!(s.segments, u64::MAX.div_ceil(32));
        // Representable boundary: exact, no saturation.
        let exact = IntersectStats::schedule(5, 7, 3, 3);
        assert_eq!(exact.steps, crate::cycles::ideal_steps(5, 7, 3));
        assert_eq!(exact.atom_mults, 35);
        assert_eq!(exact.deliveries, 21);
        assert_eq!(exact.segments, 3);
        // Empty streams do no work.
        assert_eq!(
            IntersectStats::schedule(0, 7, 3, 3),
            IntersectStats::default()
        );
    }

    #[test]
    fn stats_merge_saturates() {
        let mut a = IntersectStats {
            steps: u64::MAX - 1,
            atom_mults: u64::MAX,
            deliveries: 1,
            segments: 0,
        };
        a.merge(&IntersectStats {
            steps: 5,
            atom_mults: 5,
            deliveries: 5,
            segments: 5,
        });
        assert_eq!(a.steps, u64::MAX);
        assert_eq!(a.atom_mults, u64::MAX);
        assert_eq!(a.deliveries, 6);
        assert_eq!(a.segments, 5);
    }

    #[test]
    fn plane_granular_merge_matches_full_merge() {
        let a1 = acts(&[(9, 0, 0), (5, 1, 0)], 4);
        let w = weights(&[(7, 0, 0, 0), (-5, 1, 1, 2)], 4);
        let cfg = IntersectConfig::default();
        let mut full = FullConvAcc::new(3, 2, 2, 2).unwrap();
        let mut part = FullConvAcc::new(3, 2, 2, 2).unwrap();
        intersect(&w, &a1, cfg, &mut part, 0, 0).unwrap();
        // Full merge of `part` vs plane-granular merge of only the planes
        // the weight stream touches (0 and 2): identical, because plane 1
        // of `part` is zero.
        let mut via_full = full.clone();
        via_full.merge(&part);
        full.merge_planes_from(&part, &[0, 2]);
        assert_eq!(full, via_full);
        // Dirty-region reset restores the all-zero pool invariant.
        assert!(!part.is_all_zero());
        part.zero_planes(&[0, 2]);
        assert!(part.is_all_zero());
    }

    #[test]
    #[should_panic(expected = "plane index out of bounds")]
    fn zero_planes_validates_indices() {
        let mut a = FullConvAcc::new(2, 2, 2, 2).unwrap();
        a.zero_planes(&[2]);
    }
}
