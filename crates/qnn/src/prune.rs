//! Magnitude pruning.
//!
//! The paper's DNN benchmark further prunes the quantized models "without
//! hurting the accuracy" (§V-A2). We model that as global magnitude pruning
//! to a target sparsity: the smallest-magnitude values are zeroed until the
//! target fraction of zeros is reached.

use crate::tensor::{Tensor3, Tensor4};

/// Zeroes the smallest-magnitude entries of `values` until at least
/// `target_sparsity` of all entries are zero. Existing zeros count toward
/// the target. Returns the number of values newly zeroed.
///
/// A `target_sparsity` of `0.0` is a no-op; `1.0` zeroes everything.
///
/// # Panics
/// Panics if `target_sparsity` is not within `[0, 1]`.
pub fn magnitude_prune(values: &mut [i32], target_sparsity: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&target_sparsity),
        "target sparsity {target_sparsity} outside [0, 1]"
    );
    let len = values.len();
    if len == 0 {
        return 0;
    }
    let want_zeros = (target_sparsity * len as f64).ceil() as usize;
    let have_zeros = values.iter().filter(|&&v| v == 0).count();
    if want_zeros <= have_zeros {
        return 0;
    }
    let need = want_zeros - have_zeros;
    // Select the `need` smallest magnitudes among the non-zeros.
    let mut mags: Vec<(u32, usize)> = values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0)
        .map(|(i, &v)| (v.unsigned_abs(), i))
        .collect();
    mags.select_nth_unstable(need - 1);
    let mut zeroed = 0;
    for &(_, i) in mags.iter().take(need) {
        values[i] = 0;
        zeroed += 1;
    }
    zeroed
}

/// Prunes a weight tensor in place to the target sparsity.
pub fn prune_weights(kernels: &mut Tensor4, target_sparsity: f64) -> usize {
    magnitude_prune(kernels.as_mut_slice(), target_sparsity)
}

/// Prunes an activation tensor in place to the target sparsity.
pub fn prune_activations(fmap: &mut Tensor3, target_sparsity: f64) -> usize {
    magnitude_prune(fmap.as_mut_slice(), target_sparsity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::value_density;

    #[test]
    fn prunes_smallest_magnitudes_first() {
        let mut v = vec![10, -1, 5, -7, 2, 3];
        magnitude_prune(&mut v, 0.5);
        assert_eq!(v.iter().filter(|&&x| x == 0).count(), 3);
        // The three largest magnitudes survive.
        assert!(v.contains(&10));
        assert!(v.contains(&-7));
        assert!(v.contains(&5));
    }

    #[test]
    fn existing_zeros_count_toward_target() {
        let mut v = vec![0, 0, 3, 4];
        let newly = magnitude_prune(&mut v, 0.5);
        assert_eq!(newly, 0);
        assert_eq!(v, vec![0, 0, 3, 4]);
    }

    #[test]
    fn zero_target_is_noop_and_one_clears_all() {
        let mut v = vec![1, 2, 3];
        assert_eq!(magnitude_prune(&mut v, 0.0), 0);
        assert_eq!(v, vec![1, 2, 3]);
        magnitude_prune(&mut v, 1.0);
        assert_eq!(v, vec![0, 0, 0]);
    }

    #[test]
    fn achieves_target_density() {
        let mut v: Vec<i32> = (1..=100).collect();
        magnitude_prune(&mut v, 0.73);
        assert!((value_density(&v) - 0.27).abs() < 0.011);
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<i32> = vec![];
        assert_eq!(magnitude_prune(&mut v, 0.5), 0);
    }
}
