//! Pooling layers.
//!
//! The benchmark networks interleave convolutions with max/average pooling;
//! the functional multi-layer pipeline needs them to chain layers the way
//! the real networks do (pooling runs in the post-processing path, not on
//! the compute tiles).

use crate::error::QnnError;
use crate::tensor::Tensor3;
use serde::{Deserialize, Serialize};

/// Pooling operator kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window (rounded toward zero, matching
    /// integer inference).
    Average,
}

/// Applies 2-D pooling with a square `window`, the given `stride`, and
/// zero padding `padding` (padding cells count as zero for both kinds,
/// matching the common inference-runtime convention).
///
/// Pinned edge-case conventions (relied on by the benchmark networks and
/// the differential harness):
///
/// - **Padding cells read as literal zeros for both kinds.** A Max window
///   that overlaps padding can therefore never go below 0, and a window
///   lying *entirely* in padding produces exactly 0 — not `i32::MIN`.
/// - **Average divides by the full window area** (`window²`), not by the
///   count of valid (non-padding) cells, and the division truncates toward
///   zero — the same convention as the PPU's requantization shift.
/// - **Max over all-negative inputs with no padding overlap** stays
///   negative (the true maximum); zeros are only introduced by padding.
///
/// ```
/// use qnn::pool::{pool2d, PoolKind};
/// use qnn::tensor::Tensor3;
/// let t = Tensor3::from_vec(1, 2, 2, vec![1, 5, 3, 2]).unwrap();
/// let p = pool2d(&t, PoolKind::Max, 2, 2, 0).unwrap();
/// assert_eq!(p.as_slice(), &[5]);
/// ```
///
/// # Errors
/// Returns [`QnnError::ZeroStride`] for a zero stride and
/// [`QnnError::KernelTooLarge`] when the padded input is smaller than the
/// window.
pub fn pool2d(
    fmap: &Tensor3,
    kind: PoolKind,
    window: usize,
    stride: usize,
    padding: usize,
) -> Result<Tensor3, QnnError> {
    if stride == 0 {
        return Err(QnnError::ZeroStride);
    }
    let (c, h, w) = fmap.shape();
    let geom = crate::conv::ConvGeometry { stride, padding };
    let out_h = geom.out_extent(h, window)?;
    let out_w = geom.out_extent(w, window)?;
    let mut out = Tensor3::zeros(c, out_h, out_w)?;
    let pad = padding as isize;
    for ci in 0..c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let base_y = (oy * stride) as isize - pad;
                let base_x = (ox * stride) as isize - pad;
                let v = match kind {
                    PoolKind::Max => {
                        let mut best = i32::MIN;
                        for ky in 0..window {
                            for kx in 0..window {
                                best = best.max(fmap.get_padded(
                                    ci,
                                    base_y + ky as isize,
                                    base_x + kx as isize,
                                ));
                            }
                        }
                        best
                    }
                    PoolKind::Average => {
                        let mut sum = 0i64;
                        for ky in 0..window {
                            for kx in 0..window {
                                sum +=
                                    fmap.get_padded(ci, base_y + ky as isize, base_x + kx as isize)
                                        as i64;
                            }
                        }
                        (sum / (window * window) as i64) as i32
                    }
                };
                out.set(ci, oy, ox, v);
            }
        }
    }
    Ok(out)
}

/// Global average pooling: collapses each channel to one value, the final
/// spatial reduction of GoogLeNet/ResNet-style networks.
pub fn global_average_pool(fmap: &Tensor3) -> Tensor3 {
    let (c, h, w) = fmap.shape();
    let n = (h * w) as i64;
    let mut out = Tensor3::zeros(c, 1, 1).expect("non-empty channels");
    for ci in 0..c {
        let sum: i64 = fmap.channel(ci).iter().map(|&v| v as i64).sum();
        out.set(ci, 0, 0, (sum / n) as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2_stride2() {
        let t = Tensor3::from_vec(1, 4, 4, (1..=16).collect()).unwrap();
        let p = pool2d(&t, PoolKind::Max, 2, 2, 0).unwrap();
        assert_eq!(p.shape(), (1, 2, 2));
        assert_eq!(p.as_slice(), &[6, 8, 14, 16]);
    }

    #[test]
    fn avg_pool_truncates_toward_zero() {
        let t = Tensor3::from_vec(1, 2, 2, vec![1, 2, 3, 5]).unwrap();
        let p = pool2d(&t, PoolKind::Average, 2, 2, 0).unwrap();
        assert_eq!(p.as_slice(), &[2]); // 11 / 4 = 2
    }

    #[test]
    fn overlapping_pool_3x3_stride2() {
        // AlexNet-style overlapping max pool.
        let t = Tensor3::from_fn(1, 5, 5, |_, y, x| (y * 5 + x) as i32).unwrap();
        let p = pool2d(&t, PoolKind::Max, 3, 2, 0).unwrap();
        assert_eq!(p.shape(), (1, 2, 2));
        assert_eq!(p.get(0, 1, 1), 24);
    }

    #[test]
    fn padded_pool_counts_zeros() {
        let t = Tensor3::from_vec(1, 1, 1, vec![-8]).unwrap();
        let p = pool2d(&t, PoolKind::Max, 3, 1, 1).unwrap();
        // Window contains the -8 plus 8 padding zeros -> max is 0.
        assert_eq!(p.get(0, 0, 0), 0);
    }

    #[test]
    fn fully_padding_windows_produce_zero() {
        // 1×1 input, window 1, stride 2, padding 1 -> 2×2 output where all
        // four 1×1 windows land on padding coordinates (±1 offsets around
        // the single data cell); every window lies entirely in padding and
        // must read 0 for both kinds (never i32::MIN for Max).
        let t = Tensor3::from_vec(1, 1, 1, vec![-7]).unwrap();
        let max = pool2d(&t, PoolKind::Max, 1, 2, 1).unwrap();
        assert_eq!(max.shape(), (1, 2, 2));
        assert_eq!(max.as_slice(), &[0, 0, 0, 0]);
        let avg = pool2d(&t, PoolKind::Average, 1, 2, 1).unwrap();
        assert_eq!(avg.as_slice(), &[0, 0, 0, 0]);
        // Stride 1 keeps the centre window on the data cell: the -7
        // survives, so padding zeros are genuinely per-window.
        let center = pool2d(&t, PoolKind::Max, 1, 1, 1).unwrap();
        assert_eq!(center.shape(), (1, 3, 3));
        assert_eq!(center.get(0, 1, 1), -7);
        assert_eq!(center.get(0, 0, 0), 0);
    }

    #[test]
    fn average_divides_by_window_area_not_valid_cells() {
        // Corner window covers one real cell (4) and three padding zeros:
        // the divisor is the window area 4, giving 4/4 = 1 — not 4/1 = 4 as
        // a valid-cell-count convention would.
        let t = Tensor3::from_vec(1, 2, 2, vec![4, 4, 4, 4]).unwrap();
        let p = pool2d(&t, PoolKind::Average, 2, 2, 1).unwrap();
        assert_eq!(p.shape(), (1, 2, 2));
        assert_eq!(p.as_slice(), &[1, 1, 1, 1]);
    }

    #[test]
    fn max_over_all_negative_inputs_without_padding_stays_negative() {
        let t = Tensor3::from_vec(1, 2, 2, vec![-9, -3, -5, -7]).unwrap();
        let p = pool2d(&t, PoolKind::Max, 2, 2, 0).unwrap();
        assert_eq!(p.as_slice(), &[-3]);
        // With padding, the zeros win — padding is a real 0, not ignored.
        let padded = pool2d(&t, PoolKind::Max, 2, 2, 1).unwrap();
        assert_eq!(padded.as_slice(), &[0, 0, 0, 0]);
    }

    #[test]
    fn negative_average_truncates_toward_zero() {
        // Sum -11 over area 4: trunc(-11/4) = -2, not floor(-11/4) = -3.
        let t = Tensor3::from_vec(1, 2, 2, vec![-1, -2, -3, -5]).unwrap();
        let p = pool2d(&t, PoolKind::Average, 2, 2, 0).unwrap();
        assert_eq!(p.as_slice(), &[-2]);
    }

    #[test]
    fn per_channel_independence() {
        let t = Tensor3::from_vec(2, 2, 2, vec![1, 2, 3, 4, 40, 30, 20, 10]).unwrap();
        let p = pool2d(&t, PoolKind::Max, 2, 2, 0).unwrap();
        assert_eq!(p.as_slice(), &[4, 40]);
    }

    #[test]
    fn global_average() {
        let t = Tensor3::from_vec(2, 2, 2, vec![1, 2, 3, 4, 10, 10, 10, 10]).unwrap();
        let g = global_average_pool(&t);
        assert_eq!(g.shape(), (2, 1, 1));
        assert_eq!(g.as_slice(), &[2, 10]);
    }

    #[test]
    fn geometry_validation() {
        let t = Tensor3::from_vec(1, 2, 2, vec![0; 4]).unwrap();
        assert!(pool2d(&t, PoolKind::Max, 2, 0, 0).is_err());
        assert!(pool2d(&t, PoolKind::Max, 5, 1, 0).is_err());
    }
}
