//! Uniform quantization, as used for the paper's Figure 1 sparsity study and
//! the DNN benchmark models.
//!
//! Weights are quantized with a *symmetric signed* quantizer (range
//! `[-(2^{b-1}-1), 2^{b-1}-1]`), activations with an *unsigned* quantizer
//! (range `[0, 2^b - 1]`) because ReLU precedes quantization (§III-A of the
//! paper). Both clip at a configurable range and round to nearest.

use crate::error::QnnError;
use serde::{Deserialize, Serialize};

/// A supported quantization bit-width (1..=16).
///
/// The paper evaluates 2/4/8-bit models plus EdMIPS-style mixed 2/4-bit
/// models; Figure 1 additionally includes 6-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitWidth(u8);

impl BitWidth {
    /// 2-bit quantization.
    pub const W2: BitWidth = BitWidth(2);
    /// 4-bit quantization.
    pub const W4: BitWidth = BitWidth(4);
    /// 6-bit quantization.
    pub const W6: BitWidth = BitWidth(6);
    /// 8-bit quantization.
    pub const W8: BitWidth = BitWidth(8);
    /// 16-bit quantization (supported via spatial extension / temporal
    /// decomposition, §IV-D).
    pub const W16: BitWidth = BitWidth(16);

    /// Creates a bit-width, validating the supported range.
    ///
    /// # Errors
    /// Returns [`QnnError::UnsupportedBitWidth`] outside `1..=16`.
    pub fn new(bits: u8) -> Result<Self, QnnError> {
        if (1..=16).contains(&bits) {
            Ok(BitWidth(bits))
        } else {
            Err(QnnError::UnsupportedBitWidth(bits))
        }
    }

    /// The raw number of bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Largest representable magnitude for a symmetric signed value:
    /// `2^{b-1} - 1`.
    pub fn signed_max(self) -> i32 {
        if self.0 == 1 {
            1
        } else {
            (1i32 << (self.0 - 1)) - 1
        }
    }

    /// Largest representable unsigned value: `2^b - 1`.
    pub fn unsigned_max(self) -> i32 {
        ((1i64 << self.0) - 1) as i32
    }

    /// Checks that a signed value fits this width.
    ///
    /// # Errors
    /// Returns [`QnnError::ValueOutOfRange`] when `|v|` exceeds
    /// [`Self::signed_max`].
    pub fn check_signed(self, v: i32) -> Result<(), QnnError> {
        if v.abs() > self.signed_max() {
            Err(QnnError::ValueOutOfRange {
                value: v as i64,
                bits: self.0,
            })
        } else {
            Ok(())
        }
    }

    /// Checks that an unsigned value fits this width.
    ///
    /// # Errors
    /// Returns [`QnnError::ValueOutOfRange`] when `v` is negative or exceeds
    /// [`Self::unsigned_max`].
    pub fn check_unsigned(self, v: i32) -> Result<(), QnnError> {
        if v < 0 || v > self.unsigned_max() {
            Err(QnnError::ValueOutOfRange {
                value: v as i64,
                bits: self.0,
            })
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Display for BitWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}b", self.0)
    }
}

impl TryFrom<u8> for BitWidth {
    type Error = QnnError;

    fn try_from(bits: u8) -> Result<Self, Self::Error> {
        BitWidth::new(bits)
    }
}

/// Whether a quantizer produces signed (symmetric) or unsigned values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signedness {
    /// Symmetric signed range `[-(2^{b-1}-1), 2^{b-1}-1]` (weights).
    Signed,
    /// Unsigned range `[0, 2^b - 1]` (post-ReLU activations).
    Unsigned,
}

/// A uniform quantizer: `q = clamp(round(x / step))` with a fixed step size
/// derived from the clip range.
///
/// ```
/// use qnn::quant::Quantizer;
/// let q = Quantizer::symmetric(4, 1.0); // clip at ±1.0, 4-bit signed
/// assert_eq!(q.quantize(1.0), 7);
/// assert_eq!(q.quantize(-2.0), -7); // clipped
/// assert_eq!(q.quantize(0.01), 0);  // rounds into the zero bin
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    bits: BitWidth,
    signedness: Signedness,
    step: f32,
}

impl Quantizer {
    /// Symmetric signed quantizer clipping at `±clip`.
    ///
    /// # Panics
    /// Panics if `bits` is outside `1..=16` or `clip` is not positive.
    pub fn symmetric(bits: u8, clip: f32) -> Self {
        let bits = BitWidth::new(bits).expect("bit-width in 1..=16");
        assert!(clip > 0.0, "clip range must be positive");
        Self {
            bits,
            signedness: Signedness::Signed,
            step: clip / bits.signed_max() as f32,
        }
    }

    /// Unsigned quantizer clipping at `[0, clip]`.
    ///
    /// # Panics
    /// Panics if `bits` is outside `1..=16` or `clip` is not positive.
    pub fn unsigned(bits: u8, clip: f32) -> Self {
        let bits = BitWidth::new(bits).expect("bit-width in 1..=16");
        assert!(clip > 0.0, "clip range must be positive");
        Self {
            bits,
            signedness: Signedness::Unsigned,
            step: clip / bits.unsigned_max() as f32,
        }
    }

    /// The quantization step size (scale).
    pub fn step(&self) -> f32 {
        self.step
    }

    /// The configured bit-width.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Whether this quantizer is signed.
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }

    /// Quantizes a single value to the integer grid.
    pub fn quantize(&self, x: f32) -> i32 {
        let q = (x / self.step).round() as i64;
        let q = match self.signedness {
            Signedness::Signed => {
                let m = self.bits.signed_max() as i64;
                q.clamp(-m, m)
            }
            Signedness::Unsigned => q.clamp(0, self.bits.unsigned_max() as i64),
        };
        q as i32
    }

    /// Maps a quantized integer back to the real line.
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.step
    }

    /// Quantizes a slice of values.
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<i32> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }
}

/// Clip-range multiplier (in units of the tensor's standard deviation) used
/// by the synthetic model calibration for *weights* at a given bit-width.
///
/// Learned clipping in low-bit quantization shrinks the clip range as the
/// bit-width decreases; these multipliers reproduce the unpruned weight
/// sparsity trend of the paper's Figure 1 (≈2% at 8-bit rising to ≈47% at
/// 2-bit for Laplacian-distributed weights).
pub fn weight_clip_multiplier(bits: BitWidth) -> f32 {
    match bits.bits() {
        0..=2 => 1.0,
        3..=4 => 2.0,
        5..=6 => 3.0,
        _ => 4.0,
    }
}

/// Clip-range multiplier for *activations* (in units of the pre-activation
/// standard deviation).
pub fn activation_clip_multiplier(bits: BitWidth) -> f32 {
    match bits.bits() {
        0..=2 => 1.5,
        3..=4 => 2.5,
        5..=6 => 3.5,
        _ => 4.0,
    }
}

/// Extra shift of the pre-activation mean (in σ units) applied when a model
/// is *retrained* at a low bit-width.
///
/// Low-bit retraining empirically yields sparser activations (paper Fig 1:
/// activation sparsity grows from ~50% at 8-bit to 75.25% average at 2-bit).
/// Quantization alone cannot reproduce that growth — the retrained network's
/// activation distribution itself shifts — so the synthetic workload
/// generator shifts the pre-activation mean by this amount. Documented as a
/// substitution in DESIGN.md §2.
pub fn retrain_sparsity_shift(bits: BitWidth) -> f32 {
    match bits.bits() {
        0..=2 => 0.62,
        3..=4 => 0.30,
        5..=6 => 0.12,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwidth_ranges() {
        assert_eq!(BitWidth::W2.signed_max(), 1);
        assert_eq!(BitWidth::W4.signed_max(), 7);
        assert_eq!(BitWidth::W8.signed_max(), 127);
        assert_eq!(BitWidth::W2.unsigned_max(), 3);
        assert_eq!(BitWidth::W8.unsigned_max(), 255);
        assert_eq!(BitWidth::W16.unsigned_max(), 65535);
        assert!(BitWidth::new(0).is_err());
        assert!(BitWidth::new(17).is_err());
    }

    #[test]
    fn bitwidth_checks() {
        assert!(BitWidth::W4.check_signed(7).is_ok());
        assert!(BitWidth::W4.check_signed(-7).is_ok());
        assert!(BitWidth::W4.check_signed(8).is_err());
        assert!(BitWidth::W4.check_unsigned(15).is_ok());
        assert!(BitWidth::W4.check_unsigned(16).is_err());
        assert!(BitWidth::W4.check_unsigned(-1).is_err());
    }

    #[test]
    fn symmetric_quantizer_clips_and_rounds() {
        let q = Quantizer::symmetric(8, 2.0);
        assert_eq!(q.quantize(2.0), 127);
        assert_eq!(q.quantize(-5.0), -127);
        assert_eq!(q.quantize(0.0), 0);
        // step = 2/127; a value of half a step rounds away from zero.
        assert_eq!(q.quantize(2.0 / 127.0 * 0.51), 1);
        assert_eq!(q.quantize(2.0 / 127.0 * 0.49), 0);
    }

    #[test]
    fn unsigned_quantizer_clamps_negatives() {
        let q = Quantizer::unsigned(4, 1.5);
        assert_eq!(q.quantize(-0.3), 0);
        assert_eq!(q.quantize(1.5), 15);
        assert_eq!(q.quantize(10.0), 15);
    }

    #[test]
    fn dequantize_inverts_on_grid() {
        let q = Quantizer::symmetric(6, 1.0);
        for v in -31..=31 {
            assert_eq!(q.quantize(q.dequantize(v)), v);
        }
    }

    #[test]
    fn clip_multipliers_monotone_in_bits() {
        let widths = [BitWidth::W2, BitWidth::W4, BitWidth::W6, BitWidth::W8];
        for pair in widths.windows(2) {
            assert!(weight_clip_multiplier(pair[0]) <= weight_clip_multiplier(pair[1]));
            assert!(activation_clip_multiplier(pair[0]) <= activation_clip_multiplier(pair[1]));
            assert!(retrain_sparsity_shift(pair[0]) >= retrain_sparsity_shift(pair[1]));
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(BitWidth::W4.to_string(), "4b");
    }
}
