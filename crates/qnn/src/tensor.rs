//! Integer tensor containers for quantized activations and weights.
//!
//! Activations live in a [`Tensor3`] laid out as `(channel, row, col)` and
//! weights in a [`Tensor4`] laid out as `(out_channel, in_channel, row, col)`.
//! Values are `i32` — wide enough for any quantized precision the paper uses
//! (2..=16 bit) while keeping accumulation overflow analysis simple.

use crate::error::QnnError;
use serde::{Deserialize, Serialize};

/// A 3-D integer tensor holding a (quantized) feature map, laid out
/// `(channels, height, width)` row-major.
///
/// ```
/// use qnn::tensor::Tensor3;
/// let t = Tensor3::from_vec(1, 2, 2, vec![1, 2, 3, 4]).unwrap();
/// assert_eq!(t.get(0, 1, 0), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor3 {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<i32>,
}

impl Tensor3 {
    /// Creates a zero-filled tensor of shape `(c, h, w)`.
    ///
    /// # Errors
    /// Returns [`QnnError::EmptyDimension`] if any extent is zero.
    pub fn zeros(c: usize, h: usize, w: usize) -> Result<Self, QnnError> {
        Self::check_dims(c, h, w)?;
        Ok(Self {
            c,
            h,
            w,
            data: vec![0; c * h * w],
        })
    }

    /// Wraps an existing buffer as a tensor of shape `(c, h, w)`.
    ///
    /// # Errors
    /// Returns [`QnnError::ShapeMismatch`] if `data.len() != c * h * w` and
    /// [`QnnError::EmptyDimension`] if any extent is zero.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<i32>) -> Result<Self, QnnError> {
        Self::check_dims(c, h, w)?;
        if data.len() != c * h * w {
            return Err(QnnError::ShapeMismatch {
                expected: c * h * w,
                actual: data.len(),
            });
        }
        Ok(Self { c, h, w, data })
    }

    /// Builds a tensor by evaluating `f(c, y, x)` at every coordinate.
    pub fn from_fn(
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize) -> i32,
    ) -> Result<Self, QnnError> {
        let mut t = Self::zeros(c, h, w)?;
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let v = f(ci, y, x);
                    t.set(ci, y, x, v);
                }
            }
        }
        Ok(t)
    }

    fn check_dims(c: usize, h: usize, w: usize) -> Result<(), QnnError> {
        if c == 0 {
            return Err(QnnError::EmptyDimension("c"));
        }
        if h == 0 {
            return Err(QnnError::EmptyDimension("h"));
        }
        if w == 0 {
            return Err(QnnError::EmptyDimension("w"));
        }
        Ok(())
    }

    /// Shape as `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true for a constructed tensor).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        (c * self.h + y) * self.w + x
    }

    /// Returns the value at `(c, y, x)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> i32 {
        self.data[self.index(c, y, x)]
    }

    /// Returns the value at `(c, y, x)` treating out-of-bounds spatial
    /// coordinates as zero padding. `y`/`x` are signed to allow padding.
    #[inline]
    pub fn get_padded(&self, c: usize, y: isize, x: isize) -> i32 {
        if y < 0 || x < 0 || y as usize >= self.h || x as usize >= self.w {
            0
        } else {
            self.get(c, y as usize, x as usize)
        }
    }

    /// Sets the value at `(c, y, x)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: i32) {
        let i = self.index(c, y, x);
        self.data[i] = v;
    }

    /// Flat view of the underlying buffer (`(c*h + y)*w + x` order).
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Mutable flat view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<i32> {
        self.data
    }

    /// Iterates over `(c, y, x, value)` in layout order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, usize, i32)> + '_ {
        let (h, w) = (self.h, self.w);
        self.data.iter().enumerate().map(move |(i, &v)| {
            let x = i % w;
            let y = (i / w) % h;
            let c = i / (w * h);
            (c, y, x, v)
        })
    }

    /// Borrowed view of one channel plane as a slice of length `h * w`.
    ///
    /// # Panics
    /// Panics if `c` is out of bounds.
    pub fn channel(&self, c: usize) -> &[i32] {
        assert!(
            c < self.c,
            "channel {c} out of bounds ({} channels)",
            self.c
        );
        let plane = self.h * self.w;
        &self.data[c * plane..(c + 1) * plane]
    }

    /// Extracts a spatial tile `[y0, y0+th) x [x0, x0+tw)` of channel `c`,
    /// clamping at the tensor boundary (missing cells are zero-filled).
    pub fn tile(&self, c: usize, y0: usize, x0: usize, th: usize, tw: usize) -> Vec<i32> {
        let mut out = vec![0; th * tw];
        for dy in 0..th {
            for dx in 0..tw {
                let (y, x) = (y0 + dy, x0 + dx);
                if y < self.h && x < self.w {
                    out[dy * tw + dx] = self.get(c, y, x);
                }
            }
        }
        out
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }
}

/// A 4-D integer tensor holding (quantized) convolution kernels, laid out
/// `(out_channels, in_channels, kernel_h, kernel_w)` row-major.
///
/// ```
/// use qnn::tensor::Tensor4;
/// let k = Tensor4::from_vec(1, 1, 2, 2, vec![1, -1, 2, -2]).unwrap();
/// assert_eq!(k.get(0, 0, 1, 1), -2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor4 {
    o: usize,
    i: usize,
    kh: usize,
    kw: usize,
    data: Vec<i32>,
}

impl Tensor4 {
    /// Creates a zero-filled kernel tensor of shape `(o, i, kh, kw)`.
    ///
    /// # Errors
    /// Returns [`QnnError::EmptyDimension`] if any extent is zero.
    pub fn zeros(o: usize, i: usize, kh: usize, kw: usize) -> Result<Self, QnnError> {
        Self::check_dims(o, i, kh, kw)?;
        Ok(Self {
            o,
            i,
            kh,
            kw,
            data: vec![0; o * i * kh * kw],
        })
    }

    /// Wraps an existing buffer as a kernel tensor of shape `(o, i, kh, kw)`.
    ///
    /// # Errors
    /// Returns [`QnnError::ShapeMismatch`] on a length mismatch and
    /// [`QnnError::EmptyDimension`] if any extent is zero.
    pub fn from_vec(
        o: usize,
        i: usize,
        kh: usize,
        kw: usize,
        data: Vec<i32>,
    ) -> Result<Self, QnnError> {
        Self::check_dims(o, i, kh, kw)?;
        if data.len() != o * i * kh * kw {
            return Err(QnnError::ShapeMismatch {
                expected: o * i * kh * kw,
                actual: data.len(),
            });
        }
        Ok(Self { o, i, kh, kw, data })
    }

    /// Builds a kernel tensor by evaluating `f(o, i, ky, kx)` everywhere.
    pub fn from_fn(
        o: usize,
        i: usize,
        kh: usize,
        kw: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> i32,
    ) -> Result<Self, QnnError> {
        let mut t = Self::zeros(o, i, kh, kw)?;
        for oi in 0..o {
            for ii in 0..i {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let v = f(oi, ii, ky, kx);
                        t.set(oi, ii, ky, kx, v);
                    }
                }
            }
        }
        Ok(t)
    }

    fn check_dims(o: usize, i: usize, kh: usize, kw: usize) -> Result<(), QnnError> {
        if o == 0 {
            return Err(QnnError::EmptyDimension("o"));
        }
        if i == 0 {
            return Err(QnnError::EmptyDimension("i"));
        }
        if kh == 0 {
            return Err(QnnError::EmptyDimension("kh"));
        }
        if kw == 0 {
            return Err(QnnError::EmptyDimension("kw"));
        }
        Ok(())
    }

    /// Shape as `(out_channels, in_channels, kernel_h, kernel_w)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.o, self.i, self.kh, self.kw)
    }

    /// Number of output channels (kernels).
    pub fn out_channels(&self) -> usize {
        self.o
    }

    /// Number of input channels per kernel.
    pub fn in_channels(&self) -> usize {
        self.i
    }

    /// Kernel height.
    pub fn kernel_h(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kernel_w(&self) -> usize {
        self.kw
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true for a constructed tensor).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, o: usize, i: usize, ky: usize, kx: usize) -> usize {
        debug_assert!(o < self.o && i < self.i && ky < self.kh && kx < self.kw);
        ((o * self.i + i) * self.kh + ky) * self.kw + kx
    }

    /// Returns the weight at `(o, i, ky, kx)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, o: usize, i: usize, ky: usize, kx: usize) -> i32 {
        self.data[self.index(o, i, ky, kx)]
    }

    /// Sets the weight at `(o, i, ky, kx)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, o: usize, i: usize, ky: usize, kx: usize, v: i32) {
        let idx = self.index(o, i, ky, kx);
        self.data[idx] = v;
    }

    /// Flat view of the underlying buffer.
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Mutable flat view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<i32> {
        self.data
    }

    /// Iterates over `(o, i, ky, kx, value)` in layout order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, usize, usize, i32)> + '_ {
        let (i_c, kh, kw) = (self.i, self.kh, self.kw);
        self.data.iter().enumerate().map(move |(idx, &v)| {
            let kx = idx % kw;
            let ky = (idx / kw) % kh;
            let ii = (idx / (kw * kh)) % i_c;
            let oi = idx / (kw * kh * i_c);
            (oi, ii, ky, kx, v)
        })
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }

    /// The 2-D slice of kernel `o` for input channel `i`, as a `kh*kw` slice.
    ///
    /// # Panics
    /// Panics if `o` or `i` is out of bounds.
    pub fn kernel_slice(&self, o: usize, i: usize) -> &[i32] {
        assert!(
            o < self.o && i < self.i,
            "kernel slice ({o},{i}) out of bounds"
        );
        let plane = self.kh * self.kw;
        let base = (o * self.i + i) * plane;
        &self.data[base..base + plane]
    }
}

/// A 3-D `i64` accumulator tensor used for convolution outputs, laid out like
/// [`Tensor3`]: `(channels, height, width)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccTensor3 {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<i64>,
}

impl AccTensor3 {
    /// Creates a zero-filled accumulator tensor of shape `(c, h, w)`.
    ///
    /// # Errors
    /// Returns [`QnnError::EmptyDimension`] if any extent is zero.
    pub fn zeros(c: usize, h: usize, w: usize) -> Result<Self, QnnError> {
        Tensor3::check_dims(c, h, w)?;
        Ok(Self {
            c,
            h,
            w,
            data: vec![0; c * h * w],
        })
    }

    /// Shape as `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true for a constructed tensor).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        (c * self.h + y) * self.w + x
    }

    /// Returns the accumulated value at `(c, y, x)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> i64 {
        self.data[self.index(c, y, x)]
    }

    /// Sets the value at `(c, y, x)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: i64) {
        let i = self.index(c, y, x);
        self.data[i] = v;
    }

    /// Adds `v` into the accumulator at `(c, y, x)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn add(&mut self, c: usize, y: usize, x: usize, v: i64) {
        let i = self.index(c, y, x);
        self.data[i] += v;
    }

    /// Flat view of the underlying buffer.
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }

    /// Applies ReLU followed by saturation into `bits`-wide unsigned range
    /// and a right shift (requantization), producing an activation tensor
    /// for the next layer.
    ///
    /// This is the functional model of Ristretto's post-processing unit.
    ///
    /// The shift divides by `2^shift` rounding **toward zero**, matching
    /// `pool2d`'s Average divisor semantics (Rust integer division). A plain
    /// arithmetic right shift would instead round negative accumulators
    /// toward −∞; the distinction is masked by the subsequent ReLU here, but
    /// the convention is pinned so every consumer of the shift helper agrees.
    pub fn requantize_relu(&self, shift: u32, bits: u8) -> Tensor3 {
        let max = (1i64 << bits.min(32)) - 1;
        let data = self
            .data
            .iter()
            .map(|&v| {
                let v = shift_toward_zero(v, shift).max(0).min(max);
                v as i32
            })
            .collect();
        Tensor3 {
            c: self.c,
            h: self.h,
            w: self.w,
            data,
        }
    }
}

/// Divides `v` by `2^shift` rounding toward zero (truncating division, the
/// same convention as `pool2d` Average). An arithmetic right shift alone
/// rounds negative values toward −∞; this compensates by adding one when a
/// negative value had any dropped low bits. Shifts ≥ 64 saturate to 0 / −1
/// semantics-free: every magnitude shifts out, so the result is 0.
#[inline]
fn shift_toward_zero(v: i64, shift: u32) -> i64 {
    if shift == 0 {
        return v;
    }
    if shift >= 64 {
        return 0;
    }
    let q = v >> shift;
    if v < 0 && (v & (((1u64 << shift) - 1) as i64)) != 0 {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor3_roundtrip_and_indexing() {
        let t = Tensor3::from_fn(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as i32).unwrap();
        assert_eq!(t.shape(), (2, 3, 4));
        assert_eq!(t.get(1, 2, 3), 123);
        assert_eq!(t.channel(1)[2 * 4 + 3], 123);
        let collected: Vec<_> = t.iter_indexed().collect();
        assert_eq!(collected.len(), 24);
        assert_eq!(collected[0], (0, 0, 0, 0));
        assert_eq!(collected[23], (1, 2, 3, 123));
    }

    #[test]
    fn tensor3_rejects_bad_shapes() {
        assert_eq!(
            Tensor3::zeros(0, 1, 1).unwrap_err(),
            QnnError::EmptyDimension("c")
        );
        assert_eq!(
            Tensor3::from_vec(1, 2, 2, vec![0; 3]).unwrap_err(),
            QnnError::ShapeMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn tensor3_padded_reads() {
        let t = Tensor3::from_vec(1, 2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t.get_padded(0, -1, 0), 0);
        assert_eq!(t.get_padded(0, 0, 2), 0);
        assert_eq!(t.get_padded(0, 1, 1), 4);
    }

    #[test]
    fn tensor3_tile_clamps_at_boundary() {
        let t = Tensor3::from_fn(1, 3, 3, |_, y, x| (y * 3 + x) as i32 + 1).unwrap();
        let tile = t.tile(0, 2, 2, 2, 2);
        assert_eq!(tile, vec![9, 0, 0, 0]);
    }

    #[test]
    fn tensor4_roundtrip_and_slices() {
        let k = Tensor4::from_fn(2, 3, 2, 2, |o, i, ky, kx| {
            (o * 1000 + i * 100 + ky * 10 + kx) as i32
        })
        .unwrap();
        assert_eq!(k.get(1, 2, 1, 0), 1210);
        assert_eq!(k.kernel_slice(1, 2), &[1200, 1201, 1210, 1211]);
        assert_eq!(k.iter_indexed().count(), 24);
        let last = k.iter_indexed().last().unwrap();
        assert_eq!(last, (1, 2, 1, 1, 1211));
    }

    #[test]
    fn acc_tensor_requantize_relu_saturates() {
        let mut a = AccTensor3::zeros(1, 1, 4).unwrap();
        a.set(0, 0, 0, -5);
        a.set(0, 0, 1, 1024);
        a.set(0, 0, 2, 12);
        a.set(0, 0, 3, 3);
        let q = a.requantize_relu(2, 4);
        assert_eq!(q.as_slice(), &[0, 15, 3, 0]);
    }

    #[test]
    fn shift_toward_zero_matches_truncating_division() {
        // The pinned convention: v / 2^shift with Rust (truncating) division.
        for &v in &[-17i64, -16, -8, -7, -5, -1, 0, 1, 5, 7, 8, 16, 17] {
            for shift in 0..8u32 {
                assert_eq!(
                    shift_toward_zero(v, shift),
                    v / (1i64 << shift),
                    "v={v} shift={shift}"
                );
            }
        }
        // -5 >> 2 == -2 (toward -inf); the convention demands -1.
        assert_eq!(shift_toward_zero(-5, 2), -1);
        // Exact multiples are unaffected by the rounding compensation.
        assert_eq!(shift_toward_zero(-8, 2), -2);
    }

    #[test]
    fn shift_toward_zero_extreme_shifts() {
        assert_eq!(shift_toward_zero(i64::MIN, 63), -1);
        assert_eq!(shift_toward_zero(i64::MIN + 1, 63), 0);
        assert_eq!(shift_toward_zero(i64::MAX, 63), 0);
        assert_eq!(shift_toward_zero(-1, 1), 0);
        assert_eq!(shift_toward_zero(i64::MIN, 64), 0);
        assert_eq!(shift_toward_zero(42, u32::MAX), 0);
    }

    #[test]
    fn requantize_relu_negative_accumulators_clamp_to_zero() {
        // Negative accumulators must hit exactly 0 after the shift+ReLU; the
        // old toward−∞ shift produced the same output only because ReLU
        // masks it — this pins the composed behaviour regardless.
        let mut a = AccTensor3::zeros(1, 1, 3).unwrap();
        a.set(0, 0, 0, -1);
        a.set(0, 0, 1, -1024);
        a.set(0, 0, 2, 7);
        let q = a.requantize_relu(3, 8);
        assert_eq!(q.as_slice(), &[0, 0, 0]);
    }

    #[test]
    fn count_nonzero_matches_manual() {
        let t = Tensor3::from_vec(1, 2, 2, vec![0, 5, 0, -1]).unwrap();
        assert_eq!(t.count_nonzero(), 2);
        let k = Tensor4::from_vec(1, 1, 2, 2, vec![0, 0, 7, 0]).unwrap();
        assert_eq!(k.count_nonzero(), 1);
    }
}
