//! Convolution layer descriptors.
//!
//! Every accelerator model in this reproduction consumes layers through
//! [`ConvLayer`]: geometry plus derived work counts. Fully connected layers
//! are expressed as 1×1 convolutions over a 1×1 spatial extent, the standard
//! trick all the baselines in the paper use as well.

use crate::conv::ConvGeometry;
use crate::error::QnnError;
use serde::{Deserialize, Serialize};

/// The kind of a layer, for reporting purposes. Depthwise convolutions are
/// intentionally absent: the paper omits MobileNets because none of the
/// baselines support depthwise layers in their PEs (§V-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// A standard (dense-channel) 2-D convolution.
    Conv,
    /// A fully connected layer, modelled as a 1×1 convolution on a 1×1 map.
    FullyConnected,
}

/// Geometry of one convolutional layer plus derived work counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Human-readable layer name (e.g. `conv3_2`).
    pub name: String,
    /// Whether this is a convolution or an FC layer expressed as one.
    pub kind: LayerKind,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of kernels).
    pub out_channels: usize,
    /// Square kernel extent `k`.
    pub kernel: usize,
    /// Stride (both dimensions).
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
}

impl ConvLayer {
    /// Creates a convolution layer descriptor.
    ///
    /// # Errors
    /// Returns [`QnnError::ZeroStride`] for a zero stride,
    /// [`QnnError::EmptyDimension`] for zero extents and
    /// [`QnnError::KernelTooLarge`] when the kernel exceeds the padded input.
    #[allow(clippy::too_many_arguments)] // mirrors the standard layer-spec tuple
    pub fn conv(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
    ) -> Result<Self, QnnError> {
        if stride == 0 {
            return Err(QnnError::ZeroStride);
        }
        for (v, n) in [
            (in_channels, "in_channels"),
            (out_channels, "out_channels"),
            (kernel, "kernel"),
            (in_h, "in_h"),
            (in_w, "in_w"),
        ] {
            if v == 0 {
                return Err(QnnError::EmptyDimension(n));
            }
        }
        let layer = Self {
            name: name.into(),
            kind: LayerKind::Conv,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            in_h,
            in_w,
        };
        // Validate output extents.
        layer.geometry().out_extent(in_h, kernel)?;
        layer.geometry().out_extent(in_w, kernel)?;
        Ok(layer)
    }

    /// Creates a fully connected layer expressed as a 1×1×1×1 convolution.
    ///
    /// # Errors
    /// Returns [`QnnError::EmptyDimension`] for zero feature counts.
    pub fn fully_connected(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
    ) -> Result<Self, QnnError> {
        let mut l = Self::conv(name, in_features, out_features, 1, 1, 0, 1, 1)?;
        l.kind = LayerKind::FullyConnected;
        Ok(l)
    }

    /// The stride/padding geometry of this layer.
    pub fn geometry(&self) -> ConvGeometry {
        ConvGeometry {
            stride: self.stride,
            padding: self.padding,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.geometry()
            .out_extent(self.in_h, self.kernel)
            .expect("validated at construction")
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.geometry()
            .out_extent(self.in_w, self.kernel)
            .expect("validated at construction")
    }

    /// Number of weights.
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Number of input activations.
    pub fn activation_count(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    /// Number of output activations.
    pub fn output_count(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    /// Dense multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        self.output_count() as u64 * self.in_channels as u64 * (self.kernel * self.kernel) as u64
    }
}

impl std::fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}x{}x{} -> {}x{}x{} (k{} s{} p{})",
            self.name,
            self.in_channels,
            self.in_h,
            self.in_w,
            self.out_channels,
            self.out_h(),
            self.out_w(),
            self.kernel,
            self.stride,
            self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_derived_quantities() {
        // VGG conv1_1: 3 -> 64 channels, 3x3, s1 p1, 224x224.
        let l = ConvLayer::conv("conv1_1", 3, 64, 3, 1, 1, 224, 224).unwrap();
        assert_eq!(l.out_h(), 224);
        assert_eq!(l.out_w(), 224);
        assert_eq!(l.weight_count(), 64 * 3 * 9);
        assert_eq!(l.macs(), 64 * 224 * 224 * 3 * 9);
    }

    #[test]
    fn strided_conv_output() {
        // AlexNet conv1 (Caffe variant): 3 -> 96, 11x11, s4 p0, 227 -> 55.
        let l = ConvLayer::conv("conv1", 3, 96, 11, 4, 0, 227, 227).unwrap();
        assert_eq!(l.out_h(), 55);
    }

    #[test]
    fn fc_as_unit_conv() {
        let l = ConvLayer::fully_connected("fc6", 9216, 4096).unwrap();
        assert_eq!(l.kind, LayerKind::FullyConnected);
        assert_eq!(l.macs(), 9216 * 4096);
        assert_eq!(l.out_h(), 1);
    }

    #[test]
    fn invalid_layers_rejected() {
        assert!(ConvLayer::conv("x", 0, 1, 3, 1, 1, 8, 8).is_err());
        assert!(ConvLayer::conv("x", 1, 1, 3, 0, 1, 8, 8).is_err());
        assert!(ConvLayer::conv("x", 1, 1, 9, 1, 0, 4, 4).is_err());
    }

    #[test]
    fn display_contains_geometry() {
        let l = ConvLayer::conv("c", 1, 2, 3, 1, 1, 8, 8).unwrap();
        let s = l.to_string();
        assert!(s.contains("k3 s1 p1"));
    }
}
