//! Miniature functional variants of the six benchmark networks.
//!
//! The full layer tables in [`crate::models`] drive the analytic
//! simulators; these scaled-down variants (≤32 channels, ≤32×32 inputs)
//! keep each network's characteristic *shape* — AlexNet's big strided stem
//! and 5×5 layer, VGG's uniform 3×3 stacks, the inception reduce→expand
//! branches (linearized), ResNet's strided 3×3 pairs and 1×1 bottlenecks —
//! at a size the functional CSC pipeline can execute end-to-end in tests
//! and examples.

use crate::error::QnnError;
use crate::layers::ConvLayer;
use crate::models::NetworkId;
use crate::pool::PoolKind;
use serde::{Deserialize, Serialize};

/// One stage of a miniature network: a convolution plus optional pooling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiniStage {
    /// Convolution geometry.
    pub layer: ConvLayer,
    /// Optional pooling after the convolution:
    /// `(kind, window, stride, padding)`.
    pub pool: Option<(PoolKind, usize, usize, usize)>,
}

/// A miniature network: input shape plus stages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiniNetwork {
    /// Which benchmark network this miniaturizes.
    pub id: NetworkId,
    /// Input shape `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// The stages in execution order.
    pub stages: Vec<MiniStage>,
}

impl MiniNetwork {
    /// Builds the miniature variant of `id`.
    ///
    /// # Panics
    /// Never panics — the built-in tables are valid by construction.
    pub fn new(id: NetworkId) -> Self {
        Self::try_new(id).expect("builtin mini tables are valid")
    }

    /// Fallible variant of [`MiniNetwork::new`]; the built-in tables never
    /// actually fail, but callers threading typed errors can use this to
    /// avoid the panic path entirely.
    pub fn try_new(id: NetworkId) -> Result<Self, QnnError> {
        build(id)
    }

    /// Checks that consecutive stages' shapes chain (conv + pool output of
    /// stage *i* equals the input of stage *i+1*).
    pub fn validate_chaining(&self) -> Result<(), String> {
        let (mut c, mut h, mut w) = self.input;
        for (i, stage) in self.stages.iter().enumerate() {
            let l = &stage.layer;
            if (l.in_channels, l.in_h, l.in_w) != (c, h, w) {
                return Err(format!(
                    "stage {i} ({}) expects {}x{}x{} but receives {c}x{h}x{w}",
                    l.name, l.in_channels, l.in_h, l.in_w
                ));
            }
            c = l.out_channels;
            h = l.out_h();
            w = l.out_w();
            if let Some((_, win, stride, pad)) = stage.pool {
                let g = crate::conv::ConvGeometry {
                    stride,
                    padding: pad,
                };
                h = g
                    .out_extent(h, win)
                    .map_err(|e| format!("stage {i} pool: {e}"))?;
                w = g
                    .out_extent(w, win)
                    .map_err(|e| format!("stage {i} pool: {e}"))?;
            }
        }
        Ok(())
    }
}

type Stages = Result<Vec<MiniStage>, QnnError>;

fn conv(stage: ConvLayer) -> MiniStage {
    MiniStage {
        layer: stage,
        pool: None,
    }
}

fn conv_pool(stage: ConvLayer, kind: PoolKind, win: usize, stride: usize) -> MiniStage {
    MiniStage {
        layer: stage,
        pool: Some((kind, win, stride, 0)),
    }
}

fn build(id: NetworkId) -> Result<MiniNetwork, QnnError> {
    let (input, stages): ((usize, usize, usize), Stages) = match id {
        NetworkId::AlexNet => ((3, 31, 31), {
            Ok(vec![
                // Strided big-kernel stem, overlapping pool.
                conv_pool(
                    ConvLayer::conv("m_conv1", 3, 8, 5, 2, 0, 31, 31)?,
                    PoolKind::Max,
                    3,
                    2,
                ),
                conv(ConvLayer::conv("m_conv2", 8, 12, 5, 1, 2, 6, 6)?),
                conv(ConvLayer::conv("m_conv3", 12, 12, 3, 1, 1, 6, 6)?),
                conv_pool(
                    ConvLayer::conv("m_conv5", 12, 8, 3, 1, 1, 6, 6)?,
                    PoolKind::Max,
                    2,
                    2,
                ),
                conv(ConvLayer::conv("m_fc", 8, 10, 3, 1, 0, 3, 3)?),
            ])
        }),
        NetworkId::Vgg16 => ((3, 16, 16), {
            Ok(vec![
                conv(ConvLayer::conv("m_conv1_1", 3, 8, 3, 1, 1, 16, 16)?),
                conv_pool(
                    ConvLayer::conv("m_conv1_2", 8, 8, 3, 1, 1, 16, 16)?,
                    PoolKind::Max,
                    2,
                    2,
                ),
                conv(ConvLayer::conv("m_conv2_1", 8, 16, 3, 1, 1, 8, 8)?),
                conv_pool(
                    ConvLayer::conv("m_conv2_2", 16, 16, 3, 1, 1, 8, 8)?,
                    PoolKind::Max,
                    2,
                    2,
                ),
                conv(ConvLayer::conv("m_conv3_1", 16, 16, 3, 1, 1, 4, 4)?),
                conv(ConvLayer::conv("m_fc", 16, 10, 4, 1, 0, 4, 4)?),
            ])
        }),
        NetworkId::GoogLeNet => ((3, 16, 16), {
            Ok(vec![
                conv_pool(
                    ConvLayer::conv("m_stem", 3, 8, 5, 1, 2, 16, 16)?,
                    PoolKind::Max,
                    2,
                    2,
                ),
                // Inception branches linearized: 1x1 reduce, 3x3 expand,
                // 5x5 branch, pool projection.
                conv(ConvLayer::conv("m_inc_red", 8, 4, 1, 1, 0, 8, 8)?),
                conv(ConvLayer::conv("m_inc_3x3", 4, 12, 3, 1, 1, 8, 8)?),
                conv(ConvLayer::conv("m_inc_5x5", 12, 8, 5, 1, 2, 8, 8)?),
                conv_pool(
                    ConvLayer::conv("m_inc_proj", 8, 16, 1, 1, 0, 8, 8)?,
                    PoolKind::Average,
                    2,
                    2,
                ),
                conv(ConvLayer::conv("m_fc", 16, 10, 4, 1, 0, 4, 4)?),
            ])
        }),
        NetworkId::InceptionV2 => ((3, 16, 16), {
            Ok(vec![
                conv_pool(
                    ConvLayer::conv("m_stem", 3, 8, 5, 1, 2, 16, 16)?,
                    PoolKind::Max,
                    2,
                    2,
                ),
                // Double-3x3 factorized branch.
                conv(ConvLayer::conv("m_d3x3_red", 8, 6, 1, 1, 0, 8, 8)?),
                conv(ConvLayer::conv("m_d3x3_a", 6, 8, 3, 1, 1, 8, 8)?),
                conv(ConvLayer::conv("m_d3x3_b", 8, 12, 3, 2, 1, 8, 8)?),
                conv(ConvLayer::conv("m_fc", 12, 10, 4, 1, 0, 4, 4)?),
            ])
        }),
        NetworkId::ResNet18 => ((3, 16, 16), {
            Ok(vec![
                conv_pool(
                    ConvLayer::conv("m_conv1", 3, 8, 7, 1, 3, 16, 16)?,
                    PoolKind::Max,
                    2,
                    2,
                ),
                conv(ConvLayer::conv("m_conv2_1", 8, 8, 3, 1, 1, 8, 8)?),
                conv(ConvLayer::conv("m_conv2_2", 8, 8, 3, 1, 1, 8, 8)?),
                // Strided downsample pair.
                conv(ConvLayer::conv("m_conv3_1", 8, 16, 3, 2, 1, 8, 8)?),
                conv(ConvLayer::conv("m_conv3_2", 16, 16, 3, 1, 1, 4, 4)?),
                conv(ConvLayer::conv("m_fc", 16, 10, 4, 1, 0, 4, 4)?),
            ])
        }),
        NetworkId::ResNet50 => ((3, 16, 16), {
            Ok(vec![
                conv_pool(
                    ConvLayer::conv("m_conv1", 3, 8, 7, 1, 3, 16, 16)?,
                    PoolKind::Max,
                    2,
                    2,
                ),
                // Bottleneck: 1x1 reduce, 3x3, 1x1 expand.
                conv(ConvLayer::conv("m_b1_a", 8, 4, 1, 1, 0, 8, 8)?),
                conv(ConvLayer::conv("m_b1_b", 4, 4, 3, 1, 1, 8, 8)?),
                conv(ConvLayer::conv("m_b1_c", 4, 16, 1, 1, 0, 8, 8)?),
                // Strided bottleneck.
                conv(ConvLayer::conv("m_b2_a", 16, 8, 1, 1, 0, 8, 8)?),
                conv(ConvLayer::conv("m_b2_b", 8, 8, 3, 2, 1, 8, 8)?),
                conv(ConvLayer::conv("m_b2_c", 8, 24, 1, 1, 0, 4, 4)?),
                conv(ConvLayer::conv("m_fc", 24, 10, 4, 1, 0, 4, 4)?),
            ])
        }),
    };
    Ok(MiniNetwork {
        id,
        input,
        stages: stages?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_minis_build_and_chain() {
        for id in NetworkId::ALL {
            let m = MiniNetwork::new(id);
            assert!(!m.stages.is_empty(), "{id}");
            m.validate_chaining()
                .unwrap_or_else(|e| panic!("{id}: {e}"));
            // Every mini ends in a 10-way classifier stage.
            assert_eq!(m.stages.last().unwrap().layer.out_channels, 10, "{id}");
        }
    }

    #[test]
    fn minis_preserve_signature_features() {
        let alex = MiniNetwork::new(NetworkId::AlexNet);
        assert!(
            alex.stages[0].layer.stride > 1,
            "AlexNet keeps its strided stem"
        );
        assert!(alex.stages.iter().any(|s| s.layer.kernel == 5));

        let vgg = MiniNetwork::new(NetworkId::Vgg16);
        assert!(
            vgg.stages[..5].iter().all(|s| s.layer.kernel == 3),
            "VGG is all 3x3"
        );

        let r50 = MiniNetwork::new(NetworkId::ResNet50);
        assert!(
            r50.stages.iter().filter(|s| s.layer.kernel == 1).count() >= 4,
            "ResNet-50 keeps its 1x1 bottlenecks"
        );
    }
}
