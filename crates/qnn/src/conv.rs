//! Dense reference convolution.
//!
//! This is the ground truth against which the condensed streaming
//! computation (`atomstream` crate) and every accelerator model are
//! validated. It is a direct (non-im2col) implementation with explicit
//! zero padding and arbitrary stride, accumulating in `i64`.

use crate::error::QnnError;
use crate::tensor::{AccTensor3, Tensor3, Tensor4};
use serde::{Deserialize, Serialize};

/// Convolution geometry: kernel size is carried by the weight tensor; this
/// struct holds stride and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Vertical and horizontal stride (≥ 1).
    pub stride: usize,
    /// Symmetric zero padding applied on all four sides.
    pub padding: usize,
}

impl ConvGeometry {
    /// Stride-1 geometry with `padding` zeros on each side.
    pub fn unit_stride(padding: usize) -> Self {
        Self { stride: 1, padding }
    }

    /// Geometry with the given stride and padding.
    ///
    /// # Errors
    /// Returns [`QnnError::ZeroStride`] if `stride == 0`.
    pub fn new(stride: usize, padding: usize) -> Result<Self, QnnError> {
        if stride == 0 {
            return Err(QnnError::ZeroStride);
        }
        Ok(Self { stride, padding })
    }

    /// Output spatial extent for an input of extent `n` and kernel extent `k`.
    ///
    /// # Errors
    /// Returns [`QnnError::KernelTooLarge`] if the padded input is smaller
    /// than the kernel.
    pub fn out_extent(&self, n: usize, k: usize) -> Result<usize, QnnError> {
        let padded = n + 2 * self.padding;
        if padded < k {
            return Err(QnnError::KernelTooLarge {
                kernel: k,
                input: padded,
            });
        }
        Ok((padded - k) / self.stride + 1)
    }
}

impl Default for ConvGeometry {
    fn default() -> Self {
        Self {
            stride: 1,
            padding: 0,
        }
    }
}

/// Computes a dense 2-D convolution (really cross-correlation, the CNN
/// convention) of a quantized feature map with a set of kernels.
///
/// The output has shape `(kernels.out_channels(), H_out, W_out)` and `i64`
/// elements.
///
/// ```
/// use qnn::conv::{conv2d, ConvGeometry};
/// use qnn::tensor::{Tensor3, Tensor4};
///
/// let fmap = Tensor3::from_vec(1, 2, 2, vec![1, 2, 3, 4]).unwrap();
/// let k = Tensor4::from_vec(1, 1, 2, 2, vec![1, 0, 0, 1]).unwrap();
/// let out = conv2d(&fmap, &k, ConvGeometry::default()).unwrap();
/// assert_eq!(out.get(0, 0, 0), 1 + 4);
/// ```
///
/// # Errors
/// Returns [`QnnError::ChannelMismatch`] when the kernel's input-channel
/// count differs from the feature map's channel count, and
/// [`QnnError::KernelTooLarge`] when the padded input is smaller than the
/// kernel.
pub fn conv2d(
    fmap: &Tensor3,
    kernels: &Tensor4,
    geom: ConvGeometry,
) -> Result<AccTensor3, QnnError> {
    let (c, h, w) = fmap.shape();
    let (o, i, kh, kw) = kernels.shape();
    if c != i {
        return Err(QnnError::ChannelMismatch { fmap: c, kernel: i });
    }
    let h_out = geom.out_extent(h, kh)?;
    let w_out = geom.out_extent(w, kw)?;
    let mut out = AccTensor3::zeros(o, h_out, w_out)?;
    let pad = geom.padding as isize;
    for oc in 0..o {
        for oy in 0..h_out {
            for ox in 0..w_out {
                let mut acc: i64 = 0;
                let base_y = (oy * geom.stride) as isize - pad;
                let base_x = (ox * geom.stride) as isize - pad;
                for ic in 0..c {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let a = fmap.get_padded(ic, base_y + ky as isize, base_x + kx as isize);
                            if a == 0 {
                                continue;
                            }
                            let wv = kernels.get(oc, ic, ky, kx);
                            acc += a as i64 * wv as i64;
                        }
                    }
                }
                out.set(oc, oy, ox, acc);
            }
        }
    }
    Ok(out)
}

/// Floating-point convolution used for quantization-error studies; same
/// geometry semantics as [`conv2d`].
///
/// # Errors
/// Same error conditions as [`conv2d`].
pub fn conv2d_f32_accumulate(
    fmap: &[f32],
    fmap_shape: (usize, usize, usize),
    kernels: &[f32],
    kernel_shape: (usize, usize, usize, usize),
    geom: ConvGeometry,
) -> Result<Vec<f32>, QnnError> {
    let (c, h, w) = fmap_shape;
    let (o, i, kh, kw) = kernel_shape;
    if c != i {
        return Err(QnnError::ChannelMismatch { fmap: c, kernel: i });
    }
    if fmap.len() != c * h * w {
        return Err(QnnError::ShapeMismatch {
            expected: c * h * w,
            actual: fmap.len(),
        });
    }
    if kernels.len() != o * i * kh * kw {
        return Err(QnnError::ShapeMismatch {
            expected: o * i * kh * kw,
            actual: kernels.len(),
        });
    }
    let h_out = geom.out_extent(h, kh)?;
    let w_out = geom.out_extent(w, kw)?;
    let pad = geom.padding as isize;
    let at = |ci: usize, y: isize, x: isize| -> f32 {
        if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
            0.0
        } else {
            fmap[(ci * h + y as usize) * w + x as usize]
        }
    };
    let mut out = vec![0.0f32; o * h_out * w_out];
    for oc in 0..o {
        for oy in 0..h_out {
            for ox in 0..w_out {
                let mut acc = 0.0f32;
                let base_y = (oy * geom.stride) as isize - pad;
                let base_x = (ox * geom.stride) as isize - pad;
                for ic in 0..c {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let a = at(ic, base_y + ky as isize, base_x + kx as isize);
                            let wv = kernels[((oc * i + ic) * kh + ky) * kw + kx];
                            acc += a * wv;
                        }
                    }
                }
                out[(oc * h_out + oy) * w_out + ox] = acc;
            }
        }
    }
    Ok(out)
}

/// Applies ReLU in place to an integer activation tensor.
pub fn relu(t: &mut Tensor3) {
    for v in t.as_mut_slice() {
        if *v < 0 {
            *v = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmap_1ch(h: usize, w: usize, vals: Vec<i32>) -> Tensor3 {
        Tensor3::from_vec(1, h, w, vals).unwrap()
    }

    #[test]
    fn identity_kernel_copies_input() {
        let f = fmap_1ch(3, 3, (1..=9).collect());
        let k = Tensor4::from_vec(1, 1, 1, 1, vec![1]).unwrap();
        let out = conv2d(&f, &k, ConvGeometry::default()).unwrap();
        for (c, y, x, v) in f.iter_indexed() {
            assert_eq!(out.get(c, y, x), v as i64);
        }
    }

    #[test]
    fn known_3x3_convolution() {
        // 3x3 input, 2x2 kernel, stride 1, no padding -> 2x2 output.
        let f = fmap_1ch(3, 3, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let k = Tensor4::from_vec(1, 1, 2, 2, vec![1, -1, 2, -2]).unwrap();
        let out = conv2d(&f, &k, ConvGeometry::default()).unwrap();
        // (0,0): 1*1 + 2*-1 + 4*2 + 5*-2 = 1 - 2 + 8 - 10 = -3
        assert_eq!(out.get(0, 0, 0), -3);
        // (1,1): 5*1 + 6*-1 + 8*2 + 9*-2 = 5 - 6 + 16 - 18 = -3
        assert_eq!(out.get(0, 1, 1), -3);
    }

    #[test]
    fn padding_grows_output() {
        let f = fmap_1ch(2, 2, vec![1, 2, 3, 4]);
        let k = Tensor4::from_vec(1, 1, 3, 3, vec![0, 0, 0, 0, 1, 0, 0, 0, 0]).unwrap();
        let out = conv2d(&f, &k, ConvGeometry::unit_stride(1)).unwrap();
        assert_eq!(out.shape(), (1, 2, 2));
        assert_eq!(out.get(0, 0, 0), 1);
        assert_eq!(out.get(0, 1, 1), 4);
    }

    #[test]
    fn stride_two_subsamples() {
        let f = fmap_1ch(4, 4, (1..=16).collect());
        let k = Tensor4::from_vec(1, 1, 1, 1, vec![1]).unwrap();
        let g = ConvGeometry::new(2, 0).unwrap();
        let out = conv2d(&f, &k, g).unwrap();
        assert_eq!(out.shape(), (1, 2, 2));
        assert_eq!(out.get(0, 0, 0), 1);
        assert_eq!(out.get(0, 0, 1), 3);
        assert_eq!(out.get(0, 1, 0), 9);
        assert_eq!(out.get(0, 1, 1), 11);
    }

    #[test]
    fn multi_channel_sums_over_channels() {
        let f = Tensor3::from_vec(2, 1, 1, vec![3, 5]).unwrap();
        let k = Tensor4::from_vec(1, 2, 1, 1, vec![2, 7]).unwrap();
        let out = conv2d(&f, &k, ConvGeometry::default()).unwrap();
        assert_eq!(out.get(0, 0, 0), 3 * 2 + 5 * 7);
    }

    #[test]
    fn multiple_kernels_produce_independent_outputs() {
        let f = fmap_1ch(2, 2, vec![1, 1, 1, 1]);
        let k = Tensor4::from_vec(2, 1, 2, 2, vec![1, 1, 1, 1, -1, -1, -1, -1]).unwrap();
        let out = conv2d(&f, &k, ConvGeometry::default()).unwrap();
        assert_eq!(out.get(0, 0, 0), 4);
        assert_eq!(out.get(1, 0, 0), -4);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let f = fmap_1ch(2, 2, vec![0; 4]);
        let k = Tensor4::zeros(1, 3, 1, 1).unwrap();
        assert_eq!(
            conv2d(&f, &k, ConvGeometry::default()).unwrap_err(),
            QnnError::ChannelMismatch { fmap: 1, kernel: 3 }
        );
    }

    #[test]
    fn kernel_too_large_rejected() {
        let f = fmap_1ch(2, 2, vec![0; 4]);
        let k = Tensor4::zeros(1, 1, 5, 5).unwrap();
        assert!(matches!(
            conv2d(&f, &k, ConvGeometry::default()),
            Err(QnnError::KernelTooLarge {
                kernel: 5,
                input: 2
            })
        ));
    }

    #[test]
    fn relu_zeros_negatives_only() {
        let mut t = fmap_1ch(1, 4, vec![-3, 0, 2, -1]);
        relu(&mut t);
        assert_eq!(t.as_slice(), &[0, 0, 2, 0]);
    }

    #[test]
    fn f32_conv_matches_integer_conv_on_integral_data() {
        let f = fmap_1ch(3, 3, vec![1, 0, 2, 0, 3, 0, 4, 0, 5]);
        let k = Tensor4::from_vec(2, 1, 2, 2, vec![1, -2, 3, -4, 0, 1, 0, -1]).unwrap();
        let geom = ConvGeometry::unit_stride(1);
        let int_out = conv2d(&f, &k, geom).unwrap();
        let ff: Vec<f32> = f.as_slice().iter().map(|&v| v as f32).collect();
        let fk: Vec<f32> = k.as_slice().iter().map(|&v| v as f32).collect();
        let float_out = conv2d_f32_accumulate(&ff, (1, 3, 3), &fk, (2, 1, 2, 2), geom).unwrap();
        for (i, &v) in int_out.as_slice().iter().enumerate() {
            assert_eq!(v as f32, float_out[i]);
        }
    }
}
