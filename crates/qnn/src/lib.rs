//! # qnn — quantized CNN substrate
//!
//! This crate provides everything the Ristretto reproduction needs from the
//! "algorithm side" of the paper:
//!
//! * integer [`tensor::Tensor3`]/[`tensor::Tensor4`] containers for
//!   quantized activations and weights,
//! * the uniform quantizer used in the paper's Figure 1 study ([`quant`]),
//! * two independent reference convolutions that serve as ground truth for
//!   the condensed-streaming computation ([`conv`], [`im2col`]) plus
//!   pooling ([`pool`]),
//! * sparse compression formats: bitmap (SparTen), block COO-2D (Ristretto)
//!   and CSR ([`formats`]),
//! * value- and atom-level sparsity statistics ([`sparsity`]),
//! * magnitude pruning ([`prune`]),
//! * the six-network DNN benchmark layer tables ([`models`]) and their
//!   functional miniatures ([`mini`]), and
//! * seeded synthetic workload generation standing in for ImageNet-trained
//!   models ([`workload`]).
//!
//! ## Example
//!
//! ```
//! use qnn::prelude::*;
//!
//! // Quantize a float kernel to 4 bits and convolve with a random
//! // quantized feature map.
//! let q = Quantizer::symmetric(4, 1.0);
//! let w: Vec<i32> = [0.9f32, -0.4, 0.05, 0.7].iter().map(|&x| q.quantize(x)).collect();
//! let kernel = Tensor4::from_vec(1, 1, 2, 2, w).unwrap();
//! let fmap = Tensor3::from_vec(1, 3, 3, vec![1, 0, 2, 0, 3, 0, 4, 0, 5]).unwrap();
//! let out = conv2d(&fmap, &kernel, ConvGeometry::default()).unwrap();
//! assert_eq!(out.shape(), (1, 2, 2));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod conv;
pub mod error;
pub mod formats;
pub mod im2col;
pub mod layers;
pub mod mini;
pub mod models;
pub mod pool;
pub mod prune;
pub mod quant;
pub mod rng;
pub mod sparsity;
pub mod tensor;
pub mod workload;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::conv::{conv2d, conv2d_f32_accumulate, relu, ConvGeometry};
    pub use crate::error::QnnError;
    pub use crate::formats::{bitmap::BitmapVec, coo::BlockCoo2d, csr::CsrMatrix};
    pub use crate::im2col::conv2d_im2col;
    pub use crate::layers::{ConvLayer, LayerKind};
    pub use crate::models::{Network, NetworkId};
    pub use crate::pool::{global_average_pool, pool2d, PoolKind};
    pub use crate::prune::magnitude_prune;
    pub use crate::quant::{BitWidth, Quantizer};
    pub use crate::sparsity::{atom_density, value_density, SparsityStats};
    pub use crate::tensor::{Tensor3, Tensor4};
    pub use crate::workload::{ActivationProfile, SyntheticLayer, WeightProfile, WorkloadGen};
}
