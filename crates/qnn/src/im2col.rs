//! im2col + GEMM convolution: a second, independent reference
//! implementation used to cross-check the direct convolution (two
//! implementations agreeing is much stronger evidence than one).
//!
//! The lowering also exposes the matrix view the inner-product baselines
//! (SparTen, SNAP) operate on: each output position becomes a column of
//! unrolled activations dotted with each kernel's flattened weights.

use crate::conv::ConvGeometry;
use crate::error::QnnError;
use crate::tensor::{AccTensor3, Tensor3, Tensor4};

/// Lowers a feature map into the im2col matrix: one row per output
/// position, one column per `(in_channel, ky, kx)` patch element. Returns
/// the matrix plus its shape `(rows = out_h*out_w, cols = c*k*k)`.
///
/// # Errors
/// Propagates geometry validation errors.
pub fn im2col(
    fmap: &Tensor3,
    kernel: usize,
    geom: ConvGeometry,
) -> Result<(Vec<i32>, usize, usize), QnnError> {
    let (c, h, w) = fmap.shape();
    let out_h = geom.out_extent(h, kernel)?;
    let out_w = geom.out_extent(w, kernel)?;
    let rows = out_h * out_w;
    let cols = c * kernel * kernel;
    let mut m = vec![0i32; rows * cols];
    let pad = geom.padding as isize;
    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = oy * out_w + ox;
            let base_y = (oy * geom.stride) as isize - pad;
            let base_x = (ox * geom.stride) as isize - pad;
            for ci in 0..c {
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let col = (ci * kernel + ky) * kernel + kx;
                        m[row * cols + col] =
                            fmap.get_padded(ci, base_y + ky as isize, base_x + kx as isize);
                    }
                }
            }
        }
    }
    Ok((m, rows, cols))
}

/// Convolution via im2col + integer GEMM; numerically identical to
/// [`crate::conv::conv2d`].
///
/// # Errors
/// Returns [`QnnError::ChannelMismatch`] on operand mismatch plus the
/// geometry errors of [`im2col`].
pub fn conv2d_im2col(
    fmap: &Tensor3,
    kernels: &Tensor4,
    geom: ConvGeometry,
) -> Result<AccTensor3, QnnError> {
    let (c, _, _) = fmap.shape();
    let (o, i, kh, kw) = kernels.shape();
    if c != i {
        return Err(QnnError::ChannelMismatch { fmap: c, kernel: i });
    }
    if kh != kw {
        return Err(QnnError::KernelTooLarge {
            kernel: kh.max(kw),
            input: kh.min(kw),
        });
    }
    let (m, rows, cols) = im2col(fmap, kh, geom)?;
    let out_h = geom.out_extent(fmap.height(), kh)?;
    let out_w = geom.out_extent(fmap.width(), kw)?;
    let mut out = AccTensor3::zeros(o, out_h, out_w)?;
    // GEMM: out[oc][row] = Σ_col kernels[oc][col] * m[row][col].
    let kflat = kernels.as_slice();
    for oc in 0..o {
        let krow = &kflat[oc * cols..(oc + 1) * cols];
        for row in 0..rows {
            let mrow = &m[row * cols..(row + 1) * cols];
            let mut acc = 0i64;
            for (a, b) in mrow.iter().zip(krow) {
                acc += *a as i64 * *b as i64;
            }
            out.set(oc, row / out_w, row % out_w, acc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;
    use crate::rng::SeededRng;

    #[test]
    fn matches_direct_convolution_across_geometries() {
        let mut rng = SeededRng::new(404);
        for (c, o, k, h, w, s, p) in [
            (1, 1, 1, 3, 3, 1, 0),
            (2, 3, 3, 6, 5, 1, 1),
            (3, 4, 3, 8, 8, 2, 1),
            (2, 2, 5, 9, 9, 1, 2),
            (4, 2, 2, 7, 6, 2, 0),
        ] {
            let fmap = Tensor3::from_fn(c, h, w, |_, _, _| {
                if rng.bernoulli(0.6) {
                    rng.below(255) as i32
                } else {
                    0
                }
            })
            .unwrap();
            let kernels =
                Tensor4::from_fn(o, c, k, k, |_, _, _, _| rng.below(15) as i32 - 7).unwrap();
            let geom = ConvGeometry::new(s, p).unwrap();
            assert_eq!(
                conv2d_im2col(&fmap, &kernels, geom).unwrap(),
                conv2d(&fmap, &kernels, geom).unwrap(),
                "c{c} o{o} k{k} {h}x{w} s{s} p{p}"
            );
        }
    }

    #[test]
    fn im2col_shape_and_content() {
        let fmap = Tensor3::from_vec(1, 3, 3, (1..=9).collect()).unwrap();
        let (m, rows, cols) = im2col(&fmap, 2, ConvGeometry::default()).unwrap();
        assert_eq!((rows, cols), (4, 4));
        // First output position's patch: [1, 2, 4, 5].
        assert_eq!(&m[0..4], &[1, 2, 4, 5]);
        // Last: [5, 6, 8, 9].
        assert_eq!(&m[12..16], &[5, 6, 8, 9]);
    }

    #[test]
    fn rejects_mismatched_operands() {
        let fmap = Tensor3::zeros(2, 4, 4).unwrap();
        let k = Tensor4::zeros(1, 3, 2, 2).unwrap();
        assert!(conv2d_im2col(&fmap, &k, ConvGeometry::default()).is_err());
    }
}
