//! The DNN benchmark: layer tables for the six ImageNet networks the paper
//! evaluates (§V-A2): AlexNet, VGG-16, GoogLeNet, Inception-V2, ResNet-18
//! and ResNet-50.
//!
//! MobileNets are omitted, as in the paper, because the baseline
//! accelerators do not support depthwise convolution in their PEs.
//!
//! The tables record geometry only; synthetic quantized tensors matching
//! each layer are produced by [`crate::workload`]. Inception-V2 follows the
//! BN-Inception configuration (Ioffe & Szegedy, 2015) with double-3×3
//! branches replacing 5×5 convolutions.

use crate::error::QnnError;
use crate::layers::ConvLayer;
use serde::{Deserialize, Serialize};

/// Identifier of a network in the DNN benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NetworkId {
    /// AlexNet (Krizhevsky et al., 2012).
    AlexNet,
    /// VGG-16 (Simonyan & Zisserman, 2014).
    Vgg16,
    /// GoogLeNet (Szegedy et al., 2015).
    GoogLeNet,
    /// Inception-V2 / BN-Inception (Ioffe & Szegedy, 2015).
    InceptionV2,
    /// ResNet-18 (He et al., 2016).
    ResNet18,
    /// ResNet-50 (He et al., 2016).
    ResNet50,
}

impl NetworkId {
    /// All six benchmark networks, in the paper's presentation order.
    pub const ALL: [NetworkId; 6] = [
        NetworkId::AlexNet,
        NetworkId::Vgg16,
        NetworkId::GoogLeNet,
        NetworkId::InceptionV2,
        NetworkId::ResNet18,
        NetworkId::ResNet50,
    ];

    /// The five networks of Figure 1 (ResNet-50 is excluded there).
    pub const FIG1: [NetworkId; 5] = [
        NetworkId::AlexNet,
        NetworkId::Vgg16,
        NetworkId::GoogLeNet,
        NetworkId::InceptionV2,
        NetworkId::ResNet18,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            NetworkId::AlexNet => "AlexNet",
            NetworkId::Vgg16 => "VGG-16",
            NetworkId::GoogLeNet => "GoogLeNet",
            NetworkId::InceptionV2 => "Inception-V2",
            NetworkId::ResNet18 => "ResNet-18",
            NetworkId::ResNet50 => "ResNet-50",
        }
    }
}

impl std::fmt::Display for NetworkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A network: an ordered list of convolution / FC layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    /// Which benchmark network this is.
    pub id: NetworkId,
    layers: Vec<ConvLayer>,
}

impl Network {
    /// Builds the layer table for `id`.
    pub fn new(id: NetworkId) -> Self {
        let layers = match id {
            NetworkId::AlexNet => alexnet(),
            NetworkId::Vgg16 => vgg16(),
            NetworkId::GoogLeNet => googlenet(),
            NetworkId::InceptionV2 => inception_v2(),
            NetworkId::ResNet18 => resnet18(),
            NetworkId::ResNet50 => resnet50(),
        }
        .expect("builtin layer tables are valid");
        Self { id, layers }
    }

    /// The network's layers in execution order.
    pub fn layers(&self) -> &[ConvLayer] {
        &self.layers
    }

    /// Looks a layer up by name.
    pub fn layer(&self, name: &str) -> Option<&ConvLayer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Total dense MAC count of the network.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayer::macs).sum()
    }

    /// Total weight count of the network.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(ConvLayer::weight_count).sum()
    }
}

type Layers = Result<Vec<ConvLayer>, QnnError>;

fn alexnet() -> Layers {
    Ok(vec![
        ConvLayer::conv("conv1", 3, 96, 11, 4, 0, 227, 227)?,
        ConvLayer::conv("conv2", 96, 256, 5, 1, 2, 27, 27)?,
        ConvLayer::conv("conv3", 256, 384, 3, 1, 1, 13, 13)?,
        ConvLayer::conv("conv4", 384, 384, 3, 1, 1, 13, 13)?,
        ConvLayer::conv("conv5", 384, 256, 3, 1, 1, 13, 13)?,
        ConvLayer::fully_connected("fc6", 9216, 4096)?,
        ConvLayer::fully_connected("fc7", 4096, 4096)?,
        ConvLayer::fully_connected("fc8", 4096, 1000)?,
    ])
}

fn vgg16() -> Layers {
    let mut layers = Vec::new();
    let blocks: [(usize, usize, usize, usize); 5] = [
        (2, 3, 64, 224),
        (2, 64, 128, 112),
        (3, 128, 256, 56),
        (3, 256, 512, 28),
        (3, 512, 512, 14),
    ];
    for (bi, &(reps, in_c, out_c, hw)) in blocks.iter().enumerate() {
        for r in 0..reps {
            let ic = if r == 0 { in_c } else { out_c };
            layers.push(ConvLayer::conv(
                format!("conv{}_{}", bi + 1, r + 1),
                ic,
                out_c,
                3,
                1,
                1,
                hw,
                hw,
            )?);
        }
    }
    layers.push(ConvLayer::fully_connected("fc6", 25088, 4096)?);
    layers.push(ConvLayer::fully_connected("fc7", 4096, 4096)?);
    layers.push(ConvLayer::fully_connected("fc8", 4096, 1000)?);
    Ok(layers)
}

/// GoogLeNet inception parameters:
/// `(name, in_c, hw, p1x1, red3, c3x3, red5, c5x5, pool_proj)`.
#[allow(clippy::type_complexity)]
const GOOGLENET_INCEPTION: [(&str, usize, usize, usize, usize, usize, usize, usize, usize); 9] = [
    ("3a", 192, 28, 64, 96, 128, 16, 32, 32),
    ("3b", 256, 28, 128, 128, 192, 32, 96, 64),
    ("4a", 480, 14, 192, 96, 208, 16, 48, 64),
    ("4b", 512, 14, 160, 112, 224, 24, 64, 64),
    ("4c", 512, 14, 128, 128, 256, 24, 64, 64),
    ("4d", 512, 14, 112, 144, 288, 32, 64, 64),
    ("4e", 528, 14, 256, 160, 320, 32, 128, 128),
    ("5a", 832, 7, 256, 160, 320, 32, 128, 128),
    ("5b", 832, 7, 384, 192, 384, 48, 128, 128),
];

fn googlenet() -> Layers {
    let mut layers = vec![
        ConvLayer::conv("conv1", 3, 64, 7, 2, 3, 224, 224)?,
        ConvLayer::conv("conv2_reduce", 64, 64, 1, 1, 0, 56, 56)?,
        ConvLayer::conv("conv2", 64, 192, 3, 1, 1, 56, 56)?,
    ];
    for &(name, in_c, hw, p1, r3, c3, r5, c5, pp) in &GOOGLENET_INCEPTION {
        layers.push(ConvLayer::conv(
            format!("inc{name}_1x1"),
            in_c,
            p1,
            1,
            1,
            0,
            hw,
            hw,
        )?);
        layers.push(ConvLayer::conv(
            format!("inc{name}_3x3r"),
            in_c,
            r3,
            1,
            1,
            0,
            hw,
            hw,
        )?);
        layers.push(ConvLayer::conv(
            format!("inc{name}_3x3"),
            r3,
            c3,
            3,
            1,
            1,
            hw,
            hw,
        )?);
        layers.push(ConvLayer::conv(
            format!("inc{name}_5x5r"),
            in_c,
            r5,
            1,
            1,
            0,
            hw,
            hw,
        )?);
        layers.push(ConvLayer::conv(
            format!("inc{name}_5x5"),
            r5,
            c5,
            5,
            1,
            2,
            hw,
            hw,
        )?);
        layers.push(ConvLayer::conv(
            format!("inc{name}_pool"),
            in_c,
            pp,
            1,
            1,
            0,
            hw,
            hw,
        )?);
    }
    layers.push(ConvLayer::fully_connected("fc", 1024, 1000)?);
    Ok(layers)
}

/// BN-Inception (Inception-V2) module parameters:
/// `(name, in_c, hw, stride, p1x1, red3, c3x3, red_d, c_d, pool_proj)`.
/// `stride == 2` modules drop the 1×1 branch and use a pass-through pool.
#[allow(clippy::type_complexity)]
const INCEPTION_V2_MODULES: [(
    &str,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
); 10] = [
    ("3a", 192, 28, 1, 64, 64, 64, 64, 96, 32),
    ("3b", 256, 28, 1, 64, 64, 96, 64, 96, 64),
    ("3c", 320, 28, 2, 0, 128, 160, 64, 96, 0),
    ("4a", 576, 14, 1, 224, 64, 96, 96, 128, 128),
    ("4b", 576, 14, 1, 192, 96, 128, 96, 128, 128),
    ("4c", 576, 14, 1, 160, 128, 160, 128, 160, 96),
    ("4d", 576, 14, 1, 96, 128, 192, 160, 192, 96),
    ("4e", 576, 14, 2, 0, 128, 192, 192, 256, 0),
    ("5a", 1024, 7, 1, 352, 192, 320, 160, 224, 128),
    ("5b", 1024, 7, 1, 352, 192, 320, 192, 224, 128),
];

fn inception_v2() -> Layers {
    let mut layers = vec![
        ConvLayer::conv("conv1", 3, 64, 7, 2, 3, 224, 224)?,
        ConvLayer::conv("conv2_reduce", 64, 64, 1, 1, 0, 56, 56)?,
        ConvLayer::conv("conv2", 64, 192, 3, 1, 1, 56, 56)?,
    ];
    for &(name, in_c, hw, stride, p1, r3, c3, rd, cd, pp) in &INCEPTION_V2_MODULES {
        if p1 > 0 {
            layers.push(ConvLayer::conv(
                format!("inc{name}_1x1"),
                in_c,
                p1,
                1,
                1,
                0,
                hw,
                hw,
            )?);
        }
        layers.push(ConvLayer::conv(
            format!("inc{name}_3x3r"),
            in_c,
            r3,
            1,
            1,
            0,
            hw,
            hw,
        )?);
        layers.push(ConvLayer::conv(
            format!("inc{name}_3x3"),
            r3,
            c3,
            3,
            stride,
            1,
            hw,
            hw,
        )?);
        layers.push(ConvLayer::conv(
            format!("inc{name}_d3x3r"),
            in_c,
            rd,
            1,
            1,
            0,
            hw,
            hw,
        )?);
        layers.push(ConvLayer::conv(
            format!("inc{name}_d3x3a"),
            rd,
            cd,
            3,
            1,
            1,
            hw,
            hw,
        )?);
        layers.push(ConvLayer::conv(
            format!("inc{name}_d3x3b"),
            cd,
            cd,
            3,
            stride,
            1,
            hw,
            hw,
        )?);
        if pp > 0 {
            layers.push(ConvLayer::conv(
                format!("inc{name}_pool"),
                in_c,
                pp,
                1,
                1,
                0,
                hw,
                hw,
            )?);
        }
    }
    layers.push(ConvLayer::fully_connected("fc", 1024, 1000)?);
    Ok(layers)
}

fn resnet18() -> Layers {
    let mut layers = vec![ConvLayer::conv("conv1", 3, 64, 7, 2, 3, 224, 224)?];
    // (stage, in_c, out_c, hw_in, blocks)
    let stages: [(usize, usize, usize, usize, usize); 4] = [
        (2, 64, 64, 56, 2),
        (3, 64, 128, 56, 2),
        (4, 128, 256, 28, 2),
        (5, 256, 512, 14, 2),
    ];
    for &(stage, in_c, out_c, hw_in, blocks) in &stages {
        for b in 0..blocks {
            let first = b == 0;
            let downsample = first && in_c != out_c;
            let stride = if downsample { 2 } else { 1 };
            let ic = if first { in_c } else { out_c };
            // Non-first blocks of a downsampling stage run at the halved extent.
            let hw_blk = if first || in_c == out_c {
                hw_in
            } else {
                hw_in / 2
            };
            let hw_out = if downsample { hw_blk / 2 } else { hw_blk };
            layers.push(ConvLayer::conv(
                format!("conv{stage}_{}", 2 * b + 1),
                ic,
                out_c,
                3,
                stride,
                1,
                hw_blk,
                hw_blk,
            )?);
            layers.push(ConvLayer::conv(
                format!("conv{stage}_{}", 2 * b + 2),
                out_c,
                out_c,
                3,
                1,
                1,
                hw_out,
                hw_out,
            )?);
            if downsample {
                layers.push(ConvLayer::conv(
                    format!("conv{stage}_down"),
                    in_c,
                    out_c,
                    1,
                    2,
                    0,
                    hw_blk,
                    hw_blk,
                )?);
            }
        }
    }
    layers.push(ConvLayer::fully_connected("fc", 512, 1000)?);
    Ok(layers)
}

fn resnet50() -> Layers {
    let mut layers = vec![ConvLayer::conv("conv1", 3, 64, 7, 2, 3, 224, 224)?];
    // (stage, in_c, mid_c, out_c, hw_in, blocks, first_stride)
    let stages: [(usize, usize, usize, usize, usize, usize, usize); 4] = [
        (2, 64, 64, 256, 56, 3, 1),
        (3, 256, 128, 512, 56, 4, 2),
        (4, 512, 256, 1024, 28, 6, 2),
        (5, 1024, 512, 2048, 14, 3, 2),
    ];
    for &(stage, in_c, mid_c, out_c, hw_in, blocks, first_stride) in &stages {
        for b in 0..blocks {
            let first = b == 0;
            let stride = if first { first_stride } else { 1 };
            let ic = if first { in_c } else { out_c };
            let hw = if first { hw_in } else { hw_in / first_stride };
            let hw_out = hw / stride;
            layers.push(ConvLayer::conv(
                format!("conv{stage}_{}a", b + 1),
                ic,
                mid_c,
                1,
                1,
                0,
                hw,
                hw,
            )?);
            layers.push(ConvLayer::conv(
                format!("conv{stage}_{}b", b + 1),
                mid_c,
                mid_c,
                3,
                stride,
                1,
                hw,
                hw,
            )?);
            layers.push(ConvLayer::conv(
                format!("conv{stage}_{}c", b + 1),
                mid_c,
                out_c,
                1,
                1,
                0,
                hw_out,
                hw_out,
            )?);
            if first {
                layers.push(ConvLayer::conv(
                    format!("conv{stage}_down"),
                    in_c,
                    out_c,
                    1,
                    stride,
                    0,
                    hw,
                    hw,
                )?);
            }
        }
    }
    layers.push(ConvLayer::fully_connected("fc", 2048, 1000)?);
    Ok(layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_construct() {
        for id in NetworkId::ALL {
            let net = Network::new(id);
            assert!(!net.layers().is_empty(), "{id} has no layers");
            assert!(net.total_macs() > 0);
        }
    }

    #[test]
    fn alexnet_macs_in_expected_range() {
        let net = Network::new(NetworkId::AlexNet);
        // AlexNet is ~0.7 GMACs for convs + ~0.06 G for FCs.
        let g = net.total_macs() as f64 / 1e9;
        assert!((0.6..1.2).contains(&g), "AlexNet GMACs = {g}");
    }

    #[test]
    fn vgg16_macs_about_15_g() {
        let net = Network::new(NetworkId::Vgg16);
        let g = net.total_macs() as f64 / 1e9;
        assert!((14.0..16.5).contains(&g), "VGG-16 GMACs = {g}");
        use crate::layers::LayerKind;
        assert_eq!(
            net.layers()
                .iter()
                .filter(|l| l.kind == LayerKind::Conv)
                .count(),
            13
        );
    }

    #[test]
    fn resnet18_macs_about_1_8_g() {
        let net = Network::new(NetworkId::ResNet18);
        let g = net.total_macs() as f64 / 1e9;
        assert!((1.6..2.1).contains(&g), "ResNet-18 GMACs = {g}");
    }

    #[test]
    fn resnet50_macs_about_4_g() {
        let net = Network::new(NetworkId::ResNet50);
        let g = net.total_macs() as f64 / 1e9;
        assert!((3.5..4.5).contains(&g), "ResNet-50 GMACs = {g}");
    }

    #[test]
    fn googlenet_macs_about_1_5_g() {
        let net = Network::new(NetworkId::GoogLeNet);
        let g = net.total_macs() as f64 / 1e9;
        assert!((1.2..2.0).contains(&g), "GoogLeNet GMACs = {g}");
    }

    #[test]
    fn resnet18_has_fig18_layer() {
        let net = Network::new(NetworkId::ResNet18);
        let l = net.layer("conv3_2").expect("conv3_2 exists");
        assert_eq!(l.in_channels, 128);
        assert_eq!(l.out_channels, 128);
    }

    #[test]
    fn layer_shapes_chain_spatially() {
        // Within each plain-conv network, output extents must be positive.
        for id in NetworkId::ALL {
            for l in Network::new(id).layers() {
                assert!(l.out_h() > 0 && l.out_w() > 0, "{id} {}", l.name);
            }
        }
    }

    #[test]
    fn vgg_weight_count_about_138m() {
        let net = Network::new(NetworkId::Vgg16);
        let m = net.total_weights() as f64 / 1e6;
        assert!((130.0..145.0).contains(&m), "VGG-16 params = {m}M");
    }
}
