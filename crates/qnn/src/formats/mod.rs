//! Sparse compression formats used by the accelerators under study.
//!
//! * [`bitmap`] — SparTen's bitmask + compact-value format (paper §II-B2a),
//! * [`coo`] — Ristretto's block COO-2D format (paper §IV-B, Fig 8),
//! * [`csr`] — the CSR format discussed for the Laconic+SNAP combination
//!   (paper §II-B2b).
//!
//! All formats round-trip losslessly to/from dense and expose the element
//! counts the traffic/energy models need.

pub mod bitmap;
pub mod coo;
pub mod csr;
