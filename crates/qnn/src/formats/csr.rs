//! Compressed sparse row (CSR) format.
//!
//! Discussed in the paper (§II-B2b) as the compression a Laconic+SNAP
//! combination would apply to its dense tensors; we use it for the modified
//! Laconic baseline's traffic accounting and as a third round-trip target in
//! the format test matrix.

use crate::error::QnnError;
use serde::{Deserialize, Serialize};

/// A CSR-compressed 2-D matrix of `i32` values.
///
/// ```
/// use qnn::formats::csr::CsrMatrix;
/// let m = CsrMatrix::from_dense(&[0, 1, 2, 0, 0, 3], 2, 3).unwrap();
/// assert_eq!(m.count_nonzero(), 3);
/// assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(1, 1), (2, 2)]);
/// assert_eq!(m.to_dense(), vec![0, 1, 2, 0, 0, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<i32>,
}

impl CsrMatrix {
    /// Compresses a dense row-major matrix of shape `(rows, cols)`.
    ///
    /// # Errors
    /// Returns [`QnnError::ShapeMismatch`] if `dense.len() != rows * cols`
    /// and [`QnnError::EmptyDimension`] for zero extents.
    pub fn from_dense(dense: &[i32], rows: usize, cols: usize) -> Result<Self, QnnError> {
        if rows == 0 {
            return Err(QnnError::EmptyDimension("rows"));
        }
        if cols == 0 {
            return Err(QnnError::EmptyDimension("cols"));
        }
        if dense.len() != rows * cols {
            return Err(QnnError::ShapeMismatch {
                expected: rows * cols,
                actual: dense.len(),
            });
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v != 0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn count_nonzero(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(col, value)` of one row.
    ///
    /// # Panics
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, i32)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of non-zeros in one row.
    ///
    /// # Panics
    /// Panics if `r` is out of bounds.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Decompresses to a dense row-major matrix.
    pub fn to_dense(&self) -> Vec<i32> {
        let mut out = vec![0; self.rows * self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out[r * self.cols + c as usize] = v;
            }
        }
        out
    }

    /// Compressed size in bits with `value_bits` per value, ⌈log2 cols⌉ bits
    /// per column index and 32 bits per row pointer.
    pub fn storage_bits(&self, value_bits: u8) -> usize {
        let col_bits = if self.cols <= 1 {
            1
        } else {
            (usize::BITS - (self.cols - 1).leading_zeros()) as usize
        };
        self.values.len() * value_bits as usize
            + self.col_idx.len() * col_bits
            + self.row_ptr.len() * 32
    }

    /// Inner-product pairing of one row of `self` with one row of `other`
    /// (positions where both are non-zero), as SNAP's associative index
    /// matching would produce.
    ///
    /// # Panics
    /// Panics if row indices are out of bounds or column counts differ.
    pub fn match_row(&self, r: usize, other: &CsrMatrix, ro: usize) -> Vec<(i32, i32)> {
        assert_eq!(self.cols, other.cols, "column counts differ");
        let mut out = Vec::new();
        let mut a = self.row(r).peekable();
        let mut b = other.row(ro).peekable();
        while let (Some(&(ca, va)), Some(&(cb, vb))) = (a.peek(), b.peek()) {
            match ca.cmp(&cb) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    out.push((va, vb));
                    a.next();
                    b.next();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dense = vec![0, 1, 0, 2, 0, 0, 3, 0, 4, 0, 0, 0];
        let m = CsrMatrix::from_dense(&dense, 3, 4).unwrap();
        assert_eq!(m.to_dense(), dense);
        assert_eq!(m.count_nonzero(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.row_nnz(2), 1);
    }

    #[test]
    fn row_iteration_in_column_order() {
        let m = CsrMatrix::from_dense(&[5, 0, 6, 0, 7, 0], 1, 6).unwrap();
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(0, 5), (2, 6), (4, 7)]);
    }

    #[test]
    fn match_row_intersects_columns() {
        let a = CsrMatrix::from_dense(&[1, 0, 2, 3, 0], 1, 5).unwrap();
        let b = CsrMatrix::from_dense(&[0, 9, 8, 7, 6], 1, 5).unwrap();
        assert_eq!(a.match_row(0, &b, 0), vec![(2, 8), (3, 7)]);
    }

    #[test]
    fn match_row_agrees_with_dense_dot_structure() {
        let a = CsrMatrix::from_dense(&[1, 2, 0, 0, 5, 6, 0, 8], 2, 4).unwrap();
        let b = CsrMatrix::from_dense(&[0, 3, 3, 0, 1, 0, 2, 4], 2, 4).unwrap();
        let pairs = a.match_row(1, &b, 1);
        let dot: i64 = pairs.iter().map(|&(x, y)| x as i64 * y as i64).sum();
        assert_eq!(dot, 5 + 8 * 4);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(CsrMatrix::from_dense(&[1, 2], 1, 3).is_err());
        assert!(CsrMatrix::from_dense(&[], 0, 3).is_err());
    }

    #[test]
    fn storage_bits_scale_with_nnz() {
        let sparse = CsrMatrix::from_dense(&[0; 64], 4, 16).unwrap();
        let dense = CsrMatrix::from_dense(&[1; 64], 4, 16).unwrap();
        assert!(sparse.storage_bits(8) < dense.storage_bits(8));
    }
}
