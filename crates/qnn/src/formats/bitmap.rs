//! SparTen-style bitmap compression.
//!
//! A dense vector is stored as a bitmask (one bit per position, 1 = non-zero)
//! plus a compact vector of the non-zero values in position order. SparTen's
//! inner-join intersects two bitmasks with priority encoding + prefix sums to
//! pair matching non-zeros; [`BitmapVec::matching_pairs`] is the functional
//! model of that logic and drives the SparTen cycle model.

use serde::{Deserialize, Serialize};

/// A bitmap-compressed sparse vector.
///
/// ```
/// use qnn::formats::bitmap::BitmapVec;
/// let v = BitmapVec::from_dense(&[0, 5, 0, -3]);
/// assert_eq!(v.len(), 4);
/// assert_eq!(v.nonzeros(), &[5, -3]);
/// assert_eq!(v.to_dense(), vec![0, 5, 0, -3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitmapVec {
    len: usize,
    mask: Vec<u64>,
    values: Vec<i32>,
}

impl BitmapVec {
    /// Compresses a dense vector.
    pub fn from_dense(dense: &[i32]) -> Self {
        let len = dense.len();
        let mut mask = vec![0u64; len.div_ceil(64)];
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0 {
                mask[i / 64] |= 1u64 << (i % 64);
                values.push(v);
            }
        }
        Self { len, mask, values }
    }

    /// Logical (uncompressed) length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the logical vector has length zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The compact non-zero values in position order.
    pub fn nonzeros(&self) -> &[i32] {
        &self.values
    }

    /// Number of non-zero entries.
    pub fn count_nonzero(&self) -> usize {
        self.values.len()
    }

    /// Whether position `i` holds a non-zero.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "position {i} out of bounds (len {})",
            self.len
        );
        self.mask[i / 64] >> (i % 64) & 1 == 1
    }

    /// Decompresses back to a dense vector.
    pub fn to_dense(&self) -> Vec<i32> {
        let mut out = vec![0; self.len];
        let mut next = 0;
        for (i, slot) in out.iter_mut().enumerate() {
            if self.bit(i) {
                *slot = self.values[next];
                next += 1;
            }
        }
        out
    }

    /// Number of positions where both vectors are non-zero — the number of
    /// effectual multiplications SparTen's inner-join extracts (one per
    /// cycle per compute unit).
    ///
    /// # Panics
    /// Panics if the logical lengths differ.
    pub fn match_count(&self, other: &BitmapVec) -> usize {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        self.mask
            .iter()
            .zip(&other.mask)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Extracts the matched value pairs, in position order, exactly as the
    /// inner-join feeds them to the MAC.
    ///
    /// # Panics
    /// Panics if the logical lengths differ.
    pub fn matching_pairs(&self, other: &BitmapVec) -> Vec<(i32, i32)> {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        let mut pairs = Vec::new();
        let (mut ai, mut bi) = (0usize, 0usize);
        for i in 0..self.len {
            let (a_set, b_set) = (self.bit(i), other.bit(i));
            if a_set && b_set {
                pairs.push((self.values[ai], other.values[bi]));
            }
            if a_set {
                ai += 1;
            }
            if b_set {
                bi += 1;
            }
        }
        pairs
    }

    /// Per-segment match counts when the bitmask is split into `segments`
    /// equal chunks (SparTen-mp places one inner-join per chunk; imbalance
    /// across chunks throttles its parallel extraction, paper §V-A1).
    ///
    /// # Panics
    /// Panics if lengths differ or `segments == 0`.
    pub fn segmented_match_counts(&self, other: &BitmapVec, segments: usize) -> Vec<usize> {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        assert!(segments > 0, "need at least one segment");
        let seg_len = self.len.div_ceil(segments);
        let mut counts = vec![0usize; segments];
        for i in 0..self.len {
            if self.bit(i) && other.bit(i) {
                counts[i / seg_len] += 1;
            }
        }
        counts
    }

    /// Size of the compressed representation in bits, assuming `value_bits`
    /// per stored non-zero (mask contributes one bit per logical position).
    pub fn storage_bits(&self, value_bits: u8) -> usize {
        self.len + self.values.len() * value_bits as usize
    }
}

impl FromIterator<i32> for BitmapVec {
    fn from_iter<T: IntoIterator<Item = i32>>(iter: T) -> Self {
        let dense: Vec<i32> = iter.into_iter().collect();
        Self::from_dense(&dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various() {
        for dense in [
            vec![],
            vec![0, 0, 0],
            vec![1, 2, 3],
            vec![0, -7, 0, 0, 9, 0],
        ] {
            let c = BitmapVec::from_dense(&dense);
            assert_eq!(c.to_dense(), dense);
        }
    }

    #[test]
    fn roundtrip_crossing_word_boundary() {
        let mut dense = vec![0i32; 130];
        dense[0] = 1;
        dense[63] = 2;
        dense[64] = 3;
        dense[129] = 4;
        let c = BitmapVec::from_dense(&dense);
        assert_eq!(c.count_nonzero(), 4);
        assert_eq!(c.to_dense(), dense);
    }

    #[test]
    fn match_count_is_intersection_popcount() {
        let a = BitmapVec::from_dense(&[1, 0, 2, 0, 3, 0]);
        let b = BitmapVec::from_dense(&[0, 1, 5, 0, 7, 7]);
        assert_eq!(a.match_count(&b), 2);
        assert_eq!(a.matching_pairs(&b), vec![(2, 5), (3, 7)]);
    }

    #[test]
    fn matching_pairs_align_values_not_positions() {
        let a = BitmapVec::from_dense(&[9, 0, 8, 7]);
        let b = BitmapVec::from_dense(&[0, 6, 5, 4]);
        // Matches at positions 2 and 3 -> (8,5), (7,4).
        assert_eq!(a.matching_pairs(&b), vec![(8, 5), (7, 4)]);
    }

    #[test]
    fn segmented_counts_sum_to_total() {
        let a = BitmapVec::from_dense(&[1; 64]);
        let mut bd = vec![0i32; 64];
        for i in (0..64).step_by(3) {
            bd[i] = 2;
        }
        let b = BitmapVec::from_dense(&bd);
        let segs = a.segmented_match_counts(&b, 4);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs.iter().sum::<usize>(), a.match_count(&b));
    }

    #[test]
    fn storage_accounting() {
        let c = BitmapVec::from_dense(&[0, 3, 0, 1]);
        assert_eq!(c.storage_bits(8), 4 + 2 * 8);
    }

    #[test]
    fn from_iterator() {
        let c: BitmapVec = [0, 1, 0, 2].into_iter().collect();
        assert_eq!(c.count_nonzero(), 2);
    }
}
