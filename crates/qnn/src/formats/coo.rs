//! Ristretto's block COO-2D compression format (paper §IV-B, Fig 8).
//!
//! Feature maps are partitioned into spatial tiles; each non-zero activation
//! is stored as a value plus a `(x, y)` coordinate *relative to the tile
//! origin*, in zigzag (row-major) flattening order. Kernels use the same
//! layout per `(output, input)` channel slice. This removes all on- and
//! off-chip movement of zero values.

use crate::error::QnnError;
use crate::tensor::Tensor3;
use serde::{Deserialize, Serialize};

/// One compressed entry: a non-zero value with its in-tile coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CooEntry {
    /// Non-zero value.
    pub value: i32,
    /// Column offset from the tile origin.
    pub x: u16,
    /// Row offset from the tile origin.
    pub y: u16,
}

/// A block COO-2D compressed spatial tile of one channel.
///
/// ```
/// use qnn::formats::coo::BlockCoo2d;
/// let tile = BlockCoo2d::from_dense(&[0, 7, 0, 9], 2, 2).unwrap();
/// assert_eq!(tile.entries().len(), 2);
/// assert_eq!(tile.entries()[0].value, 7);
/// assert_eq!((tile.entries()[1].x, tile.entries()[1].y), (1, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCoo2d {
    th: usize,
    tw: usize,
    entries: Vec<CooEntry>,
}

impl BlockCoo2d {
    /// Compresses a dense row-major tile of shape `(th, tw)`.
    ///
    /// # Errors
    /// Returns [`QnnError::ShapeMismatch`] if `dense.len() != th * tw`, and
    /// [`QnnError::EmptyDimension`] for zero extents.
    pub fn from_dense(dense: &[i32], th: usize, tw: usize) -> Result<Self, QnnError> {
        if th == 0 {
            return Err(QnnError::EmptyDimension("th"));
        }
        if tw == 0 {
            return Err(QnnError::EmptyDimension("tw"));
        }
        if dense.len() != th * tw {
            return Err(QnnError::ShapeMismatch {
                expected: th * tw,
                actual: dense.len(),
            });
        }
        let mut entries = Vec::new();
        // Zigzag (row-major) flattening order, matching Fig 6.
        for y in 0..th {
            for x in 0..tw {
                let v = dense[y * tw + x];
                if v != 0 {
                    entries.push(CooEntry {
                        value: v,
                        x: x as u16,
                        y: y as u16,
                    });
                }
            }
        }
        Ok(Self { th, tw, entries })
    }

    /// Compresses one spatial tile of a channel of a feature map, clamping
    /// at the tensor boundary.
    ///
    /// # Panics
    /// Panics if `c` is out of bounds of `fmap`.
    pub fn from_fmap_tile(
        fmap: &Tensor3,
        c: usize,
        y0: usize,
        x0: usize,
        th: usize,
        tw: usize,
    ) -> Self {
        let dense = fmap.tile(c, y0, x0, th, tw);
        Self::from_dense(&dense, th, tw).expect("tile() returns th*tw elements")
    }

    /// Tile shape `(th, tw)`.
    pub fn tile_shape(&self) -> (usize, usize) {
        (self.th, self.tw)
    }

    /// The compressed entries, in zigzag order.
    pub fn entries(&self) -> &[CooEntry] {
        &self.entries
    }

    /// Number of non-zero values in the tile.
    pub fn count_nonzero(&self) -> usize {
        self.entries.len()
    }

    /// Decompresses back into a dense row-major tile.
    pub fn to_dense(&self) -> Vec<i32> {
        let mut out = vec![0; self.th * self.tw];
        for e in &self.entries {
            out[e.y as usize * self.tw + e.x as usize] = e.value;
        }
        out
    }

    /// Compressed size in bits: each entry carries `value_bits` for the
    /// value plus coordinate metadata (⌈log2 tw⌉ + ⌈log2 th⌉ bits).
    pub fn storage_bits(&self, value_bits: u8) -> usize {
        let coord_bits = bits_for(self.tw) + bits_for(self.th);
        self.entries.len() * (value_bits as usize + coord_bits)
    }
}

fn bits_for(extent: usize) -> usize {
    if extent <= 1 {
        1
    } else {
        (usize::BITS - (extent - 1).leading_zeros()) as usize
    }
}

/// A whole feature map compressed tile-by-tile in block COO-2D: the unit that
/// Ristretto's input buffer banks store contiguously per compute tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CooFeatureMap {
    channels: usize,
    tiles_y: usize,
    tiles_x: usize,
    tile_h: usize,
    tile_w: usize,
    tiles: Vec<BlockCoo2d>,
}

impl CooFeatureMap {
    /// Compresses an entire feature map with `(tile_h, tile_w)` tiling.
    ///
    /// # Errors
    /// Returns [`QnnError::EmptyDimension`] for zero tile extents.
    pub fn from_tensor(fmap: &Tensor3, tile_h: usize, tile_w: usize) -> Result<Self, QnnError> {
        if tile_h == 0 {
            return Err(QnnError::EmptyDimension("tile_h"));
        }
        if tile_w == 0 {
            return Err(QnnError::EmptyDimension("tile_w"));
        }
        let (c, h, w) = fmap.shape();
        let tiles_y = h.div_ceil(tile_h);
        let tiles_x = w.div_ceil(tile_w);
        let mut tiles = Vec::with_capacity(c * tiles_y * tiles_x);
        for ci in 0..c {
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    tiles.push(BlockCoo2d::from_fmap_tile(
                        fmap,
                        ci,
                        ty * tile_h,
                        tx * tile_w,
                        tile_h,
                        tile_w,
                    ));
                }
            }
        }
        Ok(Self {
            channels: c,
            tiles_y,
            tiles_x,
            tile_h,
            tile_w,
            tiles,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Tile grid shape `(tiles_y, tiles_x)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.tiles_y, self.tiles_x)
    }

    /// The tile at channel `c`, grid position `(ty, tx)`.
    ///
    /// # Panics
    /// Panics when indices are out of range.
    pub fn tile(&self, c: usize, ty: usize, tx: usize) -> &BlockCoo2d {
        assert!(c < self.channels && ty < self.tiles_y && tx < self.tiles_x);
        &self.tiles[(c * self.tiles_y + ty) * self.tiles_x + tx]
    }

    /// Iterates over `(channel, ty, tx, tile)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize, &BlockCoo2d)> + '_ {
        self.tiles.iter().enumerate().map(move |(i, t)| {
            let tx = i % self.tiles_x;
            let ty = (i / self.tiles_x) % self.tiles_y;
            let c = i / (self.tiles_x * self.tiles_y);
            (c, ty, tx, t)
        })
    }

    /// Total number of non-zero values across all tiles.
    pub fn count_nonzero(&self) -> usize {
        self.tiles.iter().map(BlockCoo2d::count_nonzero).sum()
    }

    /// Reconstructs the dense feature map (tile padding is discarded).
    ///
    /// # Panics
    /// Panics only if internal invariants are violated.
    pub fn to_tensor(&self, h: usize, w: usize) -> Tensor3 {
        let mut out = Tensor3::zeros(self.channels, h, w).expect("non-empty reconstruction");
        for (c, ty, tx, tile) in self.iter() {
            for e in tile.entries() {
                let y = ty * self.tile_h + e.y as usize;
                let x = tx * self.tile_w + e.x as usize;
                if y < h && x < w {
                    out.set(c, y, x, e.value);
                }
            }
        }
        out
    }

    /// Total compressed size in bits.
    pub fn storage_bits(&self, value_bits: u8) -> usize {
        self.tiles.iter().map(|t| t.storage_bits(value_bits)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor3;

    #[test]
    fn tile_roundtrip() {
        let dense = vec![0, 1, 0, 0, 2, 0, 3, 0, 0];
        let c = BlockCoo2d::from_dense(&dense, 3, 3).unwrap();
        assert_eq!(c.count_nonzero(), 3);
        assert_eq!(c.to_dense(), dense);
    }

    #[test]
    fn entries_in_zigzag_order() {
        let dense = vec![0, 0, 5, 0, 6, 0, 7, 0, 0];
        let c = BlockCoo2d::from_dense(&dense, 3, 3).unwrap();
        let vals: Vec<i32> = c.entries().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![5, 6, 7]);
        assert_eq!((c.entries()[0].x, c.entries()[0].y), (2, 0));
    }

    #[test]
    fn fmap_roundtrip_with_ragged_tiles() {
        let fmap = Tensor3::from_fn(2, 5, 7, |c, y, x| {
            if (c + y + x) % 3 == 0 {
                (c + y + x) as i32 + 1
            } else {
                0
            }
        })
        .unwrap();
        let coo = CooFeatureMap::from_tensor(&fmap, 2, 2).unwrap();
        assert_eq!(coo.grid(), (3, 4));
        assert_eq!(coo.to_tensor(5, 7), fmap);
        assert_eq!(coo.count_nonzero(), fmap.count_nonzero());
    }

    #[test]
    fn storage_bits_counts_metadata() {
        let c = BlockCoo2d::from_dense(&[1, 0, 0, 2], 2, 2).unwrap();
        // 2 entries * (8 value bits + 1 + 1 coordinate bits)
        assert_eq!(c.storage_bits(8), 2 * 10);
    }

    #[test]
    fn bits_for_extents() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(17), 5);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(BlockCoo2d::from_dense(&[1], 0, 1).is_err());
        assert!(BlockCoo2d::from_dense(&[1, 2, 3], 2, 2).is_err());
    }
}
