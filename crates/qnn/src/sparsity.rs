//! Value- and atom-level sparsity statistics.
//!
//! The paper distinguishes *value* sparsity (fraction of zero weights or
//! activations) from *atom* (bit-level) sparsity (fraction of zero N-bit
//! atoms inside the non-zero values). Both feed the condensed streaming
//! computation's closed-form latency (paper §III-B) and the load balancer.

use crate::tensor::{Tensor3, Tensor4};
use serde::{Deserialize, Serialize};

/// Fraction of non-zero entries in a slice (the paper's α_v / β_v).
pub fn value_density(values: &[i32]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v != 0).count() as f64 / values.len() as f64
}

/// Number of non-zero `atom_bits`-wide atoms in the magnitude of `v`.
///
/// ```
/// use qnn::sparsity::nonzero_atoms;
/// // 29 = 0b01_11_01 -> atoms {1, 3, 1} under 2-bit granularity.
/// assert_eq!(nonzero_atoms(29, 2), 3);
/// // 0b0100_0001 has two non-zero 2-bit atoms (shifts 0 and 6).
/// assert_eq!(nonzero_atoms(0b0100_0001, 2), 2);
/// assert_eq!(nonzero_atoms(0, 2), 0);
/// ```
///
/// # Panics
/// Panics if `atom_bits` is 0 or greater than 8.
pub fn nonzero_atoms(v: i32, atom_bits: u8) -> u32 {
    assert!(
        (1..=8).contains(&atom_bits),
        "atom granularity must be 1..=8 bits"
    );
    let mut m = v.unsigned_abs();
    let mask = (1u32 << atom_bits) - 1;
    let mut count = 0;
    while m != 0 {
        if m & mask != 0 {
            count += 1;
        }
        m >>= atom_bits;
    }
    count
}

/// Average fraction of non-zero atoms per *non-zero* value (the paper's
/// α_a / β_a), for values quantized to `value_bits` and atomized at
/// `atom_bits` granularity.
///
/// Returns 0 when the slice contains no non-zero values.
pub fn atom_density(values: &[i32], value_bits: u8, atom_bits: u8) -> f64 {
    let atoms_per_value = value_bits.div_ceil(atom_bits) as f64;
    let (mut total, mut nonzero_values) = (0u64, 0u64);
    for &v in values {
        if v != 0 {
            nonzero_values += 1;
            total += nonzero_atoms(v, atom_bits) as u64;
        }
    }
    if nonzero_values == 0 {
        0.0
    } else {
        total as f64 / (nonzero_values as f64 * atoms_per_value)
    }
}

/// Total count of non-zero atoms over all values in a slice (zero values
/// contribute nothing). This is the `t`/`S`/`T` quantity of Eq 3–5.
pub fn total_nonzero_atoms(values: &[i32], atom_bits: u8) -> u64 {
    values
        .iter()
        .map(|&v| nonzero_atoms(v, atom_bits) as u64)
        .sum()
}

/// Aggregate sparsity statistics for a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsityStats {
    /// Total number of values.
    pub len: usize,
    /// Number of non-zero values.
    pub nonzero_values: usize,
    /// Total non-zero atoms across all values.
    pub nonzero_atoms: u64,
    /// Fraction of non-zero values (α_v / β_v).
    pub value_density: f64,
    /// Fraction of non-zero atoms within non-zero values (α_a / β_a).
    pub atom_density: f64,
}

impl SparsityStats {
    /// Computes statistics for a flat slice quantized to `value_bits`, under
    /// `atom_bits` atom granularity.
    pub fn from_values(values: &[i32], value_bits: u8, atom_bits: u8) -> Self {
        Self {
            len: values.len(),
            nonzero_values: values.iter().filter(|&&v| v != 0).count(),
            nonzero_atoms: total_nonzero_atoms(values, atom_bits),
            value_density: value_density(values),
            atom_density: atom_density(values, value_bits, atom_bits),
        }
    }

    /// Statistics of a feature map.
    pub fn from_tensor3(t: &Tensor3, value_bits: u8, atom_bits: u8) -> Self {
        Self::from_values(t.as_slice(), value_bits, atom_bits)
    }

    /// Statistics of a kernel tensor.
    pub fn from_tensor4(t: &Tensor4, value_bits: u8, atom_bits: u8) -> Self {
        Self::from_values(t.as_slice(), value_bits, atom_bits)
    }

    /// Value *sparsity* (1 − density), as the paper reports it.
    pub fn value_sparsity(&self) -> f64 {
        1.0 - self.value_density
    }

    /// Effective combined density of the compressed atom stream relative to
    /// the dense atom count: α_v·α_a (or β_v·β_a).
    pub fn combined_density(&self) -> f64 {
        self.value_density * self.atom_density
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_density_basics() {
        assert_eq!(value_density(&[]), 0.0);
        assert_eq!(value_density(&[0, 0, 0, 0]), 0.0);
        assert_eq!(value_density(&[1, 0, -2, 0]), 0.5);
    }

    #[test]
    fn nonzero_atoms_examples_from_paper() {
        // §III-A: 29 = 01_11_01 has terms {1·2^4, 3·2^2, 1·2^0}.
        assert_eq!(nonzero_atoms(29, 2), 3);
        // Fig 5 operands: -11 (mag 1011) has atoms 3,2; 13 (1101) has 1,3.
        assert_eq!(nonzero_atoms(-11, 2), 2);
        assert_eq!(nonzero_atoms(13, 2), 2);
    }

    #[test]
    fn nonzero_atoms_across_granularities() {
        let v = 0b0101_0001;
        assert_eq!(nonzero_atoms(v, 1), 3);
        assert_eq!(nonzero_atoms(v, 2), 3); // 01 01 00 01
        assert_eq!(nonzero_atoms(v, 3), 3); // 0b1010001 -> atoms 001, 010, 1
        assert_eq!(nonzero_atoms(v, 4), 2);
        assert_eq!(nonzero_atoms(v, 8), 1);
    }

    #[test]
    fn atom_density_ignores_zero_values() {
        // Two values: 3 (0b11 -> one 2b atom of two possible under 4-bit) and 0.
        let values = [3, 0];
        let d = atom_density(&values, 4, 2);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn atom_density_full_when_all_atoms_set() {
        // 15 = 0b1111: both 2-bit atoms non-zero under 4-bit values.
        assert_eq!(atom_density(&[15, 15], 4, 2), 1.0);
        assert_eq!(atom_density(&[0], 4, 2), 0.0);
    }

    #[test]
    fn stats_combined_density() {
        // Values 4-bit: [5 (0b0101: atoms 1,1), 0, 0, 8 (0b1000: atom hi only)]
        let s = SparsityStats::from_values(&[5, 0, 0, 8], 4, 2);
        assert_eq!(s.nonzero_values, 2);
        assert_eq!(s.nonzero_atoms, 3);
        assert!((s.value_density - 0.5).abs() < 1e-12);
        assert!((s.atom_density - 0.75).abs() < 1e-12);
        assert!((s.combined_density() - 0.375).abs() < 1e-12);
        assert!((s.value_sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_values_use_magnitude() {
        assert_eq!(nonzero_atoms(-128, 2), 1); // 1000_0000 -> single atom at shift 6
        assert_eq!(
            nonzero_atoms(i32::MIN + 1, 1),
            31 - (i32::MAX.count_zeros() - 1)
        );
    }

    #[test]
    fn total_atoms_sums() {
        assert_eq!(total_nonzero_atoms(&[29, 0, -11], 2), 5);
    }
}
