//! Error type shared by the `qnn` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction, convolution geometry checks and
/// format conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QnnError {
    /// The provided buffer length does not match the requested shape.
    ShapeMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A dimension was zero where a non-zero extent is required.
    EmptyDimension(&'static str),
    /// The kernel does not fit in the (padded) input feature map.
    KernelTooLarge {
        /// Kernel spatial extent.
        kernel: usize,
        /// Padded input spatial extent.
        input: usize,
    },
    /// Channel counts of the feature map and kernel disagree.
    ChannelMismatch {
        /// Input feature-map channels.
        fmap: usize,
        /// Kernel input channels.
        kernel: usize,
    },
    /// A stride of zero was requested.
    ZeroStride,
    /// An out-of-range bit-width was requested (supported: 1..=16).
    UnsupportedBitWidth(u8),
    /// A value does not fit the requested quantized range.
    ValueOutOfRange {
        /// Offending value.
        value: i64,
        /// Number of bits available.
        bits: u8,
    },
    /// A layer is too large to materialize as dense tensors (use the
    /// statistical [`crate::workload::LayerStats`] path instead).
    LayerTooLarge {
        /// Total elements (weights + activations) the layer would need.
        elements: usize,
    },
    /// An extent computation overflowed the machine word: the requested
    /// geometry cannot even be *addressed*, let alone allocated. Degenerate
    /// adversarial shapes must surface as a typed error, not a silent
    /// wrap-around or abort.
    ExtentOverflow {
        /// Name of the quantity whose computation overflowed.
        what: &'static str,
    },
}

impl fmt::Display for QnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QnnError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape implies {expected} elements but {actual} were provided"
                )
            }
            QnnError::EmptyDimension(name) => write!(f, "dimension `{name}` must be non-zero"),
            QnnError::KernelTooLarge { kernel, input } => {
                write!(
                    f,
                    "kernel extent {kernel} exceeds padded input extent {input}"
                )
            }
            QnnError::ChannelMismatch { fmap, kernel } => {
                write!(
                    f,
                    "feature map has {fmap} channels but kernel expects {kernel}"
                )
            }
            QnnError::ZeroStride => write!(f, "convolution stride must be non-zero"),
            QnnError::UnsupportedBitWidth(b) => {
                write!(f, "unsupported bit-width {b} (expected 1..=16)")
            }
            QnnError::ValueOutOfRange { value, bits } => {
                write!(f, "value {value} does not fit in {bits} bits")
            }
            QnnError::LayerTooLarge { elements } => {
                write!(f, "layer too large to materialize ({elements} elements)")
            }
            QnnError::ExtentOverflow { what } => {
                write!(
                    f,
                    "extent computation for {what} overflows the machine word"
                )
            }
        }
    }
}

impl Error for QnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = QnnError::ZeroStride;
        let msg = e.to_string();
        assert!(msg.starts_with("convolution"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QnnError>();
    }

    #[test]
    fn extent_overflow_names_the_quantity() {
        let e = QnnError::ExtentOverflow {
            what: "full-conv plane",
        };
        assert!(e.to_string().contains("full-conv plane"));
    }
}
