//! Seeded random sampling helpers for synthetic workload generation.
//!
//! All experiments in the reproduction are deterministic given a seed. The
//! generator is a self-contained xoshiro256** (seeded through SplitMix64) so
//! that streams are cheap to clone and fork and stable across dependency
//! versions; Gaussian and Laplacian samplers are implemented locally.

/// A seeded random source with the distribution samplers used by the
/// synthetic model generator.
///
/// ```
/// use qnn::rng::SeededRng;
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.uniform_f64(), b.uniform_f64());
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed with SplitMix64, the recommended xoshiro seeding.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Derives an independent child generator; useful for giving each layer
    /// or tile its own stream without coupling their sequences.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(s)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // 128-bit multiply keeps the range bias below 2^-64 — negligible
        // for simulation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: u1 in (0,1], u2 in [0,1).
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Zero-mean Laplace sample with the given scale `b` (std dev `√2·b`).
    ///
    /// Trained CNN weights are well modelled as Laplacian: strongly peaked
    /// at zero with heavier tails than a Gaussian, which is what makes
    /// low-bit uniform quantization produce substantial weight sparsity
    /// (paper Fig 1).
    pub fn laplace(&mut self, scale: f64) -> f64 {
        let u = self.uniform_f64() - 0.5;
        -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Chooses `k` distinct indices out of `0..n` (reservoir sampling).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_given_seed() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_f64().to_bits(), b.uniform_f64().to_bits());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = SeededRng::new(1);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let va: Vec<u64> = (0..8).map(|_| a.uniform_f64().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.uniform_f64().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SeededRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_covers_range_uniformly() {
        let mut r = SeededRng::new(17);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SeededRng::new(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn laplace_moments_are_plausible() {
        let mut r = SeededRng::new(123);
        let n = 20_000;
        let scale = 2.0;
        let samples: Vec<f64> = (0..n).map(|_| r.laplace(scale)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        // Laplace variance = 2 * scale^2 = 8.
        assert!((var - 8.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SeededRng::new(5);
        let mut idx = r.sample_indices(100, 20);
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 20);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
