//! Synthetic workload generation.
//!
//! The paper evaluates on ImageNet-trained models quantized to 2/4/8-bit
//! (plus EdMIPS mixed 2/4-bit) and pruned. We do not have those checkpoints;
//! instead this module generates *seeded synthetic tensors* whose value
//! distributions reproduce the statistics every experiment actually
//! consumes:
//!
//! * weights: Laplacian (peaked at zero), clipped and uniformly quantized
//!   with the bit-dependent clip of [`crate::quant::weight_clip_multiplier`],
//!   then magnitude-pruned to the benchmark's pruning target;
//! * activations: ReLU-censored Gaussians whose pre-activation mean shifts
//!   with the bit-width ([`crate::quant::retrain_sparsity_shift`]), modelling
//!   the sparser activations of retrained low-bit networks (paper Fig 1).
//!
//! Small layers can be materialized as full tensors (for the cycle-accurate
//! simulators and correctness tests); large network sweeps use
//! [`LayerStats`], which samples per input channel and scales, so simulating
//! ResNet-50 never allocates a 100M-element tensor.

use crate::error::QnnError;
use crate::layers::ConvLayer;
use crate::models::{Network, NetworkId};
use crate::prune::magnitude_prune;
use crate::quant::{
    activation_clip_multiplier, retrain_sparsity_shift, weight_clip_multiplier, BitWidth, Quantizer,
};
use crate::rng::SeededRng;
use crate::sparsity::{nonzero_atoms, SparsityStats};
use crate::tensor::{Tensor3, Tensor4};
use serde::{Deserialize, Serialize};

/// Cap on the number of values sampled per input channel when estimating
/// layer statistics.
const CHANNEL_SAMPLE_CAP: usize = 768;
/// Cap on the representative value sample stored in [`LayerStats`].
const STATS_SAMPLE_CAP: usize = 8192;

/// Distribution parameters for synthetic *weights*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightProfile {
    /// Quantization bit-width.
    pub bits: BitWidth,
    /// Extra magnitude-pruning target applied after quantization
    /// (fraction of zeros; quantization-induced zeros count toward it).
    pub prune_sparsity: f64,
    /// Multiplicative jitter on the clip range (per-network flavour).
    pub clip_scale: f64,
}

impl WeightProfile {
    /// Unpruned profile at the given bit-width (used by the Fig 1 study).
    pub fn unpruned(bits: BitWidth) -> Self {
        Self {
            bits,
            prune_sparsity: 0.0,
            clip_scale: 1.0,
        }
    }

    /// The DNN-benchmark profile: quantized plus moderately pruned
    /// ("without hurting accuracy", §V-A2).
    pub fn benchmark(bits: BitWidth) -> Self {
        Self {
            bits,
            prune_sparsity: 0.45,
            clip_scale: 1.0,
        }
    }

    /// Returns a copy with a different pruning target.
    pub fn with_prune(mut self, sparsity: f64) -> Self {
        self.prune_sparsity = sparsity;
        self
    }
}

/// Distribution parameters for synthetic *activations*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationProfile {
    /// Quantization bit-width.
    pub bits: BitWidth,
    /// Pre-activation mean shift in σ units; larger → sparser after ReLU.
    /// Networks differ here (AlexNet's ReLU sparsity ≈ 0.5σ shift, deeper
    /// nets higher).
    pub relu_shift: f64,
}

impl ActivationProfile {
    /// Profile with the network-neutral base shift.
    pub fn new(bits: BitWidth) -> Self {
        Self {
            bits,
            relu_shift: 0.0,
        }
    }

    /// Returns a copy with the given ReLU shift.
    pub fn with_shift(mut self, shift: f64) -> Self {
        self.relu_shift = shift;
        self
    }

    /// Effective shift including the bit-dependent retraining term.
    pub fn effective_shift(&self) -> f64 {
        self.relu_shift + retrain_sparsity_shift(self.bits) as f64
    }
}

/// Per-network distribution flavour: `(relu_shift, weight_clip_scale,
/// weight_prune)` — chosen so the six networks spread around the paper's
/// Figure 1 averages rather than collapsing onto one curve.
pub fn network_flavor(id: NetworkId) -> (f64, f64, f64) {
    // Pruning targets follow the magnitude-pruning literature: AlexNet and
    // VGG prune the hardest without accuracy loss, compact nets less so.
    match id {
        NetworkId::AlexNet => (0.05, 1.10, 0.65),
        NetworkId::Vgg16 => (0.20, 1.00, 0.70),
        NetworkId::GoogLeNet => (-0.05, 0.95, 0.55),
        NetworkId::InceptionV2 => (0.00, 0.90, 0.55),
        NetworkId::ResNet18 => (0.10, 1.05, 0.60),
        NetworkId::ResNet50 => (0.15, 1.00, 0.60),
    }
}

/// Seeded generator for synthetic quantized tensors and layer statistics.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    rng: SeededRng,
}

impl WorkloadGen {
    /// Creates a generator from a seed; identical seeds reproduce identical
    /// workloads.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SeededRng::new(seed),
        }
    }

    /// Direct access to the underlying random source.
    pub fn rng_mut(&mut self) -> &mut SeededRng {
        &mut self.rng
    }

    /// Samples one quantized weight value.
    fn sample_weight(rng: &mut SeededRng, q: &Quantizer) -> i32 {
        // Laplace with unit std-dev (scale 1/√2).
        q.quantize(rng.laplace(std::f64::consts::FRAC_1_SQRT_2) as f32)
    }

    /// Samples one quantized post-ReLU activation value.
    fn sample_activation(rng: &mut SeededRng, q: &Quantizer, shift: f64) -> i32 {
        let pre = rng.normal() - shift;
        if pre <= 0.0 {
            0
        } else {
            q.quantize(pre as f32)
        }
    }

    fn weight_quantizer(profile: &WeightProfile) -> Quantizer {
        let clip = weight_clip_multiplier(profile.bits) * profile.clip_scale as f32;
        Quantizer::symmetric(profile.bits.bits(), clip.max(1e-3))
    }

    fn activation_quantizer(profile: &ActivationProfile) -> Quantizer {
        let clip = activation_clip_multiplier(profile.bits);
        Quantizer::unsigned(profile.bits.bits(), clip)
    }

    /// Generates a flat vector of `n` quantized weights.
    pub fn weight_values(&mut self, n: usize, profile: &WeightProfile) -> Vec<i32> {
        let q = Self::weight_quantizer(profile);
        let mut v: Vec<i32> = (0..n)
            .map(|_| Self::sample_weight(&mut self.rng, &q))
            .collect();
        if profile.prune_sparsity > 0.0 {
            magnitude_prune(&mut v, profile.prune_sparsity);
        }
        v
    }

    /// Generates a flat vector of `n` quantized activations.
    pub fn activation_values(&mut self, n: usize, profile: &ActivationProfile) -> Vec<i32> {
        let q = Self::activation_quantizer(profile);
        let shift = profile.effective_shift();
        (0..n)
            .map(|_| Self::sample_activation(&mut self.rng, &q, shift))
            .collect()
    }

    /// Generates a full kernel tensor.
    ///
    /// # Errors
    /// Propagates shape validation from [`Tensor4::from_vec`].
    pub fn weights(
        &mut self,
        o: usize,
        i: usize,
        kh: usize,
        kw: usize,
        profile: &WeightProfile,
    ) -> Result<Tensor4, crate::error::QnnError> {
        let data = self.weight_values(o * i * kh * kw, profile);
        Tensor4::from_vec(o, i, kh, kw, data)
    }

    /// Generates a full activation tensor.
    ///
    /// # Errors
    /// Propagates shape validation from [`Tensor3::from_vec`].
    pub fn activations(
        &mut self,
        c: usize,
        h: usize,
        w: usize,
        profile: &ActivationProfile,
    ) -> Result<Tensor3, crate::error::QnnError> {
        let data = self.activation_values(c * h * w, profile);
        Tensor3::from_vec(c, h, w, data)
    }

    /// Generates `n` values with an *exact* number of non-zeros
    /// (`round(n · density)`), uniformly placed; magnitudes are uniform over
    /// the representable range. Used for the controlled-sparsity studies
    /// (paper Fig 4 and Fig 15).
    pub fn values_with_density(
        &mut self,
        n: usize,
        bits: BitWidth,
        density: f64,
        signed: bool,
    ) -> Vec<i32> {
        assert!((0.0..=1.0).contains(&density), "density outside [0,1]");
        let nnz = ((n as f64 * density).round() as usize).min(n);
        let mut out = vec![0i32; n];
        let max = if signed {
            bits.signed_max()
        } else {
            bits.unsigned_max()
        };
        for idx in self.rng.sample_indices(n, nnz) {
            let mag = 1 + self.rng.below(max as usize) as i32;
            out[idx] = if signed && self.rng.bernoulli(0.5) {
                -mag
            } else {
                mag
            };
        }
        out
    }

    /// Generates `n` non-zero values whose *atom density* (fraction of
    /// non-zero `atom_bits` atoms among ⌈bits/atom_bits⌉ slots) matches the
    /// target in expectation. Used by the Fig 15 atom-sparsity sweep.
    pub fn values_with_atom_density(
        &mut self,
        n: usize,
        bits: BitWidth,
        atom_bits: u8,
        atom_density: f64,
        signed: bool,
    ) -> Vec<i32> {
        assert!(
            (0.0..=1.0).contains(&atom_density),
            "atom density outside [0,1]"
        );
        let slots = bits.bits().div_ceil(atom_bits) as usize;
        let atom_max = (1u32 << atom_bits) - 1;
        // Values must be non-zero, so an all-zero draw gets one forced atom;
        // that inflates the measured density by (1-p)^S / S. Solve for the
        // per-slot probability p whose *effective* density hits the target.
        let target = atom_density.max(1.0 / slots as f64);
        let effective = |p: f64| p + (1.0 - p).powi(slots as i32) / slots as f64;
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if effective(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p = 0.5 * (lo + hi);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut mag = 0u32;
            for s in 0..slots {
                if self.rng.bernoulli(p) {
                    let a = 1 + self.rng.below(atom_max as usize) as u32;
                    mag |= a << (s as u32 * atom_bits as u32);
                }
            }
            if mag == 0 {
                // Values must be non-zero: force one atom.
                let s = self.rng.below(slots);
                mag =
                    (1 + self.rng.below(atom_max as usize) as u32) << (s as u32 * atom_bits as u32);
            }
            // Clamp to the representable range.
            let cap = if signed {
                bits.signed_max() as u32
            } else {
                bits.unsigned_max() as u32
            };
            let mag = mag.min(cap).max(1) as i32;
            out.push(if signed && self.rng.bernoulli(0.5) {
                -mag
            } else {
                mag
            });
        }
        out
    }

    /// Draws one channel's worth of adversarial values: a per-channel
    /// pattern chosen from all-zero, dense-maximal, dense-random, sparse,
    /// very-sparse-extreme, and single-hot-spot — the corner distributions
    /// a differential harness needs (empty streams, all-dense tiles,
    /// maximal magnitudes, and a lone value that leaves every other tile
    /// unoccupied).
    fn adversarial_plane(&mut self, n: usize, max_mag: i32, signed: bool) -> Vec<i32> {
        debug_assert!(max_mag >= 1);
        let value = |rng: &mut SeededRng, mag: i32| {
            if signed && rng.bernoulli(0.5) {
                -mag
            } else {
                mag
            }
        };
        match self.rng.below(6) {
            // Empty channel: exercises empty-stream handling end to end.
            0 => vec![0; n],
            // All-dense at the maximal magnitude: worst-case atom counts.
            1 => (0..n).map(|_| value(&mut self.rng, max_mag)).collect(),
            // Dense random.
            2 => (0..n)
                .map(|_| {
                    let mag = 1 + self.rng.below(max_mag as usize) as i32;
                    value(&mut self.rng, mag)
                })
                .collect(),
            // Moderately sparse random.
            3 => (0..n)
                .map(|_| {
                    if self.rng.bernoulli(0.6) {
                        0
                    } else {
                        let mag = 1 + self.rng.below(max_mag as usize) as i32;
                        value(&mut self.rng, mag)
                    }
                })
                .collect(),
            // Very sparse, extreme magnitudes only (1 or max).
            4 => (0..n)
                .map(|_| {
                    if self.rng.bernoulli(0.9) {
                        0
                    } else {
                        let mag = if self.rng.bernoulli(0.5) { 1 } else { max_mag };
                        value(&mut self.rng, mag)
                    }
                })
                .collect(),
            // Single hot spot: one maximal value in an otherwise empty
            // plane, so a tiled consumer sees exactly one occupied tile
            // among arbitrarily many empty ones.
            _ => {
                let mut plane = vec![0; n];
                let slot = self.rng.below(n.max(1));
                if let Some(cell) = plane.get_mut(slot) {
                    *cell = value(&mut self.rng, max_mag);
                }
                plane
            }
        }
    }

    /// Generates an adversarial activation tensor for differential testing:
    /// each channel independently draws one of the corner patterns
    /// (all-zero, dense-maximal, dense-random, sparse, very-sparse with
    /// maximal magnitudes). Values are unsigned and bounded by
    /// `bits.unsigned_max()` (the full atomizable range).
    ///
    /// # Errors
    /// Propagates shape validation from [`Tensor3::from_vec`].
    pub fn adversarial_activations(
        &mut self,
        c: usize,
        h: usize,
        w: usize,
        bits: BitWidth,
    ) -> Result<Tensor3, QnnError> {
        let mut data = Vec::with_capacity(c * h * w);
        for _ in 0..c {
            data.extend(self.adversarial_plane(h * w, bits.unsigned_max(), false));
        }
        Tensor3::from_vec(c, h, w, data)
    }

    /// Generates an adversarial kernel tensor for differential testing.
    /// Patterns are drawn per **input** channel (across all kernels), so
    /// whole weight streams come out empty; weights are signed with
    /// magnitudes up to `bits.unsigned_max()` — the full range the signed
    /// atomizer accepts, beyond the symmetric-quantizer maximum.
    ///
    /// # Errors
    /// Propagates shape validation from [`Tensor4::from_vec`].
    pub fn adversarial_weights(
        &mut self,
        o: usize,
        i: usize,
        kh: usize,
        kw: usize,
        bits: BitWidth,
    ) -> Result<Tensor4, QnnError> {
        let mut data = vec![0i32; o * i * kh * kw];
        let per_kernel = kh * kw;
        for ic in 0..i {
            let plane = self.adversarial_plane(o * per_kernel, bits.unsigned_max(), true);
            for oc in 0..o {
                let dst = ((oc * i) + ic) * per_kernel;
                let src = oc * per_kernel;
                data[dst..dst + per_kernel].copy_from_slice(&plane[src..src + per_kernel]);
            }
        }
        Tensor4::from_vec(o, i, kh, kw, data)
    }
}

/// Per-layer statistics: everything the analytic accelerator models need,
/// produced by per-channel sampling without materializing huge tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// The layer geometry.
    pub layer: ConvLayer,
    /// Weight bit-width.
    pub w_bits: BitWidth,
    /// Activation bit-width.
    pub a_bits: BitWidth,
    /// Atom granularity the atom counts below were computed at.
    pub atom_bits: u8,
    /// Whole-layer weight sparsity statistics (scaled to full size).
    pub weight: SparsityStats,
    /// Whole-layer activation sparsity statistics (scaled to full size).
    pub activation: SparsityStats,
    /// Non-zero activation atoms per input channel (the balancer's `T_i`).
    pub act_atoms_per_channel: Vec<u64>,
    /// Non-zero weight atoms per input channel across all kernels (`S_i`).
    pub weight_atoms_per_channel: Vec<u64>,
    /// Non-zero activation *values* per input channel.
    pub act_values_per_channel: Vec<u64>,
    /// Non-zero weight *values* per input channel across all kernels.
    pub weight_values_per_channel: Vec<u64>,
    /// Representative sample of raw weight values (including zeros).
    pub weight_sample: Vec<i32>,
    /// Representative sample of raw activation values (including zeros).
    pub activation_sample: Vec<i32>,
}

impl LayerStats {
    /// Estimates statistics for `layer` by sampling each input channel
    /// (up to a cap) and scaling to the true element counts.
    pub fn generate(
        layer: &ConvLayer,
        wp: &WeightProfile,
        ap: &ActivationProfile,
        atom_bits: u8,
        rng: &mut SeededRng,
    ) -> Self {
        let in_c = layer.in_channels;
        let acts_per_ch = layer.in_h * layer.in_w;
        let weights_per_ch = layer.out_channels * layer.kernel * layer.kernel;

        let wq = WorkloadGen::weight_quantizer(wp);
        let aq = WorkloadGen::activation_quantizer(ap);
        let shift = ap.effective_shift();

        let mut act_atoms = Vec::with_capacity(in_c);
        let mut w_atoms = Vec::with_capacity(in_c);
        let mut act_vals = Vec::with_capacity(in_c);
        let mut w_vals = Vec::with_capacity(in_c);
        let mut w_sample = Vec::new();
        let mut a_sample = Vec::new();
        let (mut a_nnz, mut a_atom_total) = (0u64, 0u64);
        let (mut w_nnz, mut w_atom_total) = (0u64, 0u64);

        // Per-channel sparsity jitter (channels of real networks differ).
        for _ in 0..in_c {
            let ch_shift = shift + 0.25 * rng.normal();

            // Activations for this channel.
            let n_s = acts_per_ch.min(CHANNEL_SAMPLE_CAP);
            let scale = acts_per_ch as f64 / n_s as f64;
            let (mut nnz, mut atoms) = (0u64, 0u64);
            for _ in 0..n_s {
                let v = WorkloadGen::sample_activation(rng, &aq, ch_shift);
                if a_sample.len() < STATS_SAMPLE_CAP {
                    a_sample.push(v);
                }
                if v != 0 {
                    nnz += 1;
                    atoms += nonzero_atoms(v, atom_bits) as u64;
                }
            }
            let (nnz, atoms) = ((nnz as f64 * scale) as u64, (atoms as f64 * scale) as u64);
            act_vals.push(nnz);
            act_atoms.push(atoms);
            a_nnz += nnz;
            a_atom_total += atoms;

            // Weights feeding this channel (slice of all kernels).
            let n_s = weights_per_ch.min(CHANNEL_SAMPLE_CAP);
            let scale = weights_per_ch as f64 / n_s as f64;
            let mut vals: Vec<i32> = (0..n_s)
                .map(|_| WorkloadGen::sample_weight(rng, &wq))
                .collect();
            if wp.prune_sparsity > 0.0 {
                magnitude_prune(&mut vals, wp.prune_sparsity);
            }
            let (mut nnz, mut atoms) = (0u64, 0u64);
            for &v in &vals {
                if w_sample.len() < STATS_SAMPLE_CAP {
                    w_sample.push(v);
                }
                if v != 0 {
                    nnz += 1;
                    atoms += nonzero_atoms(v, atom_bits) as u64;
                }
            }
            let (nnz, atoms) = ((nnz as f64 * scale) as u64, (atoms as f64 * scale) as u64);
            w_vals.push(nnz);
            w_atoms.push(atoms);
            w_nnz += nnz;
            w_atom_total += atoms;
        }

        let a_total = layer.activation_count();
        let w_total = layer.weight_count();
        let a_slots = ap.bits.bits().div_ceil(atom_bits) as f64;
        let w_slots = wp.bits.bits().div_ceil(atom_bits) as f64;

        let activation = SparsityStats {
            len: a_total,
            nonzero_values: a_nnz as usize,
            nonzero_atoms: a_atom_total,
            value_density: a_nnz as f64 / a_total as f64,
            atom_density: if a_nnz == 0 {
                0.0
            } else {
                a_atom_total as f64 / (a_nnz as f64 * a_slots)
            },
        };
        let weight = SparsityStats {
            len: w_total,
            nonzero_values: w_nnz as usize,
            nonzero_atoms: w_atom_total,
            value_density: w_nnz as f64 / w_total as f64,
            atom_density: if w_nnz == 0 {
                0.0
            } else {
                w_atom_total as f64 / (w_nnz as f64 * w_slots)
            },
        };

        Self {
            layer: layer.clone(),
            w_bits: wp.bits,
            a_bits: ap.bits,
            atom_bits,
            weight,
            activation,
            act_atoms_per_channel: act_atoms,
            weight_atoms_per_channel: w_atoms,
            act_values_per_channel: act_vals,
            weight_values_per_channel: w_vals,
            weight_sample: w_sample,
            activation_sample: a_sample,
        }
    }

    /// Computes *exact* statistics from materialized tensors (no
    /// sampling) — what the hardware's post-processing unit measures on
    /// real data, and the bridge between the functional pipeline and the
    /// analytic simulators.
    ///
    /// # Panics
    /// Panics if tensor shapes disagree with the layer geometry.
    pub fn measure(
        layer: &ConvLayer,
        fmap: &Tensor3,
        kernels: &Tensor4,
        a_bits: BitWidth,
        w_bits: BitWidth,
        atom_bits: u8,
    ) -> Self {
        assert_eq!(
            fmap.shape(),
            (layer.in_channels, layer.in_h, layer.in_w),
            "fmap shape"
        );
        assert_eq!(
            kernels.shape(),
            (
                layer.out_channels,
                layer.in_channels,
                layer.kernel,
                layer.kernel
            ),
            "kernel shape"
        );
        let mut act_atoms = Vec::with_capacity(layer.in_channels);
        let mut w_atoms = Vec::with_capacity(layer.in_channels);
        let mut act_vals = Vec::with_capacity(layer.in_channels);
        let mut w_vals = Vec::with_capacity(layer.in_channels);
        let mut w_sample = Vec::new();
        let mut a_sample = Vec::new();
        for ci in 0..layer.in_channels {
            let plane = fmap.channel(ci);
            let (mut nnz, mut atoms) = (0u64, 0u64);
            for &v in plane {
                if a_sample.len() < STATS_SAMPLE_CAP {
                    a_sample.push(v);
                }
                if v != 0 {
                    nnz += 1;
                    atoms += nonzero_atoms(v, atom_bits) as u64;
                }
            }
            act_vals.push(nnz);
            act_atoms.push(atoms);

            let (mut nnz, mut atoms) = (0u64, 0u64);
            for oc in 0..layer.out_channels {
                for &v in kernels.kernel_slice(oc, ci) {
                    if w_sample.len() < STATS_SAMPLE_CAP {
                        w_sample.push(v);
                    }
                    if v != 0 {
                        nnz += 1;
                        atoms += nonzero_atoms(v, atom_bits) as u64;
                    }
                }
            }
            w_vals.push(nnz);
            w_atoms.push(atoms);
        }
        let activation = SparsityStats::from_tensor3(fmap, a_bits.bits(), atom_bits);
        let weight = SparsityStats::from_tensor4(kernels, w_bits.bits(), atom_bits);
        Self {
            layer: layer.clone(),
            w_bits,
            a_bits,
            atom_bits,
            weight,
            activation,
            act_atoms_per_channel: act_atoms,
            weight_atoms_per_channel: w_atoms,
            act_values_per_channel: act_vals,
            weight_values_per_channel: w_vals,
            weight_sample: w_sample,
            activation_sample: a_sample,
        }
    }

    /// Total non-zero activation atoms (the balancer's `T`).
    pub fn total_act_atoms(&self) -> u64 {
        self.act_atoms_per_channel.iter().sum()
    }

    /// Total non-zero weight atoms (`S` summed over channels).
    pub fn total_weight_atoms(&self) -> u64 {
        self.weight_atoms_per_channel.iter().sum()
    }

    /// Dense number of atom-level multiplications for this layer:
    /// `MACs · slots_w · slots_a` at this granularity.
    pub fn dense_atom_ops(&self) -> u64 {
        let wa = self.w_bits.bits().div_ceil(self.atom_bits) as u64;
        let aa = self.a_bits.bits().div_ceil(self.atom_bits) as u64;
        self.layer.macs() * wa * aa
    }
}

/// Precision policy for a network run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrecisionPolicy {
    /// Same bit-width for all layers, weights and activations.
    Uniform(BitWidth),
    /// EdMIPS-style mixed precision: each layer independently draws weight
    /// and activation bit-widths from {2, 4} (paper §V-A2).
    Mixed24,
}

impl PrecisionPolicy {
    /// Label used in reports ("8b", "4b", "2b", "mixed 2/4b").
    pub fn label(&self) -> String {
        match self {
            PrecisionPolicy::Uniform(b) => b.to_string(),
            PrecisionPolicy::Mixed24 => "mixed 2/4b".to_string(),
        }
    }
}

/// Statistics for a whole network at a precision policy — the input every
/// accelerator model's network-level run consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Which network.
    pub id: NetworkId,
    /// Policy that produced the per-layer bit-widths.
    pub policy: PrecisionPolicy,
    /// Per-layer statistics, in execution order.
    pub layers: Vec<LayerStats>,
}

impl NetworkStats {
    /// Generates statistics for network `id` under `policy` at the given
    /// atom granularity, deterministically from `seed`.
    pub fn generate(id: NetworkId, policy: PrecisionPolicy, atom_bits: u8, seed: u64) -> Self {
        let net = Network::new(id);
        let (shift, clip, prune) = network_flavor(id);
        let mut rng = SeededRng::new(seed ^ (id as u64) << 32);
        let mut layers = Vec::with_capacity(net.layers().len());
        for layer in net.layers() {
            let (wb, ab) = match policy {
                PrecisionPolicy::Uniform(b) => (b, b),
                PrecisionPolicy::Mixed24 => {
                    let wb = if rng.bernoulli(0.5) {
                        BitWidth::W2
                    } else {
                        BitWidth::W4
                    };
                    let ab = if rng.bernoulli(0.5) {
                        BitWidth::W2
                    } else {
                        BitWidth::W4
                    };
                    (wb, ab)
                }
            };
            // Fully connected layers tolerate far harder magnitude pruning
            // than convolutions (Deep Compression reaches ~90% on FC vs
            // ~65% on conv without accuracy loss).
            let layer_prune = if layer.kind == crate::layers::LayerKind::FullyConnected {
                prune.max(0.90)
            } else {
                prune
            };
            let wp = WeightProfile {
                bits: wb,
                prune_sparsity: layer_prune,
                clip_scale: clip,
            };
            let ap = ActivationProfile {
                bits: ab,
                relu_shift: shift,
            };
            let mut lrng = rng.fork(layers.len() as u64);
            layers.push(LayerStats::generate(layer, &wp, &ap, atom_bits, &mut lrng));
        }
        Self { id, policy, layers }
    }

    /// Total dense MACs across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.layer.macs()).sum()
    }
}

/// A fully materialized small layer (tensors + geometry) for the
/// cycle-accurate simulators and correctness tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticLayer {
    /// Geometry.
    pub layer: ConvLayer,
    /// Input feature map.
    pub fmap: Tensor3,
    /// Kernels.
    pub kernels: Tensor4,
}

impl SyntheticLayer {
    /// Materializes tensors for a (small) layer.
    ///
    /// # Panics
    /// Panics if the layer would require more than 64M elements — use
    /// [`SyntheticLayer::try_generate`] for a fallible variant and
    /// [`LayerStats`] for large layers.
    pub fn generate(
        layer: &ConvLayer,
        wp: &WeightProfile,
        ap: &ActivationProfile,
        gen: &mut WorkloadGen,
    ) -> Self {
        Self::try_generate(layer, wp, ap, gen).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`SyntheticLayer::generate`].
    ///
    /// # Errors
    /// Returns [`QnnError::LayerTooLarge`] beyond 64M elements, and
    /// propagates tensor-construction errors.
    pub fn try_generate(
        layer: &ConvLayer,
        wp: &WeightProfile,
        ap: &ActivationProfile,
        gen: &mut WorkloadGen,
    ) -> Result<Self, QnnError> {
        let elems = layer.weight_count() + layer.activation_count();
        if elems > 64 << 20 {
            return Err(QnnError::LayerTooLarge { elements: elems });
        }
        let fmap = gen.activations(layer.in_channels, layer.in_h, layer.in_w, ap)?;
        let kernels = gen.weights(
            layer.out_channels,
            layer.in_channels,
            layer.kernel,
            layer.kernel,
            wp,
        )?;
        Ok(Self {
            layer: layer.clone(),
            fmap,
            kernels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_sparsity_grows_as_bits_shrink() {
        let mut gen = WorkloadGen::new(11);
        let mut prev = 0.0;
        for bits in [BitWidth::W8, BitWidth::W6, BitWidth::W4, BitWidth::W2] {
            let v = gen.weight_values(40_000, &WeightProfile::unpruned(bits));
            let stats = SparsityStats::from_values(&v, bits.bits(), 2);
            let sparsity = stats.value_sparsity();
            assert!(sparsity >= prev, "{bits}: {sparsity} < {prev}");
            prev = sparsity;
        }
    }

    #[test]
    fn two_bit_sparsity_near_paper_averages() {
        let mut gen = WorkloadGen::new(5);
        let w = gen.weight_values(60_000, &WeightProfile::unpruned(BitWidth::W2));
        let ws = 1.0 - crate::sparsity::value_density(&w);
        assert!(
            (0.38..0.60).contains(&ws),
            "2b weight sparsity {ws} (paper avg 0.4743)"
        );

        let a = gen.activation_values(60_000, &ActivationProfile::new(BitWidth::W2));
        let asp = 1.0 - crate::sparsity::value_density(&a);
        assert!(
            (0.66..0.85).contains(&asp),
            "2b activation sparsity {asp} (paper avg 0.7525)"
        );
    }

    #[test]
    fn activations_are_unsigned_and_in_range() {
        let mut gen = WorkloadGen::new(3);
        let a = gen.activation_values(10_000, &ActivationProfile::new(BitWidth::W4));
        assert!(a.iter().all(|&v| (0..=15).contains(&v)));
    }

    #[test]
    fn weights_fit_signed_range() {
        let mut gen = WorkloadGen::new(3);
        let w = gen.weight_values(10_000, &WeightProfile::unpruned(BitWidth::W4));
        assert!(w.iter().all(|&v| (-7..=7).contains(&v)));
    }

    #[test]
    fn values_with_density_exact() {
        let mut gen = WorkloadGen::new(9);
        let v = gen.values_with_density(1000, BitWidth::W8, 0.3, true);
        assert_eq!(v.iter().filter(|&&x| x != 0).count(), 300);
        assert!(v.iter().all(|&x| x.abs() <= 127));
    }

    #[test]
    fn values_with_atom_density_hits_target() {
        let mut gen = WorkloadGen::new(2);
        for target in [0.3, 0.6, 0.9] {
            let v = gen.values_with_atom_density(20_000, BitWidth::W8, 2, target, false);
            assert!(v.iter().all(|&x| x > 0));
            let stats = SparsityStats::from_values(&v, 8, 2);
            assert!(
                (stats.atom_density - target).abs() < 0.05,
                "target {target}, measured {}",
                stats.atom_density
            );
        }
    }

    #[test]
    fn layer_stats_are_consistent() {
        let layer = ConvLayer::conv("t", 16, 32, 3, 1, 1, 14, 14).unwrap();
        let mut rng = SeededRng::new(1);
        let s = LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(BitWidth::W4),
            &ActivationProfile::new(BitWidth::W4),
            2,
            &mut rng,
        );
        assert_eq!(s.act_atoms_per_channel.len(), 16);
        assert_eq!(s.weight_atoms_per_channel.len(), 16);
        assert_eq!(s.total_act_atoms(), s.activation.nonzero_atoms);
        assert_eq!(s.total_weight_atoms(), s.weight.nonzero_atoms);
        assert!(s.weight.value_density > 0.0 && s.weight.value_density < 1.0);
        // Pruned to 45%: density should be at most ~0.55.
        assert!(s.weight.value_density <= 0.60, "{}", s.weight.value_density);
        assert!(!s.weight_sample.is_empty() && !s.activation_sample.is_empty());
    }

    #[test]
    fn network_stats_generate_all_layers_deterministically() {
        let a = NetworkStats::generate(
            NetworkId::AlexNet,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
            7,
        );
        let b = NetworkStats::generate(
            NetworkId::AlexNet,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
            7,
        );
        assert_eq!(a, b);
        assert_eq!(
            a.layers.len(),
            Network::new(NetworkId::AlexNet).layers().len()
        );
    }

    #[test]
    fn mixed_policy_uses_both_widths() {
        let s = NetworkStats::generate(NetworkId::ResNet50, PrecisionPolicy::Mixed24, 2, 3);
        let widths: std::collections::HashSet<u8> = s
            .layers
            .iter()
            .flat_map(|l| [l.w_bits.bits(), l.a_bits.bits()])
            .collect();
        assert!(widths.contains(&2) && widths.contains(&4));
        assert_eq!(PrecisionPolicy::Mixed24.label(), "mixed 2/4b");
    }

    #[test]
    fn measured_stats_are_exact() {
        let layer = ConvLayer::conv("t", 4, 8, 3, 1, 1, 10, 10).unwrap();
        let mut gen = WorkloadGen::new(17);
        let s = SyntheticLayer::generate(
            &layer,
            &WeightProfile::benchmark(BitWidth::W4),
            &ActivationProfile::new(BitWidth::W8),
            &mut gen,
        );
        let m = LayerStats::measure(&layer, &s.fmap, &s.kernels, BitWidth::W8, BitWidth::W4, 2);
        // Per-channel sums equal whole-tensor statistics exactly.
        assert_eq!(m.total_act_atoms(), m.activation.nonzero_atoms);
        assert_eq!(m.total_weight_atoms(), m.weight.nonzero_atoms);
        assert_eq!(
            m.act_values_per_channel.iter().sum::<u64>() as usize,
            s.fmap.count_nonzero()
        );
        assert_eq!(
            m.weight_values_per_channel.iter().sum::<u64>() as usize,
            s.kernels.count_nonzero()
        );
    }

    #[test]
    fn adversarial_activations_stay_in_unsigned_range() {
        let mut gen = WorkloadGen::new(21);
        for bits in [BitWidth::W2, BitWidth::W8, BitWidth::W16] {
            let t = gen.adversarial_activations(6, 5, 5, bits).unwrap();
            let max = bits.unsigned_max();
            assert!(t.as_slice().iter().all(|&v| (0..=max).contains(&v)));
        }
    }

    #[test]
    fn adversarial_weights_cover_corners() {
        // Over enough channels the generator must produce at least one
        // empty input-channel plane, one maximal-magnitude value, and one
        // negative value — the corners the differential harness relies on.
        let mut gen = WorkloadGen::new(1);
        let bits = BitWidth::W4;
        let k = gen.adversarial_weights(3, 40, 3, 3, bits).unwrap();
        let max = bits.unsigned_max();
        assert!(k.as_slice().iter().all(|&v| v.abs() <= max));
        let empty_plane =
            (0..40).any(|ic| (0..3).all(|oc| k.kernel_slice(oc, ic).iter().all(|&v| v == 0)));
        assert!(empty_plane, "no empty input-channel plane in 40 draws");
        assert!(k.as_slice().iter().any(|&v| v.abs() == max));
        assert!(k.as_slice().iter().any(|&v| v < 0));
    }

    #[test]
    fn adversarial_planes_include_single_hot_spots() {
        // Over enough channels the hot-spot pattern must appear: a plane
        // with exactly one non-zero cell at the maximal magnitude.
        let mut gen = WorkloadGen::new(13);
        let bits = BitWidth::W4;
        let t = gen.adversarial_activations(48, 5, 5, bits).unwrap();
        let max = bits.unsigned_max();
        let hot = (0..48).any(|c| {
            let plane = t.channel(c);
            plane.iter().filter(|&&v| v != 0).count() == 1 && plane.contains(&max)
        });
        assert!(hot, "no single-hot-spot plane in 48 draws");
    }

    #[test]
    fn adversarial_generation_is_deterministic() {
        let mut a = WorkloadGen::new(77);
        let mut b = WorkloadGen::new(77);
        assert_eq!(
            a.adversarial_activations(4, 6, 6, BitWidth::W8).unwrap(),
            b.adversarial_activations(4, 6, 6, BitWidth::W8).unwrap()
        );
        assert_eq!(
            a.adversarial_weights(4, 4, 3, 3, BitWidth::W8).unwrap(),
            b.adversarial_weights(4, 4, 3, 3, BitWidth::W8).unwrap()
        );
    }

    #[test]
    fn synthetic_layer_materializes() {
        let layer = ConvLayer::conv("t", 4, 8, 3, 1, 1, 10, 10).unwrap();
        let mut gen = WorkloadGen::new(4);
        let s = SyntheticLayer::generate(
            &layer,
            &WeightProfile::benchmark(BitWidth::W8),
            &ActivationProfile::new(BitWidth::W8),
            &mut gen,
        );
        assert_eq!(s.fmap.shape(), (4, 10, 10));
        assert_eq!(s.kernels.shape(), (8, 4, 3, 3));
    }
}
