//! Property-based tests for the quantized-CNN substrate.

use proptest::prelude::*;
use qnn::conv::{conv2d, ConvGeometry};
use qnn::formats::{bitmap::BitmapVec, coo::BlockCoo2d, csr::CsrMatrix};
use qnn::im2col::conv2d_im2col;
use qnn::prune::magnitude_prune;
use qnn::quant::{BitWidth, Quantizer};
use qnn::sparsity::{nonzero_atoms, value_density, SparsityStats};
use qnn::tensor::{Tensor3, Tensor4};

fn sparse_values(n: usize) -> impl Strategy<Value = Vec<i32>> {
    proptest::collection::vec(prop_oneof![3 => Just(0i32), 2 => -127i32..=127], n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_roundtrips(dense in sparse_values(150)) {
        let c = BitmapVec::from_dense(&dense);
        prop_assert_eq!(c.to_dense(), dense.clone());
        prop_assert_eq!(c.count_nonzero(), dense.iter().filter(|&&v| v != 0).count());
    }

    #[test]
    fn bitmap_matches_commute(a in sparse_values(96), b in sparse_values(96)) {
        let ca = BitmapVec::from_dense(&a);
        let cb = BitmapVec::from_dense(&b);
        prop_assert_eq!(ca.match_count(&cb), cb.match_count(&ca));
        let ab = ca.matching_pairs(&cb);
        let ba = cb.matching_pairs(&ca);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert_eq!((x.0, x.1), (y.1, y.0));
        }
        // Dot product via pairs equals dense dot product.
        let dot: i64 = ab.iter().map(|&(x, y)| x as i64 * y as i64).sum();
        let dense_dot: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
        prop_assert_eq!(dot, dense_dot);
    }

    #[test]
    fn coo_roundtrips(dense in sparse_values(48)) {
        let c = BlockCoo2d::from_dense(&dense, 6, 8).unwrap();
        prop_assert_eq!(c.to_dense(), dense);
    }

    #[test]
    fn csr_roundtrips(dense in sparse_values(60)) {
        let m = CsrMatrix::from_dense(&dense, 5, 12).unwrap();
        prop_assert_eq!(m.to_dense(), dense.clone());
        let nnz: usize = (0..5).map(|r| m.row_nnz(r)).sum();
        prop_assert_eq!(nnz, dense.iter().filter(|&&v| v != 0).count());
    }

    #[test]
    fn quantizer_is_idempotent_on_grid(bits in 2u8..=8, clip in 0.5f32..4.0, x in -5.0f32..5.0) {
        let q = Quantizer::symmetric(bits, clip);
        let once = q.quantize(x);
        let twice = q.quantize(q.dequantize(once));
        prop_assert_eq!(once, twice);
        prop_assert!(once.abs() <= BitWidth::new(bits).unwrap().signed_max());
    }

    #[test]
    fn prune_reaches_target_and_keeps_largest(mut vals in sparse_values(200), pct in 0u32..=100) {
        let target = pct as f64 / 100.0;
        let before: Vec<i32> = vals.clone();
        magnitude_prune(&mut vals, target);
        let zeros = vals.iter().filter(|&&v| v == 0).count();
        prop_assert!(zeros as f64 >= (target * 200.0).floor());
        // Survivors are a subset of the original non-zeros with magnitudes
        // at least as large as any pruned value.
        let max_pruned = before
            .iter()
            .zip(&vals)
            .filter(|(_, &after)| after == 0)
            .map(|(&b, _)| b.unsigned_abs())
            .max()
            .unwrap_or(0);
        let min_kept =
            vals.iter().filter(|&&v| v != 0).map(|v| v.unsigned_abs()).min().unwrap_or(u32::MAX);
        prop_assert!(min_kept >= max_pruned || min_kept == u32::MAX);
    }

    #[test]
    fn direct_and_im2col_convs_agree(
        seed in 0u64..5_000,
        c in 1usize..=3,
        o in 1usize..=3,
        k in 1usize..=3,
        hw in 3usize..=7,
        stride in 1usize..=2,
        pad in 0usize..=1,
    ) {
        let mut rng = qnn::rng::SeededRng::new(seed);
        let fmap = Tensor3::from_fn(c, hw, hw, |_, _, _| {
            if rng.bernoulli(0.7) { rng.below(256) as i32 } else { 0 }
        }).unwrap();
        let kernels = Tensor4::from_fn(o, c, k, k, |_, _, _, _| rng.below(255) as i32 - 127).unwrap();
        let geom = ConvGeometry::new(stride, pad).unwrap();
        prop_assert_eq!(
            conv2d(&fmap, &kernels, geom).unwrap(),
            conv2d_im2col(&fmap, &kernels, geom).unwrap()
        );
    }

    #[test]
    fn sparsity_stats_bounds(vals in sparse_values(128)) {
        let s = SparsityStats::from_values(&vals, 8, 2);
        prop_assert!((0.0..=1.0).contains(&s.value_density));
        prop_assert!((0.0..=1.0).contains(&s.atom_density));
        prop_assert!((s.value_density - value_density(&vals)).abs() < 1e-12);
        let manual: u64 = vals.iter().map(|&v| nonzero_atoms(v, 2) as u64).sum();
        prop_assert_eq!(s.nonzero_atoms, manual);
    }

    #[test]
    fn atoms_recombine_to_magnitude(v in -255i32..=255, g in 1u8..=8) {
        // nonzero_atoms never exceeds the slot count for the magnitude.
        let atoms = nonzero_atoms(v, g);
        let mag_bits = 32 - v.unsigned_abs().leading_zeros();
        prop_assert!(atoms <= mag_bits.div_ceil(g as u32).max(1));
    }
}
