//! Criterion bench regenerating Table VI (area breakdown).

use bench::experiments::table6;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("area_assembly", |b| {
        b.iter(|| std::hint::black_box(table6::run()))
    });
    g.finish();

    println!("{}", table6::render(&table6::run()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
