//! Criterion bench regenerating Figure 1 (sparsity vs bit-width).

use bench::experiments::fig01;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01");
    g.sample_size(10);
    g.bench_function("sparsity_study", |b| {
        b.iter(|| std::hint::black_box(fig01::run(true)))
    });
    g.finish();

    // Emit the reproduced table once so `cargo bench` output doubles as
    // the experiment record.
    println!("{}", fig01::render(&fig01::run(false)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
