//! Criterion bench regenerating Figure 17 (vs SparTen / SparTen-mp).

use bench::cache::StatsCache;
use bench::experiments::fig17;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut cache = StatsCache::new();
    let _ = fig17::run(true, &mut cache);
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    g.bench_function("vs_sparten", |b| {
        b.iter(|| std::hint::black_box(fig17::run(true, &mut cache)))
    });
    g.finish();

    let mut full = StatsCache::new();
    println!("{}", fig17::render(&fig17::run(false, &mut full)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
