//! Criterion bench regenerating Figures 14/16 (vs Laconic).

use bench::cache::StatsCache;
use bench::experiments::fig14;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut cache = StatsCache::new();
    let _ = fig14::run(true, &mut cache);
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("vs_laconic", |b| {
        b.iter(|| std::hint::black_box(fig14::run(true, &mut cache)))
    });
    g.finish();

    let mut full = StatsCache::new();
    println!("{}", fig14::render(&fig14::run(false, &mut full)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
