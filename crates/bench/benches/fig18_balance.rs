//! Criterion bench regenerating Figure 18 (load balancing).

use bench::experiments::fig18;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18");
    g.sample_size(10);
    g.bench_function("balance_conv3_2", |b| {
        b.iter(|| std::hint::black_box(fig18::run(true)))
    });
    g.finish();

    println!("{}", fig18::render(&fig18::run(false)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
