//! Criterion bench regenerating Figure 15 (tile perf vs atom sparsity).

use bench::experiments::fig15;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("atom_sparsity_sweep", |b| {
        b.iter(|| std::hint::black_box(fig15::run(true)))
    });
    g.finish();

    println!("{}", fig15::render(&fig15::run(false)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
