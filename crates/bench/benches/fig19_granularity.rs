//! Criterion bench regenerating Figure 19 (atom granularity ablation).

use bench::cache::StatsCache;
use bench::experiments::fig19;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut cache = StatsCache::new();
    let _ = fig19::run_perf(true, &mut cache);
    let mut g = c.benchmark_group("fig19");
    g.sample_size(10);
    g.bench_function("granularity_cost", |b| {
        b.iter(|| std::hint::black_box(fig19::run_cost()))
    });
    g.bench_function("granularity_perf", |b| {
        b.iter(|| std::hint::black_box(fig19::run_perf(true, &mut cache)))
    });
    g.finish();

    let mut full = StatsCache::new();
    println!(
        "{}",
        fig19::render(&fig19::run_cost(), &fig19::run_perf(false, &mut full))
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
