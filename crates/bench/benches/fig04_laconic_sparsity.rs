//! Criterion bench regenerating Figure 4 (Laconic latency vs sparsity).

use bench::experiments::fig04;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04");
    g.sample_size(10);
    g.bench_function("laconic_sparsity_sweep", |b| {
        b.iter(|| std::hint::black_box(fig04::run(true)))
    });
    g.finish();

    println!("{}", fig04::render(&fig04::run(false)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
