//! Criterion bench regenerating Figures 12/13 (vs Bit Fusion).

use bench::cache::StatsCache;
use bench::experiments::fig12;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut cache = StatsCache::new();
    // Pre-warm so the measured loop times the simulators, not workload
    // generation.
    let _ = fig12::run(true, &mut cache);
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("vs_bitfusion", |b| {
        b.iter(|| std::hint::black_box(fig12::run(true, &mut cache)))
    });
    g.finish();

    let mut full = StatsCache::new();
    println!("{}", fig12::render(&fig12::run(false, &mut full)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
