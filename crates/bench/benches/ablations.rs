//! Criterion bench for the extra ablation studies (tile size, FIFO depth,
//! balancing across networks).

use bench::cache::StatsCache;
use bench::experiments::ablations;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("tile_size", |b| {
        b.iter(|| std::hint::black_box(ablations::run_tile_size(true)))
    });
    g.bench_function("fifo_depth", |b| {
        b.iter(|| std::hint::black_box(ablations::run_fifo_depth(true)))
    });
    g.finish();

    let mut cache = StatsCache::new();
    println!(
        "{}",
        ablations::render(
            &ablations::run_tile_size(false),
            &ablations::run_fifo_depth(false),
            &ablations::run_balance_networks(false, &mut cache),
        )
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
