//! Micro-benchmarks of the condensed-streaming-computation kernels: the
//! algorithmic core (atomization, compression, intersection, full CSC
//! convolution vs dense reference).

use atomstream::atom::AtomBits;
use atomstream::conv_csc::{conv2d_csc, CscConfig};
use atomstream::decompose::atomize_signed;
use criterion::{criterion_group, criterion_main, Criterion};
use qnn::conv::{conv2d, ConvGeometry};
use qnn::quant::BitWidth;
use qnn::workload::{ActivationProfile, SyntheticLayer, WeightProfile, WorkloadGen};

fn workload() -> SyntheticLayer {
    let layer = qnn::layers::ConvLayer::conv("bench", 16, 32, 3, 1, 1, 28, 28).unwrap();
    let mut gen = WorkloadGen::new(7);
    SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W8),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    )
}

fn bench(c: &mut Criterion) {
    let w = workload();
    let geom = ConvGeometry::unit_stride(1);

    let mut g = c.benchmark_group("csc_kernels");
    g.sample_size(10);
    g.bench_function("atomize_signed_8b", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for v in -127i32..=127 {
                n += atomize_signed(std::hint::black_box(v), 8, AtomBits::B2)
                    .unwrap()
                    .len();
            }
            n
        })
    });
    g.bench_function("dense_reference_conv", |b| {
        b.iter(|| std::hint::black_box(conv2d(&w.fmap, &w.kernels, geom).unwrap()))
    });
    g.bench_function("csc_sparse_conv", |b| {
        b.iter(|| {
            std::hint::black_box(
                conv2d_csc(
                    &w.fmap,
                    &w.kernels,
                    geom,
                    BitWidth::W8,
                    BitWidth::W8,
                    &CscConfig::default(),
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
