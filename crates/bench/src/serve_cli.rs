//! The `repro serve` runner: registers the benchmark networks with the
//! multi-tenant serving layer, drives it with the seeded closed-loop load
//! generator and renders the integer report.
//!
//! Everything printed to stdout (and the `--json` file) is derived from
//! the integer [`ServeReport`], so the output is byte-identical at any
//! `--threads` count and across machines; wall times never appear here.

use crate::experiments::engine_batch;
use crate::table;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::fault::FaultConfig;
use ristretto_sim::serve::{
    run_load, LoadGenConfig, ModelRegistry, ServeConfig, ServeReport, Server,
};

/// Fault rate (per million atoms) of the `--chaos` campaign: high enough
/// to fire on the miniature benchmark networks every run.
pub const CHAOS_PPM: u32 = 120_000;

/// Parsed `repro serve` parameters (defaults match `--help`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Load-generator seed.
    pub seed: u64,
    /// Closed-loop clients.
    pub clients: usize,
    /// Requests each client offers before retiring.
    pub requests: usize,
    /// Per-client arrival rate in requests per million microticks.
    pub lambda: u64,
    /// Model routing mix, e.g. `AlexNet=3,GoogLeNet=1` (`None`: every
    /// registered network at equal weight).
    pub mix: Option<String>,
    /// Most requests one dispatch may coalesce.
    pub max_batch: usize,
    /// Longest an undersized batch waits, in microticks.
    pub max_wait: u64,
    /// Bound on admitted-but-not-dispatched requests.
    pub queue_cap: usize,
    /// Cores of the large-batch fleet lane (1 disables fleet routing).
    pub fleet_cores: usize,
    /// Attach the deterministic fault campaign (chaos under load).
    pub chaos: bool,
    /// Serve the quick three-network suite instead of all six.
    pub quick: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            seed: crate::SEED,
            clients: 8,
            requests: 4,
            lambda: 50,
            mix: None,
            max_batch: 8,
            max_wait: 10_000,
            queue_cap: 64,
            fleet_cores: 4,
            chaos: false,
            quick: true,
        }
    }
}

/// Parses a `Name=weight,Name=weight` mix spec against the registered
/// network names.
///
/// # Errors
/// Names the offending clause and lists the valid networks, so a typo in
/// `--mix` fails with an actionable message.
pub fn parse_mix(spec: &str, names: &[String]) -> Result<Vec<(usize, u64)>, String> {
    let mut mix = Vec::new();
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            return Err(format!("--mix `{spec}`: empty clause"));
        }
        let (name, weight) = match clause.split_once('=') {
            Some((n, w)) => {
                let w: u64 = w.parse().map_err(|_| {
                    format!("--mix clause `{clause}`: weight `{w}` is not a non-negative integer")
                })?;
                (n.trim(), w)
            }
            None => (clause, 1),
        };
        let idx = names.iter().position(|n| n == name).ok_or_else(|| {
            format!(
                "--mix clause `{clause}`: unknown network `{name}` (have: {})",
                names.join(", ")
            )
        })?;
        if weight == 0 {
            return Err(format!(
                "--mix clause `{clause}`: weight must be at least 1"
            ));
        }
        if mix.iter().any(|&(i, _)| i == idx) {
            return Err(format!("--mix clause `{clause}`: `{name}` appears twice"));
        }
        mix.push((idx, weight));
    }
    Ok(mix)
}

/// Registers the benchmark networks, drives the closed loop and returns
/// the integer report.
///
/// # Errors
/// Propagates registration/execution failures and `--mix` parse errors as
/// rendered strings for the CLI surface.
pub fn run(args: &ServeArgs) -> Result<ServeReport, String> {
    let cfg = if args.chaos {
        RistrettoConfig::paper_default().with_faults(Some(
            FaultConfig::uniform(args.seed ^ 0xC4A05, CHAOS_PPM)
                .with_detect(true)
                .with_recover(true),
        ))
    } else {
        RistrettoConfig::paper_default()
    };
    let serve = ServeConfig {
        max_batch: args.max_batch,
        max_wait_ticks: args.max_wait,
        queue_capacity: args.queue_cap,
        tenant_weights: vec![1, 1],
        fleet_cores: args.fleet_cores,
        fleet_batch_threshold: 4,
    };
    let models = engine_batch::benchmark_models(args.quick);
    let mut registry = ModelRegistry::new(None);
    let mut ids = Vec::new();
    for (name, model) in &models {
        let id = registry
            .register(model, &cfg, &serve)
            .map_err(|e| format!("registering {name}: {e}"))?;
        ids.push(id);
    }
    let names: Vec<String> = models.iter().map(|(n, _)| n.clone()).collect();
    let mix = match &args.mix {
        Some(spec) => parse_mix(spec, &names)?
            .into_iter()
            .map(|(idx, w)| (ids[idx], w))
            .collect(),
        None => ids.iter().map(|&id| (id, 1)).collect(),
    };
    let mut server =
        Server::new(registry, serve).map_err(|e| format!("serve configuration: {e}"))?;
    let load = LoadGenConfig {
        seed: args.seed,
        clients: args.clients,
        requests_per_client: args.requests,
        lambda_per_mtick: args.lambda.max(1),
        mix,
    };
    run_load(&mut server, &load).map_err(|e| format!("serving run: {e}"))
}

/// Renders the report as stable text: a summary table, the per-tenant
/// accounting and the batch-size histogram.
pub fn render(r: &ServeReport) -> String {
    let mut t = vec![
        vec!["metric".to_string(), "value".to_string()],
        vec!["models".to_string(), r.models.join(", ")],
        vec!["clients".to_string(), r.clients.to_string()],
        vec!["submitted".to_string(), r.submitted.to_string()],
        vec!["served".to_string(), r.served.to_string()],
        vec!["rejected".to_string(), r.rejected.to_string()],
        vec!["batches".to_string(), r.batches.to_string()],
        vec!["fleet batches".to_string(), r.fleet_batches.to_string()],
        vec!["queue depth max".to_string(), r.queue_depth_max.to_string()],
        vec![
            "latency p50 (ticks)".to_string(),
            r.latency_p50_ticks.to_string(),
        ],
        vec![
            "latency p90 (ticks)".to_string(),
            r.latency_p90_ticks.to_string(),
        ],
        vec![
            "latency p99 (ticks)".to_string(),
            r.latency_p99_ticks.to_string(),
        ],
        vec![
            "latency max (ticks)".to_string(),
            r.latency_max_ticks.to_string(),
        ],
        vec!["busy ticks".to_string(), r.busy_ticks.to_string()],
        vec![
            "fault penalty ticks".to_string(),
            r.fault_penalty_ticks.to_string(),
        ],
        vec!["faults injected".to_string(), r.faults_injected.to_string()],
        vec!["faults detected".to_string(), r.faults_detected.to_string()],
        vec!["makespan (ticks)".to_string(), r.makespan_ticks.to_string()],
        vec![
            "output digest".to_string(),
            format!("{:016x}", r.output_digest),
        ],
    ];
    t.push(vec![
        "throughput (req/Mtick)".to_string(),
        table::f2(r.throughput_per_mtick()),
    ]);
    let mut out = table::render(
        &format!(
            "Serve: continuous batching over {} model(s) (seed {})",
            r.models.len(),
            r.seed
        ),
        &t,
    );
    let mut tt = vec![vec![
        "tenant".to_string(),
        "submitted".to_string(),
        "served".to_string(),
        "rejected".to_string(),
    ]];
    for (i, s) in r.per_tenant.iter().enumerate() {
        tt.push(vec![
            i.to_string(),
            s.submitted.to_string(),
            s.served.to_string(),
            s.rejected.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&table::render("Per-tenant accounting", &tt));
    let mut th = vec![vec!["batch size".to_string(), "batches".to_string()]];
    for (k, &n) in r.batch_histogram.iter().enumerate() {
        th.push(vec![(k + 1).to_string(), n.to_string()]);
    }
    out.push('\n');
    out.push_str(&table::render("Batch-size histogram", &th));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["AlexNet".to_string(), "GoogLeNet".to_string()]
    }

    #[test]
    fn mix_parses_weights_and_defaults() {
        assert_eq!(
            parse_mix("AlexNet=3,GoogLeNet=1", &names()).unwrap(),
            vec![(0, 3), (1, 1)]
        );
        assert_eq!(parse_mix("GoogLeNet", &names()).unwrap(), vec![(1, 1)]);
    }

    #[test]
    fn mix_errors_name_the_clause() {
        let e = parse_mix("AlexNet=x", &names()).unwrap_err();
        assert!(e.contains("AlexNet=x"), "{e}");
        let e = parse_mix("VGG16=1", &names()).unwrap_err();
        assert!(e.contains("VGG16") && e.contains("AlexNet"), "{e}");
        let e = parse_mix("AlexNet=0", &names()).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        let e = parse_mix("AlexNet,AlexNet", &names()).unwrap_err();
        assert!(e.contains("twice"), "{e}");
        assert!(parse_mix("", &names()).is_err());
    }

    #[test]
    fn default_run_serves_everything_and_renders() {
        let args = ServeArgs {
            clients: 4,
            requests: 2,
            ..ServeArgs::default()
        };
        let report = run(&args).unwrap();
        assert!(report.conserves_requests());
        assert_eq!(report.submitted, 8);
        assert_eq!(report.served + report.rejected, 8);
        let text = render(&report);
        assert!(text.contains("AlexNet") && text.contains("Per-tenant"));
        // Same args, same bytes.
        let again = run(&args).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn chaos_run_is_slo_visible_but_corruption_free() {
        let args = ServeArgs {
            clients: 4,
            requests: 2,
            queue_cap: 1024,
            ..ServeArgs::default()
        };
        let clean = run(&args).unwrap();
        let chaos = run(&ServeArgs {
            chaos: true,
            ..args.clone()
        })
        .unwrap();
        assert!(chaos.faults_injected > 0);
        assert!(chaos.fault_penalty_ticks > 0);
        assert_eq!(chaos.output_digest, clean.output_digest);
    }
}
