//! The `repro serve` runner: registers the benchmark networks with the
//! multi-tenant serving layer, drives it with the seeded closed-loop load
//! generator and renders the integer report.
//!
//! Everything printed to stdout (and the `--json` file) is derived from
//! the integer [`ServeReport`], so the output is byte-identical at any
//! `--threads` count and across machines; wall times never appear here.
//!
//! `--chaos` attaches the full robustness gauntlet: a uniform fault
//! campaign on every structure, a deterministic core-death campaign on
//! the fleet lane, and — when a `--model-cache` directory is given — a
//! corrupted-artifact pass that forces every registration down the
//! verify-reject-recompile path. The chaos run also executes its
//! quiescent twin in-process and attaches the intersection digests
//! ([`ChaosTwin`]): proof that nothing the degraded run served was
//! silently corrupted.

use crate::experiments::engine_batch;
use crate::table;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::fault::{CoreDeathConfig, FaultConfig};
use ristretto_sim::modelcache::ModelCache;
use ristretto_sim::serve::{
    run_load, ChaosTwin, LoadGenConfig, ModelRegistry, ServeConfig, ServeReport, Server,
    ServerStats, SloClass,
};
use std::collections::BTreeSet;
use std::path::Path;

/// Fault rate (per million atoms) of the `--chaos` campaign: high enough
/// to fire on the miniature benchmark networks every run.
pub const CHAOS_PPM: u32 = 120_000;

/// Core-death rate (per million `(layer, core)` sites) of the `--chaos`
/// campaign's fleet-lane kill switch.
pub const CHAOS_CORE_DEATH_PPM: u32 = 60_000;

/// Backoff base in microticks for client retries under `--retry-budget`.
pub const RETRY_BASE_TICKS: u64 = 500;

/// Parsed `repro serve` parameters (defaults match `--help`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Load-generator seed.
    pub seed: u64,
    /// Closed-loop clients.
    pub clients: usize,
    /// Requests each client offers before retiring.
    pub requests: usize,
    /// Per-client arrival rate in requests per million microticks.
    pub lambda: u64,
    /// Model routing mix, e.g. `AlexNet=3,GoogLeNet=1` (`None`: every
    /// registered network at equal weight).
    pub mix: Option<String>,
    /// Most requests one dispatch may coalesce.
    pub max_batch: usize,
    /// Longest an undersized batch waits, in microticks.
    pub max_wait: u64,
    /// Bound on admitted-but-not-dispatched requests.
    pub queue_cap: usize,
    /// Cores of the large-batch fleet lane (1 disables fleet routing).
    pub fleet_cores: usize,
    /// Relative deadline in microticks attached to every request
    /// (`None`: no deadlines, nothing is shed).
    pub deadline: Option<u64>,
    /// Per-tenant SLO class table (`None`: the two-tenant
    /// interactive/batch default). Its length sets the tenant count.
    pub slo_classes: Option<Vec<SloClass>>,
    /// Brownout high-water mark in permille of the queue capacity
    /// (`1000`: brownout never fires before ordinary admission control).
    pub brownout: u16,
    /// Client retries per request after a rejection (0: no retries).
    pub retry_budget: u32,
    /// Attach the deterministic fault campaign (chaos under load).
    pub chaos: bool,
    /// On-disk model cache; with `--chaos`, artifacts are corrupted
    /// between a warm-up and the serving registration, forcing the
    /// verify-reject-recompile path.
    pub model_cache: Option<std::path::PathBuf>,
    /// Serve the quick three-network suite instead of all six.
    pub quick: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            seed: crate::SEED,
            clients: 8,
            requests: 4,
            lambda: 50,
            mix: None,
            max_batch: 8,
            max_wait: 10_000,
            queue_cap: 64,
            fleet_cores: 4,
            deadline: None,
            slo_classes: None,
            brownout: 1000,
            retry_budget: 0,
            chaos: false,
            model_cache: None,
            quick: true,
        }
    }
}

/// Parses a `Name=weight,Name=weight` mix spec against the registered
/// network names.
///
/// # Errors
/// Names the offending clause and lists the valid networks, so a typo in
/// `--mix` fails with an actionable message.
pub fn parse_mix(spec: &str, names: &[String]) -> Result<Vec<(usize, u64)>, String> {
    let mut mix = Vec::new();
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            return Err(format!("--mix `{spec}`: empty clause"));
        }
        let (name, weight) = match clause.split_once('=') {
            Some((n, w)) => {
                let w: u64 = w.parse().map_err(|_| {
                    format!("--mix clause `{clause}`: weight `{w}` is not a non-negative integer")
                })?;
                (n.trim(), w)
            }
            None => (clause, 1),
        };
        let idx = names.iter().position(|n| n == name).ok_or_else(|| {
            format!(
                "--mix clause `{clause}`: unknown network `{name}` (have: {})",
                names.join(", ")
            )
        })?;
        if weight == 0 {
            return Err(format!(
                "--mix clause `{clause}`: weight must be at least 1"
            ));
        }
        if mix.iter().any(|&(i, _)| i == idx) {
            return Err(format!("--mix clause `{clause}`: `{name}` appears twice"));
        }
        mix.push((idx, weight));
    }
    Ok(mix)
}

/// Parses a comma-separated `--slo-class` tenant table, e.g.
/// `interactive,batch,best-effort` (one tenant per clause).
///
/// # Errors
/// Names the offending clause and lists the valid class names.
pub fn parse_classes(spec: &str) -> Result<Vec<SloClass>, String> {
    spec.split(',')
        .map(|clause| {
            SloClass::parse(clause.trim()).map_err(|bad| {
                format!(
                    "--slo-class clause `{bad}`: unknown class (have: interactive, batch, best-effort)"
                )
            })
        })
        .collect()
}

/// The tenant class table an args set schedules with.
fn classes_of(args: &ServeArgs) -> Vec<SloClass> {
    args.slo_classes
        .clone()
        .unwrap_or_else(|| vec![SloClass::Interactive, SloClass::Batch])
}

/// Cross-flag validation `repro` runs after parsing: conflicts that are
/// well-formed per flag but inconsistent together.
///
/// # Errors
/// A rendered message naming the offending flag(s).
pub fn validate(args: &ServeArgs) -> Result<(), String> {
    if args.brownout < 1000 && !classes_of(args).contains(&SloClass::BestEffort) {
        return Err(
            "--brownout below 1000 needs at least one best-effort tenant (see --slo-class)"
                .to_string(),
        );
    }
    if args.model_cache.is_some() && !args.chaos {
        return Err(
            "--model-cache under `serve` only applies with --chaos (the corrupted-artifact pass)"
                .to_string(),
        );
    }
    Ok(())
}

/// Builds the serving policy an args set implies.
fn serve_config(args: &ServeArgs, core_deaths: Option<CoreDeathConfig>) -> ServeConfig {
    let classes = classes_of(args);
    ServeConfig {
        max_batch: args.max_batch,
        max_wait_ticks: args.max_wait,
        queue_capacity: args.queue_cap,
        tenant_weights: vec![1; classes.len()],
        tenant_classes: classes,
        brownout_permille: args.brownout,
        fleet_cores: args.fleet_cores,
        fleet_batch_threshold: 4,
        breaker_threshold: 2,
        breaker_cooldown_ticks: 50_000,
        core_deaths,
    }
}

/// One serving run (chaotic or quiescent per `chaos`), returning the
/// report plus the raw counters (for intersection digests).
fn run_once(args: &ServeArgs, chaos: bool) -> Result<(ServeReport, ServerStats), String> {
    let cfg = if chaos {
        RistrettoConfig::paper_default().with_faults(Some(
            FaultConfig::uniform(args.seed ^ 0xC4A05, CHAOS_PPM)
                .with_detect(true)
                .with_recover(true),
        ))
    } else {
        RistrettoConfig::paper_default()
    };
    let core_deaths = chaos.then(|| CoreDeathConfig::new(args.seed ^ 0xD1E5, CHAOS_CORE_DEATH_PPM));
    let serve = serve_config(args, core_deaths);
    let models = engine_batch::benchmark_models(args.quick);
    let cache_dir = if chaos {
        args.model_cache.as_deref()
    } else {
        None
    };
    if let Some(dir) = cache_dir {
        corrupt_warm_artifacts(dir, &models, &cfg, &serve)?;
    }
    let mut registry = ModelRegistry::new(cache_dir.map(ModelCache::new));
    let mut ids = Vec::new();
    for (name, model) in &models {
        let id = registry
            .register(model, &cfg, &serve)
            .map_err(|e| format!("registering {name}: {e}"))?;
        ids.push(id);
    }
    let names: Vec<String> = models.iter().map(|(n, _)| n.clone()).collect();
    let mix = match &args.mix {
        Some(spec) => parse_mix(spec, &names)?
            .into_iter()
            .map(|(idx, w)| (ids[idx], w))
            .collect(),
        None => ids.iter().map(|&id| (id, 1)).collect(),
    };
    let mut server =
        Server::new(registry, serve).map_err(|e| format!("serve configuration: {e}"))?;
    let load = LoadGenConfig {
        seed: args.seed,
        clients: args.clients,
        requests_per_client: args.requests,
        lambda_per_mtick: args.lambda.max(1),
        mix,
        deadline_ticks: args.deadline,
        retry_budget: args.retry_budget,
        retry_base_ticks: RETRY_BASE_TICKS,
    };
    let report = run_load(&mut server, &load).map_err(|e| format!("serving run: {e}"))?;
    Ok((report, server.stats().clone()))
}

/// Warm-compiles every model into the cache, then flips a byte in each
/// artifact — the next registration must verify-reject and recompile.
fn corrupt_warm_artifacts(
    dir: &Path,
    models: &[(String, ristretto_sim::engine::NetworkModel)],
    cfg: &RistrettoConfig,
    serve: &ServeConfig,
) -> Result<(), String> {
    use ristretto_sim::modelcache::CacheKey;
    let cache = ModelCache::new(dir);
    let mut warm = ModelRegistry::new(Some(ModelCache::new(dir)));
    for (name, model) in models {
        warm.register(model, cfg, serve)
            .map_err(|e| format!("warming cache for {name}: {e}"))?;
        let key = CacheKey::derive(model, cfg);
        cache
            .corrupt_artifact(&key)
            .map_err(|e| format!("corrupting artifact for {name}: {e}"))?;
    }
    Ok(())
}

/// Registers the benchmark networks, drives the closed loop and returns
/// the integer report. A `--chaos` run also drives its quiescent twin and
/// attaches the [`ChaosTwin`] intersection digests.
///
/// # Errors
/// Propagates registration/execution failures and `--mix` parse errors as
/// rendered strings for the CLI surface.
pub fn run(args: &ServeArgs) -> Result<ServeReport, String> {
    validate(args)?;
    let (mut report, stats) = run_once(args, args.chaos)?;
    if args.chaos {
        let (_, twin_stats) = run_once(args, false)?;
        report.chaos_twin = Some(chaos_twin(&stats, &twin_stats));
    }
    Ok(report)
}

/// Folds both runs' output digests over the `(client, seq)` pairs they
/// *both* served.
fn chaos_twin(chaos: &ServerStats, twin: &ServerStats) -> ChaosTwin {
    let twin_set: BTreeSet<(u64, u64)> = twin
        .request_digests
        .iter()
        .map(|&(c, s, _)| (c, s))
        .collect();
    let shared: BTreeSet<(u64, u64)> = chaos
        .request_digests
        .iter()
        .map(|&(c, s, _)| (c, s))
        .filter(|k| twin_set.contains(k))
        .collect();
    ChaosTwin {
        survivors: shared.len() as u64,
        survivor_digest: chaos.output_digest_over(|c, s| shared.contains(&(c, s))),
        twin_survivor_digest: twin.output_digest_over(|c, s| shared.contains(&(c, s))),
    }
}

/// Renders the report as stable text: a summary table, the per-tenant and
/// per-class accounting and the batch-size histogram.
pub fn render(r: &ServeReport) -> String {
    let mut t = vec![
        vec!["metric".to_string(), "value".to_string()],
        vec!["models".to_string(), r.models.join(", ")],
        vec!["clients".to_string(), r.clients.to_string()],
        vec!["submitted".to_string(), r.submitted.to_string()],
        vec!["served".to_string(), r.served.to_string()],
        vec!["rejected".to_string(), r.rejected.to_string()],
        vec!["shed (deadline)".to_string(), r.shed.to_string()],
        vec![
            "brownout rejected".to_string(),
            r.brownout_rejected.to_string(),
        ],
        vec!["client retries".to_string(), r.retries.to_string()],
        vec!["retry exhausted".to_string(), r.retry_exhausted.to_string()],
        vec!["batches".to_string(), r.batches.to_string()],
        vec!["fleet batches".to_string(), r.fleet_batches.to_string()],
        vec![
            "early dispatches (SLO)".to_string(),
            r.deadline_early_dispatches.to_string(),
        ],
        vec!["breaker trips".to_string(), r.breaker_trips.to_string()],
        vec![
            "breaker open batches".to_string(),
            r.breaker_open_batches.to_string(),
        ],
        vec![
            "breaker half-opens".to_string(),
            r.breaker_half_opens.to_string(),
        ],
        vec!["breaker reruns".to_string(), r.breaker_reruns.to_string()],
        vec!["queue depth max".to_string(), r.queue_depth_max.to_string()],
        vec![
            "latency p50 (ticks)".to_string(),
            r.latency_p50_ticks.to_string(),
        ],
        vec![
            "latency p90 (ticks)".to_string(),
            r.latency_p90_ticks.to_string(),
        ],
        vec![
            "latency p99 (ticks)".to_string(),
            r.latency_p99_ticks.to_string(),
        ],
        vec![
            "latency max (ticks)".to_string(),
            r.latency_max_ticks.to_string(),
        ],
        vec!["busy ticks".to_string(), r.busy_ticks.to_string()],
        vec![
            "fault penalty ticks".to_string(),
            r.fault_penalty_ticks.to_string(),
        ],
        vec!["faults injected".to_string(), r.faults_injected.to_string()],
        vec!["faults detected".to_string(), r.faults_detected.to_string()],
        vec!["makespan (ticks)".to_string(), r.makespan_ticks.to_string()],
        vec![
            "output digest".to_string(),
            format!("{:016x}", r.output_digest),
        ],
    ];
    if let Some(twin) = &r.chaos_twin {
        t.push(vec![
            "chaos survivors".to_string(),
            twin.survivors.to_string(),
        ]);
        t.push(vec![
            "survivor digest".to_string(),
            format!("{:016x}", twin.survivor_digest),
        ]);
        t.push(vec![
            "twin survivor digest".to_string(),
            format!("{:016x}", twin.twin_survivor_digest),
        ]);
    }
    t.push(vec![
        "throughput (req/Mtick)".to_string(),
        table::f2(r.throughput_per_mtick()),
    ]);
    let mut out = table::render(
        &format!(
            "Serve: continuous batching over {} model(s) (seed {})",
            r.models.len(),
            r.seed
        ),
        &t,
    );
    let mut tt = vec![vec![
        "tenant".to_string(),
        "submitted".to_string(),
        "served".to_string(),
        "rejected".to_string(),
        "shed".to_string(),
    ]];
    for (i, s) in r.per_tenant.iter().enumerate() {
        tt.push(vec![
            i.to_string(),
            s.submitted.to_string(),
            s.served.to_string(),
            s.rejected.to_string(),
            s.shed.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&table::render("Per-tenant accounting", &tt));
    let mut tc = vec![vec![
        "class".to_string(),
        "submitted".to_string(),
        "served".to_string(),
        "rejected".to_string(),
        "shed".to_string(),
        "p50 (ticks)".to_string(),
        "p99 (ticks)".to_string(),
    ]];
    for s in &r.per_class {
        tc.push(vec![
            s.class.to_string(),
            s.submitted.to_string(),
            s.served.to_string(),
            s.rejected.to_string(),
            s.shed.to_string(),
            s.latency_p50_ticks.to_string(),
            s.latency_p99_ticks.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&table::render("Per-class accounting", &tc));
    let mut th = vec![vec!["batch size".to_string(), "batches".to_string()]];
    for (k, &n) in r.batch_histogram.iter().enumerate() {
        th.push(vec![(k + 1).to_string(), n.to_string()]);
    }
    out.push('\n');
    out.push_str(&table::render("Batch-size histogram", &th));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["AlexNet".to_string(), "GoogLeNet".to_string()]
    }

    #[test]
    fn mix_parses_weights_and_defaults() {
        assert_eq!(
            parse_mix("AlexNet=3,GoogLeNet=1", &names()).unwrap(),
            vec![(0, 3), (1, 1)]
        );
        assert_eq!(parse_mix("GoogLeNet", &names()).unwrap(), vec![(1, 1)]);
    }

    #[test]
    fn mix_errors_name_the_clause() {
        let e = parse_mix("AlexNet=x", &names()).unwrap_err();
        assert!(e.contains("AlexNet=x"), "{e}");
        let e = parse_mix("VGG16=1", &names()).unwrap_err();
        assert!(e.contains("VGG16") && e.contains("AlexNet"), "{e}");
        let e = parse_mix("AlexNet=0", &names()).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        let e = parse_mix("AlexNet,AlexNet", &names()).unwrap_err();
        assert!(e.contains("twice"), "{e}");
        assert!(parse_mix("", &names()).is_err());
    }

    #[test]
    fn class_spec_parses_and_rejects() {
        assert_eq!(
            parse_classes("interactive,batch,best-effort").unwrap(),
            vec![SloClass::Interactive, SloClass::Batch, SloClass::BestEffort]
        );
        let e = parse_classes("interactive,turbo").unwrap_err();
        assert!(e.contains("turbo") && e.contains("best-effort"), "{e}");
    }

    #[test]
    fn validate_rejects_flag_conflicts() {
        let e = validate(&ServeArgs {
            brownout: 500,
            ..ServeArgs::default()
        })
        .unwrap_err();
        assert!(e.contains("--brownout") && e.contains("best-effort"), "{e}");
        assert!(validate(&ServeArgs {
            brownout: 500,
            slo_classes: Some(vec![SloClass::Interactive, SloClass::BestEffort]),
            ..ServeArgs::default()
        })
        .is_ok());
        let e = validate(&ServeArgs {
            model_cache: Some("/tmp/x".into()),
            ..ServeArgs::default()
        })
        .unwrap_err();
        assert!(e.contains("--chaos"), "{e}");
    }

    #[test]
    fn default_run_serves_everything_and_renders() {
        let args = ServeArgs {
            clients: 4,
            requests: 2,
            ..ServeArgs::default()
        };
        let report = run(&args).unwrap();
        assert!(report.conserves_requests());
        assert_eq!(report.submitted, 8);
        assert_eq!(report.served + report.rejected, 8);
        assert_eq!(report.shed, 0);
        assert!(report.chaos_twin.is_none());
        let text = render(&report);
        assert!(
            text.contains("AlexNet")
                && text.contains("Per-tenant")
                && text.contains("Per-class")
                && text.contains("interactive")
        );
        // Same args, same bytes.
        let again = run(&args).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn chaos_run_is_slo_visible_but_corruption_free() {
        let args = ServeArgs {
            clients: 4,
            requests: 2,
            queue_cap: 1024,
            ..ServeArgs::default()
        };
        let clean = run(&args).unwrap();
        let chaos = run(&ServeArgs {
            chaos: true,
            ..args.clone()
        })
        .unwrap();
        assert!(chaos.faults_injected > 0);
        assert!(chaos.fault_penalty_ticks > 0);
        // No deadlines → nothing shed → the full digests must agree, and
        // the attached twin (quiescent, identical load) saw every request.
        assert_eq!(chaos.output_digest, clean.output_digest);
        let twin = chaos.chaos_twin.expect("chaos attaches the twin");
        assert_eq!(twin.survivors, chaos.served);
        assert_eq!(twin.survivor_digest, twin.twin_survivor_digest);
    }

    #[test]
    fn overload_with_deadlines_sheds_and_conserves() {
        let args = ServeArgs {
            clients: 6,
            requests: 3,
            lambda: 2_000,
            deadline: Some(1_500),
            retry_budget: 2,
            ..ServeArgs::default()
        };
        let report = run(&args).unwrap();
        assert!(report.conserves_requests());
        assert!(report.shed > 0, "tight deadlines must shed: {report:?}");
        // Same args, same bytes — retries and sheds are deterministic.
        assert_eq!(run(&args).unwrap(), report);
    }
}
