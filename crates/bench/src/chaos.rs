//! Deterministic chaos campaigns over the fault-injection layer.
//!
//! Reuses the diffcheck case generator: each campaign index draws one
//! randomized single-layer workload, computes its fault-free baseline, then
//! probes every injectable structure twice —
//!
//! 1. a **detection run** (monitors + recovery on) that must reproduce the
//!    baseline byte-for-byte while counting injected/detected/recovered
//!    faults, and
//! 2. an **exposure run** (monitors off) that classifies what an
//!    *unprotected* pipeline would have suffered: **masked** (output still
//!    matches the baseline) or **silent** (output corrupted with no error
//!    raised).
//!
//! FIFO faults only exist in the cycle-level path, so their runs go through
//! `Session::run_cycle_level` and compare core reports instead of output
//! tensors. Everything is sequential and seeded, so a campaign is
//! byte-identical for a given `(seed, campaign)` at any thread count.

use crate::diffcheck::{generate_case, DiffCase};
use crate::table;
use hwmodel::{ComponentLib, EnergyCounter, TechNode};
use ristretto_sim::energy::RistrettoEnergyModel;
use ristretto_sim::engine::{compile, NetworkModel, Session};
use ristretto_sim::fault::{FaultConfig, FaultStats, FaultStructure};
use ristretto_sim::pipeline::PipelineLayer;
use serde::Serialize;

/// Injection rate (ppm) for the sparse stream structures, whose opportunity
/// counts per case are small (tens of entries per tile attempt).
const STREAM_PPM: u32 = 20_000;

/// Injection rate (ppm) for the dense structures (accumulate-buffer words
/// and FIFO deliveries), whose opportunity counts per case are large.
const DENSE_PPM: u32 = 4_000;

/// The campaign rate for one structure.
fn rate(structure: FaultStructure) -> u32 {
    match structure {
        FaultStructure::WeightBuffer
        | FaultStructure::WeightStream
        | FaultStructure::ActivationStream => STREAM_PPM,
        FaultStructure::AccumBuffer | FaultStructure::Fifo => DENSE_PPM,
    }
}

/// Per-structure campaign outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct StructureReport {
    /// The structure's stable dotted name (`fault.*` counter fragment).
    pub structure: String,
    /// Faults injected across the structure's detection runs.
    pub injected: u64,
    /// Faults caught by the structure's online monitor.
    pub detected: u64,
    /// Tile re-executions the detections triggered.
    pub retries: u64,
    /// Faulted tiles whose re-execution completed cleanly.
    pub recovered_tiles: u64,
    /// Layers replayed on the dense reference path after retry exhaustion.
    pub layer_fallbacks: u64,
    /// Detection runs whose recovered result diverged from the baseline —
    /// silent corruption *despite* monitors; must be zero.
    pub silent_with_detection: u64,
    /// Faults injected across the structure's exposure (monitors-off) runs.
    pub exposure_injected: u64,
    /// Exposure runs that actually injected at least one fault.
    pub exposed_runs: u64,
    /// Exposure runs whose corruption was masked (result still matched the
    /// baseline, e.g. absorbed by requantization).
    pub masked_runs: u64,
    /// Exposure runs whose result silently diverged from the baseline.
    pub silent_runs: u64,
}

/// Aggregate result of one chaos campaign.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// Campaign seed.
    pub seed: u64,
    /// Number of generated cases.
    pub campaign: u64,
    /// Per-structure outcomes, in [`FaultStructure::ALL`] order.
    pub structures: Vec<StructureReport>,
    /// Faults injected across all detection runs.
    pub injected_total: u64,
    /// Faults detected across all detection runs.
    pub detected_total: u64,
    /// Detection runs that silently diverged from the baseline; the
    /// campaign fails unless this is zero.
    pub silent_with_detection: u64,
    /// Atom multiplications discarded with rejected tile attempts.
    pub wasted_atom_mults: u64,
    /// Accumulate-buffer deliveries discarded with rejected attempts.
    pub wasted_deliveries: u64,
    /// Energy burned by the discarded attempts (pJ), priced with each
    /// case's own configuration.
    pub retry_energy_pj: f64,
}

impl ChaosReport {
    /// Whether the campaign met its acceptance bar: monitors turned every
    /// injected fault into either a clean recovery or a typed error, never
    /// a silently corrupted output.
    pub fn pass(&self) -> bool {
        self.silent_with_detection == 0
    }

    /// Renders the per-structure table plus the aggregate footer.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "structure".to_string(),
            "injected".to_string(),
            "detected".to_string(),
            "retries".to_string(),
            "recovered".to_string(),
            "fallbacks".to_string(),
            "silent(det)".to_string(),
            "exposed".to_string(),
            "masked".to_string(),
            "silent".to_string(),
        ]];
        for s in &self.structures {
            rows.push(vec![
                s.structure.clone(),
                s.injected.to_string(),
                s.detected.to_string(),
                s.retries.to_string(),
                s.recovered_tiles.to_string(),
                s.layer_fallbacks.to_string(),
                s.silent_with_detection.to_string(),
                s.exposed_runs.to_string(),
                s.masked_runs.to_string(),
                s.silent_runs.to_string(),
            ]);
        }
        let mut out = table::render(
            &format!(
                "Chaos campaign (seed {}, {} cases): detection runs vs monitors-off exposure",
                self.seed, self.campaign
            ),
            &rows,
        );
        out.push_str(&format!(
            "total: {} injected, {} detected, {} silent with detection on\n",
            self.injected_total, self.detected_total, self.silent_with_detection
        ));
        out.push_str(&format!(
            "retry overhead: {} atom mults + {} deliveries discarded, {} re-spent\n",
            self.wasted_atom_mults,
            self.wasted_deliveries,
            format_args!("{:.1} pJ", self.retry_energy_pj),
        ));
        out.push_str(if self.pass() {
            "chaos: PASS (zero silent corruptions with detection on)\n"
        } else {
            "chaos: FAIL (silent corruption escaped the monitors)\n"
        });
        out
    }
}

/// One case's compiled artifacts: the fault-free baseline plus everything
/// needed to replay it under a fault campaign.
struct CaseFixture {
    case: DiffCase,
    model: NetworkModel,
    baseline_out: qnn::tensor::Tensor3,
    baseline_cores: Vec<ristretto_sim::core::CoreReport>,
}

fn build_fixture(seed: u64, index: u64) -> Result<CaseFixture, String> {
    let case = generate_case(seed, index);
    let model = NetworkModel::new(
        "chaos",
        case.fmap.shape(),
        vec![PipelineLayer {
            name: "l0".to_string(),
            kernels: case.kernels.clone(),
            geom: case.geom(),
            w_bits: qnn::quant::BitWidth::new(case.w_bits).expect("generator draws valid widths"),
            a_bits: qnn::quant::BitWidth::new(case.a_bits).expect("generator draws valid widths"),
            requant_shift: case.requant_shift,
            out_bits: case.out_bits,
            pool: None,
        }],
    );
    let net = compile(&model, &case.ristretto_config())
        .map_err(|e| format!("case {index}: compile: {e}"))?;
    let session = Session::new(net);
    let cycle = session
        .run_cycle_level(&case.fmap)
        .map_err(|e| format!("case {index}: baseline run: {e}"))?;
    Ok(CaseFixture {
        case,
        model,
        baseline_out: cycle.functional.output,
        baseline_cores: cycle.core_reports,
    })
}

/// Runs the case's single layer under `faults`; returns the fault counters
/// plus whether the result (output tensor, and core reports for cycle-level
/// runs) matched the fault-free baseline byte-for-byte.
fn run_faulted(
    fx: &CaseFixture,
    faults: FaultConfig,
    cycle_level: bool,
) -> Result<(FaultStats, bool), String> {
    let cfg = fx.case.ristretto_config().with_faults(Some(faults));
    let net = compile(&fx.model, &cfg)
        .map_err(|e| format!("case {}: faulted compile: {e}", fx.case.index))?;
    let session = Session::new(net);
    if cycle_level {
        let run = session
            .run_cycle_level(&fx.case.fmap)
            .map_err(|e| format!("case {}: faulted cycle run: {e}", fx.case.index))?;
        let clean =
            run.functional.output == fx.baseline_out && run.core_reports == fx.baseline_cores;
        Ok((run.functional.faults, clean))
    } else {
        let run = session
            .run(&fx.case.fmap)
            .map_err(|e| format!("case {}: faulted run: {e}", fx.case.index))?;
        let clean = run.output == fx.baseline_out;
        Ok((run.faults, clean))
    }
}

/// Per-case fault seed: decorrelates campaigns across cases (the injector
/// itself only hashes within-layer coordinates).
fn case_fault_seed(seed: u64, index: u64) -> u64 {
    (seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0x243F_6A88_85A3_08D3)
}

/// Runs a chaos campaign of `campaign` generated cases under `seed`.
///
/// Sequential by construction — per-case, per-structure runs happen in a
/// fixed order so the report (including the floating-point energy total) is
/// byte-identical for a given `(seed, campaign)` at any thread count.
pub fn run_campaign(seed: u64, campaign: u64) -> Result<ChaosReport, String> {
    let lib = ComponentLib::n28();
    let mut structures: Vec<StructureReport> = FaultStructure::ALL
        .iter()
        .map(|s| StructureReport {
            structure: s.name().to_string(),
            ..StructureReport::default()
        })
        .collect();
    let mut wasted_atom_mults = 0u64;
    let mut wasted_deliveries = 0u64;
    let mut retry_energy_pj = 0.0f64;

    for index in 0..campaign {
        let fx = build_fixture(seed, index)?;
        let fseed = case_fault_seed(seed, index);
        let energy = RistrettoEnergyModel::new(&fx.case.ristretto_config(), &lib, TechNode::N28);

        for (si, &structure) in FaultStructure::ALL.iter().enumerate() {
            let cycle_level = structure == FaultStructure::Fifo;
            let base = FaultConfig::quiescent(fseed).with_rate(structure, rate(structure));

            // Detection run: monitors + recovery on; the result must be
            // byte-identical to the fault-free baseline.
            let (stats, clean) = run_faulted(&fx, base, cycle_level)?;
            let row = &mut structures[si];
            row.injected += stats.injected(structure);
            row.detected += stats.detected(structure);
            row.retries += stats.retries;
            row.recovered_tiles += stats.recovered_tiles;
            row.layer_fallbacks += stats.layer_fallbacks;
            if !clean {
                row.silent_with_detection += 1;
            }
            wasted_atom_mults += stats.wasted_atom_mults;
            wasted_deliveries += stats.wasted_deliveries;
            retry_energy_pj += energy.price_retry_overhead(
                &mut EnergyCounter::new(),
                stats.wasted_atom_mults,
                stats.wasted_deliveries,
            );

            // Exposure run: same faults, monitors off — classifies what an
            // unprotected pipeline would have emitted.
            let (stats, clean) = run_faulted(&fx, base.with_detect(false), cycle_level)?;
            let row = &mut structures[si];
            row.exposure_injected += stats.injected(structure);
            if stats.injected(structure) > 0 {
                row.exposed_runs += 1;
                if clean {
                    row.masked_runs += 1;
                } else {
                    row.silent_runs += 1;
                }
            }
        }
    }

    let injected_total = structures.iter().map(|s| s.injected).sum();
    let detected_total = structures.iter().map(|s| s.detected).sum();
    let silent_with_detection = structures.iter().map(|s| s.silent_with_detection).sum();
    Ok(ChaosReport {
        seed,
        campaign,
        structures,
        injected_total,
        detected_total,
        silent_with_detection,
        wasted_atom_mults,
        wasted_deliveries,
        retry_energy_pj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_detects_everything_and_recovers() {
        let report = run_campaign(crate::SEED, 6).expect("campaign runs");
        assert!(report.pass(), "silent corruption with detection on");
        assert!(report.injected_total > 0, "campaign injected nothing");
        assert_eq!(
            report.detected_total, report.injected_total,
            "single-structure runs must detect every injected fault"
        );
        for row in &report.structures {
            assert!(
                row.injected > 0,
                "structure {} never injected; raise its rate",
                row.structure
            );
            assert_eq!(row.silent_with_detection, 0, "{}", row.structure);
        }
        // Some detection must have forced rework, and some exposure run
        // must have shown visible corruption (otherwise the monitors are
        // never exercised against anything consequential).
        assert!(report.structures.iter().any(|s| s.retries > 0));
        assert!(report.structures.iter().any(|s| s.silent_runs > 0));
        assert!(report.wasted_atom_mults > 0);
        assert!(report.retry_energy_pj > 0.0);
        let rendered = report.render();
        assert!(rendered.contains("chaos: PASS"));
        assert!(rendered.contains("weight_buffer"));
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_campaign(7, 3).expect("campaign runs");
        let b = run_campaign(7, 3).expect("campaign runs");
        assert_eq!(a.structures, b.structures);
        assert_eq!(a.wasted_atom_mults, b.wasted_atom_mults);
        assert_eq!(a.retry_energy_pj, b.retry_energy_pj);
        let c = run_campaign(8, 3).expect("campaign runs");
        assert_ne!(
            a.structures, c.structures,
            "different seeds should draw different faults"
        );
    }

    #[test]
    fn acceptance_campaign_clears_the_injection_floor() {
        // The CI smoke campaign: ≥500 injected faults across all
        // structures, zero silent corruptions with detection on.
        let report = run_campaign(crate::SEED, 25).expect("campaign runs");
        assert!(report.pass());
        assert!(
            report.injected_total >= 500,
            "campaign injected only {} faults",
            report.injected_total
        );
        assert_eq!(report.detected_total, report.injected_total);
    }
}
