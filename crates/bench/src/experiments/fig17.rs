//! Figure 17: Ristretto vs SparTen and SparTen-mp — area-normalized
//! performance at equal peak BitOps/cycle and equal buffers (§V-D).
//!
//! Paper anchors (speedup over SparTen): 8.54× / 7.70× / 3.01× / 8.25× at
//! 2b/4b/8b/mixed — largest at low precision, where SparTen's fixed 8-bit
//! one-pair-per-cycle dataflow cannot speed up; SparTen-mp sits between
//! but pays a large area premium for its 16 parallel inner-joins.

use crate::cache::StatsCache;
use crate::{area_norm_speedup, benchmark_networks, benchmark_policies, table, SEED};
use baselines::report::Backend;
use baselines::sparten::SparTen;
use baselines::sparten_mp::SparTenMp;
use rayon::prelude::*;
use ristretto_sim::analytic::RistrettoSim;
use ristretto_sim::config::RistrettoConfig;
use serde::{Deserialize, Serialize};

/// One (network, precision) comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Network name.
    pub network: String,
    /// Precision label.
    pub precision: String,
    /// Area-normalized speedup of Ristretto over SparTen.
    pub speedup_vs_sparten: f64,
    /// Area-normalized speedup of SparTen-mp over SparTen.
    pub sparten_mp_vs_sparten: f64,
    /// Area-normalized speedup of Ristretto over SparTen-mp.
    pub speedup_vs_sparten_mp: f64,
}

/// Runs the three-way comparison.
pub fn run(quick: bool, cache: &mut StatsCache) -> Vec<Row> {
    let r_cfg = RistrettoConfig::half_width();
    let sim = RistrettoSim::new(r_cfg);
    let r_area = Backend::area_mm2(&sim);
    let sp = SparTen::paper_default();
    let sp_area = sp.area_mm2();
    let mp = SparTenMp::paper_default();
    let mp_area = mp.area_mm2();

    // Independent (network, precision) cells: prefill, then fan out (see
    // fig12 for the pattern); order-preserving collect keeps rows identical
    // to the sequential loops.
    let items: Vec<_> = benchmark_networks(quick)
        .iter()
        .flat_map(|&net| benchmark_policies().into_iter().map(move |p| (net, p)))
        .collect();
    cache.prefill(
        &items
            .iter()
            .map(|&(net, p)| (net, p, 2))
            .collect::<Vec<_>>(),
        SEED,
    );
    let cache = &*cache;
    items
        .into_par_iter()
        .map(|(net, policy)| {
            let stats = cache.peek(net, policy, 2);
            let r = sim.simulate_network(stats);
            let s = sp.simulate_network(stats);
            let m = mp.simulate_network(stats);
            let r_vs_s = area_norm_speedup(r.total_cycles(), r_area, s.total_cycles(), sp_area);
            let m_vs_s = area_norm_speedup(m.total_cycles(), mp_area, s.total_cycles(), sp_area);
            Row {
                network: net.name().to_string(),
                precision: policy.label(),
                speedup_vs_sparten: r_vs_s,
                sparten_mp_vs_sparten: m_vs_s,
                speedup_vs_sparten_mp: r_vs_s / m_vs_s,
            }
        })
        .collect()
}

/// Mean speedups at one precision: `(ristretto, sparten_mp)` over SparTen.
pub fn averages(rows: &[Row], precision: &str) -> (f64, f64) {
    let sel: Vec<&Row> = rows.iter().filter(|r| r.precision == precision).collect();
    let n = sel.len().max(1) as f64;
    (
        sel.iter().map(|r| r.speedup_vs_sparten).sum::<f64>() / n,
        sel.iter().map(|r| r.sparten_mp_vs_sparten).sum::<f64>() / n,
    )
}

/// Renders Fig 17.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "network".to_string(),
        "precision".to_string(),
        "Ristretto/SparTen".to_string(),
        "SparTen-mp/SparTen".to_string(),
        "Ristretto/SparTen-mp".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            r.network.clone(),
            r.precision.clone(),
            table::speedup(r.speedup_vs_sparten),
            table::speedup(r.sparten_mp_vs_sparten),
            table::speedup(r.speedup_vs_sparten_mp),
        ]);
    }
    let mut s = table::render(
        "Fig 17: Ristretto vs SparTen / SparTen-mp (area-normalized)",
        &t,
    );
    for (label, paper) in [
        ("2b", 8.54),
        ("4b", 7.70),
        ("8b", 3.01),
        ("mixed 2/4b", 8.25),
    ] {
        let (r, m) = averages(rows, label);
        s.push_str(&format!(
            "{label}: Ristretto {} (paper {paper}x), SparTen-mp {}\n",
            table::speedup(r),
            table::speedup(m)
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ristretto_wins_most_at_low_precision() {
        let mut cache = StatsCache::new();
        let rows = run(true, &mut cache);
        for r in &rows {
            assert!(
                r.speedup_vs_sparten > 1.0,
                "{} {} vs SparTen {}",
                r.network,
                r.precision,
                r.speedup_vs_sparten
            );
            assert!(
                r.speedup_vs_sparten_mp > 1.0,
                "{} {} vs SparTen-mp {}",
                r.network,
                r.precision,
                r.speedup_vs_sparten_mp
            );
        }
        let (r2, _) = averages(&rows, "2b");
        let (r8, _) = averages(&rows, "8b");
        assert!(r2 > r8, "2b speedup {r2} should exceed 8b {r8}");
    }
}
