//! Fleet scaling study (`repro scaling`): strong- and weak-scaling curves
//! of the sharded fleet simulator ([`ristretto_sim::fleet`]) across core
//! counts, per benchmark network.
//!
//! Two curves per network:
//!
//! * **strong** — one input, output-channel sharding across 1/2/4/8
//!   cores: single-inference latency shrinks as cores are added, at the
//!   cost of all-gather traffic on the NoC. Strong-scaling efficiency is
//!   `t1 / (N · tN)`.
//! * **weak** — batch sharding with as many inputs as cores: the work per
//!   core stays constant, so the makespan should stay near the 1-core
//!   baseline. Weak-scaling efficiency is `t1 / tN`.
//!
//! Rows are integer-only in serialized form (cycles, bits, digests);
//! throughput and efficiency are derived at render time, so the recorded
//! JSON is byte-stable across platforms and thread counts. The
//! `output_digest` column doubles as the byte-determinism witness: along a
//! strong curve it must not move when the core count does.

use crate::experiments::engine_batch::{benchmark_input, benchmark_models};
use crate::table;
use rayon::prelude::*;
use ristretto_sim::config::{FleetConfig, RistrettoConfig};
use ristretto_sim::engine::{compile, CompiledNetwork};
use ristretto_sim::fleet::{Fleet, ShardStrategy};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Core counts swept by both curves.
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One scaling point. Integer-only: ratios are derived at render time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    /// Network name.
    pub network: String,
    /// Curve label (`strong` = output-channel sharding, one input;
    /// `weak` = batch sharding, one input per core).
    pub curve: String,
    /// Fleet strategy label.
    pub strategy: String,
    /// Core count.
    pub cores: usize,
    /// Inputs processed.
    pub inputs: u64,
    /// Fleet makespan (cycles, first input in to last output out).
    pub makespan: u64,
    /// First input's latency (cycles).
    pub latency: u64,
    /// Per-core compute cycles summed over cores and layers.
    pub busy: u64,
    /// Cycles cores waited on slower shards or the NoC.
    pub idle: u64,
    /// Compressed activation bits moved over inter-core links.
    pub link_bits: u64,
    /// Fold over every output tensor's bytes (determinism witness).
    pub output_digest: u64,
}

impl Row {
    /// Inputs per million makespan cycles — derived, never recorded.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.inputs as f64 * 1e6 / self.makespan as f64
    }
}

/// Strong-scaling efficiency of `row` against the 1-core `base` of its
/// curve: `t1 / (N · tN)`; 1.0 is ideal linear scaling.
pub fn strong_efficiency(base: &Row, row: &Row) -> f64 {
    if row.makespan == 0 || row.cores == 0 {
        return 0.0;
    }
    base.makespan as f64 / (row.cores as f64 * row.makespan as f64)
}

/// Weak-scaling efficiency of `row` against the 1-core `base` of its
/// curve: `t1 / tN` at one input per core; 1.0 means constant time.
pub fn weak_efficiency(base: &Row, row: &Row) -> f64 {
    if row.makespan == 0 {
        return 0.0;
    }
    base.makespan as f64 / row.makespan as f64
}

fn run_point(
    idx: usize,
    network: &str,
    net: &Arc<CompiledNetwork>,
    cores: usize,
    strong: bool,
) -> Row {
    let (strategy, inputs) = if strong {
        (ShardStrategy::OutputChannel, 1)
    } else {
        (ShardStrategy::Batch, cores)
    };
    let fleet = Fleet::try_new(net.clone(), FleetConfig::new(cores, strategy))
        .expect("benchmark fleet configuration is valid");
    let (c, h, w) = net.input();
    let images: Vec<_> = (0..inputs)
        .map(|image| benchmark_input(idx, image, c, h, w))
        .collect();
    let run = fleet.run(&images).expect("benchmark fleet run succeeds");
    Row {
        network: network.to_string(),
        curve: if strong { "strong" } else { "weak" }.to_string(),
        strategy: run.report.strategy,
        cores,
        inputs: run.report.inputs,
        makespan: run.report.makespan_cycles,
        latency: run.report.latency_cycles,
        busy: run.report.busy_cycles,
        idle: run.report.idle_cycles,
        link_bits: run.report.link_bits,
        output_digest: run.report.output_digest,
    }
}

/// Runs both curves over every benchmark network (three in quick mode).
/// Rows come back grouped by network, curve, then ascending core count.
pub fn run(quick: bool) -> Vec<Row> {
    // Compile once per network; the (cores, curve) fan-out shares the
    // artifact. Results collect in deterministic nested-loop order.
    let models: Vec<(usize, (String, ristretto_sim::engine::NetworkModel))> =
        benchmark_models(quick).into_iter().enumerate().collect();
    let nets: Vec<(usize, String, Arc<CompiledNetwork>)> = models
        .into_par_iter()
        .map(|(idx, (name, model))| {
            let net = compile(&model, &RistrettoConfig::paper_default())
                .expect("benchmark network compiles");
            (idx, name, net)
        })
        .collect();
    let points: Vec<(usize, String, Arc<CompiledNetwork>, usize, bool)> = nets
        .into_iter()
        .flat_map(|(idx, name, net)| {
            [true, false].into_iter().flat_map(move |strong| {
                let name = name.clone();
                let net = net.clone();
                CORE_COUNTS
                    .into_iter()
                    .map(move |cores| (idx, name.clone(), net.clone(), cores, strong))
            })
        })
        .collect();
    points
        .into_par_iter()
        .map(|(idx, name, net, cores, strong)| run_point(idx, &name, &net, cores, strong))
        .collect()
}

/// The 1-core base row of a row's curve.
fn base_of<'a>(rows: &'a [Row], row: &Row) -> Option<&'a Row> {
    rows.iter()
        .find(|b| b.network == row.network && b.curve == row.curve && b.cores == 1)
}

/// Renders both curves with derived throughput and efficiency columns.
pub fn render(rows: &[Row]) -> String {
    type EffFn = fn(&Row, &Row) -> f64;
    let mut out = String::new();
    let curves: [(&str, &str, EffFn); 2] = [
        (
            "strong",
            "Fleet strong scaling (output-channel sharding, 1 input)",
            strong_efficiency,
        ),
        (
            "weak",
            "Fleet weak scaling (batch sharding, 1 input per core)",
            weak_efficiency,
        ),
    ];
    for (curve, title, eff) in curves {
        let mut t = vec![vec![
            "network".to_string(),
            "cores".to_string(),
            "makespan (cycles)".to_string(),
            "latency (cycles)".to_string(),
            "throughput (inf/Mcycle)".to_string(),
            "efficiency".to_string(),
            "link bits".to_string(),
        ]];
        for r in rows.iter().filter(|r| r.curve == curve) {
            let e = base_of(rows, r).map_or(0.0, |b| eff(b, r));
            t.push(vec![
                r.network.clone(),
                r.cores.to_string(),
                r.makespan.to_string(),
                r.latency.to_string(),
                table::f2(r.throughput_per_mcycle()),
                format!("{e:.3}"),
                r.link_bits.to_string(),
            ]);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&table::render(title, &t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_cover_every_network_and_core_count() {
        let rows = run(true);
        assert_eq!(rows.len(), 3 * 2 * CORE_COUNTS.len());
        for r in &rows {
            assert!(r.makespan > 0 && r.latency > 0 && r.busy > 0, "{r:?}");
        }
        let names: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.network.as_str()).collect();
        assert_eq!(names.len(), 3);
        // Strong curve: byte-identical outputs at every core count.
        for net in &names {
            let strong: Vec<&Row> = rows
                .iter()
                .filter(|r| r.network == *net && r.curve == "strong")
                .collect();
            assert_eq!(strong.len(), CORE_COUNTS.len());
            assert!(strong
                .windows(2)
                .all(|p| p[0].output_digest == p[1].output_digest));
        }
    }

    #[test]
    fn efficiencies_stay_bounded() {
        let rows = run(true);
        for r in &rows {
            let base = base_of(&rows, r).expect("every curve has a 1-core base");
            if r.curve == "strong" {
                let e = strong_efficiency(base, r);
                assert!(e > 0.0 && e <= 1.0, "strong efficiency {e} for {r:?}");
            } else {
                let e = weak_efficiency(base, r);
                assert!(e > 0.0 && e <= 1.0, "weak efficiency {e} for {r:?}");
            }
        }
    }

    #[test]
    fn render_names_curves_and_networks() {
        let rows = run(true);
        let s = render(&rows);
        assert!(s.contains("strong scaling") && s.contains("weak scaling"));
        assert!(s.contains("efficiency"));
    }
}
