//! Figure 18: load-balancing visualization on conv3_2 of 4-bit ResNet-18
//! (128 input feature maps and their kernels onto 32 compute tiles) under
//! no / w / w-a balancing.
//!
//! Paper observation: the per-tile workload spread is minimal under w/a
//! balancing, while weight-only balancing barely improves on none because
//! Ristretto's latency depends on both operands' non-zero atoms.

use crate::{table, SEED};
use qnn::models::NetworkId;
use qnn::quant::BitWidth;
use qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto_sim::balance::{balance, BalanceStrategy, ChannelWorkload};
use serde::{Deserialize, Serialize};

/// Result for one balancing strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyResult {
    /// Strategy label.
    pub strategy: String,
    /// Per-tile workloads (cycles), 32 entries.
    pub tile_cycles: Vec<u64>,
    /// Layer makespan.
    pub makespan: u64,
    /// Utilization.
    pub utilization: f64,
    /// Relative spread: (max − min) / mean.
    pub spread: f64,
}

/// Runs the balancing comparison on the Fig 18 layer.
pub fn run(_quick: bool) -> Vec<StrategyResult> {
    let stats = NetworkStats::generate(
        NetworkId::ResNet18,
        PrecisionPolicy::Uniform(BitWidth::W4),
        2,
        SEED,
    );
    let layer = stats
        .layers
        .iter()
        .find(|l| l.layer.name == "conv3_2")
        .expect("ResNet-18 has conv3_2");
    assert_eq!(
        layer.layer.in_channels, 128,
        "Fig 18's layer has 128 input feature maps"
    );
    let workloads: Vec<ChannelWorkload> = (0..128)
        .map(|i| ChannelWorkload {
            channel: i,
            act_atoms: layer.act_atoms_per_channel[i],
            weight_atoms: layer.weight_atoms_per_channel[i],
        })
        .collect();
    [
        BalanceStrategy::None,
        BalanceStrategy::WeightOnly,
        BalanceStrategy::WeightActivation,
    ]
    .into_iter()
    .map(|s| {
        let a = balance(&workloads, 32, 16, s);
        let max = *a.tile_cycles.iter().max().unwrap() as f64;
        let min = *a.tile_cycles.iter().min().unwrap() as f64;
        let mean = a.tile_cycles.iter().sum::<u64>() as f64 / 32.0;
        StrategyResult {
            strategy: s.to_string(),
            makespan: a.makespan(),
            utilization: a.utilization(),
            spread: (max - min) / mean.max(1.0),
            tile_cycles: a.tile_cycles,
        }
    })
    .collect()
}

/// Renders Fig 18 (summary plus the per-tile profile).
pub fn render(results: &[StrategyResult]) -> String {
    let mut t = vec![vec![
        "strategy".to_string(),
        "makespan".to_string(),
        "utilization".to_string(),
        "spread (max-min)/mean".to_string(),
    ]];
    for r in results {
        t.push(vec![
            r.strategy.clone(),
            r.makespan.to_string(),
            table::pct(r.utilization),
            table::f2(r.spread),
        ]);
    }
    let mut s = table::render(
        "Fig 18: load balancing on conv3_2 of 4-bit ResNet-18 (128 fmaps -> 32 tiles)",
        &t,
    );
    for r in results {
        s.push_str(&format!("{:>14} tiles: ", r.strategy));
        for c in &r.tile_cycles {
            s.push_str(&format!("{c} "));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_balancing_minimizes_spread() {
        let results = run(true);
        assert_eq!(results.len(), 3);
        let by = |name: &str| results.iter().find(|r| r.strategy == name).unwrap();
        let none = by("no balancing");
        let w = by("w balancing");
        let wa = by("w/a balancing");
        assert!(wa.spread < none.spread, "{} vs {}", wa.spread, none.spread);
        assert!(wa.makespan <= w.makespan);
        assert!(wa.makespan <= none.makespan);
        assert!(wa.utilization > 0.95, "w/a utilization {}", wa.utilization);
        // Paper: weight-only balancing is a poor proxy in Ristretto — the
        // w/a spread is clearly smaller.
        assert!(wa.spread < w.spread, "{} vs {}", wa.spread, w.spread);
    }

    #[test]
    fn work_is_conserved_across_strategies() {
        let results = run(true);
        let sums: Vec<u64> = results
            .iter()
            .map(|r| r.tile_cycles.iter().sum::<u64>())
            .collect();
        assert_eq!(sums[0], sums[1]);
        assert_eq!(sums[1], sums[2]);
    }
}
