//! Figures 12 & 13: Ristretto vs Bit Fusion — area-normalized performance
//! and energy on the DNN benchmark at 8/4/2-bit and mixed 2/4-bit.
//!
//! Paper anchors: average speedups 8.2× / 7.47× / 7.13× / 6.73× at
//! 8b/4b/2b/mixed; Ristretto-ns (sparsity disabled) ≈ Bit Fusion; energy
//! 41.84% / 32.29% / 33.33% / 26.16% of Bit Fusion.

use crate::cache::StatsCache;
use crate::{area_norm_speedup, benchmark_networks, benchmark_policies, table, SEED};
use baselines::bitfusion::BitFusion;
use baselines::report::Backend;
use rayon::prelude::*;
use ristretto_sim::analytic::RistrettoSim;
use ristretto_sim::config::RistrettoConfig;
use serde::{Deserialize, Serialize};

/// One (network, precision) comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Network name.
    pub network: String,
    /// Precision label.
    pub precision: String,
    /// Area-normalized speedup of Ristretto over Bit Fusion.
    pub speedup: f64,
    /// Area-normalized speedup of Ristretto-ns over Bit Fusion.
    pub speedup_ns: f64,
    /// Raw cycle-count speedup of Ristretto-ns over Bit Fusion (the paper
    /// reports Ristretto-ns ≈ Bit Fusion; at matched multiplier counts the
    /// raw ratio is the cleaner check of that claim).
    pub raw_speedup_ns: f64,
    /// Ristretto energy relative to Bit Fusion (1.0 = equal).
    pub energy_ratio: f64,
}

/// Runs the comparison. Both machines hold 1024 2-bit multipliers and the
/// same buffer capacities (§V-B).
pub fn run(quick: bool, cache: &mut StatsCache) -> Vec<Row> {
    let r_cfg = RistrettoConfig::paper_default();
    let sim = RistrettoSim::new(r_cfg);
    let sim_ns = RistrettoSim::new(r_cfg.non_sparse());
    let r_area = Backend::area_mm2(&sim);
    let bf = BitFusion::paper_default();
    let bf_area = bf.area_mm2();

    // Every (network, precision) cell is independent: prefill the workload
    // cache, then fan the cells out. Cells collect back in input order, so
    // the rows match the nested sequential loops exactly.
    let items: Vec<_> = benchmark_networks(quick)
        .iter()
        .flat_map(|&net| benchmark_policies().into_iter().map(move |p| (net, p)))
        .collect();
    cache.prefill(
        &items
            .iter()
            .map(|&(net, p)| (net, p, 2))
            .collect::<Vec<_>>(),
        SEED,
    );
    let cache = &*cache;
    items
        .into_par_iter()
        .map(|(net, policy)| {
            let stats = cache.peek(net, policy, 2);
            let r = sim.simulate_network(stats);
            let rns = sim_ns.simulate_network(stats);
            let b = bf.simulate_network(stats);
            Row {
                network: net.name().to_string(),
                precision: policy.label(),
                speedup: area_norm_speedup(r.total_cycles(), r_area, b.total_cycles(), bf_area),
                speedup_ns: area_norm_speedup(
                    rns.total_cycles(),
                    r_area,
                    b.total_cycles(),
                    bf_area,
                ),
                raw_speedup_ns: b.total_cycles() as f64 / rns.total_cycles() as f64,
                energy_ratio: r.total_energy().relative_to(&b.total_energy()),
            }
        })
        .collect()
}

/// Mean over networks at one precision: `(speedup, speedup_ns, energy)`.
pub fn averages(rows: &[Row], precision: &str) -> (f64, f64, f64) {
    let sel: Vec<&Row> = rows.iter().filter(|r| r.precision == precision).collect();
    let n = sel.len().max(1) as f64;
    (
        sel.iter().map(|r| r.speedup).sum::<f64>() / n,
        sel.iter().map(|r| r.speedup_ns).sum::<f64>() / n,
        sel.iter().map(|r| r.energy_ratio).sum::<f64>() / n,
    )
}

/// Renders Fig 12 + Fig 13.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "network".to_string(),
        "precision".to_string(),
        "Ristretto speedup".to_string(),
        "Ristretto-ns speedup".to_string(),
        "Ristretto-ns raw".to_string(),
        "energy vs BF".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            r.network.clone(),
            r.precision.clone(),
            table::speedup(r.speedup),
            table::speedup(r.speedup_ns),
            table::speedup(r.raw_speedup_ns),
            table::pct(r.energy_ratio),
        ]);
    }
    let mut s = table::render(
        "Fig 12/13: Ristretto vs Bit Fusion (area-normalized perf; energy ratio)",
        &t,
    );
    for (label, paper_perf, paper_energy) in [
        ("8b", 8.2, 0.4184),
        ("4b", 7.47, 0.3229),
        ("2b", 7.13, 0.3333),
        ("mixed 2/4b", 6.73, 0.2616),
    ] {
        let (sp, ns, e) = averages(rows, label);
        let raw_ns: f64 = {
            let sel: Vec<&Row> = rows.iter().filter(|r| r.precision == label).collect();
            sel.iter().map(|r| r.raw_speedup_ns).sum::<f64>() / sel.len().max(1) as f64
        };
        s.push_str(&format!(
            "{label}: avg speedup {} (paper {paper_perf}x), ns {} / raw {} (paper ~1x), energy {} (paper {})\n",
            table::speedup(sp),
            table::speedup(ns),
            table::speedup(raw_ns),
            table::pct(e),
            table::pct(paper_energy),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ristretto_wins_and_ns_matches_bitfusion() {
        let mut cache = StatsCache::new();
        let rows = run(true, &mut cache);
        for r in &rows {
            assert!(
                r.speedup > 1.5,
                "{} {} speedup {}",
                r.network,
                r.precision,
                r.speedup
            );
            assert!(
                r.energy_ratio < 0.9,
                "{} {} energy {}",
                r.network,
                r.precision,
                r.energy_ratio
            );
            // Ristretto-ns should be within ~3x of Bit Fusion either way
            // (the paper shows them nearly equal).
            // The paper reports Ristretto-ns ≈ Bit Fusion; in raw cycles at
            // matched multiplier counts we land near parity.
            assert!(
                (0.5..2.5).contains(&r.raw_speedup_ns),
                "{} {} ns raw speedup {}",
                r.network,
                r.precision,
                r.raw_speedup_ns
            );
        }
    }

    #[test]
    fn render_includes_paper_anchors() {
        let mut cache = StatsCache::new();
        let rows = run(true, &mut cache);
        let s = render(&rows);
        assert!(s.contains("paper 8.2x"));
        assert!(s.contains("energy"));
    }
}
