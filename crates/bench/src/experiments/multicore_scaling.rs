//! Multi-core scaling study (extension of Fig 7's multi-core organization):
//! latency, throughput and traffic across core counts for the two natural
//! parallelism modes.

use crate::cache::StatsCache;
use crate::{table, SEED};
use qnn::models::NetworkId;
use qnn::quant::BitWidth;
use qnn::workload::PrecisionPolicy;
use rayon::prelude::*;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::multicore::{Multicore, MulticoreMode, MulticoreReport};
use serde::{Deserialize, Serialize};

/// One scaling point. Integer-only in serialized form: throughput is
/// derived at render time from `latency` and `inferences_per_pass`, so the
/// recorded JSON is byte-stable cross-platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    /// Mode label.
    pub mode: String,
    /// Core count.
    pub cores: usize,
    /// Single-inference latency (cycles).
    pub latency: u64,
    /// Inferences completed per latency pass (cores for batch mode, 1 for
    /// output-channel mode).
    pub inferences_per_pass: u64,
    /// DRAM traffic per inference (bits).
    pub dram_bits: u64,
}

impl Row {
    /// Throughput in inferences per mega-cycle — derived, never recorded.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.latency == 0 {
            return 0.0;
        }
        self.inferences_per_pass as f64 * 1e6 / self.latency as f64
    }
}

/// Core counts swept.
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the sweep on 4-bit ResNet-18.
pub fn run(cache: &mut StatsCache) -> Vec<Row> {
    let stats = cache
        .get(
            NetworkId::ResNet18,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
            SEED,
        )
        .clone();
    // Every (mode, core count) point is an independent simulation; fan them
    // out and collect in nested-loop order.
    let items: Vec<(MulticoreMode, usize)> = [MulticoreMode::Batch, MulticoreMode::OutputChannels]
        .into_iter()
        .flat_map(|mode| CORE_COUNTS.iter().map(move |&cores| (mode, cores)))
        .collect();
    items
        .into_par_iter()
        .map(|(mode, cores)| {
            let mc = Multicore::new(cores, mode, RistrettoConfig::paper_default());
            let MulticoreReport {
                latency_cycles,
                inferences_per_pass,
                dram_bits_per_inference,
                ..
            } = mc.simulate_network(&stats);
            Row {
                mode: format!("{mode:?}"),
                cores,
                latency: latency_cycles,
                inferences_per_pass,
                dram_bits: dram_bits_per_inference,
            }
        })
        .collect()
}

/// Renders the study.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "mode".to_string(),
        "cores".to_string(),
        "latency (cycles)".to_string(),
        "throughput (inf/Mcycle)".to_string(),
        "DRAM bits/inf".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            r.mode.clone(),
            r.cores.to_string(),
            r.latency.to_string(),
            table::f2(r.throughput_per_mcycle()),
            r.dram_bits.to_string(),
        ]);
    }
    table::render(
        "Multi-core scaling (Fig 7 organization, 4-bit ResNet-18)",
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_laws_hold() {
        let mut cache = StatsCache::new();
        let rows = run(&mut cache);
        assert_eq!(rows.len(), 8);
        let batch: Vec<&Row> = rows.iter().filter(|r| r.mode == "Batch").collect();
        // Batch: flat latency, linear throughput, flat traffic.
        for pair in batch.windows(2) {
            assert_eq!(pair[0].latency, pair[1].latency);
            assert!(pair[1].throughput_per_mcycle() > pair[0].throughput_per_mcycle());
            assert_eq!(pair[0].dram_bits, pair[1].dram_bits);
        }
        let oc: Vec<&Row> = rows.iter().filter(|r| r.mode == "OutputChannels").collect();
        // Output channels: falling latency, rising traffic.
        for pair in oc.windows(2) {
            assert!(pair[1].latency < pair[0].latency);
            assert!(pair[1].dram_bits > pair[0].dram_bits);
        }
    }
}
