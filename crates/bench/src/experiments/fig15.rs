//! Figure 15: Ristretto performance vs atom-level sparsity, measured on
//! randomly generated tensors with one compute tile (cycle-level).
//!
//! Sweeps the atom density of both operands and reports the tile speedup
//! relative to fully-dense atoms — the paper shows performance rising
//! steadily as atom sparsity grows, the behaviour Laconic cannot achieve
//! at the value level (Fig 4).

use crate::{table, SEED};
use atomstream::atom::AtomBits;
use atomstream::compress::{compress_activations, compress_weights};
use atomstream::flatten::{FlatActivation, FlatWeight};
use qnn::quant::BitWidth;
use qnn::workload::WorkloadGen;
use rayon::prelude::*;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::tile::TileSim;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Atom sparsity of both operands (1 − atom density).
    pub atom_sparsity: f64,
    /// Cycle-level tile cycles at this sparsity.
    pub cycles: u64,
    /// Speedup relative to the dense-atom run.
    pub speedup: f64,
}

/// Runs the sweep on one compute tile (16 2-bit multipliers, as in the
/// SparTen-comparison configuration).
pub fn run(quick: bool) -> Vec<Row> {
    let n_acts = if quick { 128 } else { 512 };
    let n_weights = if quick { 64 } else { 256 };
    let cfg = RistrettoConfig::half_width();
    let sim = TileSim::new(&cfg);
    // Each sweep point owns a generator seeded by its step, so the cycle
    // counts are independent; only the speedup normalization references the
    // dense (step 0) point, which we apply after the parallel sweep.
    let cycles_per_step: Vec<u64> = (0u64..=7)
        .into_par_iter()
        .map(|step| {
            let sparsity = step as f64 * 0.1;
            let density = 1.0 - sparsity;
            let mut gen = WorkloadGen::new(SEED ^ 0xf15 ^ step);
            let a_vals = gen.values_with_atom_density(n_acts, BitWidth::W8, 2, density, false);
            let w_vals = gen.values_with_atom_density(n_weights, BitWidth::W8, 2, density, true);
            let fa: Vec<FlatActivation> = a_vals
                .iter()
                .enumerate()
                .map(|(i, &value)| FlatActivation {
                    value,
                    x: (i % 32) as u16,
                    y: (i / 32) as u16,
                })
                .collect();
            let fw: Vec<FlatWeight> = w_vals
                .iter()
                .enumerate()
                .map(|(i, &value)| FlatWeight {
                    value,
                    x: (i % 3) as u16,
                    y: (i / 3 % 3) as u16,
                    out_ch: (i % 16) as u16,
                })
                .collect();
            let acts = compress_activations(&fa, 8, AtomBits::B2).expect("8-bit values");
            let weights = compress_weights(&fw, 8, AtomBits::B2).expect("8-bit values");
            sim.run(&weights, &acts).cycles
        })
        .collect();
    let dense_cycles = cycles_per_step[0];
    cycles_per_step
        .into_iter()
        .enumerate()
        .map(|(step, cycles)| Row {
            atom_sparsity: step as f64 * 0.1,
            cycles,
            speedup: dense_cycles as f64 / cycles.max(1) as f64,
        })
        .collect()
}

/// Renders the result table.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "atom sparsity".to_string(),
        "tile cycles".to_string(),
        "speedup vs dense atoms".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            table::pct(r.atom_sparsity),
            r.cycles.to_string(),
            table::speedup(r.speedup),
        ]);
    }
    table::render(
        "Fig 15: Ristretto tile performance vs atom sparsity (cycle-level)",
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_rises_with_atom_sparsity() {
        let rows = run(true);
        assert_eq!(rows.len(), 8);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        // Monotone within noise; end point clearly faster.
        assert!(
            rows.last().unwrap().speedup > 2.0,
            "{:?}",
            rows.last().unwrap()
        );
        for pair in rows.windows(2) {
            assert!(
                pair[1].speedup > pair[0].speedup * 0.9,
                "speedup regressed: {pair:?}"
            );
        }
    }
}
