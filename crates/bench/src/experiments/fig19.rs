//! Figure 19: impact of atom granularity.
//!
//! (a) area and power of the compute units for 1/2/3-bit atoms at equal
//! BitOps/cycle (64/16/7 multipliers per tile) — the paper measures the
//! 1-bit variant at 3.34× the area and 3.51× the power of the 2-bit one;
//! (b) average area-normalized performance on the DNN benchmark — 2-bit
//! comes out best overall.

use crate::cache::StatsCache;
use crate::{benchmark_networks, benchmark_policies, table, SEED};
use hwmodel::{ComponentLib, TechNode};
use rayon::prelude::*;
use ristretto_sim::analytic::RistrettoSim;
use ristretto_sim::area::{compute_unit_power_mw, AreaBreakdown};
use ristretto_sim::config::RistrettoConfig;
use serde::{Deserialize, Serialize};

/// Fig 19a: one granularity's compute-unit cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostRow {
    /// Atom granularity in bits.
    pub atom_bits: u8,
    /// Multipliers per tile at equal BitOps/cycle.
    pub multipliers: usize,
    /// Compute-unit area (mm²).
    pub area_mm2: f64,
    /// Compute-unit power (mW).
    pub power_mw: f64,
}

/// Fig 19b: one (granularity, precision) performance point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfRow {
    /// Atom granularity in bits.
    pub atom_bits: u8,
    /// Precision label.
    pub precision: String,
    /// Mean area-normalized performance across the benchmark: inverse
    /// cycles per mm² of *compute units* (the Fig 19a quantity — all three
    /// designs share the same buffers), normalized to the 2-bit design per
    /// precision by [`render`].
    pub perf: f64,
}

/// Runs Fig 19a.
pub fn run_cost() -> Vec<CostRow> {
    let lib = ComponentLib::n28();
    [1u8, 2, 3]
        .into_iter()
        .map(|bits| {
            let cfg = RistrettoConfig::try_granularity(bits).expect("Fig 19 granularity");
            CostRow {
                atom_bits: bits,
                multipliers: cfg.multipliers,
                area_mm2: AreaBreakdown::from_config(&cfg, &lib).compute_units(),
                power_mw: compute_unit_power_mw(&cfg, &lib, TechNode::N28),
            }
        })
        .collect()
}

/// Runs Fig 19b.
pub fn run_perf(quick: bool, cache: &mut StatsCache) -> Vec<PerfRow> {
    let lib = ComponentLib::n28();
    let nets = benchmark_networks(quick);
    // Each (granularity, precision) point averages over the same networks;
    // prefill every workload, then fan the points out. The inner sum stays
    // sequential in network order, so each point's float accumulation is
    // identical to the serial version.
    let items: Vec<(u8, _)> = [1u8, 2, 3]
        .into_iter()
        .flat_map(|bits| benchmark_policies().into_iter().map(move |p| (bits, p)))
        .collect();
    let keys: Vec<_> = items
        .iter()
        .flat_map(|&(bits, p)| nets.iter().map(move |&net| (net, p, bits)))
        .collect();
    cache.prefill(&keys, SEED);
    let cache = &*cache;
    items
        .into_par_iter()
        .map(|(bits, policy)| {
            let cfg = RistrettoConfig::try_granularity(bits).expect("Fig 19 granularity");
            let sim = RistrettoSim::try_new(cfg).expect("Fig 19 configuration");
            let area = AreaBreakdown::from_config(&cfg, &lib).compute_units();
            let mut inv_cycles_sum = 0.0;
            let mut n = 0.0;
            for &net in nets {
                let stats = cache.peek(net, policy, bits);
                let r = sim.simulate_network(stats);
                inv_cycles_sum += 1.0 / r.total_cycles().max(1) as f64;
                n += 1.0;
            }
            PerfRow {
                atom_bits: bits,
                precision: policy.label(),
                perf: inv_cycles_sum / n / area,
            }
        })
        .collect()
}

/// Renders Fig 19a + 19b.
pub fn render(cost: &[CostRow], perf: &[PerfRow]) -> String {
    let mut t = vec![vec![
        "atom".to_string(),
        "mults/tile".to_string(),
        "CU area (mm2)".to_string(),
        "CU power (mW)".to_string(),
        "area vs 2b".to_string(),
        "power vs 2b".to_string(),
    ]];
    let base = cost.iter().find(|c| c.atom_bits == 2).expect("2-bit point");
    for c in cost {
        t.push(vec![
            format!("{}b", c.atom_bits),
            c.multipliers.to_string(),
            format!("{:.4}", c.area_mm2),
            format!("{:.1}", c.power_mw),
            table::speedup(c.area_mm2 / base.area_mm2),
            table::speedup(c.power_mw / base.power_mw),
        ]);
    }
    let mut s = table::render(
        "Fig 19a: compute-unit cost vs atom granularity (paper: 1b = 3.34x area, 3.51x power of 2b)",
        &t,
    );

    let mut t2 = vec![vec![
        "precision".to_string(),
        "1b perf".to_string(),
        "2b perf".to_string(),
        "3b perf".to_string(),
    ]];
    let get = |bits: u8, p: &str| {
        perf.iter()
            .find(|r| r.atom_bits == bits && r.precision == p)
    };
    for policy in crate::benchmark_policies() {
        let p = policy.label();
        if let (Some(p1), Some(p2), Some(p3)) = (get(1, &p), get(2, &p), get(3, &p)) {
            t2.push(vec![
                p.clone(),
                table::f2(p1.perf / p2.perf),
                "1.00".to_string(),
                table::f2(p3.perf / p2.perf),
            ]);
        }
    }
    s.push_str(&table::render(
        "Fig 19b: mean area-normalized performance (normalized to the 2-bit design)",
        &t2,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bit_costs_more_three_bit_less() {
        let cost = run_cost();
        let get = |b: u8| cost.iter().find(|c| c.atom_bits == b).unwrap();
        let (c1, c2, c3) = (get(1), get(2), get(3));
        let area_ratio = c1.area_mm2 / c2.area_mm2;
        let power_ratio = c1.power_mw / c2.power_mw;
        assert!(
            (2.0..5.5).contains(&area_ratio),
            "1b/2b area {area_ratio} (paper 3.34)"
        );
        assert!(
            (1.5..5.5).contains(&power_ratio),
            "1b/2b power {power_ratio} (paper 3.51)"
        );
        assert!(c3.area_mm2 < c2.area_mm2);
        assert!(c3.power_mw < c2.power_mw);
    }

    #[test]
    fn two_bit_granularity_beats_one_bit_and_tracks_three_bit() {
        let mut cache = StatsCache::new();
        let perf = run_perf(true, &mut cache);
        let mean = |bits: u8| {
            let sel: Vec<&PerfRow> = perf.iter().filter(|r| r.atom_bits == bits).collect();
            sel.iter().map(|r| r.perf).sum::<f64>() / sel.len() as f64
        };
        let (m1, m2, m3) = (mean(1), mean(2), mean(3));
        // The paper finds 2-bit best overall. In our model 2-bit clearly
        // beats 1-bit; 2-bit and 3-bit are within ~25% of each other, with
        // the winner sensitive to the magnitude distribution of the
        // synthetic quantized values (recorded in EXPERIMENTS.md).
        assert!(m2 > m1, "2b {m2} vs 1b {m1}");
        assert!(
            (m2 / m3 - 1.0).abs() < 0.30,
            "2b {m2} and 3b {m3} should be close (ratio {})",
            m2 / m3
        );
    }
}
