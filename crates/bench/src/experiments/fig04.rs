//! Figure 4: Laconic tile performance vs value sparsity.
//!
//! Random uniform 8-bit vectors at controlled value sparsity are paired
//! into inner products of length 16 (one pair per bit-serial lane) and the
//! three latency estimates are averaged over many runs:
//! theoretical ≤ average-PE ≤ tile. The paper's observations: value
//! sparsity yields little tile-level speedup, and the gap widens with tile
//! size.

use crate::{table, SEED};
use baselines::laconic::Laconic;
use qnn::quant::BitWidth;
use qnn::workload::WorkloadGen;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Number of PEs in the tile.
    pub tile_pes: usize,
    /// Value sparsity of both operands.
    pub sparsity: f64,
    /// Theoretical latency (workload / lanes).
    pub theoretical: f64,
    /// Mean per-PE latency (no cross-PE sharing).
    pub average_pe: f64,
    /// Full-tile latency (slowest PE).
    pub tile: f64,
}

/// Tile sizes swept (PE counts).
pub const TILE_SIZES: [usize; 4] = [4, 16, 48, 64];

/// Runs the sweep.
pub fn run(quick: bool) -> Vec<Row> {
    let runs = if quick { 100 } else { 1000 };
    let lanes = 16;
    // Each (tile size, sparsity step) point owns a generator seeded purely
    // by its key, so the points are independent; fan out over all of them
    // (order-preserving collect keeps the rows in nested-loop order).
    let items: Vec<(usize, u64)> = TILE_SIZES
        .iter()
        .flat_map(|&pes| (0u64..=8).map(move |step| (pes, step)))
        .collect();
    items
        .into_par_iter()
        .map(|(pes, step)| {
            let sparsity = step as f64 * 0.1;
            let density = 1.0 - sparsity;
            let mut gen = WorkloadGen::new(SEED ^ (pes as u64) << 16 ^ step);
            let (mut st, mut sa, mut sm) = (0.0, 0.0, 0u64);
            for _ in 0..runs {
                let a = gen.values_with_density(pes * lanes, BitWidth::W8, density, false);
                let w = gen.values_with_density(pes * lanes, BitWidth::W8, density, true);
                let work = Laconic::pair_work(&a, &w);
                let (t, p, m) = Laconic::round_latencies(&work, lanes);
                st += t;
                sa += p;
                sm += m;
            }
            Row {
                tile_pes: pes,
                sparsity,
                theoretical: st / runs as f64,
                average_pe: sa / runs as f64,
                tile: sm as f64 / runs as f64,
            }
        })
        .collect()
}

/// Renders the result table.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "PEs".to_string(),
        "sparsity".to_string(),
        "theoretical".to_string(),
        "avg PE".to_string(),
        "tile".to_string(),
        "tile/theoretical".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            r.tile_pes.to_string(),
            table::pct(r.sparsity),
            table::f2(r.theoretical),
            table::f2(r.average_pe),
            table::f2(r.tile),
            table::f2(r.tile / r.theoretical.max(1e-9)),
        ]);
    }
    table::render(
        "Fig 4: Laconic inner-product latency vs value sparsity (cycles per round)",
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_ordered_and_gap_grows_with_tile_size() {
        let rows = run(true);
        for r in &rows {
            assert!(
                r.theoretical <= r.average_pe + 1e-9 && r.average_pe <= r.tile + 1e-9,
                "ordering violated at {r:?}"
            );
        }
        // At fixed sparsity, the tile/theoretical gap grows with PE count.
        let gap = |pes: usize| {
            let r = rows
                .iter()
                .find(|r| r.tile_pes == pes && (r.sparsity - 0.5).abs() < 1e-9)
                .unwrap();
            r.tile / r.theoretical
        };
        assert!(gap(64) > gap(4), "{} vs {}", gap(64), gap(4));
    }

    #[test]
    fn sparsity_insensitivity_of_tile_latency() {
        // Paper: increasing value sparsity does not proportionally improve
        // the tile latency. Going from 0% to 50% sparsity halves the
        // workload but the 64-PE tile latency shrinks by much less.
        let rows = run(true);
        let tile_at = |s: f64| {
            rows.iter()
                .find(|r| r.tile_pes == 64 && (r.sparsity - s).abs() < 1e-9)
                .unwrap()
                .tile
        };
        let improvement = tile_at(0.0) / tile_at(0.5);
        assert!(
            improvement < 1.6,
            "tile latency improved {improvement}x for 2x less work"
        );
    }
}
