//! One module per reproduced table/figure (see DESIGN.md §4 for the index).

pub mod ablations;
pub mod engine_batch;
pub mod fig01;
pub mod fig04;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod motivation;
pub mod multicore_scaling;
pub mod scaling;
pub mod table6;
