//! Compile-once/run-many demonstration: the engine's static/per-input
//! split amortized over a batch.
//!
//! For each quick-suite network, the miniature functional variant is
//! compiled once ([`ristretto_sim::engine::compile`] — weight flattening,
//! compression, shuffling, per-channel statistics and the weight-only
//! balancer grouping) and a [`Session`] then serves `batch` distinct
//! images. The static work is paid once regardless of the batch size, so
//! per-image wall time falls as the batch grows; wall times go to stderr
//! only (stdout stays byte-identical across machines and thread counts).

use crate::{benchmark_networks, table, SEED};
use qnn::mini::MiniNetwork;
use qnn::quant::BitWidth;
use qnn::tensor::Tensor3;
use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::engine::{compile, NetworkModel, Session};
use ristretto_sim::modelcache::ModelCache;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// One network's compile-once/run-many accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Network name.
    pub network: String,
    /// Images served by the session.
    pub images: usize,
    /// Layers in the compiled network.
    pub layers: usize,
    /// Static weight atoms — compiled once, shared by every image.
    pub weight_atoms: u64,
    /// Activation atoms streamed for the first image — per-input work that
    /// repeats for every image.
    pub act_atoms_per_image: u64,
}

/// Materializes the benchmark networks exactly as the batch experiment
/// does: one deterministic seed per network index, 4-bit benchmark
/// weights. The `artifact` subcommand of `repro` reuses this so its
/// saved artifacts describe the very networks the suite runs.
pub fn benchmark_models(quick: bool) -> Vec<(String, NetworkModel)> {
    benchmark_networks(quick)
        .iter()
        .enumerate()
        .map(|(idx, &net)| {
            let mini = MiniNetwork::try_new(net).expect("builtin mini network");
            let mut gen = WorkloadGen::new(SEED ^ ((idx as u64 + 1) << 8));
            let model =
                NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4))
                    .expect("mini network materializes");
            (net.name().to_string(), model)
        })
        .collect()
}

/// Deterministic input image `image` for network index `idx` (the same
/// activations the batch experiment streams).
pub fn benchmark_input(idx: usize, image: usize, c: usize, h: usize, w: usize) -> Tensor3 {
    let mut igen = WorkloadGen::new(SEED ^ ((idx as u64 + 1) << 8) ^ (image as u64 + 1));
    igen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
        .expect("input materializes")
}

/// Runs the quick-suite networks through one compiled session each,
/// serving `batch` images per network.
///
/// With `model_cache` set, compilation goes through
/// [`ModelCache::compile_cached`]: the first run against a directory
/// pays the compile and persists the artifact; later runs load it.
/// Row contents (and stdout) are byte-identical either way — the cache
/// only moves wall time, which is reported on stderr.
///
/// # Errors
/// Names the network (and the cache directory when one is in play) on
/// compile or inference failure instead of panicking — a corrupt or
/// unreadable `--model-cache` is user input, not a programming error.
pub fn run(quick: bool, batch: usize, model_cache: Option<&Path>) -> Result<Vec<Row>, String> {
    let batch = batch.max(1);
    let cfg = RistrettoConfig::paper_default();
    let cache = model_cache.map(ModelCache::new);
    let mut rows = Vec::new();
    let mut total_elapsed = 0.0f64;
    for (idx, (name, model)) in benchmark_models(quick).into_iter().enumerate() {
        let t0 = Instant::now();
        let compiled = match (&cache, model_cache) {
            (Some(cache), dir) => cache.compile_cached(&model, &cfg).map_err(|e| {
                format!(
                    "compiling {name} through the model cache at {}: {e}",
                    dir.unwrap_or_else(|| Path::new("?")).display()
                )
            })?,
            (None, _) => compile(&model, &cfg).map_err(|e| format!("compiling {name}: {e}"))?,
        };
        let compile_s = t0.elapsed().as_secs_f64();

        let session = Session::new(compiled.clone());
        let (c, h, w) = compiled.input();
        let mut act_atoms_per_image = 0;
        let mut run_s = 0.0f64;
        for image in 0..batch {
            let input = benchmark_input(idx, image, c, h, w);
            let t1 = Instant::now();
            let out = session
                .run(&input)
                .map_err(|e| format!("{name} image {image}: {e}"))?;
            run_s += t1.elapsed().as_secs_f64();
            if image == 0 {
                act_atoms_per_image = out.traces.iter().map(|t| t.stats.act_atoms).sum();
            }
        }
        let per_image_ms = (compile_s + run_s) * 1e3 / batch as f64;
        eprintln!(
            "[batch] {name}: compile {:.2}ms once, {batch} image(s), {per_image_ms:.2}ms/image \
             (compile amortized)",
            compile_s * 1e3,
        );
        total_elapsed += compile_s + run_s;
        rows.push(Row {
            network: name,
            images: batch,
            layers: compiled.layers().len(),
            weight_atoms: compiled.weight_atoms(),
            act_atoms_per_image,
        });
    }
    eprintln!(
        "[batch] per-image wall time: {:.3}ms ({batch} image(s) per network)",
        total_elapsed * 1e3 / (rows.len().max(1) * batch) as f64
    );
    Ok(rows)
}

/// Renders the static-vs-per-input accounting.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "network".to_string(),
        "layers".to_string(),
        "images".to_string(),
        "static weight atoms (once)".to_string(),
        "act atoms / image".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            r.network.clone(),
            r.layers.to_string(),
            r.images.to_string(),
            r.weight_atoms.to_string(),
            r.act_atoms_per_image.to_string(),
        ]);
    }
    table::render(
        "Engine: compile-once/run-many (static weight work amortized over the batch)",
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_work_is_batch_invariant() {
        let one = run(true, 1, None).unwrap();
        let four = run(true, 4, None).unwrap();
        assert_eq!(one.len(), 3);
        assert_eq!(four.len(), 3);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.network, b.network);
            assert_eq!(a.weight_atoms, b.weight_atoms, "{}", a.network);
            assert_eq!(
                a.act_atoms_per_image, b.act_atoms_per_image,
                "{}",
                a.network
            );
            assert!(a.weight_atoms > 0 && a.act_atoms_per_image > 0);
        }
    }

    #[test]
    fn cached_rows_match_uncached_cold_and_warm() {
        let dir = std::env::temp_dir().join(format!(
            "ristretto_engine_batch_cache_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let plain = run(true, 1, None).unwrap();
        let cold = run(true, 1, Some(&dir)).unwrap();
        let warm = run(true, 1, Some(&dir)).unwrap();
        assert_eq!(plain, cold);
        assert_eq!(plain, warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_lists_every_network() {
        let rows = run(true, 1, None).unwrap();
        let s = render(&rows);
        for r in &rows {
            assert!(s.contains(&r.network));
        }
    }
}
