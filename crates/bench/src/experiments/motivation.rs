//! §II-B2 quantified: "inefficiency of direct combination".
//!
//! The paper argues (with Figures 2 and 3 as block diagrams) that bolting
//! mixed precision onto a sparse accelerator (SparTen→SparTen-mp) or
//! sparsity onto a precision-scalable one (Laconic→Laconic+SNAP) is
//! inferior to the unified condensed-streaming design. This experiment
//! turns the argument into numbers: area-normalized performance of each
//! base design, its naive combination, and Ristretto, plus the Table I
//! taxonomy members SCNN and SNAP for reference.

use crate::cache::StatsCache;
use crate::{area_norm_speedup, benchmark_networks, table, SEED};
use baselines::prelude::*;
use qnn::quant::BitWidth;
use qnn::workload::PrecisionPolicy;
use rayon::prelude::*;
use ristretto_sim::analytic::RistrettoSim;
use ristretto_sim::config::RistrettoConfig;
use serde::{Deserialize, Serialize};

/// One accelerator's aggregate standing on the benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Accelerator name.
    pub accelerator: String,
    /// Total cycles over the benchmark subset (4-bit models).
    pub cycles: u64,
    /// Accelerator area (mm²).
    pub area_mm2: f64,
    /// Area-normalized speedup over SparTen (the sparse base design).
    pub speedup_vs_sparten: f64,
}

/// Runs the seven-way comparison at 4-bit (the precision where the
/// combinations should shine if the separate-design methodology worked).
pub fn run(quick: bool, cache: &mut StatsCache) -> Vec<Row> {
    let policy = PrecisionPolicy::Uniform(BitWidth::W4);
    let nets: Vec<_> = benchmark_networks(quick).to_vec();

    let r_sim = RistrettoSim::new(RistrettoConfig::half_width());

    // Prefill the shared workloads once, then evaluate the seven machines
    // in parallel (each sums over the networks sequentially). The machines
    // are heterogeneous types, unified behind the workspace-wide `Backend`
    // trait; collect preserves the fixed accelerator order.
    cache.prefill(
        &nets.iter().map(|&n| (n, policy, 2)).collect::<Vec<_>>(),
        SEED,
    );
    let cache = &*cache;

    let sparten = SparTen::paper_default();
    let mp = SparTenMp::paper_default();
    let lac = Laconic::paper_default();
    let ls = LaconicSnap::paper_default();
    let scnn = Scnn::paper_default();
    let snap = Snap::paper_default();
    let machines: Vec<&dyn Backend> = vec![&sparten, &mp, &lac, &ls, &scnn, &snap, &r_sim];
    let rows: Vec<(String, u64, f64)> = machines
        .par_iter()
        .map(|m| {
            let cycles = nets
                .iter()
                .map(|&n| m.simulate_network(cache.peek(n, policy, 2)).total_cycles())
                .sum();
            (m.name().to_string(), cycles, m.area_mm2())
        })
        .collect();

    let (base_cycles, base_area) = (rows[0].1, rows[0].2);
    rows.into_iter()
        .map(|(accelerator, cycles, area_mm2)| Row {
            accelerator,
            cycles,
            area_mm2,
            speedup_vs_sparten: area_norm_speedup(cycles, area_mm2, base_cycles, base_area),
        })
        .collect()
}

/// Renders the comparison.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "accelerator".to_string(),
        "cycles (4b benchmark)".to_string(),
        "area mm2".to_string(),
        "perf/area vs SparTen".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            r.accelerator.clone(),
            r.cycles.to_string(),
            format!("{:.3}", r.area_mm2),
            table::speedup(r.speedup_vs_sparten),
        ]);
    }
    table::render(
        "Motivation (§II-B2): base designs, naive combinations, and the unified design (4-bit)",
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by<'a>(rows: &'a [Row], name: &str) -> &'a Row {
        rows.iter().find(|r| r.accelerator == name).unwrap()
    }

    #[test]
    fn unified_design_beats_both_naive_combinations() {
        let mut cache = StatsCache::new();
        let rows = run(true, &mut cache);
        let ristretto = by(&rows, "Ristretto").speedup_vs_sparten;
        let mp = by(&rows, "SparTen-mp").speedup_vs_sparten;
        let ls = by(&rows, "Laconic+SNAP").speedup_vs_sparten;
        assert!(ristretto > mp, "Ristretto {ristretto} vs SparTen-mp {mp}");
        assert!(ristretto > ls, "Ristretto {ristretto} vs Laconic+SNAP {ls}");
        // And the combinations do not dominate their own base designs by
        // the margin the unified design achieves.
        let sparten = by(&rows, "SparTen").speedup_vs_sparten;
        assert!(ristretto > 2.0 * sparten, "unified win should be decisive");
    }

    #[test]
    fn combination_gains_are_marginal_or_negative_in_perf_per_area() {
        let mut cache = StatsCache::new();
        let rows = run(true, &mut cache);
        let lac = by(&rows, "Laconic").speedup_vs_sparten;
        let ls = by(&rows, "Laconic+SNAP").speedup_vs_sparten;
        // Laconic+SNAP's compression doesn't buy area-normalized cycles.
        assert!(ls < lac * 1.5, "Laconic+SNAP {ls} vs Laconic {lac}");
    }
}
