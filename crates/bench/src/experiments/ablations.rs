//! Ablation studies for the design choices DESIGN.md calls out (beyond the
//! paper's own Fig 18/19 ablations):
//!
//! * feature-map tile size — trades per-tile pipeline-drain overhead
//!   (Eq 4's ε is paid once per channel-tile intersection) against COO
//!   coordinate metadata and accumulate-buffer reach;
//! * Atomulator FIFO depth — how much backpressure the crossbar absorbs
//!   (cycle-level, naive vs shuffled weight streams);
//! * balancing strategy across the whole DNN benchmark (Fig 18 generalized
//!   from one layer to networks).

use crate::cache::StatsCache;
use crate::{benchmark_networks, table, SEED};
use atomstream::atom::AtomBits;
use atomstream::compress::{compress_activations, compress_weights, compress_weights_naive};
use atomstream::conv_csc::{conv2d_csc_streams, CscConfig, WeightStreamSet};
use atomstream::flatten::{FlatActivation, FlatWeight};
use qnn::quant::BitWidth;
use qnn::workload::{
    ActivationProfile, PrecisionPolicy, SyntheticLayer, WeightProfile, WorkloadGen,
};
use rayon::prelude::*;
use ristretto_sim::analytic::RistrettoSim;
use ristretto_sim::balance::BalanceStrategy;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::tile::TileSim;
use serde::{Deserialize, Serialize};

/// Tile-size ablation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileSizeRow {
    /// Square tile extent.
    pub tile: usize,
    /// Intersection steps for the probe layer.
    pub steps: u64,
    /// Compressed activation bits (value + per-tile coordinate metadata).
    pub compressed_bits: u64,
}

/// FIFO-depth ablation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FifoRow {
    /// FIFO depth.
    pub depth: usize,
    /// Stall cycles with the §IV-C2 shuffled weight stream.
    pub stalls_shuffled: u64,
    /// Stall cycles with a naive (value-order) weight stream.
    pub stalls_naive: u64,
}

/// Balancing ablation row (whole networks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalanceRow {
    /// Network name.
    pub network: String,
    /// Cycles with no balancing.
    pub cycles_none: u64,
    /// Cycles with weight-only balancing.
    pub cycles_w: u64,
    /// Cycles with w/a balancing.
    pub cycles_wa: u64,
}

/// Sweeps the feature-map tile extent on a probe layer.
pub fn run_tile_size(quick: bool) -> Vec<TileSizeRow> {
    let mut gen = WorkloadGen::new(SEED ^ 0x711e);
    let layer = qnn::layers::ConvLayer::conv(
        "probe",
        8,
        16,
        3,
        1,
        1,
        if quick { 16 } else { 32 },
        if quick { 16 } else { 32 },
    )
    .expect("valid probe layer");
    let s = SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W8),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    );
    // The static weight streams are tile-size independent: compile them
    // once and sweep only the activation-side tiling.
    let weights = WeightStreamSet::compile(&s.kernels, BitWidth::W8, AtomBits::B2)
        .expect("probe weights compile");
    [2usize, 4, 8, 16]
        .into_iter()
        .map(|tile| {
            let cfg = CscConfig {
                tile_h: tile,
                tile_w: tile,
                ..CscConfig::default()
            };
            let out = conv2d_csc_streams(&s.fmap, &weights, layer.geometry(), BitWidth::W8, &cfg)
                .expect("probe conv");
            // Coordinate metadata: 2·log2(tile) bits per non-zero value.
            let coord_bits = 2 * (tile as u64).ilog2() as u64;
            let compressed_bits = out.stats.act_values * (8 + coord_bits);
            TileSizeRow {
                tile,
                steps: out.stats.intersect.steps,
                compressed_bits,
            }
        })
        .collect()
}

/// Sweeps the Atomulator FIFO depth at high output-channel contention.
pub fn run_fifo_depth(quick: bool) -> Vec<FifoRow> {
    let n_acts = if quick { 48 } else { 192 };
    let n_weights = if quick { 64 } else { 256 };
    let mut gen = WorkloadGen::new(SEED ^ 0xf1f0);
    let a_vals = gen.values_with_density(n_acts, BitWidth::W8, 0.9, false);
    let w_vals = gen.values_with_density(n_weights, BitWidth::W8, 0.9, true);
    let fa: Vec<FlatActivation> = a_vals
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0)
        .map(|(i, &value)| FlatActivation {
            value,
            x: (i % 16) as u16,
            y: (i / 16) as u16,
        })
        .collect();
    // Only 3 output channels: heavy bank contention.
    let fw: Vec<FlatWeight> = w_vals
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0)
        .map(|(i, &value)| FlatWeight {
            value,
            x: (i % 3) as u16,
            y: (i / 3 % 3) as u16,
            out_ch: (i % 3) as u16,
        })
        .collect();
    let acts = compress_activations(&fa, 8, AtomBits::B2).expect("8-bit values");
    let shuffled = compress_weights(&fw, 8, AtomBits::B2).expect("8-bit values");
    let naive = compress_weights_naive(&fw, 8, AtomBits::B2).expect("8-bit values");
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|depth| {
            let cfg = RistrettoConfig {
                multipliers: 16,
                fifo_depth: depth,
                ..RistrettoConfig::paper_default()
            };
            let sim = TileSim::new(&cfg);
            FifoRow {
                depth,
                stalls_shuffled: sim.run(&shuffled, &acts).stall_cycles,
                stalls_naive: sim.run(&naive, &acts).stall_cycles,
            }
        })
        .collect()
}

/// Compares balancing strategies across whole networks at 4-bit.
pub fn run_balance_networks(quick: bool, cache: &mut StatsCache) -> Vec<BalanceRow> {
    let policy = PrecisionPolicy::Uniform(BitWidth::W4);
    let nets = benchmark_networks(quick);
    // Prefill the per-network workloads, then evaluate the three balancing
    // strategies for each network in parallel (order-preserving collect).
    cache.prefill(
        &nets.iter().map(|&n| (n, policy, 2)).collect::<Vec<_>>(),
        SEED,
    );
    let cache = &*cache;
    nets.par_iter()
        .map(|&net| {
            let stats = cache.peek(net, policy, 2);
            let cycles = |strategy| {
                let cfg = RistrettoConfig::paper_default().with_balancing(strategy);
                RistrettoSim::new(cfg)
                    .simulate_network(stats)
                    .total_cycles()
            };
            BalanceRow {
                network: net.name().to_string(),
                cycles_none: cycles(BalanceStrategy::None),
                cycles_w: cycles(BalanceStrategy::WeightOnly),
                cycles_wa: cycles(BalanceStrategy::WeightActivation),
            }
        })
        .collect()
}

/// Renders all three ablations.
pub fn render(tiles: &[TileSizeRow], fifos: &[FifoRow], balances: &[BalanceRow]) -> String {
    let mut t = vec![vec![
        "tile".to_string(),
        "intersection steps".to_string(),
        "compressed act bits".to_string(),
    ]];
    for r in tiles {
        t.push(vec![
            format!("{0}x{0}", r.tile),
            r.steps.to_string(),
            r.compressed_bits.to_string(),
        ]);
    }
    let mut s = table::render("Ablation: feature-map tile size (probe layer)", &t);

    let mut t = vec![vec![
        "FIFO depth".to_string(),
        "stalls (shuffled stream)".to_string(),
        "stalls (naive stream)".to_string(),
    ]];
    for r in fifos {
        t.push(vec![
            r.depth.to_string(),
            r.stalls_shuffled.to_string(),
            r.stalls_naive.to_string(),
        ]);
    }
    s.push_str(&table::render(
        "Ablation: Atomulator FIFO depth under contention",
        &t,
    ));

    let mut t = vec![vec![
        "network".to_string(),
        "no balancing".to_string(),
        "w balancing".to_string(),
        "w/a balancing".to_string(),
        "w/a gain".to_string(),
    ]];
    for r in balances {
        t.push(vec![
            r.network.clone(),
            r.cycles_none.to_string(),
            r.cycles_w.to_string(),
            r.cycles_wa.to_string(),
            table::speedup(r.cycles_none as f64 / r.cycles_wa.max(1) as f64),
        ]);
    }
    s.push_str(&table::render(
        "Ablation: balancing strategies across networks (4-bit)",
        &t,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_size_trades_drain_overhead_for_metadata() {
        let rows = run_tile_size(true);
        assert_eq!(rows.len(), 4);
        // Smaller tiles pay the Eq 4 pipeline-drain ε once per
        // (channel, tile) intersection, so steps shrink monotonically as
        // tiles grow; coordinate metadata grows instead.
        for pair in rows.windows(2) {
            assert!(pair[1].steps <= pair[0].steps, "{pair:?}");
            assert!(
                pair[1].compressed_bits >= pair[0].compressed_bits,
                "{pair:?}"
            );
        }
        // The drain overhead stays bounded (< 2x between extremes).
        let min = rows.iter().map(|r| r.steps).min().unwrap();
        let max = rows.iter().map(|r| r.steps).max().unwrap();
        assert!(max < min * 2, "steps {min}..{max}");
    }

    #[test]
    fn deeper_fifos_monotonically_reduce_stalls() {
        let rows = run_fifo_depth(true);
        for pair in rows.windows(2) {
            assert!(pair[1].stalls_shuffled <= pair[0].stalls_shuffled);
            assert!(pair[1].stalls_naive <= pair[0].stalls_naive);
        }
        // Shuffling never stalls more than the naive order.
        for r in &rows {
            assert!(r.stalls_shuffled <= r.stalls_naive, "{r:?}");
        }
    }

    #[test]
    fn wa_balancing_wins_network_wide() {
        let mut cache = StatsCache::new();
        let rows = run_balance_networks(true, &mut cache);
        for r in &rows {
            assert!(r.cycles_wa <= r.cycles_none, "{}", r.network);
            assert!(r.cycles_wa <= r.cycles_w, "{}", r.network);
        }
    }
}
