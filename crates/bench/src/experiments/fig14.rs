//! Figures 14 & 16: Ristretto vs Laconic — performance and energy at equal
//! compute area and buffer capacity (§V-C).
//!
//! Paper anchors: average speedups 3.58× / 4.18× / 6.12× / 5.69× at
//! 8b/4b/2b/mixed (growing as precision narrows), and much lower buffer/
//! DRAM energy because Laconic moves dense tensors.

use crate::cache::StatsCache;
use crate::{area_norm_speedup, benchmark_networks, benchmark_policies, table, SEED};
use baselines::laconic::Laconic;
use baselines::report::Backend;
use rayon::prelude::*;
use ristretto_sim::analytic::RistrettoSim;
use ristretto_sim::config::RistrettoConfig;
use serde::{Deserialize, Serialize};

/// One (network, precision) comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Network name.
    pub network: String,
    /// Precision label.
    pub precision: String,
    /// Area-normalized speedup of Ristretto over Laconic.
    pub speedup: f64,
    /// Ristretto energy relative to Laconic.
    pub energy_ratio: f64,
}

/// Runs the comparison: Ristretto with 32 tiles × 16 multipliers vs a 6×8
/// Laconic mesh, same buffers.
pub fn run(quick: bool, cache: &mut StatsCache) -> Vec<Row> {
    let r_cfg = RistrettoConfig::half_width();
    let sim = RistrettoSim::new(r_cfg);
    let r_area = Backend::area_mm2(&sim);
    let lac = Laconic::paper_default();
    let lac_area = lac.area_mm2();

    // Independent (network, precision) cells: prefill, then fan out (see
    // fig12 for the pattern); order-preserving collect keeps rows identical
    // to the sequential loops.
    let items: Vec<_> = benchmark_networks(quick)
        .iter()
        .flat_map(|&net| benchmark_policies().into_iter().map(move |p| (net, p)))
        .collect();
    cache.prefill(
        &items
            .iter()
            .map(|&(net, p)| (net, p, 2))
            .collect::<Vec<_>>(),
        SEED,
    );
    let cache = &*cache;
    items
        .into_par_iter()
        .map(|(net, policy)| {
            let stats = cache.peek(net, policy, 2);
            let r = sim.simulate_network(stats);
            let l = lac.simulate_network(stats);
            Row {
                network: net.name().to_string(),
                precision: policy.label(),
                speedup: area_norm_speedup(r.total_cycles(), r_area, l.total_cycles(), lac_area),
                energy_ratio: r.total_energy().relative_to(&l.total_energy()),
            }
        })
        .collect()
}

/// Mean speedup and energy ratio at one precision.
pub fn averages(rows: &[Row], precision: &str) -> (f64, f64) {
    let sel: Vec<&Row> = rows.iter().filter(|r| r.precision == precision).collect();
    let n = sel.len().max(1) as f64;
    (
        sel.iter().map(|r| r.speedup).sum::<f64>() / n,
        sel.iter().map(|r| r.energy_ratio).sum::<f64>() / n,
    )
}

/// Renders Fig 14 + Fig 16.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "network".to_string(),
        "precision".to_string(),
        "speedup".to_string(),
        "energy vs Laconic".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            r.network.clone(),
            r.precision.clone(),
            table::speedup(r.speedup),
            table::pct(r.energy_ratio),
        ]);
    }
    let mut s = table::render(
        "Fig 14/16: Ristretto vs Laconic (area-normalized perf; energy ratio)",
        &t,
    );
    for (label, paper) in [
        ("8b", 3.58),
        ("4b", 4.18),
        ("2b", 6.12),
        ("mixed 2/4b", 5.69),
    ] {
        let (sp, e) = averages(rows, label);
        s.push_str(&format!(
            "{label}: avg speedup {} (paper {paper}x), energy {}\n",
            table::speedup(sp),
            table::pct(e)
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ristretto_beats_laconic_more_at_low_precision() {
        let mut cache = StatsCache::new();
        let rows = run(true, &mut cache);
        for r in &rows {
            assert!(
                r.speedup > 1.0,
                "{} {} speedup {}",
                r.network,
                r.precision,
                r.speedup
            );
            assert!(
                r.energy_ratio < 1.0,
                "{} {} energy {}",
                r.network,
                r.precision,
                r.energy_ratio
            );
        }
        // Paper: the speedup grows as the bit-width narrows.
        let (s8, _) = averages(&rows, "8b");
        let (s2, _) = averages(&rows, "2b");
        assert!(s2 > s8, "2b speedup {s2} should exceed 8b {s8}");
    }
}
