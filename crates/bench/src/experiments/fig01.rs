//! Figure 1: average value sparsity of weights and activations for the
//! five ImageNet networks under 8/6/4/2-bit uniform quantization (no
//! pruning).
//!
//! Paper anchors: at 2-bit the averages are 47.43% (weights) and 75.25%
//! (activations); sparsity grows monotonically as the bit-width shrinks.

use crate::{table, SEED};
use qnn::models::NetworkId;
use qnn::quant::BitWidth;
use qnn::sparsity::value_density;
use qnn::workload::{network_flavor, ActivationProfile, WeightProfile, WorkloadGen};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One sparsity measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Network name.
    pub network: String,
    /// Quantization bit-width.
    pub bits: u8,
    /// Measured weight sparsity (fraction of zeros).
    pub weight_sparsity: f64,
    /// Measured activation sparsity.
    pub activation_sparsity: f64,
}

/// Bit-widths swept (Figure 1's x-axis).
pub const WIDTHS: [BitWidth; 4] = [BitWidth::W8, BitWidth::W6, BitWidth::W4, BitWidth::W2];

/// Runs the sparsity study.
pub fn run(quick: bool) -> Vec<Row> {
    let samples = if quick { 20_000 } else { 200_000 };
    // Each (network, width) measurement owns a generator seeded purely by
    // its key, so the points are independent; fan out over all of them
    // (order-preserving collect keeps the rows in nested-loop order).
    let items: Vec<(NetworkId, BitWidth)> = NetworkId::FIG1
        .iter()
        .flat_map(|&net| WIDTHS.iter().map(move |&bits| (net, bits)))
        .collect();
    items
        .into_par_iter()
        .map(|(net, bits)| {
            let (shift, clip, _) = network_flavor(net);
            let mut gen = WorkloadGen::new(SEED ^ (net as u64) << 8 ^ bits.bits() as u64);
            // Figure 1 is explicitly *without pruning*.
            let wp = WeightProfile {
                bits,
                prune_sparsity: 0.0,
                clip_scale: clip,
            };
            let ap = ActivationProfile {
                bits,
                relu_shift: shift,
            };
            let w = gen.weight_values(samples, &wp);
            let a = gen.activation_values(samples, &ap);
            Row {
                network: net.name().to_string(),
                bits: bits.bits(),
                weight_sparsity: 1.0 - value_density(&w),
                activation_sparsity: 1.0 - value_density(&a),
            }
        })
        .collect()
}

/// Average sparsity across networks at one width.
pub fn averages(rows: &[Row], bits: u8) -> (f64, f64) {
    let sel: Vec<&Row> = rows.iter().filter(|r| r.bits == bits).collect();
    if sel.is_empty() {
        return (0.0, 0.0);
    }
    let n = sel.len() as f64;
    (
        sel.iter().map(|r| r.weight_sparsity).sum::<f64>() / n,
        sel.iter().map(|r| r.activation_sparsity).sum::<f64>() / n,
    )
}

/// Renders the result table.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "network".to_string(),
        "bits".to_string(),
        "weight sparsity".to_string(),
        "act sparsity".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            r.network.clone(),
            format!("{}b", r.bits),
            table::pct(r.weight_sparsity),
            table::pct(r.activation_sparsity),
        ]);
    }
    let (w2, a2) = averages(rows, 2);
    let mut s = table::render(
        "Fig 1: value sparsity vs quantization bit-width (unpruned)",
        &t,
    );
    s.push_str(&format!(
        "2-bit averages: weights {} (paper 47.43%), activations {} (paper 75.25%)\n",
        table::pct(w2),
        table::pct(a2)
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_monotone_and_2bit_near_paper() {
        let rows = run(true);
        assert_eq!(rows.len(), 5 * 4);
        for net in rows
            .iter()
            .map(|r| r.network.clone())
            .collect::<std::collections::HashSet<_>>()
        {
            let mut per_net: Vec<&Row> = rows.iter().filter(|r| r.network == net).collect();
            per_net.sort_by_key(|r| std::cmp::Reverse(r.bits));
            for pair in per_net.windows(2) {
                assert!(
                    pair[1].weight_sparsity >= pair[0].weight_sparsity - 0.02,
                    "{net}: weight sparsity not monotone"
                );
                assert!(
                    pair[1].activation_sparsity >= pair[0].activation_sparsity - 0.02,
                    "{net}: activation sparsity not monotone"
                );
            }
        }
        let (w2, a2) = averages(&rows, 2);
        assert!(
            (0.37..0.60).contains(&w2),
            "2b weight avg {w2} (paper 0.4743)"
        );
        assert!((0.65..0.85).contains(&a2), "2b act avg {a2} (paper 0.7525)");
    }

    #[test]
    fn render_mentions_paper_anchor() {
        let rows = run(true);
        let s = render(&rows);
        assert!(s.contains("47.43%"));
        assert!(s.contains("AlexNet"));
    }
}
