//! Table VI: area breakdown of the single-core Ristretto accelerator.

use crate::table;
use hwmodel::ComponentLib;
use ristretto_sim::area::AreaBreakdown;
use ristretto_sim::config::RistrettoConfig;
use serde::{Deserialize, Serialize};

/// One area row: measured vs the paper's value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Block name.
    pub block: String,
    /// Measured area (mm²).
    pub measured: f64,
    /// Paper's Table VI value (mm²).
    pub paper: f64,
}

/// Runs the area assembly for the paper's default configuration.
pub fn run() -> Vec<Row> {
    let a = AreaBreakdown::from_config(&RistrettoConfig::paper_default(), &ComponentLib::n28());
    let mk = |block: &str, measured: f64, paper: f64| Row {
        block: block.to_string(),
        measured,
        paper,
    };
    vec![
        mk("Atomizer", a.atomizer, 0.001),
        mk("Atomputer", a.atomputer, 0.070),
        mk("Atomulator", a.atomulator, 0.128),
        mk("Accu Buffer", a.accu_buffer, 0.496),
        mk("Input buffer", a.input_buffer, 0.118),
        mk("Weight buffer", a.weight_buffer, 0.302),
        mk("Output buffer", a.output_buffer, 0.154),
        mk("Post-Processing Unit", a.ppu, 0.023),
        mk("Others", a.others, 0.004),
        mk("Total", a.total(), 1.296),
    ]
}

/// Renders Table VI.
pub fn render(rows: &[Row]) -> String {
    let mut t = vec![vec![
        "block".to_string(),
        "measured mm2".to_string(),
        "paper mm2".to_string(),
        "delta".to_string(),
    ]];
    for r in rows {
        t.push(vec![
            r.block.clone(),
            format!("{:.4}", r.measured),
            format!("{:.3}", r.paper),
            format!("{:+.0}%", (r.measured / r.paper - 1.0) * 100.0),
        ]);
    }
    table::render(
        "Table VI: Ristretto area breakdown (28nm, 32 tiles x 32 2b multipliers)",
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_blocks_present_and_total_consistent() {
        let rows = run();
        assert_eq!(rows.len(), 10);
        let total = rows.last().unwrap();
        let sum: f64 = rows[..9].iter().map(|r| r.measured).sum();
        assert!((total.measured - sum).abs() < 1e-9);
        // Total within 25% of the paper's 1.296 mm².
        assert!(
            (total.measured / 1.296 - 1.0).abs() < 0.25,
            "{}",
            total.measured
        );
    }
}
