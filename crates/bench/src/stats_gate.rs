//! The stats-regression gate: serializing observability snapshots and
//! diffing them against a checked-in golden file.
//!
//! A metrics file is `{"counters": {name: value, ...}}` with the counter
//! names sorted — the same schema at every thread count, with zero-valued
//! counters included, so two runs of the same workload produce
//! byte-identical files (see `OBSERVABILITY.md`).
//!
//! A golden file adds a tolerance section:
//!
//! ```json
//! {
//!   "counters": { "atomizer.cycles": 123, ... },
//!   "tolerance": {
//!     "default_rel": 0.0,
//!     "per_counter_rel": { "energy.*": 1e-6 }
//!   }
//! }
//! ```
//!
//! `per_counter_rel` keys are exact counter names or prefix wildcards
//! ending in `*` (longest matching prefix wins). Pure event counts get the
//! zero default; the energy attribution counters carry a small relative
//! tolerance because their femtojoule values pass through `libm` functions
//! whose last-bit rounding may differ across platforms.

use serde_json::{Number, Value};

/// Relative tolerances for the golden comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Tolerance {
    /// Tolerance applied when no per-counter rule matches.
    pub default_rel: f64,
    /// Per-counter overrides: exact names or `prefix*` wildcards.
    pub per_counter_rel: Vec<(String, f64)>,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            default_rel: 0.0,
            per_counter_rel: vec![("energy.*".to_string(), 1e-6)],
        }
    }
}

impl Tolerance {
    /// The tolerance for `name`: exact match, then the longest matching
    /// `prefix*` wildcard, then the default.
    pub fn for_counter(&self, name: &str) -> f64 {
        if let Some((_, t)) = self.per_counter_rel.iter().find(|(k, _)| k == name) {
            return *t;
        }
        self.per_counter_rel
            .iter()
            .filter(|(k, _)| k.ends_with('*') && name.starts_with(&k[..k.len() - 1]))
            .max_by_key(|(k, _)| k.len())
            .map(|(_, t)| *t)
            .unwrap_or(self.default_rel)
    }
}

/// A parsed golden stats file.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenStats {
    /// Expected counter values, in file order.
    pub counters: Vec<(String, u64)>,
    /// Comparison tolerances.
    pub tolerance: Tolerance,
}

/// One counter that moved outside its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Counter name.
    pub name: String,
    /// Golden value (`None`: counter exists only in the live run).
    pub expected: Option<u64>,
    /// Live value (`None`: counter exists only in the golden file).
    pub actual: Option<u64>,
    /// Observed relative deviation.
    pub rel: f64,
    /// Tolerance that was applied.
    pub tol: f64,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.expected, self.actual) {
            (Some(e), Some(a)) => write!(
                f,
                "{}: expected {e}, got {a} (rel {:.3e} > tol {:.1e})",
                self.name, self.rel, self.tol
            ),
            (Some(e), None) => write!(
                f,
                "{}: expected {e}, but the counter no longer exists",
                self.name
            ),
            (None, Some(a)) => write!(
                f,
                "{}: live value {a} has no golden entry (regenerate with --update)",
                self.name
            ),
            (None, None) => write!(f, "{}: (internal) empty drift", self.name),
        }
    }
}

fn counters_value(snap: &obs::Snapshot) -> Value {
    // Snapshot::entries() is sorted by name and includes zeros, so the map
    // (insertion-ordered in the vendored serde) comes out sorted.
    let mut counters = serde_json::Map::new();
    for (name, value) in snap.entries() {
        counters.insert(name.to_string(), Value::Number(Number::PosInt(value)));
    }
    Value::Object(counters)
}

/// Renders a snapshot as the stable metrics JSON (trailing newline
/// included).
///
/// # Errors
/// Names the artifact if the snapshot cannot be serialized (part of the
/// no-panic policy of the CLI surface).
pub fn metrics_json(snap: &obs::Snapshot) -> Result<String, String> {
    let mut root = serde_json::Map::new();
    root.insert("counters".to_string(), counters_value(snap));
    let mut s = serde_json::to_string_pretty(&Value::Object(root))
        .map_err(|e| format!("serializing metrics snapshot: {e}"))?;
    s.push('\n');
    Ok(s)
}

/// Renders a snapshot as a golden file, carrying over the tolerance
/// section of `prior` (or the default tolerances when starting fresh).
///
/// # Errors
/// Names the artifact if the golden document cannot be serialized.
pub fn golden_json(snap: &obs::Snapshot, prior: Option<&GoldenStats>) -> Result<String, String> {
    let tol = prior.map(|g| g.tolerance.clone()).unwrap_or_default();
    let mut tol_map = serde_json::Map::new();
    tol_map.insert(
        "default_rel".to_string(),
        Value::Number(Number::Float(tol.default_rel)),
    );
    let mut per = serde_json::Map::new();
    for (k, v) in &tol.per_counter_rel {
        per.insert(k.clone(), Value::Number(Number::Float(*v)));
    }
    tol_map.insert("per_counter_rel".to_string(), Value::Object(per));

    let mut root = serde_json::Map::new();
    root.insert("counters".to_string(), counters_value(snap));
    root.insert("tolerance".to_string(), Value::Object(tol_map));
    let mut s = serde_json::to_string_pretty(&Value::Object(root))
        .map_err(|e| format!("serializing golden stats: {e}"))?;
    s.push('\n');
    Ok(s)
}

/// Parses a golden stats file.
///
/// # Errors
/// Returns a description of the first malformed field.
pub fn parse_golden(text: &str) -> Result<GoldenStats, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let counters_obj = root
        .get("counters")
        .and_then(Value::as_object)
        .ok_or("golden file has no `counters` object")?;
    let mut counters = Vec::with_capacity(counters_obj.len());
    for (name, v) in counters_obj {
        let value = v
            .as_u64()
            .ok_or_else(|| format!("counter `{name}` is not a non-negative integer"))?;
        counters.push((name.clone(), value));
    }

    let mut tolerance = Tolerance {
        default_rel: 0.0,
        per_counter_rel: Vec::new(),
    };
    if let Some(tol) = root.get("tolerance") {
        if let Some(d) = tol.get("default_rel") {
            tolerance.default_rel = d.as_f64().ok_or("tolerance.default_rel is not a number")?;
        }
        if let Some(per) = tol.get("per_counter_rel") {
            let per = per
                .as_object()
                .ok_or("tolerance.per_counter_rel is not an object")?;
            for (k, v) in per {
                let t = v
                    .as_f64()
                    .ok_or_else(|| format!("tolerance for `{k}` is not a number"))?;
                tolerance.per_counter_rel.push((k.clone(), t));
            }
        }
    }
    Ok(GoldenStats {
        counters,
        tolerance,
    })
}

fn rel_diff(expected: u64, actual: u64) -> f64 {
    if expected == actual {
        0.0
    } else if expected == 0 {
        f64::INFINITY
    } else {
        (actual as f64 - expected as f64).abs() / expected as f64
    }
}

/// Diffs a live snapshot against a golden file. Returns every counter
/// outside tolerance, in name order; empty means the gate passes.
pub fn compare(snap: &obs::Snapshot, golden: &GoldenStats) -> Vec<Drift> {
    let live = snap.entries();
    let mut drifts = Vec::new();
    for (name, expected) in &golden.counters {
        let tol = golden.tolerance.for_counter(name);
        match live.iter().find(|(n, _)| n == name) {
            Some(&(_, actual)) => {
                let rel = rel_diff(*expected, actual);
                if rel > tol {
                    drifts.push(Drift {
                        name: name.clone(),
                        expected: Some(*expected),
                        actual: Some(actual),
                        rel,
                        tol,
                    });
                }
            }
            None => drifts.push(Drift {
                name: name.clone(),
                expected: Some(*expected),
                actual: None,
                rel: f64::INFINITY,
                tol,
            }),
        }
    }
    // A counter the golden file has never seen is also drift: it means the
    // schema grew and the golden must be regenerated deliberately.
    for (name, actual) in live {
        if !golden.counters.iter().any(|(n, _)| n == name) {
            drifts.push(Drift {
                name: name.to_string(),
                expected: None,
                actual: Some(actual),
                rel: f64::INFINITY,
                tol: golden.tolerance.for_counter(name),
            });
        }
    }
    drifts.sort_by(|a, b| a.name.cmp(&b.name));
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(event: obs::Event, value: u64) -> obs::Snapshot {
        let reg = obs::Registry::new();
        reg.record(event, value);
        reg.snapshot()
    }

    #[test]
    fn metrics_json_is_sorted_and_complete() {
        let s = metrics_json(&snap_with(obs::Event::IntersectCalls, 7)).unwrap();
        let parsed: Value = serde_json::from_str(&s).unwrap();
        let counters = parsed.get("counters").unwrap().as_object().unwrap();
        assert_eq!(counters.len(), obs::Event::COUNT);
        let keys: Vec<&String> = counters.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(parsed["counters"]["intersect.calls"].as_u64(), Some(7));
        assert_eq!(parsed["counters"]["atomizer.cycles"].as_u64(), Some(0));
    }

    #[test]
    fn golden_roundtrip_preserves_tolerances() {
        let snap = snap_with(obs::Event::AtomizerCycles, 10);
        let text = golden_json(&snap, None).unwrap();
        let golden = parse_golden(&text).unwrap();
        assert_eq!(golden.tolerance.default_rel, 0.0);
        assert_eq!(golden.tolerance.for_counter("energy.dram_fj"), 1e-6);
        assert_eq!(golden.tolerance.for_counter("atomizer.cycles"), 0.0);
        assert!(compare(&snap, &golden).is_empty());

        // Regenerating from a prior golden keeps a customized tolerance.
        let mut custom = golden.clone();
        custom
            .tolerance
            .per_counter_rel
            .push(("atomizer.cycles".to_string(), 0.5));
        let regen = parse_golden(&golden_json(&snap, Some(&custom)).unwrap()).unwrap();
        assert_eq!(regen.tolerance.for_counter("atomizer.cycles"), 0.5);
    }

    #[test]
    fn wildcard_prefers_longest_prefix_and_exact_match() {
        let tol = Tolerance {
            default_rel: 0.1,
            per_counter_rel: vec![
                ("energy.*".to_string(), 1e-6),
                ("energy.dram_fj".to_string(), 1e-3),
                ("energy.atom*".to_string(), 1e-4),
            ],
        };
        assert_eq!(tol.for_counter("energy.dram_fj"), 1e-3); // exact wins
        assert_eq!(tol.for_counter("energy.atom_mult_fj"), 1e-4); // longest prefix
        assert_eq!(tol.for_counter("energy.leakage_fj"), 1e-6); // short prefix
        assert_eq!(tol.for_counter("intersect.calls"), 0.1); // default
    }

    #[test]
    fn compare_flags_out_of_tolerance_counters() {
        let golden =
            parse_golden(&golden_json(&snap_with(obs::Event::IntersectCalls, 100), None).unwrap())
                .unwrap();
        let drift = compare(&snap_with(obs::Event::IntersectCalls, 101), &golden);
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].name, "intersect.calls");
        assert_eq!(drift[0].expected, Some(100));
        assert_eq!(drift[0].actual, Some(101));
        assert!(drift[0].rel > 0.009 && drift[0].rel < 0.011);
        // An exact match passes.
        assert!(compare(&snap_with(obs::Event::IntersectCalls, 100), &golden).is_empty());
    }

    #[test]
    fn tolerance_absorbs_small_energy_drift() {
        let golden = parse_golden(
            &golden_json(&snap_with(obs::Event::EnergyDramFj, 1_000_000_000), None).unwrap(),
        )
        .unwrap();
        // One part in 10^9 is inside the 1e-6 energy tolerance...
        assert!(compare(&snap_with(obs::Event::EnergyDramFj, 1_000_000_001), &golden).is_empty());
        // ...one part in 10^3 is not.
        let drift = compare(&snap_with(obs::Event::EnergyDramFj, 1_001_000_000), &golden);
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].tol, 1e-6);
    }

    #[test]
    fn missing_and_unknown_counters_are_drift() {
        let snap = snap_with(obs::Event::IntersectCalls, 1);
        let mut golden = parse_golden(&golden_json(&snap, None).unwrap()).unwrap();
        // Remove one counter and invent another.
        golden.counters.retain(|(n, _)| n != "intersect.calls");
        golden.counters.push(("intersect.retired".to_string(), 5));
        let drift = compare(&snap, &golden);
        let names: Vec<&str> = drift.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["intersect.calls", "intersect.retired"]);
        assert!(drift[0].expected.is_none()); // live-only counter
        assert!(drift[1].actual.is_none()); // golden-only counter
                                            // Both render without panicking.
        for d in &drift {
            assert!(!d.to_string().is_empty());
        }
    }

    #[test]
    fn parse_rejects_malformed_goldens() {
        assert!(parse_golden("not json").is_err());
        assert!(parse_golden("{}").is_err());
        assert!(parse_golden(r#"{"counters": {"a": -1}}"#).is_err());
        assert!(parse_golden(r#"{"counters": {"a": 1.5}}"#).is_err());
        assert!(parse_golden(r#"{"counters": {}, "tolerance": {"default_rel": "x"}}"#).is_err());
    }
}
