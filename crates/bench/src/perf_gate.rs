//! CI perf-regression gate over recorded bench trajectories
//! (`repro perf-check`).
//!
//! Compares a freshly measured [`BenchReport`] against a checked-in
//! baseline (`BENCH_*.json`) on a small set of *key* series — the CSC
//! sparse-conv and steady-state stream medians, each network's cache-hit
//! load time, and each fleet (strategy, cores) pass — and fails only when
//! a live number exceeds the
//! baseline by a generous ratio. CI containers are noisy, so the gate is
//! deliberately coarse: it exists to catch order-of-magnitude
//! regressions (an accidentally quadratic hot path, a cache load that
//! silently recompiles), not single-digit-percent drift. Absolute
//! slowness against the recorded trajectory is the signal; run-to-run
//! jitter is not.

use crate::microbench::BenchReport;
use serde::{Deserialize, Serialize};

/// Default live/baseline ratio above which a key series fails the gate.
pub const DEFAULT_TOLERANCE: f64 = 4.0;

/// Micro-suite medians the gate watches.
pub const KEY_MICRO: [&str; 2] = ["csc_sparse_conv", "csc_streams_steady"];

/// One gated series' verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesCheck {
    /// Series name (`micro:<bench>` or `cache_load:<network>`).
    pub name: String,
    /// Baseline value (ns for micro medians, ms for cache loads).
    pub baseline: f64,
    /// Live value in the same unit.
    pub live: f64,
    /// `live / baseline`.
    pub ratio: f64,
    /// Whether the ratio stayed at or under the tolerance.
    pub pass: bool,
}

/// Gates a live report against a baseline.
///
/// # Errors
/// Returns a description when the reports cannot be compared at all:
/// schema mismatch, or a key series present in the baseline but missing
/// from the live report (a vanished series is a harness regression, not
/// noise).
pub fn compare(
    live: &BenchReport,
    baseline: &BenchReport,
    tolerance: f64,
) -> Result<Vec<SeriesCheck>, String> {
    if live.schema != baseline.schema {
        return Err(format!(
            "schema mismatch: live `{}` vs baseline `{}` — regenerate the baseline",
            live.schema, baseline.schema
        ));
    }
    let mut checks = Vec::new();
    let mut check = |name: String, baseline: f64, live: f64| {
        let ratio = if baseline > 0.0 {
            live / baseline
        } else {
            f64::INFINITY
        };
        checks.push(SeriesCheck {
            name,
            baseline,
            live,
            ratio,
            pass: ratio <= tolerance,
        });
    };
    for key in KEY_MICRO {
        let base = baseline
            .micro
            .iter()
            .find(|r| r.name == key)
            .ok_or_else(|| format!("baseline has no micro row `{key}`"))?;
        let live_row = live
            .micro
            .iter()
            .find(|r| r.name == key)
            .ok_or_else(|| format!("live report has no micro row `{key}`"))?;
        check(
            format!("micro:{key}"),
            base.median_ns as f64,
            live_row.median_ns as f64,
        );
    }
    for base in &baseline.cache {
        let live_row = live
            .cache
            .iter()
            .find(|r| r.network == base.network)
            .ok_or_else(|| format!("live report has no cache row for `{}`", base.network))?;
        check(
            format!("cache_load:{}", base.network),
            base.load_ms,
            live_row.load_ms,
        );
    }
    for base in &baseline.fleet {
        let live_row = live
            .fleet
            .iter()
            .find(|r| r.strategy == base.strategy && r.cores == base.cores)
            .ok_or_else(|| {
                format!(
                    "live report has no fleet row for `{}` at {} core(s)",
                    base.strategy, base.cores
                )
            })?;
        check(
            format!("fleet_run:{}x{}", base.strategy, base.cores),
            base.run_ms,
            live_row.run_ms,
        );
    }
    Ok(checks)
}

/// Renders the gate's verdict table for stderr/stdout.
#[must_use]
pub fn render(checks: &[SeriesCheck], tolerance: f64) -> String {
    let mut out = format!("perf gate (tolerance {tolerance:.1}x over baseline):\n");
    for c in checks {
        out.push_str(&format!(
            "  [{}] {:<28} baseline {:>12.1}  live {:>12.1}  ratio {:.2}x\n",
            if c.pass { "ok" } else { "FAIL" },
            c.name,
            c.baseline,
            c.live,
            c.ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microbench::{BatchRow, CacheRow, FleetRow, MicroRow, SCHEMA};

    fn report(steady_ns: u64, load_ms: f64) -> BenchReport {
        let micro = |name: &str, median_ns: u64| MicroRow {
            name: name.to_string(),
            iters_per_sample: 1,
            samples: 5,
            median_ns,
            min_ns: median_ns,
            mean_ns: median_ns,
        };
        BenchReport {
            schema: SCHEMA.to_string(),
            quick: true,
            micro: vec![
                micro("csc_sparse_conv", 1000),
                micro("csc_streams_steady", steady_ns),
            ],
            batch: vec![BatchRow {
                network: "AlexNet".to_string(),
                images: 2,
                compile_ms: 5.0,
                per_image_ms: 2.0,
            }],
            cache: vec![CacheRow {
                network: "AlexNet".to_string(),
                compile_ms: 5.0,
                load_ms,
                artifact_bytes: 4096,
            }],
            fleet: vec![FleetRow {
                strategy: "output-channel".to_string(),
                cores: 4,
                run_ms: 3.0,
            }],
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = report(500, 1.0);
        let live = report(900, 1.8);
        let checks = compare(&live, &baseline, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(checks.len(), 4);
        assert!(checks.iter().all(|c| c.pass));
        assert!(checks
            .iter()
            .any(|c| c.name == "fleet_run:output-channelx4"));
    }

    #[test]
    fn large_regressions_fail_only_the_offending_series() {
        let baseline = report(500, 1.0);
        let live = report(500 * 10, 1.0);
        let checks = compare(&live, &baseline, DEFAULT_TOLERANCE).unwrap();
        let failed: Vec<&str> = checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(failed, ["micro:csc_streams_steady"]);
        assert!(render(&checks, DEFAULT_TOLERANCE).contains("FAIL"));
    }

    #[test]
    fn schema_and_missing_series_are_structural_errors() {
        let baseline = report(500, 1.0);
        let mut live = report(500, 1.0);
        live.schema = "ristretto-bench/v1".to_string();
        assert!(compare(&live, &baseline, DEFAULT_TOLERANCE).is_err());

        let mut live = report(500, 1.0);
        live.cache.clear();
        assert!(compare(&live, &baseline, DEFAULT_TOLERANCE)
            .unwrap_err()
            .contains("AlexNet"));

        let mut live = report(500, 1.0);
        live.fleet.clear();
        assert!(compare(&live, &baseline, DEFAULT_TOLERANCE)
            .unwrap_err()
            .contains("fleet"));
    }
}
