//! # bench — the Ristretto evaluation harness
//!
//! One module per table/figure of the paper's evaluation (§V), each
//! producing structured rows plus a rendered text table. The `repro`
//! binary drives them (`repro all`, `repro fig12`, …); the Criterion
//! benches under `benches/` time the same runners.
//!
//! Every experiment is deterministic given the shared [`SEED`]. `quick`
//! mode trims the network list and sweep resolution so the whole suite
//! runs in seconds (used by tests and Criterion); full mode reproduces the
//! complete DNN benchmark.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod diffcheck;
pub mod experiments;
pub mod microbench;
pub mod perf_gate;
pub mod serve_cli;
pub mod stats_gate;
pub mod table;

/// The global experiment seed; change it to re-roll every synthetic model.
pub const SEED: u64 = 20220101;

use qnn::models::NetworkId;
use qnn::quant::BitWidth;
use qnn::workload::PrecisionPolicy;

/// The networks evaluated (paper §V-A2). Quick mode keeps three.
pub fn benchmark_networks(quick: bool) -> &'static [NetworkId] {
    if quick {
        &[
            NetworkId::AlexNet,
            NetworkId::GoogLeNet,
            NetworkId::ResNet18,
        ]
    } else {
        &NetworkId::ALL
    }
}

/// The precision policies of the evaluation: 8/4/2-bit uniform plus EdMIPS
/// mixed 2/4-bit.
pub fn benchmark_policies() -> [PrecisionPolicy; 4] {
    [
        PrecisionPolicy::Uniform(BitWidth::W8),
        PrecisionPolicy::Uniform(BitWidth::W4),
        PrecisionPolicy::Uniform(BitWidth::W2),
        PrecisionPolicy::Mixed24,
    ]
}

/// Area-normalized speedup of X over a baseline:
/// `(cycles_base / cycles_x) · (area_base / area_x)`.
pub fn area_norm_speedup(cycles_x: u64, area_x: f64, cycles_base: u64, area_base: f64) -> f64 {
    if cycles_x == 0 || area_x == 0.0 {
        return f64::INFINITY;
    }
    (cycles_base as f64 / cycles_x as f64) * (area_base / area_x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        assert!((area_norm_speedup(100, 1.0, 800, 0.5) - 4.0).abs() < 1e-12);
        assert!(area_norm_speedup(0, 1.0, 800, 0.5).is_infinite());
    }

    #[test]
    fn policy_and_network_lists() {
        assert_eq!(benchmark_networks(false).len(), 6);
        assert_eq!(benchmark_networks(true).len(), 3);
        assert_eq!(benchmark_policies().len(), 4);
    }
}
