//! Self-timed micro-benchmarks of the CSC hot path (`repro bench`).
//!
//! The Criterion benches under `benches/` remain the statistically rigorous
//! harness for local work; this module exists so a benchmark trajectory can
//! be *recorded* — `repro bench --json` emits a small, schema-stable JSON
//! report (`ristretto-bench/v3`) suitable for checking in next to the code
//! it measures (see `BENCH_8.json`). Timing is deliberately simple and
//! self-contained: per benchmark, one warm-up call, an iteration count
//! calibrated so a sample lasts at least a millisecond, then a fixed number
//! of samples reduced to median/min/mean nanoseconds per iteration. Median
//! is the headline number — it is robust against scheduler noise on small
//! shared containers.
//!
//! Four suites run:
//!
//! * **micro** — the kernel-level workload mirrored from
//!   `benches/csc_kernels.rs` (a 16→32-channel 3×3 layer at 28×28, seed 7):
//!   the dense reference convolution, the full CSC convolution, and the
//!   precompiled stream intersection under the value-major reference
//!   kernel, the planned kernel with a cold scratch arena, and the planned
//!   kernel in its steady state (persistent arena, the `Session::run`
//!   regime).
//! * **batch** — the compile-once/run-many engine path per quick-suite
//!   network: compile wall time once, then per-image wall time over a
//!   served batch.
//! * **cache** — the cold-start story per quick-suite network: median
//!   in-memory compile wall time versus median verified artifact load
//!   (`ModelCache::load`, including every checksum and cross-section
//!   check), plus the artifact size on disk.
//! * **fleet** — the sharded fleet simulator's wall time per
//!   (strategy, cores) point on the first quick-suite network: the
//!   `repro scaling` hot path, gated so sharded execution cannot silently
//!   regress to a recompile-per-run or quadratic-assembly regime.

use crate::{benchmark_networks, table, SEED};
use atomstream::conv_csc::{
    conv2d_csc, conv2d_csc_streams_reference, conv2d_csc_streams_with, CscConfig, WeightStreamSet,
};
use atomstream::kernel::CscScratch;
use qnn::conv::{conv2d, ConvGeometry};
use qnn::mini::MiniNetwork;
use qnn::quant::BitWidth;
use qnn::workload::{ActivationProfile, SyntheticLayer, WeightProfile, WorkloadGen};
use ristretto_sim::config::{FleetConfig, RistrettoConfig};
use ristretto_sim::engine::{compile, NetworkModel, Session};
use ristretto_sim::fleet::{Fleet, ShardStrategy};
use ristretto_sim::modelcache::{CacheKey, ModelCache};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Schema tag stamped into every report; bump on breaking shape changes.
/// v2 added the `cache` suite (cold compile vs. cache-hit load); v3 added
/// the `fleet` suite (sharded fleet run wall times).
pub const SCHEMA: &str = "ristretto-bench/v3";

/// One micro-benchmark's timing summary (nanoseconds per iteration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroRow {
    /// Benchmark name.
    pub name: String,
    /// Iterations folded into each timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples taken.
    pub samples: u64,
    /// Median nanoseconds per iteration — the headline number.
    pub median_ns: u64,
    /// Fastest observed nanoseconds per iteration.
    pub min_ns: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: u64,
}

/// One network's compile-once/run-many timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRow {
    /// Network name.
    pub network: String,
    /// Images served through one session.
    pub images: usize,
    /// One-time compile wall time, milliseconds.
    pub compile_ms: f64,
    /// Steady per-image wall time, milliseconds (compile excluded).
    pub per_image_ms: f64,
}

/// One network's cold-start accounting: in-memory compile versus a
/// verified load of its persisted artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheRow {
    /// Network name.
    pub network: String,
    /// Median in-memory compile wall time, milliseconds.
    pub compile_ms: f64,
    /// Median verified artifact load wall time, milliseconds (full
    /// checksum + cross-section + content-address verification).
    pub load_ms: f64,
    /// Artifact size on disk, bytes.
    pub artifact_bytes: u64,
}

/// One fleet-scaling wall-time measurement: a full [`Fleet::run`] pass
/// (one input per core for batch sharding, one input total for
/// output-channel sharding) on the first quick-suite network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRow {
    /// Sharding strategy label (`batch`, `output-channel`).
    pub strategy: String,
    /// Fleet core count.
    pub cores: usize,
    /// Median wall time of one fleet pass, milliseconds.
    pub run_ms: f64,
}

/// The full `repro bench` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Whether quick mode trimmed sample counts and the network list.
    pub quick: bool,
    /// Kernel-level micro-benchmarks.
    pub micro: Vec<MicroRow>,
    /// Engine compile-once/run-many timings.
    pub batch: Vec<BatchRow>,
    /// Cold compile vs. cache-hit load timings.
    pub cache: Vec<CacheRow>,
    /// Sharded fleet pass timings.
    pub fleet: Vec<FleetRow>,
}

/// Times `f`, returning per-iteration statistics. One warm-up call, then
/// the iteration count doubles until a sample crosses `min_sample`, then
/// `samples` timed samples.
fn time_fn<F: FnMut()>(name: &str, quick: bool, mut f: F) -> MicroRow {
    let min_sample = Duration::from_millis(if quick { 1 } else { 5 });
    let samples = if quick { 5u64 } else { 15 };
    f(); // warm-up: touch caches, fault pages, trigger lazy init
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed() >= min_sample || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter_ns: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            (t0.elapsed().as_nanos() / u128::from(iters)) as u64
        })
        .collect();
    per_iter_ns.sort_unstable();
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let min_ns = per_iter_ns[0];
    let mean_ns = per_iter_ns.iter().sum::<u64>() / samples;
    MicroRow {
        name: name.to_string(),
        iters_per_sample: iters,
        samples,
        median_ns,
        min_ns,
        mean_ns,
    }
}

/// The kernel-level workload, mirrored from `benches/csc_kernels.rs` so the
/// recorded trajectory and the Criterion numbers describe the same layer.
fn kernel_workload() -> SyntheticLayer {
    let layer = qnn::layers::ConvLayer::conv("bench", 16, 32, 3, 1, 1, 28, 28)
        .expect("benchmark layer shape is valid");
    let mut gen = WorkloadGen::new(7);
    SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W8),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    )
}

/// Runs the micro suite.
fn run_micro(quick: bool) -> Vec<MicroRow> {
    let w = kernel_workload();
    let geom = ConvGeometry::unit_stride(1);
    let cfg = CscConfig::default();
    let weights = WeightStreamSet::compile(&w.kernels, BitWidth::W8, cfg.atom_bits)
        .expect("benchmark kernels compile");

    let mut rows = Vec::new();
    rows.push(time_fn("dense_reference_conv", quick, || {
        std::hint::black_box(conv2d(&w.fmap, &w.kernels, geom).expect("dense conv"));
    }));
    rows.push(time_fn("csc_sparse_conv", quick, || {
        std::hint::black_box(
            conv2d_csc(&w.fmap, &w.kernels, geom, BitWidth::W8, BitWidth::W8, &cfg)
                .expect("csc conv"),
        );
    }));
    rows.push(time_fn("csc_streams_reference", quick, || {
        std::hint::black_box(
            conv2d_csc_streams_reference(&w.fmap, &weights, geom, BitWidth::W8, &cfg)
                .expect("reference streams"),
        );
    }));
    rows.push(time_fn("csc_streams_cold", quick, || {
        let scratch = CscScratch::new();
        std::hint::black_box(
            conv2d_csc_streams_with(&w.fmap, &weights, geom, BitWidth::W8, &cfg, &scratch)
                .expect("cold streams"),
        );
    }));
    let scratch = CscScratch::new();
    rows.push(time_fn("csc_streams_steady", quick, || {
        std::hint::black_box(
            conv2d_csc_streams_with(&w.fmap, &weights, geom, BitWidth::W8, &cfg, &scratch)
                .expect("steady streams"),
        );
    }));
    rows
}

/// Runs the batch suite: per network, timed compile plus a served batch
/// through one session (its persistent scratch arenas warm after the first
/// image).
fn run_batch(quick: bool) -> Vec<BatchRow> {
    let images = if quick { 2 } else { 4 };
    let cfg = RistrettoConfig::paper_default();
    let mut rows = Vec::new();
    for (idx, &net) in benchmark_networks(quick).iter().enumerate() {
        let mini = MiniNetwork::try_new(net).expect("builtin mini network");
        let mut gen = WorkloadGen::new(SEED ^ ((idx as u64 + 1) << 8));
        let model =
            NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4))
                .expect("mini network materializes");
        let t0 = Instant::now();
        let compiled = compile(&model, &cfg).expect("mini network compiles");
        let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
        let session = Session::new(compiled.clone());
        let (c, h, w) = compiled.input();
        let inputs: Vec<_> = (0..images)
            .map(|image| {
                let mut igen =
                    WorkloadGen::new(SEED ^ ((idx as u64 + 1) << 8) ^ (image as u64 + 1));
                igen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
                    .expect("input materializes")
            })
            .collect();
        let t1 = Instant::now();
        for input in &inputs {
            std::hint::black_box(session.run(input).expect("session inference"));
        }
        let per_image_ms = t1.elapsed().as_secs_f64() * 1e3 / images as f64;
        rows.push(BatchRow {
            network: net.name().to_string(),
            images,
            compile_ms,
            per_image_ms,
        });
    }
    rows
}

/// Runs the cache suite: per network, median in-memory compile wall time
/// versus median verified artifact load from a scratch cache directory
/// (removed afterwards — the suite measures the mechanism, it does not
/// leave state behind).
fn run_cache(quick: bool) -> Vec<CacheRow> {
    let samples = if quick { 5 } else { 9 };
    let dir = std::env::temp_dir().join(format!("ristretto_bench_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ModelCache::new(&dir);
    let cfg = RistrettoConfig::paper_default();
    let median_ms = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let mut rows = Vec::new();
    for (idx, &net) in benchmark_networks(quick).iter().enumerate() {
        let mini = MiniNetwork::try_new(net).expect("builtin mini network");
        let mut gen = WorkloadGen::new(SEED ^ ((idx as u64 + 1) << 8));
        let model =
            NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4))
                .expect("mini network materializes");

        let compile_samples: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(compile(&model, &cfg).expect("mini network compiles"));
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();

        // Populate the cache (one store), then time verified loads.
        std::hint::black_box(
            cache
                .compile_cached(&model, &cfg)
                .expect("mini network compiles"),
        );
        let path = dir.join(CacheKey::derive(&model, &cfg).file_name());
        let artifact_bytes = std::fs::metadata(&path).expect("artifact on disk").len();
        let load_samples: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(cache.load(&path).expect("artifact verifies"));
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();

        rows.push(CacheRow {
            network: net.name().to_string(),
            compile_ms: median_ms(compile_samples),
            load_ms: median_ms(load_samples),
            artifact_bytes,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

/// Runs the fleet suite: median wall time of one sharded fleet pass per
/// (strategy, cores) point on the first quick-suite network. Batch points
/// serve one input per core; output-channel points serve one input total.
fn run_fleet(quick: bool) -> Vec<FleetRow> {
    let samples = if quick { 3 } else { 7 };
    let mini = MiniNetwork::try_new(benchmark_networks(true)[0]).expect("builtin mini network");
    let mut gen = WorkloadGen::new(SEED ^ (1 << 8));
    let model = NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4))
        .expect("mini network materializes");
    let compiled =
        compile(&model, &RistrettoConfig::paper_default()).expect("mini network compiles");
    let (c, h, w) = compiled.input();
    let median_ms = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let mut rows = Vec::new();
    for (strategy, cores) in [
        (ShardStrategy::Batch, 4),
        (ShardStrategy::OutputChannel, 1),
        (ShardStrategy::OutputChannel, 4),
    ] {
        let fleet = Fleet::try_new(compiled.clone(), FleetConfig::new(cores, strategy))
            .expect("benchmark fleet configuration is valid");
        let images = if strategy == ShardStrategy::Batch {
            cores
        } else {
            1
        };
        let inputs: Vec<_> = (0..images)
            .map(|image| {
                let mut igen = WorkloadGen::new(SEED ^ (1 << 8) ^ (image as u64 + 1));
                igen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
                    .expect("input materializes")
            })
            .collect();
        std::hint::black_box(fleet.run(&inputs).expect("fleet warm-up"));
        let sample_ms: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(fleet.run(&inputs).expect("fleet pass"));
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        rows.push(FleetRow {
            strategy: strategy.to_string(),
            cores,
            run_ms: median_ms(sample_ms),
        });
    }
    rows
}

/// Runs all four suites and assembles the report.
pub fn run(quick: bool) -> BenchReport {
    BenchReport {
        schema: SCHEMA.to_string(),
        quick,
        micro: run_micro(quick),
        batch: run_batch(quick),
        cache: run_cache(quick),
        fleet: run_fleet(quick),
    }
}

/// Renders the report as text tables (wall times vary run to run, so this
/// output — unlike the experiment tables — is *not* expected to be
/// byte-stable across machines).
pub fn render(report: &BenchReport) -> String {
    let mut t = vec![vec![
        "benchmark".to_string(),
        "median ns/iter".to_string(),
        "min ns/iter".to_string(),
        "mean ns/iter".to_string(),
        "iters/sample".to_string(),
    ]];
    for r in &report.micro {
        t.push(vec![
            r.name.clone(),
            r.median_ns.to_string(),
            r.min_ns.to_string(),
            r.mean_ns.to_string(),
            r.iters_per_sample.to_string(),
        ]);
    }
    let mut out = table::render("CSC kernel micro-benchmarks (self-timed)", &t);
    let mut t = vec![vec![
        "network".to_string(),
        "images".to_string(),
        "compile ms (once)".to_string(),
        "per-image ms".to_string(),
    ]];
    for r in &report.batch {
        t.push(vec![
            r.network.clone(),
            r.images.to_string(),
            format!("{:.2}", r.compile_ms),
            format!("{:.2}", r.per_image_ms),
        ]);
    }
    out.push('\n');
    out.push_str(&table::render(
        "Engine compile-once/run-many (self-timed)",
        &t,
    ));
    let mut t = vec![vec![
        "network".to_string(),
        "compile ms (median)".to_string(),
        "cache-hit load ms (median)".to_string(),
        "artifact bytes".to_string(),
    ]];
    for r in &report.cache {
        t.push(vec![
            r.network.clone(),
            format!("{:.2}", r.compile_ms),
            format!("{:.2}", r.load_ms),
            r.artifact_bytes.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&table::render(
        "Model cache: cold compile vs. verified artifact load (self-timed)",
        &t,
    ));
    let mut t = vec![vec![
        "strategy".to_string(),
        "cores".to_string(),
        "run ms (median)".to_string(),
    ]];
    for r in &report.fleet {
        t.push(vec![
            r.strategy.clone(),
            r.cores.to_string(),
            format!("{:.2}", r.run_ms),
        ]);
    }
    out.push('\n');
    out.push_str(&table::render("Fleet pass wall time (self-timed)", &t));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_schema_and_all_rows() {
        let report = run(true);
        assert_eq!(report.schema, SCHEMA);
        assert!(report.quick);
        let names: Vec<&str> = report.micro.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "dense_reference_conv",
                "csc_sparse_conv",
                "csc_streams_reference",
                "csc_streams_cold",
                "csc_streams_steady",
            ]
        );
        assert!(report.micro.iter().all(|r| r.median_ns > 0
            && r.min_ns <= r.median_ns
            && r.iters_per_sample >= 1
            && r.samples >= 5));
        assert_eq!(report.batch.len(), 3);
        assert!(report
            .batch
            .iter()
            .all(|b| b.per_image_ms > 0.0 && b.compile_ms > 0.0 && b.images == 2));
        assert_eq!(report.fleet.len(), 3);
        assert!(report.fleet.iter().all(|f| f.run_ms > 0.0 && f.cores >= 1));
        assert_eq!(report.cache.len(), 3);
        for c in &report.cache {
            assert!(c.compile_ms > 0.0 && c.load_ms > 0.0 && c.artifact_bytes > 0);
            // The whole point of the artifact cache: a verified load is
            // strictly faster than recompiling from the dense kernels.
            assert!(
                c.load_ms < c.compile_ms,
                "{}: load {:.3}ms vs compile {:.3}ms",
                c.network,
                c.load_ms,
                c.compile_ms
            );
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            schema: SCHEMA.to_string(),
            quick: true,
            micro: vec![MicroRow {
                name: "x".to_string(),
                iters_per_sample: 4,
                samples: 5,
                median_ns: 10,
                min_ns: 9,
                mean_ns: 11,
            }],
            batch: vec![BatchRow {
                network: "AlexNet".to_string(),
                images: 2,
                compile_ms: 1.5,
                per_image_ms: 2.5,
            }],
            cache: vec![CacheRow {
                network: "AlexNet".to_string(),
                compile_ms: 1.5,
                load_ms: 0.3,
                artifact_bytes: 4096,
            }],
            fleet: vec![FleetRow {
                strategy: "output-channel".to_string(),
                cores: 4,
                run_ms: 3.5,
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(json.contains("ristretto-bench/v3"));
    }

    #[test]
    fn render_names_every_benchmark() {
        let report = BenchReport {
            schema: SCHEMA.to_string(),
            quick: true,
            micro: vec![MicroRow {
                name: "dense_reference_conv".to_string(),
                iters_per_sample: 1,
                samples: 5,
                median_ns: 1,
                min_ns: 1,
                mean_ns: 1,
            }],
            batch: vec![BatchRow {
                network: "AlexNet".to_string(),
                images: 2,
                compile_ms: 1.0,
                per_image_ms: 1.0,
            }],
            cache: vec![CacheRow {
                network: "GoogLeNet".to_string(),
                compile_ms: 1.0,
                load_ms: 0.2,
                artifact_bytes: 1024,
            }],
            fleet: vec![FleetRow {
                strategy: "batch".to_string(),
                cores: 4,
                run_ms: 2.0,
            }],
        };
        let s = render(&report);
        assert!(s.contains("dense_reference_conv") && s.contains("AlexNet"));
        assert!(s.contains("GoogLeNet") && s.contains("cache-hit load"));
        assert!(s.contains("Fleet pass wall time") && s.contains("batch"));
    }
}
