//! Differential correctness harness across the four execution paths.
//!
//! The paper's central claim is that sparsity-condensed stream flow is an
//! *exact* re-ordering of the dense convolution (Fig 5/6): atomized
//! multiplication and dual-sided compression lose nothing. This module
//! turns that claim into a randomized oracle. Each seeded case draws a
//! (layer, config) pair from the adversarial corners of the space — empty
//! channels, all-dense and all-zero tiles, maximal magnitudes, every atom
//! granularity, 2–16-bit operands, stride/padding combinations — and
//! checks five oracle families:
//!
//! 1. **Cross-path equality** — dense reference [`qnn::conv::conv2d`],
//!    functional [`conv2d_csc`], precompiled `Session::run`, the
//!    cycle-level `CoreSim::run_layer_streams`, *and both stream kernels*
//!    (the planned scratch-arena kernel behind [`conv2d_csc_streams`] and
//!    the value-major [`conv2d_csc_streams_reference`] twin) agree
//!    byte-for-byte — outputs and stats — at 1 and 4 worker threads.
//! 2. **Lossless round-trips** — COO/CSR/bitmap compression and the atom
//!    stream compress→recompose path are exact at every granularity.
//! 3. **Cycle-model invariants** — measured intersect steps equal an
//!    independent re-tiling's `Σ ideal_steps(t, S, N)` exactly and stay
//!    within the Eq 3–5 bounds (`ideal ≤ measured`, `ε < N`), the
//!    balancer's makespan dominates every group, and every observability
//!    counter is non-negative and monotone across the run.
//! 4. **Artifact round-trips** — the compiled network serializes to the
//!    versioned artifact format, deserializes field-for-field equal,
//!    re-encodes byte-identically, and a session over the *decoded*
//!    network reproduces the in-memory session's output and stats
//!    byte-for-byte; a deterministically chosen one-bit corruption of the
//!    artifact must be rejected by the loader.
//! 5. **Fleet equivalence** — a 1-core [`ristretto_sim::fleet::Fleet`]
//!    under both the batch and the output-channel strategy reproduces the
//!    single-core `Session::run` output byte-for-byte (again at 1 and 4
//!    worker threads), with zero inter-core link traffic.
//!
//! Failing cases run through a greedy shrinker that minimizes channels,
//! extents and values while the divergence persists, then serialize to a
//! JSON repro. The `repro diffcheck` subcommand drives the loop; CI runs a
//! fixed-seed budget.

use std::collections::BTreeMap;

use atomstream::atom::AtomBits;
use atomstream::compress::{compress_activations, compress_weights, compress_weights_naive};
use atomstream::conv_csc::{
    conv2d_csc, conv2d_csc_streams, conv2d_csc_streams_reference, CscConfig, CscOutput,
    WeightStreamSet,
};
use atomstream::cycles::{ideal_steps, intersect_epsilon, tile_cycles};
use atomstream::decompose::{atomize_signed, atomize_unsigned, recompose};
use atomstream::flatten::{flatten_kernel_channel, flatten_tile};
use qnn::conv::{conv2d, ConvGeometry};
use qnn::formats::bitmap::BitmapVec;
use qnn::formats::coo::{BlockCoo2d, CooFeatureMap};
use qnn::formats::csr::CsrMatrix;
use qnn::quant::BitWidth;
use qnn::rng::SeededRng;
use qnn::tensor::{Tensor3, Tensor4};
use qnn::workload::WorkloadGen;
use ristretto_sim::artifact;
use ristretto_sim::balance::{balance, BalanceStrategy, ChannelWorkload};
use ristretto_sim::config::{FleetConfig, RistrettoConfig};
use ristretto_sim::core::{CoreReport, CoreSim};
use ristretto_sim::engine::{compile, NetworkModel, Session};
use ristretto_sim::fleet::{Fleet, ShardStrategy};
use ristretto_sim::pipeline::PipelineLayer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One randomized differential-test case: a full layer plus the
/// architecture configuration it runs under. Serializable so failing cases
/// dump to JSON repros.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffCase {
    /// Sequential case index under its seed.
    pub index: u64,
    /// The seed the case was drawn from.
    pub seed: u64,
    /// Activation bit-width (2–16).
    pub a_bits: u8,
    /// Weight bit-width (2–16).
    pub w_bits: u8,
    /// Atom granularity in bits.
    pub atom_bits: u8,
    /// Multipliers per compute tile (`N`).
    pub multipliers: usize,
    /// Compute tile count.
    pub tiles: usize,
    /// Feature-map tile height.
    pub tile_h: usize,
    /// Feature-map tile width.
    pub tile_w: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
    /// PPU requantization shift.
    pub requant_shift: u32,
    /// PPU output bit-width.
    pub out_bits: u8,
    /// Input feature map.
    pub fmap: Tensor3,
    /// Kernels.
    pub kernels: Tensor4,
}

impl DiffCase {
    /// The case's convolution geometry.
    pub fn geom(&self) -> ConvGeometry {
        ConvGeometry {
            stride: self.stride,
            padding: self.padding,
        }
    }

    /// The case's atom granularity as a typed value.
    pub fn granularity(&self) -> AtomBits {
        AtomBits::new(self.atom_bits).expect("generator draws valid granularities")
    }

    /// The case's CSC configuration.
    pub fn csc_config(&self) -> CscConfig {
        CscConfig {
            atom_bits: self.granularity(),
            multipliers: self.multipliers,
            tile_h: self.tile_h,
            tile_w: self.tile_w,
        }
    }

    /// The case's full architecture configuration (paper defaults with the
    /// case's overrides).
    pub fn ristretto_config(&self) -> RistrettoConfig {
        RistrettoConfig {
            tiles: self.tiles,
            multipliers: self.multipliers,
            atom_bits: self.granularity(),
            tile_h: self.tile_h,
            tile_w: self.tile_w,
            ..RistrettoConfig::paper_default()
        }
    }

    fn a_width(&self) -> BitWidth {
        BitWidth::new(self.a_bits).expect("generator draws valid widths")
    }

    fn w_width(&self) -> BitWidth {
        BitWidth::new(self.w_bits).expect("generator draws valid widths")
    }
}

const BIT_WIDTHS: [u8; 7] = [2, 3, 4, 6, 8, 12, 16];
const GRANULARITIES: [u8; 5] = [1, 2, 3, 4, 8];
const MULTIPLIERS: [usize; 4] = [1, 2, 4, 8];

/// Draws case `index` of the given seed. Deterministic: the same
/// `(seed, index)` pair always yields the same case.
pub fn generate_case(seed: u64, index: u64) -> DiffCase {
    let mut rng = SeededRng::new(seed).fork(index);
    let a_bits = BIT_WIDTHS[rng.below(BIT_WIDTHS.len())];
    let w_bits = BIT_WIDTHS[rng.below(BIT_WIDTHS.len())];
    let atom_bits = GRANULARITIES[rng.below(GRANULARITIES.len())];
    let multipliers = MULTIPLIERS[rng.below(MULTIPLIERS.len())];
    let tiles = [1, 2, 4][rng.below(3)];
    let tile_h = [1, 2, 3, 8][rng.below(4)];
    let tile_w = [1, 2, 4, 8][rng.below(4)];
    let stride = 1 + rng.below(2);
    let padding = rng.below(3);
    let in_c = 1 + rng.below(4);
    let out_c = 1 + rng.below(4);
    let h = 1 + rng.below(8);
    let w = 1 + rng.below(8);
    // The padded input must contain the kernel: k ≤ min(h, w) + 2·padding.
    // Extents beyond 3 exercise full-conv planes much larger than the
    // input tile and kernel-sized per-atom displacements.
    let kernel = [1, 2, 3, 5, 7][rng.below(5)].min(h.min(w) + 2 * padding);
    let requant_shift = rng.below(8) as u32;
    let out_bits = [2, 4, 8][rng.below(3)];
    let mut gen = WorkloadGen::new(rng.next_u64());
    let fmap = gen
        .adversarial_activations(in_c, h, w, BitWidth::new(a_bits).expect("valid"))
        .expect("valid fmap shape");
    let kernels = gen
        .adversarial_weights(
            out_c,
            in_c,
            kernel,
            kernel,
            BitWidth::new(w_bits).expect("valid"),
        )
        .expect("valid kernel shape");
    DiffCase {
        index,
        seed,
        a_bits,
        w_bits,
        atom_bits,
        multipliers,
        tiles,
        tile_h,
        tile_w,
        stride,
        padding,
        requant_shift,
        out_bits,
        fmap,
        kernels,
    }
}

/// Everything one serial evaluation of a case produces; `PartialEq` so the
/// 1-thread and 4-thread evaluations can be compared wholesale.
#[derive(Debug, Clone, PartialEq)]
struct PathOutputs {
    dense: qnn::tensor::AccTensor3,
    csc: CscOutput,
    streams: CscOutput,
    /// The value-major reference kernel's result: the oracle the planned
    /// scratch-arena kernel must match byte-for-byte.
    reference: CscOutput,
    session_out: Tensor3,
    session_stats: atomstream::conv_csc::CscStats,
    core: CoreReport,
    /// 1-core fleet outputs and link traffic per strategy (batch, then
    /// output-channel): the family-5 oracle inputs.
    fleet: Vec<(Tensor3, u64)>,
}

/// The single-layer network model a case compiles into (shared by the
/// session path of family 1 and the artifact round-trip of family 4).
fn case_model(case: &DiffCase) -> NetworkModel {
    NetworkModel::new(
        "diffcheck",
        case.fmap.shape(),
        vec![PipelineLayer {
            name: "l0".to_string(),
            kernels: case.kernels.clone(),
            geom: case.geom(),
            w_bits: case.w_width(),
            a_bits: case.a_width(),
            requant_shift: case.requant_shift,
            out_bits: case.out_bits,
            pool: None,
        }],
    )
}

fn run_paths(case: &DiffCase) -> Result<PathOutputs, String> {
    let geom = case.geom();
    let cfg = case.csc_config();
    let dense = conv2d(&case.fmap, &case.kernels, geom).map_err(|e| format!("dense: {e}"))?;
    let csc = conv2d_csc(
        &case.fmap,
        &case.kernels,
        geom,
        case.a_width(),
        case.w_width(),
        &cfg,
    )
    .map_err(|e| format!("csc: {e}"))?;
    let weights = WeightStreamSet::compile(&case.kernels, case.w_width(), cfg.atom_bits)
        .map_err(|e| format!("compile weights: {e}"))?;
    let streams = conv2d_csc_streams(&case.fmap, &weights, geom, case.a_width(), &cfg)
        .map_err(|e| format!("streams: {e}"))?;
    let reference = conv2d_csc_streams_reference(&case.fmap, &weights, geom, case.a_width(), &cfg)
        .map_err(|e| format!("reference streams: {e}"))?;

    let model = case_model(case);
    let net = compile(&model, &case.ristretto_config()).map_err(|e| format!("compile: {e}"))?;
    let session = Session::new(net.clone());
    let run = session
        .run(&case.fmap)
        .map_err(|e| format!("session run: {e}"))?;
    let session_stats = run.traces[0].stats;

    // Family-5 inputs: the same network behind a 1-core fleet, under both
    // strategies.
    let mut fleet = Vec::new();
    for strategy in [ShardStrategy::Batch, ShardStrategy::OutputChannel] {
        let f = Fleet::try_new(net.clone(), FleetConfig::new(1, strategy))
            .map_err(|e| format!("fleet({strategy}): {e}"))?;
        let fr = f
            .run(std::slice::from_ref(&case.fmap))
            .map_err(|e| format!("fleet({strategy}) run: {e}"))?;
        let out = fr
            .outputs
            .into_iter()
            .next()
            .ok_or_else(|| format!("fleet({strategy}) produced no output"))?;
        fleet.push((out, fr.report.link_bits));
    }

    let core = CoreSim::try_new(case.ristretto_config())
        .map_err(|e| format!("core config: {e}"))?
        .run_layer_streams(&weights, &case.fmap, case.a_bits)
        .map_err(|e| format!("core run: {e}"))?;

    Ok(PathOutputs {
        dense,
        csc,
        streams,
        reference,
        session_out: run.output,
        session_stats,
        core,
        fleet,
    })
}

/// Oracle family 1: byte-identical outputs across all four paths, checked
/// on outputs already produced by [`run_paths`].
fn check_outputs(case: &DiffCase, p: &PathOutputs) -> Result<(), String> {
    if p.csc.output != p.dense {
        return Err(format!(
            "csc output diverges from dense reference: {:?} vs {:?}",
            p.csc.output.as_slice(),
            p.dense.as_slice()
        ));
    }
    if p.streams != p.csc {
        return Err("precompiled-stream CSC diverges from direct CSC".to_string());
    }
    // Dual-kernel oracle: the planned scratch-arena kernel and the
    // value-major reference kernel are two independent implementations of
    // the same intersection; they must agree on every byte — accumulator
    // output and all statistics.
    if p.reference != p.streams {
        return Err(format!(
            "planned kernel diverges from reference kernel: stats {:?} vs {:?}",
            p.streams.stats, p.reference.stats
        ));
    }
    if p.session_stats != p.csc.stats {
        return Err(format!(
            "session trace stats diverge from functional CSC: {:?} vs {:?}",
            p.session_stats, p.csc.stats
        ));
    }

    // Independent PPU reference: truncating (toward-zero) division then
    // clamp into the unsigned output range — recomputed from the dense
    // output without touching the PostProcessor code under test.
    let max = (1i128 << case.out_bits.min(32)) - 1;
    let div = 1i128 << case.requant_shift.min(63);
    for ((c, y, x, got), &acc) in p.session_out.iter_indexed().zip(p.dense.as_slice().iter()) {
        let expect = ((acc as i128) / div).clamp(0, max) as i32;
        if got != expect {
            return Err(format!(
                "session output ({c},{y},{x}) = {got}, independent requant of {acc} gives {expect}"
            ));
        }
    }

    // Cycle-level core agrees on the effectual work counters.
    if p.core.atom_mults() != p.csc.stats.intersect.atom_mults {
        return Err(format!(
            "core atom_mults {} != functional {}",
            p.core.atom_mults(),
            p.csc.stats.intersect.atom_mults
        ));
    }
    let core_deliveries: u64 = p.core.tiles.iter().map(|t| t.deliveries).sum();
    if core_deliveries != p.csc.stats.intersect.deliveries {
        return Err(format!(
            "core deliveries {} != functional {}",
            core_deliveries, p.csc.stats.intersect.deliveries
        ));
    }
    Ok(())
}

/// Oracle family 2: lossless round-trips for every compression format and
/// the atom stream at every granularity.
fn check_roundtrips(case: &DiffCase) -> Result<(), String> {
    let (c, h, w) = case.fmap.shape();
    let coo = CooFeatureMap::from_tensor(&case.fmap, case.tile_h, case.tile_w)
        .map_err(|e| format!("coo build: {e}"))?;
    if coo.to_tensor(h, w) != case.fmap {
        return Err("COO feature-map round-trip diverges".to_string());
    }
    for ci in 0..c {
        let plane = case.fmap.channel(ci);
        let csr = CsrMatrix::from_dense(plane, h, w).map_err(|e| format!("csr build: {e}"))?;
        if csr.to_dense() != plane {
            return Err(format!("CSR round-trip diverges on channel {ci}"));
        }
        let bm = BitmapVec::from_dense(plane);
        if bm.to_dense() != plane {
            return Err(format!("bitmap round-trip diverges on channel {ci}"));
        }
        for y0 in (0..h).step_by(case.tile_h) {
            for x0 in (0..w).step_by(case.tile_w) {
                let coo =
                    BlockCoo2d::from_fmap_tile(&case.fmap, ci, y0, x0, case.tile_h, case.tile_w);
                if coo.to_dense() != case.fmap.tile(ci, y0, x0, case.tile_h, case.tile_w) {
                    return Err(format!(
                        "block COO round-trip diverges at channel {ci} tile ({y0},{x0})"
                    ));
                }
            }
        }
    }

    // Atomize → recompose is exact at every granularity, for both the
    // unsigned activation and signed weight atomizers.
    for g in 1..=8u8 {
        let gran = AtomBits::new(g).expect("1..=8 is valid");
        for &v in case.fmap.as_slice() {
            let atoms = atomize_unsigned(v, case.a_bits, gran)
                .map_err(|e| format!("atomize_unsigned({v}, {}, {g}): {e}", case.a_bits))?;
            if recompose(&atoms) != v as i64 {
                return Err(format!("unsigned atom round-trip of {v} at {g}-bit atoms"));
            }
        }
        for &v in case.kernels.as_slice() {
            let atoms = atomize_signed(v, case.w_bits, gran)
                .map_err(|e| format!("atomize_signed({v}, {}, {g}): {e}", case.w_bits))?;
            if recompose(&atoms) != v as i64 {
                return Err(format!("signed atom round-trip of {v} at {g}-bit atoms"));
            }
        }
    }

    // Compressed streams reconstruct every value: per-coordinate atom-term
    // sums equal the original tile/kernel values (shuffled or not).
    let gran = case.granularity();
    for ci in 0..c {
        for y0 in (0..h).step_by(case.tile_h) {
            for x0 in (0..w).step_by(case.tile_w) {
                let flat = flatten_tile(&case.fmap, ci, y0, x0, case.tile_h, case.tile_w);
                let stream = compress_activations(&flat, case.a_bits, gran)
                    .map_err(|e| format!("compress_activations: {e}"))?;
                let mut sums: BTreeMap<(u16, u16), i64> = BTreeMap::new();
                for e in stream.entries() {
                    *sums.entry((e.y, e.x)).or_default() += e.atom.term();
                }
                for f in &flat {
                    if sums.get(&(f.y, f.x)).copied().unwrap_or(0) != f.value as i64 {
                        return Err(format!(
                            "activation stream loses value {} at channel {ci} tile ({y0},{x0})",
                            f.value
                        ));
                    }
                }
            }
        }
    }
    let (o, i, kh, kw) = case.kernels.shape();
    for ci in 0..i {
        let flat = flatten_kernel_channel(&case.kernels, ci)
            .map_err(|e| format!("flatten kernels: {e}"))?;
        for (label, stream) in [
            (
                "shuffled",
                compress_weights(&flat, case.w_bits, gran)
                    .map_err(|e| format!("compress_weights: {e}"))?,
            ),
            (
                "naive",
                compress_weights_naive(&flat, case.w_bits, gran)
                    .map_err(|e| format!("compress_weights_naive: {e}"))?,
            ),
        ] {
            let mut sums: BTreeMap<(u16, u16, u16), i64> = BTreeMap::new();
            for e in stream.entries() {
                *sums.entry((e.out_ch, e.y, e.x)).or_default() += e.atom.term();
            }
            for oc in 0..o {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let v = case.kernels.get(oc, ci, ky, kx) as i64;
                        let got = sums
                            .get(&(oc as u16, ky as u16, kx as u16))
                            .copied()
                            .unwrap_or(0);
                        if got != v {
                            return Err(format!(
                                "{label} weight stream loses kernel ({oc},{ci},{ky},{kx}): \
                                 {got} != {v}"
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Oracle family 3: the cycle model respects the paper's Eq 3–5 bounds and
/// the balancer/core invariants.
fn check_cycle_model(case: &DiffCase, p: &PathOutputs) -> Result<(), String> {
    let (c, h, w) = case.fmap.shape();
    let n = case.multipliers as u64;
    let gran = case.granularity();
    let weights = WeightStreamSet::compile(&case.kernels, case.w_width(), gran)
        .map_err(|e| format!("compile weights: {e}"))?;

    // Recompute per-(channel, tile) activation atom counts the way the CSC
    // path tiles them, then pin the measured steps two ways: exactly, as
    // Σ ideal_steps(t, S, N) over the occupied tiles of channels with a
    // non-empty weight stream (an independent re-derivation of what the
    // kernel's scheduler must report), and by the Eq 3 bounds
    // Σ t·⌈S/N⌉ ≤ steps ≤ Σ (t·⌈S/N⌉ + (N−1)).
    let mut exact = 0u64;
    let mut lower = 0u64;
    let mut upper = 0u64;
    let mut act_atoms_per_channel = vec![0u64; c];
    for (ci, channel_atoms) in act_atoms_per_channel.iter_mut().enumerate() {
        let s = weights.atoms(ci);
        for y0 in (0..h).step_by(case.tile_h) {
            for x0 in (0..w).step_by(case.tile_w) {
                let flat = flatten_tile(&case.fmap, ci, y0, x0, case.tile_h, case.tile_w);
                if flat.is_empty() {
                    continue;
                }
                let stream = compress_activations(&flat, case.a_bits, gran)
                    .map_err(|e| format!("compress_activations: {e}"))?;
                *channel_atoms += stream.len() as u64;
                if s == 0 {
                    continue;
                }
                let t = stream.len() as u64;
                exact += ideal_steps(t, s, n);
                lower += tile_cycles(t, s, n);
                upper += tile_cycles(t, s, n) + (n - 1);
                debug_assert!(ideal_steps(t, s, n) <= tile_cycles(t, s, n) + (n - 1));
            }
        }
        if intersect_epsilon(s, n) >= n {
            return Err(format!("ε({s}, {n}) = {} ≥ N", intersect_epsilon(s, n)));
        }
    }
    let measured = p.csc.stats.intersect.steps;
    if measured != exact {
        return Err(format!(
            "measured intersect steps {measured} != independent Eq 3 re-derivation {exact}"
        ));
    }
    if measured < lower || measured > upper {
        return Err(format!(
            "measured intersect steps {measured} outside Eq 3 bounds [{lower}, {upper}]"
        ));
    }

    // Balancer invariants, for every strategy, on the measured workloads.
    let workloads: Vec<ChannelWorkload> = (0..c)
        .map(|ci| ChannelWorkload {
            channel: ci,
            act_atoms: act_atoms_per_channel[ci],
            weight_atoms: weights.atoms(ci),
        })
        .collect();
    for strategy in [
        BalanceStrategy::None,
        BalanceStrategy::WeightOnly,
        BalanceStrategy::WeightActivation,
    ] {
        let a = balance(&workloads, case.tiles, n, strategy);
        let mut seen: Vec<usize> = a.groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        if seen != (0..c).collect::<Vec<_>>() {
            return Err(format!(
                "{strategy:?}: groups do not partition the channels"
            ));
        }
        let max_tile = a.tile_cycles.iter().copied().max().unwrap_or(0);
        if a.makespan() != max_tile {
            return Err(format!(
                "{strategy:?}: makespan {} != max tile cycles {max_tile}",
                a.makespan()
            ));
        }
        let largest = workloads.iter().map(|wl| wl.cycles(n)).max().unwrap_or(0);
        if a.makespan() < largest {
            return Err(format!(
                "{strategy:?}: makespan {} below largest single channel {largest}",
                a.makespan()
            ));
        }
        let total: u64 = workloads.iter().map(|wl| wl.cycles(n)).sum();
        if a.total_cycles() != total {
            return Err(format!(
                "{strategy:?}: total cycles {} != Σ channel cycles {total}",
                a.total_cycles()
            ));
        }
        if a.utilization() > 1.0 + 1e-9 {
            return Err(format!("{strategy:?}: utilization {} > 1", a.utilization()));
        }
    }

    // Core-report invariants: makespan dominates, per-tile accounting adds
    // up, groups partition the channels.
    let max_tile = p.core.tile_cycles.iter().copied().max().unwrap_or(0);
    if p.core.makespan != max_tile {
        return Err(format!(
            "core makespan {} != max tile cycles {max_tile}",
            p.core.makespan
        ));
    }
    if p.core.tile_cycles.len() != p.core.tiles.len() {
        return Err("core tile_cycles length differs from tile reports".to_string());
    }
    for (i, (cyc, tile)) in p.core.tile_cycles.iter().zip(&p.core.tiles).enumerate() {
        if *cyc != tile.cycles {
            return Err(format!(
                "core tile {i}: cycles {} != report {}",
                cyc, tile.cycles
            ));
        }
        if tile.stall_cycles > tile.cycles {
            return Err(format!(
                "core tile {i}: stalls {} exceed cycles {}",
                tile.stall_cycles, tile.cycles
            ));
        }
    }
    let mut seen: Vec<usize> = p.core.groups.iter().flatten().copied().collect();
    seen.sort_unstable();
    if seen != (0..c).collect::<Vec<_>>() {
        return Err("core groups do not partition the channels".to_string());
    }
    Ok(())
}

/// Oracle family 5: a 1-core fleet is the single-core engine path — same
/// bytes under both sharding strategies, and no inter-core traffic.
fn check_fleet(p: &PathOutputs) -> Result<(), String> {
    for ((out, link_bits), strategy) in p.fleet.iter().zip(["batch", "output-channel"]) {
        if *out != p.session_out {
            return Err(format!(
                "1-core fleet ({strategy}) output diverges from single-core session"
            ));
        }
        if *link_bits != 0 {
            return Err(format!(
                "1-core fleet ({strategy}) moved {link_bits} bits over the NoC"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Family 4: artifact round-trips.
// ---------------------------------------------------------------------------

fn check_artifact(case: &DiffCase, p: &PathOutputs) -> Result<(), String> {
    let model = case_model(case);
    let net = compile(&model, &case.ristretto_config()).map_err(|e| format!("compile: {e}"))?;
    let bytes = artifact::encode(&net);
    let decoded = artifact::decode(&bytes).map_err(|e| format!("artifact decode: {e}"))?;
    if decoded != *net {
        return Err("decoded artifact differs from the in-memory compile".to_string());
    }
    if artifact::encode(&decoded) != bytes {
        return Err("re-encoding the decoded artifact is not byte-identical".to_string());
    }
    let run = Session::new(Arc::new(decoded))
        .run(&case.fmap)
        .map_err(|e| format!("session over decoded artifact: {e}"))?;
    if run.output != p.session_out {
        return Err("session over decoded artifact diverges from in-memory output".to_string());
    }
    if run.traces[0].stats != p.session_stats {
        return Err("session over decoded artifact diverges from in-memory stats".to_string());
    }

    // One deterministically chosen bit flip per case must never survive the
    // loader (header corruption trips the magic/version checks; everything
    // else trips a section checksum or a structural validator).
    let pos = (case.index as usize).wrapping_mul(7919).wrapping_add(13) % bytes.len();
    let mut dirty = bytes;
    dirty[pos] ^= 1 << (case.index % 8);
    if artifact::decode(&dirty).is_ok() {
        return Err(format!(
            "corrupted artifact (bit flip at byte {pos}) decoded cleanly"
        ));
    }
    Ok(())
}

/// Checks every oracle family on one case. `Err` carries a human-readable
/// description of the first divergence found.
///
/// # Errors
/// Returns the first divergence (or path error) as a description string.
pub fn check_case(case: &DiffCase) -> Result<(), String> {
    let before = obs::snapshot();

    // Family 1 runs everything at 1 and 4 worker threads; the two
    // evaluations must agree wholesale before either is checked further.
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .map_err(|e| format!("pool(1): {e}"))?;
    let p1 = pool1.install(|| run_paths(case))?;
    let pool4 = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .map_err(|e| format!("pool(4): {e}"))?;
    let p4 = pool4.install(|| run_paths(case))?;
    if p1 != p4 {
        return Err("1-thread and 4-thread evaluations diverge".to_string());
    }
    check_outputs(case, &p1)?;
    check_roundtrips(case)?;
    check_cycle_model(case, &p1)?;
    check_artifact(case, &p1)?;
    check_fleet(&p1)?;

    // Observability counters only ever accumulate: non-negative by type,
    // and monotone across the whole case (sums and high-water marks both).
    let after = obs::snapshot();
    for ev in obs::Event::ALL {
        if after.get(ev) < before.get(ev) {
            return Err(format!("obs counter {} decreased", ev.name()));
        }
    }
    Ok(())
}

fn tensor3_without_channel(t: &Tensor3, drop: usize) -> Option<Tensor3> {
    let (c, h, w) = t.shape();
    if c <= 1 {
        return None;
    }
    let mut data = Vec::with_capacity((c - 1) * h * w);
    for ci in (0..c).filter(|&ci| ci != drop) {
        data.extend_from_slice(t.channel(ci));
    }
    Tensor3::from_vec(c - 1, h, w, data).ok()
}

fn tensor3_cropped(t: &Tensor3, nh: usize, nw: usize) -> Option<Tensor3> {
    let (c, h, w) = t.shape();
    if nh == 0 || nw == 0 || (nh == h && nw == w) || nh > h || nw > w {
        return None;
    }
    Tensor3::from_fn(c, nh, nw, |ci, y, x| t.get(ci, y, x)).ok()
}

fn tensor4_without_in_channel(k: &Tensor4, drop: usize) -> Option<Tensor4> {
    let (o, i, kh, kw) = k.shape();
    if i <= 1 {
        return None;
    }
    Tensor4::from_fn(o, i - 1, kh, kw, |oc, ic, ky, kx| {
        let src = if ic < drop { ic } else { ic + 1 };
        k.get(oc, src, ky, kx)
    })
    .ok()
}

fn tensor4_without_out_channel(k: &Tensor4, drop: usize) -> Option<Tensor4> {
    let (o, i, kh, kw) = k.shape();
    if o <= 1 {
        return None;
    }
    Tensor4::from_fn(o - 1, i, kh, kw, |oc, ic, ky, kx| {
        let src = if oc < drop { oc } else { oc + 1 };
        k.get(src, ic, ky, kx)
    })
    .ok()
}

fn tensor4_cropped_kernel(k: &Tensor4, nk: usize) -> Option<Tensor4> {
    let (o, i, kh, kw) = k.shape();
    if nk == 0 || nk >= kh.min(kw) {
        return None;
    }
    Tensor4::from_fn(o, i, nk, nk, |oc, ic, ky, kx| k.get(oc, ic, ky, kx)).ok()
}

/// A case stays geometrically valid only while the padded input contains
/// the kernel.
fn geometry_valid(case: &DiffCase) -> bool {
    let (_, h, w) = case.fmap.shape();
    let (_, _, kh, _) = case.kernels.shape();
    kh <= h.min(w) + 2 * case.padding
}

/// Single-step reductions of a case, coarse to fine. Candidates that break
/// the kernel-fits-input constraint are filtered out.
fn reductions(case: &DiffCase) -> Vec<DiffCase> {
    let (c, h, w) = case.fmap.shape();
    let (o, _, kh, _) = case.kernels.shape();
    let mut out = Vec::new();
    // Drop whole channels first — the coarsest reductions.
    for ci in 0..c {
        if let (Some(fmap), Some(kernels)) = (
            tensor3_without_channel(&case.fmap, ci),
            tensor4_without_in_channel(&case.kernels, ci),
        ) {
            out.push(DiffCase {
                fmap,
                kernels,
                ..case.clone()
            });
        }
    }
    for oc in 0..o {
        if let Some(kernels) = tensor4_without_out_channel(&case.kernels, oc) {
            out.push(DiffCase {
                kernels,
                ..case.clone()
            });
        }
    }
    // Crop spatial extents: halve, then shave one row/column.
    for (nh, nw) in [
        (h / 2, w),
        (h, w / 2),
        (h.saturating_sub(1), w),
        (h, w.saturating_sub(1)),
    ] {
        if let Some(fmap) = tensor3_cropped(&case.fmap, nh, nw) {
            out.push(DiffCase {
                fmap,
                ..case.clone()
            });
        }
    }
    // Simplify geometry and configuration.
    if case.stride > 1 {
        out.push(DiffCase {
            stride: 1,
            ..case.clone()
        });
    }
    if case.padding > 0 {
        out.push(DiffCase {
            padding: 0,
            ..case.clone()
        });
    }
    if kh > 1 {
        if let Some(kernels) = tensor4_cropped_kernel(&case.kernels, kh - 1) {
            out.push(DiffCase {
                kernels,
                ..case.clone()
            });
        }
    }
    for (field, value) in [
        ("multipliers", 1usize),
        ("tiles", 1),
        ("tile_h", 1),
        ("tile_w", 1),
    ] {
        let mut cand = case.clone();
        let slot = match field {
            "multipliers" => &mut cand.multipliers,
            "tiles" => &mut cand.tiles,
            "tile_h" => &mut cand.tile_h,
            _ => &mut cand.tile_w,
        };
        if *slot != value {
            *slot = value;
            out.push(cand);
        }
    }
    if case.requant_shift != 0 {
        out.push(DiffCase {
            requant_shift: 0,
            ..case.clone()
        });
    }
    // Zero individual non-zero values (finest reductions, capped).
    let mut zeroed = 0;
    for (ci, y, x, v) in case.fmap.iter_indexed() {
        if v == 0 || zeroed >= 24 {
            continue;
        }
        zeroed += 1;
        let mut data: Vec<i32> = case.fmap.as_slice().to_vec();
        data[(ci * h + y) * w + x] = 0;
        if let Ok(fmap) = Tensor3::from_vec(c, h, w, data) {
            out.push(DiffCase {
                fmap,
                ..case.clone()
            });
        }
    }
    let mut zeroed = 0;
    let (_, i, _, kw) = case.kernels.shape();
    for (oc, ic, ky, kx, v) in case.kernels.iter_indexed() {
        if v == 0 || zeroed >= 24 {
            continue;
        }
        zeroed += 1;
        let mut data: Vec<i32> = case.kernels.as_slice().to_vec();
        data[(((oc * i) + ic) * kh + ky) * kw + kx] = 0;
        if let Ok(kernels) = Tensor4::from_vec(o, i, kh, kw, data) {
            out.push(DiffCase {
                kernels,
                ..case.clone()
            });
        }
    }
    out.retain(geometry_valid);
    out
}

/// Greedily minimizes a failing case under an arbitrary failure predicate,
/// within a bounded predicate-evaluation budget. Returns the smallest case
/// found that still fails.
pub fn shrink_with(case: &DiffCase, fails: &dyn Fn(&DiffCase) -> bool) -> DiffCase {
    let mut current = case.clone();
    let mut budget = 400usize;
    'outer: loop {
        for cand in reductions(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if fails(&cand) {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// Minimizes a case that fails [`check_case`].
pub fn shrink(case: &DiffCase) -> DiffCase {
    shrink_with(case, &|c| check_case(c).is_err())
}

/// One divergence found by a run: the original case, the failure text, and
/// (when shrinking was requested) the minimized case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Case index under the run's seed.
    pub index: u64,
    /// Human-readable description of the first failing oracle.
    pub failure: String,
    /// The case as drawn.
    pub case: DiffCase,
    /// The minimized case, when shrinking ran.
    pub shrunk: Option<DiffCase>,
}

/// Result of a differential run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffOutcome {
    /// Number of cases drawn.
    pub cases: u64,
    /// Seed the cases were drawn from.
    pub seed: u64,
    /// Divergences found (empty on a clean run).
    pub divergences: Vec<Divergence>,
}

/// Checks one case end to end, shrinking on failure when requested.
/// Returns `None` when the case passes every oracle.
pub fn check_one(seed: u64, index: u64, shrink_failures: bool) -> Option<Divergence> {
    let case = generate_case(seed, index);
    match check_case(&case) {
        Ok(()) => None,
        Err(failure) => {
            let shrunk = shrink_failures.then(|| shrink(&case));
            Some(Divergence {
                index,
                failure,
                case,
                shrunk,
            })
        }
    }
}

/// Runs `cases` seeded cases and collects every divergence.
pub fn run(cases: u64, seed: u64, shrink_failures: bool) -> DiffOutcome {
    let divergences = (0..cases)
        .filter_map(|index| check_one(seed, index, shrink_failures))
        .collect();
    DiffOutcome {
        cases,
        seed,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        assert_eq!(generate_case(1, 3), generate_case(1, 3));
        assert_ne!(generate_case(1, 3), generate_case(1, 4));
    }

    #[test]
    fn generated_cases_are_geometrically_valid() {
        for index in 0..64 {
            let case = generate_case(9, index);
            assert!(geometry_valid(&case), "case {index}");
            let geom = case.geom();
            let (_, h, w) = case.fmap.shape();
            let (_, _, k, _) = case.kernels.shape();
            assert!(geom.out_extent(h, k).is_ok() && geom.out_extent(w, k).is_ok());
        }
    }

    #[test]
    fn shrinker_minimizes_under_synthetic_predicate() {
        // Predicate: fails while the fmap still holds a specific value.
        let case = generate_case(5, 0);
        let target = case
            .fmap
            .as_slice()
            .iter()
            .copied()
            .find(|&v| v != 0)
            .unwrap_or(0);
        if target == 0 {
            return; // all-zero draw: nothing to shrink against
        }
        let fails = |c: &DiffCase| c.fmap.as_slice().contains(&target);
        let small = shrink_with(&case, &fails);
        assert!(fails(&small), "shrunk case must still fail");
        assert!(
            small.fmap.len() <= case.fmap.len() && small.kernels.len() <= case.kernels.len(),
            "shrinking must not grow the case"
        );
        let nz_small = small.fmap.count_nonzero() + small.kernels.count_nonzero();
        let nz_orig = case.fmap.count_nonzero() + case.kernels.count_nonzero();
        assert!(nz_small <= nz_orig);
    }

    #[test]
    fn quick_budget_has_zero_divergences() {
        let outcome = run(40, 1, false);
        assert_eq!(outcome.cases, 40);
        assert!(
            outcome.divergences.is_empty(),
            "divergences: {:#?}",
            outcome
                .divergences
                .iter()
                .map(|d| (&d.failure, d.index))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn divergences_serialize_to_json() {
        let case = generate_case(2, 0);
        let d = Divergence {
            index: 0,
            failure: "synthetic".to_string(),
            case: case.clone(),
            shrunk: Some(case),
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Divergence = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
