//! `repro` — regenerates every table and figure of the Ristretto paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick] [--json <path>] [--metrics <path>]
//!                    [--threads <n>] [--trace] [--batch <n>]
//! repro stats-check --golden <path> [--metrics <path>] [--update]
//!                    [--threads <n>]
//! experiments: fig1 fig4 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19
//!              table6 motivation multicore ablations batch all
//! ```
//!
//! `fig13` and `fig16` are energy companions produced by the same runners
//! as `fig12` / `fig14`. `--quick` trims the benchmark to three networks
//! and coarser sweeps. With `--json`, the structured rows are also written
//! to the given path.
//!
//! `--metrics` additionally enables the observability counters and writes
//! their snapshot (sorted, schema-stable JSON; see `OBSERVABILITY.md`) to
//! the given path. `--trace` prints wall-clock span timings to stderr.
//!
//! `stats-check` runs the quick suite with counters enabled and diffs the
//! snapshot against a checked-in golden file, exiting non-zero on drift —
//! the CI stats-regression gate. `--update` rewrites the golden from the
//! live run instead (preserving its tolerance section).
//!
//! `diffcheck` draws `--cases` seeded random (layer, config) cases and runs
//! the differential oracle of `bench::diffcheck` on each — cross-path
//! output equality at 1 and 4 threads, lossless compression round-trips,
//! and cycle-model invariants. Any divergence fails the run; `--shrink`
//! additionally minimizes each failing case, and every divergence is
//! dumped as a JSON repro under `--repro-dir` (default
//! `diffcheck_repros/`).
//!
//! `--threads <n>` caps the worker threads of the parallel execution layer
//! (default: all hardware threads; `--threads 1` forces the serial path).
//! Every parallel fan-out in the harness collects results in deterministic
//! input order, so stdout, the `--json` file and the `--metrics` file are
//! byte-identical at any thread count. Per-experiment wall times go to
//! stderr only, keeping stdout reproducible.
//!
//! `--batch <n>` sets the images served per compiled network by the
//! `batch` experiment (default 1; implies `batch` when no experiment is
//! named) — per-image wall time falls as the batch grows because the
//! engine compiles each network's static weight artifacts once.

use bench::cache::StatsCache;
use bench::experiments::{
    ablations, engine_batch, fig01, fig04, fig12, fig14, fig15, fig17, fig18, fig19, motivation,
    multicore_scaling, table6,
};
use bench::stats_gate;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: repro <fig1|fig4|fig12|fig13|fig14|fig15|fig16|fig17|fig18|fig19|table6|motivation|multicore|ablations|batch|all> [--quick] [--json <path>] [--metrics <path>] [--threads <n>] [--trace] [--batch <n>]
       repro stats-check --golden <path> [--metrics <path>] [--update] [--threads <n>]
       repro diffcheck [--cases <n>] [--seed <s>] [--shrink] [--repro-dir <path>]";

/// Canonical experiment order of `repro all`.
const ALL: [&str; 13] = [
    "fig1",
    "fig4",
    "table6",
    "fig12",
    "fig14",
    "fig15",
    "fig17",
    "fig18",
    "fig19",
    "motivation",
    "multicore",
    "ablations",
    "batch",
];

/// Parsed command line.
struct Cli {
    which: String,
    quick: bool,
    json_path: Option<String>,
    metrics_path: Option<String>,
    golden_path: Option<String>,
    update_golden: bool,
    trace: bool,
    threads: Option<usize>,
    batch: usize,
    cases: u64,
    diff_seed: u64,
    shrink: bool,
    repro_dir: String,
}

/// Parses arguments; option values (`--json`, `--metrics`, `--golden`,
/// `--threads`) are consumed and can never be mistaken for the experiment
/// name.
fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut quick = false;
    let mut json_path = None;
    let mut metrics_path = None;
    let mut golden_path = None;
    let mut update_golden = false;
    let mut trace = false;
    let mut threads = None;
    let mut batch = None;
    let mut cases = None;
    let mut diff_seed = None;
    let mut shrink = false;
    let mut repro_dir = None;
    let mut which = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--update" => update_golden = true,
            "--trace" => trace = true,
            "--json" => {
                json_path = Some(
                    it.next()
                        .ok_or_else(|| "--json requires a path".to_string())?
                        .clone(),
                );
            }
            "--metrics" => {
                metrics_path = Some(
                    it.next()
                        .ok_or_else(|| "--metrics requires a path".to_string())?
                        .clone(),
                );
            }
            "--golden" => {
                golden_path = Some(
                    it.next()
                        .ok_or_else(|| "--golden requires a path".to_string())?
                        .clone(),
                );
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--threads requires a count".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid thread count `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
            }
            "--batch" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--batch requires a count".to_string())?;
                let n: usize = v.parse().map_err(|_| format!("invalid batch size `{v}`"))?;
                if n == 0 {
                    return Err("--batch must be at least 1".to_string());
                }
                batch = Some(n);
            }
            "--shrink" => shrink = true,
            "--cases" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--cases requires a count".to_string())?;
                let n: u64 = v.parse().map_err(|_| format!("invalid case count `{v}`"))?;
                cases = Some(n);
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--seed requires a value".to_string())?;
                let n: u64 = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
                diff_seed = Some(n);
            }
            "--repro-dir" => {
                repro_dir = Some(
                    it.next()
                        .ok_or_else(|| "--repro-dir requires a path".to_string())?
                        .clone(),
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => {
                if which.replace(other.to_string()).is_some() {
                    return Err("more than one experiment given".to_string());
                }
            }
        }
    }
    // `repro --batch 8` alone means "run the batch experiment".
    let which = match which {
        Some(w) => w,
        None if batch.is_some() => "batch".to_string(),
        None => return Err("no experiment given".to_string()),
    };
    if golden_path.is_some() && which != "stats-check" {
        return Err("--golden only applies to `stats-check`".to_string());
    }
    if update_golden && which != "stats-check" {
        return Err("--update only applies to `stats-check`".to_string());
    }
    if which == "stats-check" && golden_path.is_none() {
        return Err("stats-check requires --golden <path>".to_string());
    }
    if batch.is_some() && which != "batch" && which != "all" {
        return Err("--batch only applies to `batch` or `all`".to_string());
    }
    if which != "diffcheck" {
        if cases.is_some() {
            return Err("--cases only applies to `diffcheck`".to_string());
        }
        if diff_seed.is_some() {
            return Err("--seed only applies to `diffcheck`".to_string());
        }
        if shrink {
            return Err("--shrink only applies to `diffcheck`".to_string());
        }
        if repro_dir.is_some() {
            return Err("--repro-dir only applies to `diffcheck`".to_string());
        }
    }
    Ok(Cli {
        which,
        quick,
        json_path,
        metrics_path,
        golden_path,
        update_golden,
        trace,
        threads,
        batch: batch.unwrap_or(1),
        cases: cases.unwrap_or(500),
        diff_seed: diff_seed.unwrap_or(1),
        shrink,
        repro_dir: repro_dir.unwrap_or_else(|| "diffcheck_repros".to_string()),
    })
}

/// Runs one experiment by canonical name, emitting its rendered text and
/// JSON rows. Returns `false` for an unknown name.
fn run_one(
    which: &str,
    quick: bool,
    batch: usize,
    cache: &mut StatsCache,
    emit: &mut dyn FnMut(&str, String, serde_json::Value),
) -> bool {
    match which {
        "fig1" => {
            let rows = fig01::run(quick);
            emit(
                "fig1",
                fig01::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig4" => {
            let rows = fig04::run(quick);
            emit(
                "fig4",
                fig04::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig12" | "fig13" => {
            let rows = fig12::run(quick, cache);
            emit(
                "fig12_13",
                fig12::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig14" | "fig16" => {
            let rows = fig14::run(quick, cache);
            emit(
                "fig14_16",
                fig14::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig15" => {
            let rows = fig15::run(quick);
            emit(
                "fig15",
                fig15::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig17" => {
            let rows = fig17::run(quick, cache);
            emit(
                "fig17",
                fig17::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig18" => {
            let rows = fig18::run(quick);
            emit(
                "fig18",
                fig18::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig19" => {
            let cost = fig19::run_cost();
            let perf = fig19::run_perf(quick, cache);
            emit(
                "fig19",
                fig19::render(&cost, &perf),
                serde_json::json!({"cost": cost, "perf": perf}),
            );
        }
        "table6" => {
            let rows = table6::run();
            emit(
                "table6",
                table6::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "motivation" => {
            let rows = motivation::run(quick, cache);
            emit(
                "motivation",
                motivation::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "multicore" => {
            let rows = multicore_scaling::run(cache);
            emit(
                "multicore",
                multicore_scaling::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "batch" => {
            let rows = engine_batch::run(quick, batch);
            emit(
                "batch",
                engine_batch::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "ablations" => {
            let tiles = ablations::run_tile_size(quick);
            let fifos = ablations::run_fifo_depth(quick);
            let bals = ablations::run_balance_networks(quick, cache);
            emit(
                "ablations",
                ablations::render(&tiles, &fifos, &bals),
                serde_json::json!({"tile_size": tiles, "fifo_depth": fifos, "balance": bals}),
            );
        }
        _ => return false,
    }
    true
}

/// Runs one experiment and reports its wall time on stderr (stderr only:
/// stdout stays byte-identical across thread counts and machines).
fn run_timed(
    which: &str,
    quick: bool,
    batch: usize,
    cache: &mut StatsCache,
    emit: &mut dyn FnMut(&str, String, serde_json::Value),
) -> bool {
    let start = Instant::now();
    let known = run_one(which, quick, batch, cache, emit);
    if known {
        eprintln!("[repro] {which}: {:.2}s", start.elapsed().as_secs_f64());
    }
    known
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = cli.threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("thread pool not yet initialized");
    }
    obs::set_tracing(cli.trace);
    // Counters stay a single disabled-branch check unless this run actually
    // consumes them.
    if cli.metrics_path.is_some() || cli.which == "stats-check" || cli.which == "diffcheck" {
        obs::enable(true);
    }

    let mut cache = StatsCache::new();
    let mut json = serde_json::Map::new();

    if cli.which == "stats-check" {
        return stats_check(&cli, &mut cache);
    }
    if cli.which == "diffcheck" {
        return diffcheck_cmd(&cli);
    }

    let mut emit = |name: &str, text: String, value: serde_json::Value| {
        println!("{text}");
        json.insert(name.to_string(), value);
    };

    let start = Instant::now();
    if cli.which == "all" {
        for which in ALL {
            run_timed(which, cli.quick, cli.batch, &mut cache, &mut emit);
        }
        eprintln!("[repro] total: {:.2}s", start.elapsed().as_secs_f64());
    } else if !run_timed(&cli.which, cli.quick, cli.batch, &mut cache, &mut emit) {
        eprintln!("unknown experiment `{}`\n{USAGE}", cli.which);
        return ExitCode::FAILURE;
    }

    if let Some(path) = cli.json_path {
        match std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()) {
            Ok(()) => eprintln!("wrote JSON results to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = cli.metrics_path {
        match std::fs::write(&path, stats_gate::metrics_json(&obs::snapshot())) {
            Ok(()) => eprintln!("wrote metrics to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `diffcheck` subcommand: drive the differential oracle over a seeded
/// case budget, dumping each divergence as a JSON repro and failing the
/// run if any case diverges.
fn diffcheck_cmd(cli: &Cli) -> ExitCode {
    use bench::diffcheck;
    let start = Instant::now();
    let mut divergences = Vec::new();
    for index in 0..cli.cases {
        if index > 0 && index % 100 == 0 {
            eprintln!(
                "[diffcheck] {index}/{} cases, {} divergence(s), {:.2}s",
                cli.cases,
                divergences.len(),
                start.elapsed().as_secs_f64()
            );
        }
        if let Some(d) = diffcheck::check_one(cli.diff_seed, index, cli.shrink) {
            eprintln!("[diffcheck] case {index} DIVERGED: {}", d.failure);
            divergences.push(d);
        }
    }
    eprintln!("[repro] diffcheck: {:.2}s", start.elapsed().as_secs_f64());

    if !divergences.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&cli.repro_dir) {
            eprintln!("cannot create repro dir {}: {e}", cli.repro_dir);
            return ExitCode::FAILURE;
        }
        for d in &divergences {
            let path = format!("{}/case_{}_{}.json", cli.repro_dir, cli.diff_seed, d.index);
            match std::fs::write(&path, serde_json::to_string_pretty(d).unwrap()) {
                Ok(()) => eprintln!("wrote repro to {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
        println!(
            "diffcheck: {} cases, {} divergence(s) (seed {})",
            cli.cases,
            divergences.len(),
            cli.diff_seed
        );
        return ExitCode::FAILURE;
    }
    println!(
        "diffcheck: {} cases, 0 divergences (seed {})",
        cli.cases, cli.diff_seed
    );
    ExitCode::SUCCESS
}

/// The `stats-check` subcommand: run the quick suite with counters on and
/// diff the snapshot against the golden file (or rewrite it with
/// `--update`). Tables are suppressed — only counters matter here.
fn stats_check(cli: &Cli, cache: &mut StatsCache) -> ExitCode {
    let start = Instant::now();
    let mut emit = |_: &str, _: String, _: serde_json::Value| {};
    for which in ALL {
        // Batch stays 1 so the counter snapshot matches the golden file.
        run_timed(which, true, 1, cache, &mut emit);
    }
    eprintln!("[repro] total: {:.2}s", start.elapsed().as_secs_f64());
    let snap = obs::snapshot();

    if let Some(path) = &cli.metrics_path {
        match std::fs::write(path, stats_gate::metrics_json(&snap)) {
            Ok(()) => eprintln!("wrote metrics to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let golden_path = cli.golden_path.as_deref().expect("validated in parse_args");
    if cli.update_golden {
        // Keep any hand-tuned tolerances from the existing golden.
        let prior = std::fs::read_to_string(golden_path)
            .ok()
            .and_then(|t| stats_gate::parse_golden(&t).ok());
        return match std::fs::write(golden_path, stats_gate::golden_json(&snap, prior.as_ref())) {
            Ok(()) => {
                println!("updated golden stats at {golden_path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to write {golden_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let golden = match std::fs::read_to_string(golden_path) {
        Ok(text) => match stats_gate::parse_golden(&text) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("malformed golden file {golden_path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("cannot read golden file {golden_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let drifts = stats_gate::compare(&snap, &golden);
    if drifts.is_empty() {
        println!(
            "stats-check OK: {} counters within tolerance of {golden_path}",
            golden.counters.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "stats-check FAILED: {} counter(s) drifted from {golden_path}",
            drifts.len()
        );
        for d in &drifts {
            eprintln!("  {d}");
        }
        eprintln!("(run `repro stats-check --golden {golden_path} --update` to accept)");
        ExitCode::FAILURE
    }
}
