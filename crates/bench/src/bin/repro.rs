//! `repro` — regenerates every table and figure of the Ristretto paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick] [--json <path>]
//! experiments: fig1 fig4 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19
//!              table6 motivation multicore ablations all
//! ```
//!
//! `fig13` and `fig16` are energy companions produced by the same runners
//! as `fig12` / `fig14`. `--quick` trims the benchmark to three networks
//! and coarser sweeps. With `--json`, the structured rows are also written
//! to the given path.

use bench::cache::StatsCache;
use bench::experiments::{
    ablations, fig01, fig04, fig12, fig14, fig15, fig17, fig18, fig19, motivation,
    multicore_scaling, table6,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--") && Some(a.as_str()) != json_path.as_deref());
    let Some(which) = which else {
        eprintln!(
            "usage: repro <fig1|fig4|fig12|fig13|fig14|fig15|fig16|fig17|fig18|fig19|table6|motivation|multicore|ablations|all> [--quick] [--json <path>]"
        );
        return ExitCode::FAILURE;
    };

    let mut cache = StatsCache::new();
    let mut json = serde_json::Map::new();
    let mut emit = |name: &str, text: String, value: serde_json::Value| {
        println!("{text}");
        json.insert(name.to_string(), value);
    };

    let run_fig1 = |emit: &mut dyn FnMut(&str, String, serde_json::Value)| {
        let rows = fig01::run(quick);
        emit(
            "fig1",
            fig01::render(&rows),
            serde_json::to_value(&rows).unwrap(),
        );
    };
    let run_fig4 = |emit: &mut dyn FnMut(&str, String, serde_json::Value)| {
        let rows = fig04::run(quick);
        emit(
            "fig4",
            fig04::render(&rows),
            serde_json::to_value(&rows).unwrap(),
        );
    };

    match which.as_str() {
        "fig1" => run_fig1(&mut emit),
        "fig4" => run_fig4(&mut emit),
        "fig12" | "fig13" => {
            let rows = fig12::run(quick, &mut cache);
            emit(
                "fig12_13",
                fig12::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig14" | "fig16" => {
            let rows = fig14::run(quick, &mut cache);
            emit(
                "fig14_16",
                fig14::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig15" => {
            let rows = fig15::run(quick);
            emit(
                "fig15",
                fig15::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig17" => {
            let rows = fig17::run(quick, &mut cache);
            emit(
                "fig17",
                fig17::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig18" => {
            let rows = fig18::run(quick);
            emit(
                "fig18",
                fig18::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "fig19" => {
            let cost = fig19::run_cost();
            let perf = fig19::run_perf(quick, &mut cache);
            emit(
                "fig19",
                fig19::render(&cost, &perf),
                serde_json::json!({"cost": cost, "perf": perf}),
            );
        }
        "table6" => {
            let rows = table6::run();
            emit(
                "table6",
                table6::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "motivation" => {
            let rows = motivation::run(quick, &mut cache);
            emit(
                "motivation",
                motivation::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "multicore" => {
            let rows = multicore_scaling::run(&mut cache);
            emit(
                "multicore",
                multicore_scaling::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
        }
        "ablations" => {
            let tiles = ablations::run_tile_size(quick);
            let fifos = ablations::run_fifo_depth(quick);
            let bals = ablations::run_balance_networks(quick, &mut cache);
            emit(
                "ablations",
                ablations::render(&tiles, &fifos, &bals),
                serde_json::json!({"tile_size": tiles, "fifo_depth": fifos, "balance": bals}),
            );
        }
        "all" => {
            run_fig1(&mut emit);
            run_fig4(&mut emit);
            let rows = table6::run();
            emit(
                "table6",
                table6::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
            let rows = fig12::run(quick, &mut cache);
            emit(
                "fig12_13",
                fig12::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
            let rows = fig14::run(quick, &mut cache);
            emit(
                "fig14_16",
                fig14::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
            let rows = fig15::run(quick);
            emit(
                "fig15",
                fig15::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
            let rows = fig17::run(quick, &mut cache);
            emit(
                "fig17",
                fig17::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
            let rows = fig18::run(quick);
            emit(
                "fig18",
                fig18::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
            let cost = fig19::run_cost();
            let perf = fig19::run_perf(quick, &mut cache);
            emit(
                "fig19",
                fig19::render(&cost, &perf),
                serde_json::json!({"cost": cost, "perf": perf}),
            );
            let rows = motivation::run(quick, &mut cache);
            emit(
                "motivation",
                motivation::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
            let rows = multicore_scaling::run(&mut cache);
            emit(
                "multicore",
                multicore_scaling::render(&rows),
                serde_json::to_value(&rows).unwrap(),
            );
            let tiles = ablations::run_tile_size(quick);
            let fifos = ablations::run_fifo_depth(quick);
            let bals = ablations::run_balance_networks(quick, &mut cache);
            emit(
                "ablations",
                ablations::render(&tiles, &fifos, &bals),
                serde_json::json!({"tile_size": tiles, "fifo_depth": fifos, "balance": bals}),
            );
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = json_path {
        match std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()) {
            Ok(()) => eprintln!("wrote JSON results to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
