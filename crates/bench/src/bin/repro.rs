//! `repro` — regenerates every table and figure of the Ristretto paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick] [--json <path>] [--metrics <path>]
//!                    [--threads <n>] [--trace] [--batch <n>]
//! repro stats-check --golden <path> [--metrics <path>] [--update]
//!                    [--threads <n>]
//! experiments: fig1 fig4 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19
//!              table6 motivation multicore scaling ablations batch all
//! ```
//!
//! `fig13` and `fig16` are energy companions produced by the same runners
//! as `fig12` / `fig14`. `scaling` runs the sharded fleet simulator's
//! strong/weak-scaling curves across core counts (see `DESIGN.md` §11).
//! `--quick` trims the benchmark to three networks and coarser sweeps.
//! With `--json`, the structured rows are also written to the given path.
//!
//! `--metrics` additionally enables the observability counters and writes
//! their snapshot (sorted, schema-stable JSON; see `OBSERVABILITY.md`) to
//! the given path. `--trace` prints wall-clock span timings to stderr.
//!
//! `stats-check` runs the quick suite with counters enabled and diffs the
//! snapshot against a checked-in golden file, exiting non-zero on drift —
//! the CI stats-regression gate. `--update` rewrites the golden from the
//! live run instead (preserving its tolerance section).
//!
//! `diffcheck` draws `--cases` seeded random (layer, config) cases and runs
//! the differential oracle of `bench::diffcheck` on each — cross-path
//! output equality at 1 and 4 threads, lossless compression round-trips,
//! cycle-model invariants, artifact round-trips, and 1-core-fleet ≡
//! single-core-session equivalence. Any divergence fails the run; `--shrink`
//! additionally minimizes each failing case, and every divergence is
//! dumped as a JSON repro under `--repro-dir` (default
//! `diffcheck_repros/`).
//!
//! `--threads <n>` caps the worker threads of the parallel execution layer
//! (default: all hardware threads; `--threads 1` forces the serial path).
//! Every parallel fan-out in the harness collects results in deterministic
//! input order, so stdout, the `--json` file and the `--metrics` file are
//! byte-identical at any thread count. Per-experiment wall times go to
//! stderr only, keeping stdout reproducible.
//!
//! `--batch <n>` sets the images served per compiled network by the
//! `batch` experiment (default 1; implies `batch` when no experiment is
//! named) — per-image wall time falls as the batch grows because the
//! engine compiles each network's static weight artifacts once.
//!
//! `--model-cache <dir>` routes compilation of the `batch` experiment
//! (and `repro all`) through the on-disk model cache: the first run
//! against a directory compiles and persists versioned, checksummed
//! artifacts; later runs load and verify them. Tables and JSON stay
//! byte-identical either way. `cache stats|clear|verify` inspect, empty,
//! or integrity-check such a directory.
//!
//! `artifact save` compiles the benchmark networks and persists their
//! artifacts into `--model-cache`; `artifact check` (typically a separate
//! process, as in CI) strict-loads each one back, re-encodes it, and
//! proves the decoded network runs byte-identically to a fresh in-memory
//! compile at 1 and 4 worker threads.
//!
//! `perf-check` measures the self-timed bench suite and gates a small set
//! of key medians (CSC sparse conv, steady-state streams, per-network
//! cache-hit load) against a checked-in `BENCH_*.json` baseline with a
//! generous `--tolerance` ratio — the CI perf-regression gate.
//!
//! `chaos` runs the deterministic fault-injection campaign of
//! `bench::chaos`: `--campaign <n>` seeded cases, each probing every
//! injectable structure with detection/recovery on (result must match the
//! fault-free baseline) and with monitors off (classifying masked vs
//! silent corruption). Exits non-zero if any detection-on run silently
//! diverged. `--seed <s>` re-rolls the campaign.
//!
//! `--timeout-secs <n>` arms an opt-in watchdog: if any single experiment
//! (or chaos/diffcheck case) runs longer than `n` seconds, the process
//! aborts with a diagnostic naming the hung step and its elapsed time.

use bench::cache::StatsCache;
use bench::experiments::{
    ablations, engine_batch, fig01, fig04, fig12, fig14, fig15, fig17, fig18, fig19, motivation,
    multicore_scaling, scaling, table6,
};
use bench::stats_gate;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: repro <fig1|fig4|fig12|fig13|fig14|fig15|fig16|fig17|fig18|fig19|table6|motivation|multicore|scaling|ablations|batch|all> [--quick] [--json <path>] [--metrics <path>] [--threads <n>] [--trace] [--batch <n>] [--model-cache <dir>] [--timeout-secs <n>]
       repro stats-check --golden <path> [--metrics <path>] [--update] [--threads <n>]
       repro diffcheck [--cases <n>] [--seed <s>] [--shrink] [--repro-dir <path>]
       repro chaos [--campaign <n>] [--seed <s>] [--json <path>]
       repro bench [--quick] [--json <path>] [--threads <n>]
       repro cache <stats|clear|verify> --model-cache <dir>
       repro artifact <save|check> --model-cache <dir> [--quick]
       repro perf-check --baseline <path> [--tolerance <x>] [--quick] [--json <path>]
       repro serve [--clients <n>] [--requests <n>] [--lambda <r>] [--mix <spec>]
                   [--max-batch <n>] [--max-wait <t>] [--queue-cap <n>]
                   [--fleet-cores <n>] [--deadline <t>] [--slo-class <spec>]
                   [--brownout <permille>] [--retry-budget <n>]
                   [--chaos] [--model-cache <dir>] [--seed <s>] [--quick]
                   [--json <path>] [--metrics <path>] [--threads <n>]";

/// Canonical experiment order of `repro all`.
const ALL: [&str; 14] = [
    "fig1",
    "fig4",
    "table6",
    "fig12",
    "fig14",
    "fig15",
    "fig17",
    "fig18",
    "fig19",
    "motivation",
    "multicore",
    "scaling",
    "ablations",
    "batch",
];

/// Parsed command line.
struct Cli {
    which: String,
    /// Second positional of the two-word subcommands (`cache <sub>`,
    /// `artifact <sub>`).
    sub: Option<String>,
    quick: bool,
    json_path: Option<String>,
    metrics_path: Option<String>,
    golden_path: Option<String>,
    update_golden: bool,
    trace: bool,
    threads: Option<usize>,
    batch: usize,
    model_cache: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    cases: u64,
    diff_seed: u64,
    shrink: bool,
    repro_dir: Option<String>,
    campaign: u64,
    timeout_secs: Option<u64>,
    /// `repro serve` parameters (the `--seed` flag is shared with
    /// diffcheck/chaos; serve defaults to the suite seed when unset).
    serve: bench::serve_cli::ServeArgs,
}

/// Parses arguments; option values (`--json`, `--metrics`, `--golden`,
/// `--threads`) are consumed and can never be mistaken for the experiment
/// name.
fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut quick = false;
    let mut json_path = None;
    let mut metrics_path = None;
    let mut golden_path = None;
    let mut update_golden = false;
    let mut trace = false;
    let mut threads = None;
    let mut batch = None;
    let mut cases = None;
    let mut diff_seed = None;
    let mut shrink = false;
    let mut repro_dir = None;
    let mut campaign = None;
    let mut timeout_secs = None;
    let mut model_cache = None;
    let mut baseline = None;
    let mut tolerance = None;
    let mut clients = None;
    let mut requests = None;
    let mut lambda = None;
    let mut mix = None;
    let mut max_batch = None;
    let mut max_wait = None;
    let mut queue_cap = None;
    let mut fleet_cores = None;
    let mut deadline = None;
    let mut slo_class = None;
    let mut brownout = None;
    let mut retry_budget = None;
    let mut chaos_load = false;
    let mut positionals: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--update" => update_golden = true,
            "--trace" => trace = true,
            "--json" => {
                json_path = Some(
                    it.next()
                        .ok_or_else(|| "--json requires a path".to_string())?
                        .clone(),
                );
            }
            "--metrics" => {
                metrics_path = Some(
                    it.next()
                        .ok_or_else(|| "--metrics requires a path".to_string())?
                        .clone(),
                );
            }
            "--golden" => {
                golden_path = Some(
                    it.next()
                        .ok_or_else(|| "--golden requires a path".to_string())?
                        .clone(),
                );
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--threads requires a count".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid thread count `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
            }
            "--batch" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--batch requires a count".to_string())?;
                let n: usize = v.parse().map_err(|_| format!("invalid batch size `{v}`"))?;
                if n == 0 {
                    return Err("--batch must be at least 1".to_string());
                }
                batch = Some(n);
            }
            "--shrink" => shrink = true,
            "--cases" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--cases requires a count".to_string())?;
                let n: u64 = v.parse().map_err(|_| format!("invalid case count `{v}`"))?;
                cases = Some(n);
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--seed requires a value".to_string())?;
                let n: u64 = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
                diff_seed = Some(n);
            }
            "--repro-dir" => {
                repro_dir = Some(
                    it.next()
                        .ok_or_else(|| "--repro-dir requires a path".to_string())?
                        .clone(),
                );
            }
            "--campaign" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--campaign requires a count".to_string())?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid campaign size `{v}`"))?;
                if n == 0 {
                    return Err("--campaign must be at least 1".to_string());
                }
                campaign = Some(n);
            }
            "--timeout-secs" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--timeout-secs requires a count".to_string())?;
                let n: u64 = v.parse().map_err(|_| format!("invalid timeout `{v}`"))?;
                if n == 0 {
                    return Err("--timeout-secs must be at least 1".to_string());
                }
                timeout_secs = Some(n);
            }
            "--model-cache" => {
                model_cache = Some(
                    it.next()
                        .ok_or_else(|| "--model-cache requires a directory".to_string())?
                        .clone(),
                );
            }
            "--clients" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--clients requires a count".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid client count `{v}`"))?;
                if n == 0 {
                    return Err("--clients must be at least 1".to_string());
                }
                clients = Some(n);
            }
            "--requests" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--requests requires a count".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid request count `{v}`"))?;
                requests = Some(n);
            }
            "--lambda" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--lambda requires a rate".to_string())?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid arrival rate `{v}`"))?;
                if n == 0 {
                    return Err("--lambda must be at least 1 request per megatick".to_string());
                }
                lambda = Some(n);
            }
            "--mix" => {
                mix = Some(
                    it.next()
                        .ok_or_else(|| {
                            "--mix requires a spec like `AlexNet=3,GoogLeNet=1`".to_string()
                        })?
                        .clone(),
                );
            }
            "--max-batch" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--max-batch requires a count".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid batch bound `{v}`"))?;
                if n == 0 {
                    return Err("--max-batch must be at least 1".to_string());
                }
                max_batch = Some(n);
            }
            "--max-wait" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--max-wait requires a tick count".to_string())?;
                let n: u64 = v.parse().map_err(|_| format!("invalid wait bound `{v}`"))?;
                max_wait = Some(n);
            }
            "--queue-cap" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--queue-cap requires a count".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid queue capacity `{v}`"))?;
                if n == 0 {
                    return Err("--queue-cap must be at least 1".to_string());
                }
                queue_cap = Some(n);
            }
            "--fleet-cores" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--fleet-cores requires a count".to_string())?;
                let n: usize = v.parse().map_err(|_| format!("invalid core count `{v}`"))?;
                if n == 0 {
                    return Err("--fleet-cores must be at least 1".to_string());
                }
                fleet_cores = Some(n);
            }
            "--deadline" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--deadline requires a tick count".to_string())?;
                let n: u64 = v.parse().map_err(|_| format!("invalid deadline `{v}`"))?;
                if n == 0 {
                    return Err("--deadline must be at least 1 microtick".to_string());
                }
                deadline = Some(n);
            }
            "--slo-class" => {
                let v = it.next().ok_or_else(|| {
                    "--slo-class requires a spec like `interactive,batch,best-effort`".to_string()
                })?;
                slo_class = Some(bench::serve_cli::parse_classes(v)?);
            }
            "--brownout" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--brownout requires a permille value".to_string())?;
                let n: u16 = v
                    .parse()
                    .map_err(|_| format!("invalid brownout permille `{v}`"))?;
                if n == 0 || n > 1000 {
                    return Err(format!(
                        "--brownout must be within 1..=1000 permille (got {n})"
                    ));
                }
                brownout = Some(n);
            }
            "--retry-budget" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--retry-budget requires a count".to_string())?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("invalid retry budget `{v}`"))?;
                if n > 16 {
                    return Err(format!(
                        "--retry-budget must be at most 16 retries per request (got {n})"
                    ));
                }
                retry_budget = Some(n);
            }
            "--chaos" => chaos_load = true,
            "--baseline" => {
                baseline = Some(
                    it.next()
                        .ok_or_else(|| "--baseline requires a path".to_string())?
                        .clone(),
                );
            }
            "--tolerance" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--tolerance requires a ratio".to_string())?;
                let x: f64 = v.parse().map_err(|_| format!("invalid tolerance `{v}`"))?;
                // NaN must fail too, so compare in the rejecting direction.
                if x < 1.0 || x.is_nan() {
                    return Err("--tolerance must be at least 1.0".to_string());
                }
                tolerance = Some(x);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => positionals.push(other.to_string()),
        }
    }
    // `repro --batch 8` alone means "run the batch experiment".
    let (which, sub) = match positionals.len() {
        0 if batch.is_some() => ("batch".to_string(), None),
        0 => return Err("no experiment given".to_string()),
        1 => (positionals.remove(0), None),
        2 if positionals[0] == "cache" || positionals[0] == "artifact" => {
            let sub = positionals.pop();
            (positionals.remove(0), sub)
        }
        _ => return Err("more than one experiment given".to_string()),
    };
    match which.as_str() {
        "cache" => match sub.as_deref() {
            Some("stats" | "clear" | "verify") => {}
            Some(s) => return Err(format!("unknown cache subcommand `{s}`")),
            None => return Err("cache requires a subcommand: stats, clear or verify".to_string()),
        },
        "artifact" => match sub.as_deref() {
            Some("save" | "check") => {}
            Some(s) => return Err(format!("unknown artifact subcommand `{s}`")),
            None => return Err("artifact requires a subcommand: save or check".to_string()),
        },
        _ => {}
    }
    if (which == "cache" || which == "artifact") && model_cache.is_none() {
        return Err(format!("{which} requires --model-cache <dir>"));
    }
    if model_cache.is_some()
        && !matches!(
            which.as_str(),
            "batch" | "all" | "cache" | "artifact" | "serve"
        )
    {
        return Err(
            "--model-cache only applies to `batch`, `all`, `cache`, `artifact` or `serve`"
                .to_string(),
        );
    }
    if which == "perf-check" && baseline.is_none() {
        return Err("perf-check requires --baseline <path>".to_string());
    }
    if baseline.is_some() && which != "perf-check" {
        return Err("--baseline only applies to `perf-check`".to_string());
    }
    if tolerance.is_some() && which != "perf-check" {
        return Err("--tolerance only applies to `perf-check`".to_string());
    }
    if golden_path.is_some() && which != "stats-check" {
        return Err("--golden only applies to `stats-check`".to_string());
    }
    if update_golden && which != "stats-check" {
        return Err("--update only applies to `stats-check`".to_string());
    }
    if which == "stats-check" && golden_path.is_none() {
        return Err("stats-check requires --golden <path>".to_string());
    }
    if batch.is_some() && which != "batch" && which != "all" {
        return Err("--batch only applies to `batch` or `all`".to_string());
    }
    if which != "diffcheck" {
        if cases.is_some() {
            return Err("--cases only applies to `diffcheck`".to_string());
        }
        if shrink {
            return Err("--shrink only applies to `diffcheck`".to_string());
        }
        if repro_dir.is_some() {
            return Err("--repro-dir only applies to `diffcheck`".to_string());
        }
    }
    if diff_seed.is_some() && !matches!(which.as_str(), "diffcheck" | "chaos" | "serve") {
        return Err("--seed only applies to `diffcheck`, `chaos` or `serve`".to_string());
    }
    if campaign.is_some() && which != "chaos" {
        return Err("--campaign only applies to `chaos`".to_string());
    }
    if which != "serve" {
        let serve_only: [(&str, bool); 13] = [
            ("--clients", clients.is_some()),
            ("--requests", requests.is_some()),
            ("--lambda", lambda.is_some()),
            ("--mix", mix.is_some()),
            ("--max-batch", max_batch.is_some()),
            ("--max-wait", max_wait.is_some()),
            ("--queue-cap", queue_cap.is_some()),
            ("--fleet-cores", fleet_cores.is_some()),
            ("--deadline", deadline.is_some()),
            ("--slo-class", slo_class.is_some()),
            ("--brownout", brownout.is_some()),
            ("--retry-budget", retry_budget.is_some()),
            ("--chaos", chaos_load),
        ];
        if let Some((flag, _)) = serve_only.iter().find(|(_, set)| *set) {
            return Err(format!("{flag} only applies to `serve`"));
        }
    }
    let serve_defaults = bench::serve_cli::ServeArgs::default();
    let serve = bench::serve_cli::ServeArgs {
        seed: diff_seed.unwrap_or(serve_defaults.seed),
        clients: clients.unwrap_or(serve_defaults.clients),
        requests: requests.unwrap_or(serve_defaults.requests),
        lambda: lambda.unwrap_or(serve_defaults.lambda),
        mix,
        max_batch: max_batch.unwrap_or(serve_defaults.max_batch),
        max_wait: max_wait.unwrap_or(serve_defaults.max_wait),
        queue_cap: queue_cap.unwrap_or(serve_defaults.queue_cap),
        fleet_cores: fleet_cores.unwrap_or(serve_defaults.fleet_cores),
        deadline,
        slo_classes: slo_class,
        brownout: brownout.unwrap_or(serve_defaults.brownout),
        retry_budget: retry_budget.unwrap_or(serve_defaults.retry_budget),
        chaos: chaos_load,
        model_cache: (which == "serve")
            .then(|| model_cache.clone().map(std::path::PathBuf::from))
            .flatten(),
        quick,
    };
    // Cross-flag conflicts (e.g. --brownout without a best-effort tenant)
    // fail at parse time with the flag named, not mid-run.
    if which == "serve" {
        bench::serve_cli::validate(&serve)?;
    }
    Ok(Cli {
        which,
        sub,
        quick,
        json_path,
        metrics_path,
        golden_path,
        update_golden,
        trace,
        threads,
        batch: batch.unwrap_or(1),
        model_cache,
        baseline,
        tolerance: tolerance.unwrap_or(bench::perf_gate::DEFAULT_TOLERANCE),
        cases: cases.unwrap_or(500),
        diff_seed: diff_seed.unwrap_or(1),
        shrink,
        repro_dir,
        campaign: campaign.unwrap_or(25),
        timeout_secs,
        serve,
    })
}

/// An opt-in hang detector (`--timeout-secs`): a polling thread that
/// aborts the whole process when the currently-registered step has been
/// running longer than the budget, printing a diagnostic that names it.
/// Abort (rather than unwinding) is deliberate — the hung step is by
/// definition not going to return and cannot be cancelled cooperatively.
struct Watchdog {
    current: Arc<Mutex<Option<(String, Instant)>>>,
}

impl Watchdog {
    fn arm(timeout: Duration) -> Self {
        let current: Arc<Mutex<Option<(String, Instant)>>> = Arc::new(Mutex::new(None));
        let watched = Arc::clone(&current);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(50));
            let hung = {
                let guard = watched.lock().unwrap_or_else(|e| e.into_inner());
                guard.as_ref().and_then(|(name, since)| {
                    (since.elapsed() > timeout).then(|| (name.clone(), since.elapsed()))
                })
            };
            if let Some((name, elapsed)) = hung {
                eprintln!(
                    "[watchdog] step `{name}` exceeded --timeout-secs {} (running {:.1}s); aborting",
                    timeout.as_secs(),
                    elapsed.as_secs_f64()
                );
                std::process::exit(124);
            }
        });
        Self { current }
    }

    /// Registers `name` as the step under watch; its clock starts now.
    fn enter(&self, name: &str) {
        let mut guard = self.current.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some((name.to_string(), Instant::now()));
    }

    /// Clears the watch (between steps nothing can hang).
    fn clear(&self) {
        let mut guard = self.current.lock().unwrap_or_else(|e| e.into_inner());
        *guard = None;
    }
}

/// Registers `name` on the watchdog if one is armed.
fn watch(wd: &Option<Watchdog>, name: &str) {
    if let Some(wd) = wd {
        wd.enter(name);
    }
}

/// Serializes experiment rows, naming the experiment on failure instead of
/// panicking (part of the no-unwrap policy of the CLI surface).
fn rows_json<T: serde::Serialize>(name: &str, rows: &T) -> Result<serde_json::Value, String> {
    serde_json::to_value(rows).map_err(|e| format!("serializing `{name}` rows: {e}"))
}

/// Runs one experiment by canonical name, emitting its rendered text and
/// JSON rows. Returns `Ok(false)` for an unknown name.
fn run_one(
    which: &str,
    quick: bool,
    batch: usize,
    model_cache: Option<&std::path::Path>,
    cache: &mut StatsCache,
    emit: &mut dyn FnMut(&str, String, serde_json::Value),
) -> Result<bool, String> {
    match which {
        "fig1" => {
            let rows = fig01::run(quick);
            emit("fig1", fig01::render(&rows), rows_json("fig1", &rows)?);
        }
        "fig4" => {
            let rows = fig04::run(quick);
            emit("fig4", fig04::render(&rows), rows_json("fig4", &rows)?);
        }
        "fig12" | "fig13" => {
            let rows = fig12::run(quick, cache);
            emit(
                "fig12_13",
                fig12::render(&rows),
                rows_json("fig12_13", &rows)?,
            );
        }
        "fig14" | "fig16" => {
            let rows = fig14::run(quick, cache);
            emit(
                "fig14_16",
                fig14::render(&rows),
                rows_json("fig14_16", &rows)?,
            );
        }
        "fig15" => {
            let rows = fig15::run(quick);
            emit("fig15", fig15::render(&rows), rows_json("fig15", &rows)?);
        }
        "fig17" => {
            let rows = fig17::run(quick, cache);
            emit("fig17", fig17::render(&rows), rows_json("fig17", &rows)?);
        }
        "fig18" => {
            let rows = fig18::run(quick);
            emit("fig18", fig18::render(&rows), rows_json("fig18", &rows)?);
        }
        "fig19" => {
            let cost = fig19::run_cost();
            let perf = fig19::run_perf(quick, cache);
            emit(
                "fig19",
                fig19::render(&cost, &perf),
                serde_json::json!({"cost": cost, "perf": perf}),
            );
        }
        "table6" => {
            let rows = table6::run();
            emit("table6", table6::render(&rows), rows_json("table6", &rows)?);
        }
        "motivation" => {
            let rows = motivation::run(quick, cache);
            emit(
                "motivation",
                motivation::render(&rows),
                rows_json("motivation", &rows)?,
            );
        }
        "multicore" => {
            let rows = multicore_scaling::run(cache);
            emit(
                "multicore",
                multicore_scaling::render(&rows),
                rows_json("multicore", &rows)?,
            );
        }
        "scaling" => {
            let rows = scaling::run(quick);
            emit(
                "scaling",
                scaling::render(&rows),
                rows_json("scaling", &rows)?,
            );
        }
        "batch" => {
            let rows = engine_batch::run(quick, batch, model_cache)?;
            emit(
                "batch",
                engine_batch::render(&rows),
                rows_json("batch", &rows)?,
            );
        }
        "ablations" => {
            let tiles = ablations::run_tile_size(quick);
            let fifos = ablations::run_fifo_depth(quick);
            let bals = ablations::run_balance_networks(quick, cache);
            emit(
                "ablations",
                ablations::render(&tiles, &fifos, &bals),
                serde_json::json!({"tile_size": tiles, "fifo_depth": fifos, "balance": bals}),
            );
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Runs one experiment and reports its wall time on stderr (stderr only:
/// stdout stays byte-identical across thread counts and machines).
fn run_timed(
    which: &str,
    quick: bool,
    batch: usize,
    model_cache: Option<&std::path::Path>,
    cache: &mut StatsCache,
    watchdog: &Option<Watchdog>,
    emit: &mut dyn FnMut(&str, String, serde_json::Value),
) -> Result<bool, String> {
    let start = Instant::now();
    watch(watchdog, which);
    let known = run_one(which, quick, batch, model_cache, cache, emit)?;
    if let Some(wd) = watchdog {
        wd.clear();
    }
    if known {
        eprintln!("[repro] {which}: {:.2}s", start.elapsed().as_secs_f64());
    }
    Ok(known)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = cli.threads {
        if let Err(e) = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
        {
            eprintln!("cannot configure {n} worker thread(s): {e}");
            return ExitCode::FAILURE;
        }
    }
    obs::set_tracing(cli.trace);
    // Counters stay a single disabled-branch check unless this run actually
    // consumes them.
    if cli.metrics_path.is_some() || cli.which == "stats-check" || cli.which == "diffcheck" {
        obs::enable(true);
    }
    let watchdog = cli
        .timeout_secs
        .map(|s| Watchdog::arm(Duration::from_secs(s)));

    let mut cache = StatsCache::new();
    let mut json = serde_json::Map::new();

    if cli.which == "stats-check" {
        return stats_check(&cli, &mut cache, &watchdog);
    }
    if cli.which == "diffcheck" {
        return diffcheck_cmd(&cli, &watchdog);
    }
    if cli.which == "chaos" {
        return chaos_cmd(&cli, &watchdog);
    }
    if cli.which == "bench" {
        return bench_cmd(&cli, &watchdog);
    }
    if cli.which == "cache" {
        return cache_cmd(&cli);
    }
    if cli.which == "artifact" {
        return artifact_cmd(&cli, &watchdog);
    }
    if cli.which == "perf-check" {
        return perf_check_cmd(&cli, &watchdog);
    }
    if cli.which == "serve" {
        return serve_cmd(&cli, &watchdog);
    }

    let model_cache = cli.model_cache.as_ref().map(std::path::Path::new);
    let mut emit = |name: &str, text: String, value: serde_json::Value| {
        println!("{text}");
        json.insert(name.to_string(), value);
    };

    let start = Instant::now();
    if cli.which == "all" {
        for which in ALL {
            if let Err(e) = run_timed(
                which,
                cli.quick,
                cli.batch,
                model_cache,
                &mut cache,
                &watchdog,
                &mut emit,
            ) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("[repro] total: {:.2}s", start.elapsed().as_secs_f64());
    } else {
        match run_timed(
            &cli.which,
            cli.quick,
            cli.batch,
            model_cache,
            &mut cache,
            &watchdog,
            &mut emit,
        ) {
            Ok(true) => {}
            Ok(false) => {
                eprintln!("unknown experiment `{}`\n{USAGE}", cli.which);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = cli.json_path {
        let text = match serde_json::to_string_pretty(&json) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serializing JSON results for {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("wrote JSON results to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = cli.metrics_path {
        let text = match stats_gate::metrics_json(&obs::snapshot()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("wrote metrics to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `diffcheck` subcommand: drive the differential oracle over a seeded
/// case budget, dumping each divergence as a JSON repro and failing the
/// run if any case diverges.
fn diffcheck_cmd(cli: &Cli, watchdog: &Option<Watchdog>) -> ExitCode {
    use bench::diffcheck;
    let repro_dir = cli.repro_dir.as_deref().unwrap_or("diffcheck_repros");
    // An explicitly-requested repro dir is probed for writability *before*
    // the case budget runs: a multi-minute sweep that cannot persist its
    // repros is wasted work.
    if cli.repro_dir.is_some() {
        if let Err(e) = probe_writable_dir(repro_dir) {
            eprintln!("repro dir {repro_dir} is not writable: {e}");
            return ExitCode::FAILURE;
        }
    }
    let start = Instant::now();
    let mut divergences = Vec::new();
    for index in 0..cli.cases {
        watch(watchdog, &format!("diffcheck case {index}"));
        if index > 0 && index % 100 == 0 {
            eprintln!(
                "[diffcheck] {index}/{} cases, {} divergence(s), {:.2}s",
                cli.cases,
                divergences.len(),
                start.elapsed().as_secs_f64()
            );
        }
        if let Some(d) = diffcheck::check_one(cli.diff_seed, index, cli.shrink) {
            eprintln!("[diffcheck] case {index} DIVERGED: {}", d.failure);
            divergences.push(d);
        }
    }
    if let Some(wd) = watchdog {
        wd.clear();
    }
    eprintln!("[repro] diffcheck: {:.2}s", start.elapsed().as_secs_f64());

    if !divergences.is_empty() {
        if let Err(e) = std::fs::create_dir_all(repro_dir) {
            eprintln!("cannot create repro dir {repro_dir}: {e}");
            return ExitCode::FAILURE;
        }
        for d in &divergences {
            let path = format!("{repro_dir}/case_{}_{}.json", cli.diff_seed, d.index);
            match serde_json::to_string_pretty(d) {
                Ok(text) => match std::fs::write(&path, text) {
                    Ok(()) => eprintln!("wrote repro to {path}"),
                    Err(e) => eprintln!("failed to write {path}: {e}"),
                },
                Err(e) => eprintln!("serializing repro for {path}: {e}"),
            }
        }
        println!(
            "diffcheck: {} cases, {} divergence(s) (seed {})",
            cli.cases,
            divergences.len(),
            cli.diff_seed
        );
        return ExitCode::FAILURE;
    }
    println!(
        "diffcheck: {} cases, 0 divergences (seed {})",
        cli.cases, cli.diff_seed
    );
    ExitCode::SUCCESS
}

/// The `bench` subcommand: run the self-timed micro and batch suites of
/// `bench::microbench` and optionally record the `ristretto-bench/v3` JSON
/// report (the checked-in benchmark trajectory, see `BENCH_8.json`).
/// Deliberately *not* part of `repro all`: wall times are machine-bound, so
/// they would break the byte-identical-across-thread-counts contract of the
/// experiment suite.
fn bench_cmd(cli: &Cli, watchdog: &Option<Watchdog>) -> ExitCode {
    let start = Instant::now();
    watch(watchdog, "bench suite");
    let report = bench::microbench::run(cli.quick);
    if let Some(wd) = watchdog {
        wd.clear();
    }
    eprintln!("[repro] bench: {:.2}s", start.elapsed().as_secs_f64());
    print!("{}", bench::microbench::render(&report));
    if let Some(path) = &cli.json_path {
        let text = match serde_json::to_string_pretty(&report) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serializing bench report for {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match std::fs::write(path, text) {
            Ok(()) => eprintln!("wrote bench report to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `cache` subcommand: inspect (`stats`), empty (`clear`) or
/// integrity-check (`verify`) an on-disk model-cache directory. `verify`
/// strict-loads every artifact — checksums, format version and the
/// content address are all re-checked — and exits non-zero when any file
/// fails, naming the file and the rejected section.
fn cache_cmd(cli: &Cli) -> ExitCode {
    use ristretto_sim::modelcache::ModelCache;
    let dir = cli.model_cache.as_deref().unwrap_or_default();
    let cache = ModelCache::new(dir);
    match cli.sub.as_deref() {
        Some("stats") => match cache.stats() {
            Ok(s) => {
                println!(
                    "cache {dir}: {} artifact(s), {} byte(s)",
                    s.entries, s.bytes
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cache stats failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some("clear") => match cache.clear() {
            Ok(n) => {
                println!("cache {dir}: removed {n} artifact(s)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cache clear failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some("verify") => match cache.verify() {
            Ok(results) => {
                let mut bad = 0;
                for (path, verdict) in &results {
                    match verdict {
                        Ok(()) => println!("[ok]   {}", path.display()),
                        Err(e) => {
                            bad += 1;
                            println!("[FAIL] {}: {e}", path.display());
                        }
                    }
                }
                println!(
                    "cache {dir}: {} artifact(s) verified, {bad} rejected",
                    results.len()
                );
                if bad == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("cache verify failed: {e}");
                ExitCode::FAILURE
            }
        },
        // Unreachable by construction (parse_args validates the sub).
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// The `artifact` subcommand. `save` compiles the benchmark networks and
/// persists their artifacts; `check` — run afterwards, typically in a
/// separate process so nothing survives from the compiling one — proves
/// for every network that the strict-loaded artifact equals a fresh
/// in-memory compile, re-encodes byte-identically, and that a session
/// over the decoded network is byte-identical to the in-memory session
/// at 1 and 4 worker threads.
fn artifact_cmd(cli: &Cli, watchdog: &Option<Watchdog>) -> ExitCode {
    use ristretto_sim::artifact;
    use ristretto_sim::config::RistrettoConfig;
    use ristretto_sim::engine::{compile, Session};
    use ristretto_sim::modelcache::{CacheKey, ModelCache};

    let dir = cli.model_cache.as_deref().unwrap_or_default();
    let cache = ModelCache::new(dir);
    let cfg = RistrettoConfig::paper_default();
    let save = cli.sub.as_deref() == Some("save");
    let start = Instant::now();
    for (idx, (name, model)) in engine_batch::benchmark_models(cli.quick)
        .into_iter()
        .enumerate()
    {
        watch(
            watchdog,
            &format!("artifact {} {name}", if save { "save" } else { "check" }),
        );
        let key = CacheKey::derive(&model, &cfg);
        let net = match compile(&model, &cfg) {
            Ok(net) => net,
            Err(e) => {
                eprintln!("{name}: compile failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = std::path::Path::new(dir).join(key.file_name());
        if save {
            match cache.store(&net, key) {
                Ok(bytes) => println!("saved {name}: {} ({bytes} bytes)", key.file_name()),
                Err(e) => {
                    eprintln!("{name}: store failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            continue;
        }
        let decoded = match cache.load(&path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{name}: load failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if decoded != *net {
            eprintln!("{name}: decoded artifact differs from in-memory compile");
            return ExitCode::FAILURE;
        }
        if artifact::encode(&decoded) != artifact::encode(&net) {
            eprintln!("{name}: re-encoded artifact is not byte-identical");
            return ExitCode::FAILURE;
        }
        let (c, h, w) = net.input();
        let input = engine_batch::benchmark_input(idx, 0, c, h, w);
        let session_mem = Session::new(net);
        let session_disk = Session::new(std::sync::Arc::new(decoded));
        for threads in [1usize, 4] {
            let pool = match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{name}: pool({threads}): {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mem = pool.install(|| session_mem.run(&input));
            let disk = pool.install(|| session_disk.run(&input));
            match (mem, disk) {
                (Ok(mem), Ok(disk)) => {
                    if mem.output != disk.output
                        || mem.traces.iter().map(|t| t.stats).collect::<Vec<_>>()
                            != disk.traces.iter().map(|t| t.stats).collect::<Vec<_>>()
                    {
                        eprintln!(
                            "{name}: cache-hit session diverges from in-memory session \
                             at {threads} thread(s)"
                        );
                        return ExitCode::FAILURE;
                    }
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{name}: session at {threads} thread(s): {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!(
            "checked {name}: {} byte-identical at 1 and 4 threads",
            key.file_name()
        );
    }
    if let Some(wd) = watchdog {
        wd.clear();
    }
    eprintln!("[repro] artifact: {:.2}s", start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

/// The `perf-check` subcommand: measure the self-timed bench suite and
/// gate its key series against a checked-in baseline report.
fn perf_check_cmd(cli: &Cli, watchdog: &Option<Watchdog>) -> ExitCode {
    use bench::perf_gate;
    let baseline_path = match cli.baseline.as_deref() {
        Some(p) => p,
        // Unreachable by construction (parse_args requires --baseline).
        None => {
            eprintln!("perf-check requires --baseline <path>\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Parse the baseline before measuring: a malformed file should fail in
    // milliseconds, not after the bench suite.
    let baseline: bench::microbench::BenchReport = match std::fs::read_to_string(baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let start = Instant::now();
    watch(watchdog, "perf-check bench suite");
    let live = bench::microbench::run(cli.quick);
    if let Some(wd) = watchdog {
        wd.clear();
    }
    eprintln!("[repro] perf-check: {:.2}s", start.elapsed().as_secs_f64());
    if let Some(path) = &cli.json_path {
        match serde_json::to_string_pretty(&live) {
            Ok(text) => match std::fs::write(path, text) {
                Ok(()) => eprintln!("wrote live bench report to {path}"),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("serializing live bench report for {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match perf_gate::compare(&live, &baseline, cli.tolerance) {
        Ok(checks) => {
            print!("{}", perf_gate::render(&checks, cli.tolerance));
            if checks.iter().all(|c| c.pass) {
                ExitCode::SUCCESS
            } else {
                eprintln!("perf-check FAILED against {baseline_path}");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("perf-check cannot compare against {baseline_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `serve` subcommand: drive the multi-tenant serving layer with the
/// seeded closed-loop load generator (`bench::serve_cli`). Stdout, the
/// `--json` report and the `--metrics` snapshot are all integer-derived
/// and byte-identical at any `--threads` count; wall time goes to stderr.
/// Exits non-zero if the post-drain conservation invariant
/// `submitted == served + rejected + shed` is violated, or if a chaos
/// run's survivor digests diverge from its quiescent twin.
fn serve_cmd(cli: &Cli, watchdog: &Option<Watchdog>) -> ExitCode {
    let start = Instant::now();
    watch(watchdog, "serve");
    let report = match bench::serve_cli::run(&cli.serve) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(wd) = watchdog {
        wd.clear();
    }
    eprintln!("[repro] serve: {:.2}s", start.elapsed().as_secs_f64());
    print!("{}", bench::serve_cli::render(&report));
    if let Some(path) = &cli.json_path {
        let text = match serde_json::to_string_pretty(&report) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serializing serve report for {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match std::fs::write(path, text) {
            Ok(()) => eprintln!("wrote serve report to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &cli.metrics_path {
        let text = match stats_gate::metrics_json(&obs::snapshot()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        match std::fs::write(path, text) {
            Ok(()) => eprintln!("wrote metrics to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !report.conserves_requests() {
        eprintln!(
            "serve: conservation violated: submitted {} != served {} + rejected {} + shed {}",
            report.submitted, report.served, report.rejected, report.shed
        );
        return ExitCode::FAILURE;
    }
    if let Some(twin) = &report.chaos_twin {
        if twin.survivor_digest != twin.twin_survivor_digest {
            eprintln!(
                "serve: chaos twin diverged over {} survivors: {:016x} != {:016x}",
                twin.survivors, twin.survivor_digest, twin.twin_survivor_digest
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Proves `dir` accepts writes by round-tripping a probe file (named
/// per-process so concurrent sweeps don't collide). Leaves no trace: if the
/// directory had to be created for the probe, it is removed again so a
/// divergence-free sweep still ends with no repro directory on disk.
fn probe_writable_dir(dir: &str) -> Result<(), String> {
    let existed = std::path::Path::new(dir).is_dir();
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let probe = format!("{dir}/.write_probe_{}", std::process::id());
    std::fs::write(&probe, b"probe").map_err(|e| e.to_string())?;
    std::fs::remove_file(&probe).map_err(|e| e.to_string())?;
    if !existed {
        std::fs::remove_dir(dir).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// The `chaos` subcommand: run the deterministic fault-injection campaign
/// of `bench::chaos` and fail unless every detection-on run reproduced the
/// fault-free baseline (zero silent corruptions).
fn chaos_cmd(cli: &Cli, watchdog: &Option<Watchdog>) -> ExitCode {
    let start = Instant::now();
    watch(watchdog, "chaos campaign");
    let report = match bench::chaos::run_campaign(cli.diff_seed, cli.campaign) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(wd) = watchdog {
        wd.clear();
    }
    eprintln!("[repro] chaos: {:.2}s", start.elapsed().as_secs_f64());
    print!("{}", report.render());
    if let Some(path) = &cli.json_path {
        let text = match serde_json::to_string_pretty(&report) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serializing chaos report for {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match std::fs::write(path, text) {
            Ok(()) => eprintln!("wrote chaos report to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `stats-check` subcommand: run the quick suite with counters on and
/// diff the snapshot against the golden file (or rewrite it with
/// `--update`). Tables are suppressed — only counters matter here.
fn stats_check(cli: &Cli, cache: &mut StatsCache, watchdog: &Option<Watchdog>) -> ExitCode {
    let golden_path = match cli.golden_path.as_deref() {
        Some(p) => p,
        // Unreachable by construction (parse_args rejects stats-check
        // without --golden), but no panic on the CLI surface.
        None => {
            eprintln!("stats-check requires --golden <path>\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Parse the golden up front (unless rewriting it): a truncated or
    // invalid file should fail in milliseconds, not after the full suite.
    let golden = if cli.update_golden {
        None
    } else {
        match std::fs::read_to_string(golden_path) {
            Ok(text) => match stats_gate::parse_golden(&text) {
                Ok(g) => Some(g),
                Err(e) => {
                    eprintln!("malformed golden file {golden_path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read golden file {golden_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let start = Instant::now();
    let mut emit = |_: &str, _: String, _: serde_json::Value| {};
    for which in ALL {
        // Batch stays 1 and the model cache stays off so the counter
        // snapshot matches the golden file.
        if let Err(e) = run_timed(which, true, 1, None, cache, watchdog, &mut emit) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("[repro] total: {:.2}s", start.elapsed().as_secs_f64());
    let snap = obs::snapshot();

    if let Some(path) = &cli.metrics_path {
        let text = match stats_gate::metrics_json(&snap) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        match std::fs::write(path, text) {
            Ok(()) => eprintln!("wrote metrics to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if cli.update_golden {
        // Keep any hand-tuned tolerances from the existing golden.
        let prior = std::fs::read_to_string(golden_path)
            .ok()
            .and_then(|t| stats_gate::parse_golden(&t).ok());
        let text = match stats_gate::golden_json(&snap, prior.as_ref()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        return match std::fs::write(golden_path, text) {
            Ok(()) => {
                println!("updated golden stats at {golden_path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to write {golden_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let golden = match golden {
        Some(g) => g,
        // Unreachable: `golden` is always parsed above when not updating.
        None => {
            eprintln!("internal error: golden file {golden_path} was not parsed");
            return ExitCode::FAILURE;
        }
    };
    let drifts = stats_gate::compare(&snap, &golden);
    if drifts.is_empty() {
        println!(
            "stats-check OK: {} counters within tolerance of {golden_path}",
            golden.counters.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "stats-check FAILED: {} counter(s) drifted from {golden_path}",
            drifts.len()
        );
        for d in &drifts {
            eprintln!("  {d}");
        }
        eprintln!("(run `repro stats-check --golden {golden_path} --update` to accept)");
        ExitCode::FAILURE
    }
}
