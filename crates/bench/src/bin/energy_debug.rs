//! Internal calibration tool: dumps the energy breakdown of Ristretto and
//! Bit Fusion per component for one network.

use baselines::bitfusion::BitFusion;
use baselines::report::Backend;
use qnn::models::NetworkId;
use qnn::quant::BitWidth;
use qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto_sim::analytic::RistrettoSim;
use ristretto_sim::config::RistrettoConfig;

fn main() {
    let net = NetworkStats::generate(
        NetworkId::ResNet18,
        PrecisionPolicy::Uniform(BitWidth::W4),
        2,
        20220101,
    );
    let sim = RistrettoSim::new(RistrettoConfig::paper_default());
    let em = sim.energy_model();
    println!("prices: atom_mult {:.4} delivery {:.4} aggregate {:.4} atomizer {:.4} in/bit {:.4} w/bit {:.4} out/bit {:.4}",
        em.atom_mult_pj, em.delivery_pj, em.aggregate_pj, em.atomizer_pj,
        em.input_read_per_bit_pj, em.weight_read_per_bit_pj, em.output_write_per_bit_pj);
    let r = sim.simulate_network(&net);
    let e = r.total_energy();
    println!("Ristretto: cycles {} compute {:.1}uJ buffer {:.1}uJ dram {:.1}uJ leak {:.1}uJ total {:.1}uJ",
        r.total_cycles(), e.compute_pj*1e-6, e.buffer_pj*1e-6, e.dram_pj*1e-6, e.leakage_pj*1e-6, e.total_pj()*1e-6);
    let am: u64 = r.layers.iter().map(|l| l.atom_mults).sum();
    let dv: u64 = r.layers.iter().map(|l| l.deliveries).sum();
    let bb: u64 = r.layers.iter().map(|l| l.buffer_bits).sum();
    println!(
        "  atom_mults {am} ({:.1}uJ)  deliveries {dv} ({:.1}uJ)  buffer_bits {bb}",
        am as f64 * em.atom_mult_pj * 1e-6,
        dv as f64 * em.delivery_pj * 1e-6
    );
    let bf = BitFusion::paper_default();
    let b = bf.simulate_network(&net);
    let eb = b.total_energy();
    println!("BitFusion: cycles {} compute {:.1}uJ buffer {:.1}uJ dram {:.1}uJ leak {:.1}uJ total {:.1}uJ",
        b.total_cycles(), eb.compute_pj*1e-6, eb.buffer_pj*1e-6, eb.dram_pj*1e-6, eb.leakage_pj*1e-6, eb.total_pj()*1e-6);
}
