//! Minimal aligned-text table rendering for experiment output.

/// Renders rows (first row = header) as an aligned text table with a title.
pub fn render(title: &str, rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if rows.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    for (ri, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
            out.push_str(&"-".repeat(total.saturating_sub(2)));
            out.push('\n');
        }
    }
    out
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float as a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a speedup as `N.NNx`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let rows = vec![
            vec!["net".to_string(), "value".to_string()],
            vec!["AlexNet".to_string(), "1.5".to_string()],
        ];
        let t = render("Demo", &rows);
        assert!(t.contains("Demo"));
        assert!(t.contains("AlexNet"));
        assert!(t.contains("---"));
    }

    #[test]
    fn empty_table() {
        assert!(render("t", &[]).contains("(no data)"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.4743), "47.43%");
        assert_eq!(speedup(8.2), "8.20x");
    }
}
