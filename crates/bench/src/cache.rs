//! Caching of generated network statistics so `repro all` builds each
//! `(network, policy, granularity)` workload once.

use qnn::models::NetworkId;
use qnn::workload::{NetworkStats, PrecisionPolicy};
use std::collections::HashMap;

/// Keyed cache of [`NetworkStats`].
#[derive(Debug, Default)]
pub struct StatsCache {
    map: HashMap<(NetworkId, String, u8), NetworkStats>,
}

impl StatsCache {
    /// A fresh cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (generating on miss) the stats for a workload.
    pub fn get(
        &mut self,
        id: NetworkId,
        policy: PrecisionPolicy,
        atom_bits: u8,
        seed: u64,
    ) -> &NetworkStats {
        self.map
            .entry((id, policy.label(), atom_bits))
            .or_insert_with(|| NetworkStats::generate(id, policy, atom_bits, seed))
    }

    /// Number of cached workloads.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::quant::BitWidth;

    #[test]
    fn caches_by_key() {
        let mut c = StatsCache::new();
        let p = PrecisionPolicy::Uniform(BitWidth::W4);
        let _ = c.get(NetworkId::AlexNet, p, 2, 1);
        let _ = c.get(NetworkId::AlexNet, p, 2, 1);
        assert_eq!(c.len(), 1);
        let _ = c.get(NetworkId::AlexNet, p, 3, 1);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }
}
