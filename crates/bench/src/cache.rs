//! Caching of generated network statistics so `repro all` builds each
//! `(network, policy, granularity)` workload once.

use qnn::models::NetworkId;
use qnn::workload::{NetworkStats, PrecisionPolicy};
use rayon::prelude::*;
use std::collections::HashMap;

/// Keyed cache of [`NetworkStats`].
#[derive(Debug, Default)]
pub struct StatsCache {
    map: HashMap<(NetworkId, String, u8), NetworkStats>,
}

impl StatsCache {
    /// A fresh cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (generating on miss) the stats for a workload.
    pub fn get(
        &mut self,
        id: NetworkId,
        policy: PrecisionPolicy,
        atom_bits: u8,
        seed: u64,
    ) -> &NetworkStats {
        self.map
            .entry((id, policy.label(), atom_bits))
            .or_insert_with(|| NetworkStats::generate(id, policy, atom_bits, seed))
    }

    /// Generates every missing workload in `keys` in parallel and inserts
    /// the results. Generation is keyed only by `(id, policy, atom_bits,
    /// seed)` — never by thread scheduling — so the cache contents are
    /// identical to a sequence of [`StatsCache::get`] calls. After a
    /// prefill, experiments can read the cache through a shared reference
    /// with [`StatsCache::peek`], which is what makes their own parallel
    /// fan-outs borrow-checkable.
    pub fn prefill(&mut self, keys: &[(NetworkId, PrecisionPolicy, u8)], seed: u64) {
        let _span = obs::span("cache.prefill");
        let mut missing: Vec<(NetworkId, PrecisionPolicy, u8)> = Vec::new();
        for &(id, policy, atom_bits) in keys {
            if !self.map.contains_key(&(id, policy.label(), atom_bits))
                && !missing
                    .iter()
                    .any(|&(i, p, b)| i == id && p.label() == policy.label() && b == atom_bits)
            {
                missing.push((id, policy, atom_bits));
            }
        }
        let generated: Vec<((NetworkId, String, u8), NetworkStats)> = missing
            .into_par_iter()
            .map(|(id, policy, atom_bits)| {
                (
                    (id, policy.label(), atom_bits),
                    NetworkStats::generate(id, policy, atom_bits, seed),
                )
            })
            .collect();
        for (key, stats) in generated {
            self.map.insert(key, stats);
        }
    }

    /// Returns the stats for an already-generated workload. Unlike
    /// [`StatsCache::get`] this takes `&self`, so parallel experiment loops
    /// can read a prefilled cache concurrently.
    ///
    /// # Panics
    /// Panics if the workload was never generated — experiments must
    /// [`StatsCache::prefill`] before fanning out.
    pub fn peek(&self, id: NetworkId, policy: PrecisionPolicy, atom_bits: u8) -> &NetworkStats {
        self.map
            .get(&(id, policy.label(), atom_bits))
            .unwrap_or_else(|| {
                panic!(
                    "workload ({}, {}, {atom_bits}-bit atoms) was not prefilled",
                    id.name(),
                    policy.label()
                )
            })
    }

    /// Number of cached workloads.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::quant::BitWidth;

    #[test]
    fn caches_by_key() {
        let mut c = StatsCache::new();
        let p = PrecisionPolicy::Uniform(BitWidth::W4);
        let _ = c.get(NetworkId::AlexNet, p, 2, 1);
        let _ = c.get(NetworkId::AlexNet, p, 2, 1);
        assert_eq!(c.len(), 1);
        let _ = c.get(NetworkId::AlexNet, p, 3, 1);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn prefill_matches_get() {
        let p = PrecisionPolicy::Uniform(BitWidth::W4);
        let mut on_demand = StatsCache::new();
        let expected = on_demand.get(NetworkId::AlexNet, p, 2, 1).clone();

        let mut prefilled = StatsCache::new();
        // Duplicate keys collapse to one generation.
        prefilled.prefill(&[(NetworkId::AlexNet, p, 2), (NetworkId::AlexNet, p, 2)], 1);
        assert_eq!(prefilled.len(), 1);
        assert_eq!(*prefilled.peek(NetworkId::AlexNet, p, 2), expected);
    }

    #[test]
    #[should_panic(expected = "not prefilled")]
    fn peek_panics_on_missing_workload() {
        let c = StatsCache::new();
        let _ = c.peek(
            NetworkId::AlexNet,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
        );
    }
}
