//! Integration tests for the `repro` binary: argument handling, JSON
//! output, and determinism of the quick experiments.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_experiment_fails() {
    let out = repro(&["fig99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn table6_prints_the_area_breakdown() {
    let out = repro(&["table6"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table VI"));
    assert!(text.contains("Atomputer"));
    assert!(text.contains("1.296"));
}

#[test]
fn json_output_is_written_and_parses() {
    let dir = std::env::temp_dir().join(format!("repro_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t6.json");
    let out = repro(&["table6", "--json", path.to_str().unwrap()]);
    assert!(out.status.success());
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let rows = json
        .get("table6")
        .and_then(|v| v.as_array())
        .expect("table6 rows");
    assert_eq!(rows.len(), 10);
    assert!(rows.iter().any(|r| r["block"] == "Atomizer"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quick_fig18_is_deterministic() {
    let a = repro(&["fig18", "--quick"]);
    let b = repro(&["fig18", "--quick"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("w/a balancing"));
}

#[test]
fn fig15_runs_quick() {
    let out = repro(&["fig15", "--quick"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("atom sparsity"));
    assert!(text.contains("speedup"));
}

#[test]
fn thread_count_does_not_change_any_output_byte() {
    // The tentpole determinism guarantee: `repro all --quick` emits
    // byte-identical stdout, JSON and metrics at any worker-thread count —
    // every parallel fan-out collects results in input order, and the
    // observability counters use only commutative integer accumulation.
    let dir = std::env::temp_dir().join(format!("repro_threads_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p1 = dir.join("t1.json");
    let p4 = dir.join("t4.json");
    let m1 = dir.join("m1.json");
    let m4 = dir.join("m4.json");
    let serial = repro(&[
        "all",
        "--quick",
        "--threads",
        "1",
        "--json",
        p1.to_str().unwrap(),
        "--metrics",
        m1.to_str().unwrap(),
    ]);
    let parallel = repro(&[
        "all",
        "--quick",
        "--threads",
        "4",
        "--json",
        p4.to_str().unwrap(),
        "--metrics",
        m4.to_str().unwrap(),
    ]);
    assert!(serial.status.success(), "serial run failed");
    assert!(parallel.status.success(), "parallel run failed");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "stdout differs by thread count"
    );
    let j1 = std::fs::read(&p1).unwrap();
    let j4 = std::fs::read(&p4).unwrap();
    assert_eq!(j1, j4, "JSON results differ by thread count");
    let b1 = std::fs::read(&m1).unwrap();
    let b4 = std::fs::read(&m4).unwrap();
    assert_eq!(b1, b4, "metrics differ by thread count");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_schema_is_stable_and_counters_populate() {
    // Any single experiment writes the full sorted counter schema, with
    // the counters its simulators touch non-zero and everything else zero.
    let dir = std::env::temp_dir().join(format!("repro_metrics_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig15.json");
    let out = repro(&["fig15", "--quick", "--metrics", path.to_str().unwrap()]);
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let counters = parsed
        .get("counters")
        .and_then(|v| v.as_object())
        .expect("counters object");
    assert_eq!(counters.len(), obs::Event::COUNT);
    let keys: Vec<&String> = counters.keys().collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "counters must be emitted in sorted order");
    // fig15 sweeps the cycle-level tile simulator.
    assert!(
        counters
            .get("atomputer.atom_mults")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(
        counters
            .get("atomulator.deliveries")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    // ...and never touches the analytic model.
    assert_eq!(counters.get("analytic.layers").unwrap().as_u64(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

/// The golden file checked into the repository root.
const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../golden_stats.json");

#[test]
fn stats_check_passes_against_checked_in_golden() {
    let dir = std::env::temp_dir().join(format!("repro_gate_ok_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("live.json");
    let out = repro(&[
        "stats-check",
        "--golden",
        GOLDEN,
        "--metrics",
        metrics.to_str().unwrap(),
        "--threads",
        "4",
    ]);
    assert!(
        out.status.success(),
        "stats-check failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("stats-check OK"));
    // The live metrics must agree with the golden's counters exactly where
    // tolerance is zero; spot-check one counter.
    let live: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let golden: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(GOLDEN).unwrap()).unwrap();
    assert_eq!(
        live["counters"]["intersect.calls"],
        golden["counters"]["intersect.calls"]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_check_fails_on_perturbed_golden() {
    // Copy the checked-in golden, bump one zero-tolerance counter by one,
    // and confirm the gate exits non-zero naming the drifted counter.
    let dir = std::env::temp_dir().join(format!("repro_gate_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let text = std::fs::read_to_string(GOLDEN).unwrap();
    let mut root: serde_json::Value = serde_json::from_str(&text).unwrap();
    let serde_json::Value::Object(ref mut obj) = root else {
        panic!("golden root is not an object")
    };
    let serde_json::Value::Object(mut counters) = obj.remove("counters").unwrap() else {
        panic!("counters is not an object")
    };
    let old = counters.get("intersect.calls").unwrap().as_u64().unwrap();
    counters.insert(
        "intersect.calls".to_string(),
        serde_json::Value::Number(serde_json::Number::PosInt(old + 1)),
    );
    obj.insert("counters".to_string(), serde_json::Value::Object(counters));
    let bad = dir.join("bad_golden.json");
    std::fs::write(&bad, serde_json::to_string_pretty(&root).unwrap()).unwrap();

    let out = repro(&[
        "stats-check",
        "--golden",
        bad.to_str().unwrap(),
        "--threads",
        "4",
    ]);
    assert!(!out.status.success(), "perturbed golden must fail the gate");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("stats-check FAILED"), "{err}");
    assert!(err.contains("intersect.calls"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gate_options_are_validated() {
    let out = repro(&["stats-check"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --golden"));
    let out = repro(&["table6", "--golden", "x.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only applies to `stats-check`"));
    let out = repro(&["table6", "--update"]);
    assert!(!out.status.success());
    let out = repro(&["table6", "--metrics"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--metrics requires a path"));
}

#[test]
fn diffcheck_quick_budget_finds_no_divergences() {
    let dir = std::env::temp_dir().join(format!("repro_diffcheck_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let repros = dir.join("repros");
    let out = repro(&[
        "diffcheck",
        "--cases",
        "60",
        "--seed",
        "1",
        "--repro-dir",
        repros.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "diffcheck found divergences:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("60 cases, 0 divergences (seed 1)"), "{text}");
    // No divergences means no repro directory is created.
    assert!(!repros.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diffcheck_is_deterministic_across_runs() {
    let a = repro(&["diffcheck", "--cases", "25", "--seed", "7"]);
    let b = repro(&["diffcheck", "--cases", "25", "--seed", "7"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn diffcheck_options_are_validated() {
    let out = repro(&["table6", "--cases", "10"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only applies to `diffcheck`"));
    let out = repro(&["table6", "--shrink"]);
    assert!(!out.status.success());
    let out = repro(&["diffcheck", "--cases"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--cases requires a count"));
    let out = repro(&["diffcheck", "--cases", "zero"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid case count"));
}

#[test]
fn invalid_thread_counts_are_rejected() {
    let out = repro(&["table6", "--threads", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
    let out = repro(&["table6", "--threads", "many"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid thread count"));
    // The option value must not be mistaken for an experiment name.
    let out = repro(&["--threads", "2", "table6"]);
    assert!(out.status.success());
}
