//! Integration tests for the `repro` binary: argument handling, JSON
//! output, and determinism of the quick experiments.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_experiment_fails() {
    let out = repro(&["fig99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn table6_prints_the_area_breakdown() {
    let out = repro(&["table6"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table VI"));
    assert!(text.contains("Atomputer"));
    assert!(text.contains("1.296"));
}

#[test]
fn json_output_is_written_and_parses() {
    let dir = std::env::temp_dir().join(format!("repro_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t6.json");
    let out = repro(&["table6", "--json", path.to_str().unwrap()]);
    assert!(out.status.success());
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let rows = json
        .get("table6")
        .and_then(|v| v.as_array())
        .expect("table6 rows");
    assert_eq!(rows.len(), 10);
    assert!(rows.iter().any(|r| r["block"] == "Atomizer"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quick_fig18_is_deterministic() {
    let a = repro(&["fig18", "--quick"]);
    let b = repro(&["fig18", "--quick"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("w/a balancing"));
}

#[test]
fn fig15_runs_quick() {
    let out = repro(&["fig15", "--quick"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("atom sparsity"));
    assert!(text.contains("speedup"));
}

#[test]
fn thread_count_does_not_change_any_output_byte() {
    // The tentpole determinism guarantee: `repro all --quick` emits
    // byte-identical stdout and JSON at any worker-thread count, because
    // every parallel fan-out collects its results in input order.
    let dir = std::env::temp_dir().join(format!("repro_threads_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p1 = dir.join("t1.json");
    let p4 = dir.join("t4.json");
    let serial = repro(&[
        "all",
        "--quick",
        "--threads",
        "1",
        "--json",
        p1.to_str().unwrap(),
    ]);
    let parallel = repro(&[
        "all",
        "--quick",
        "--threads",
        "4",
        "--json",
        p4.to_str().unwrap(),
    ]);
    assert!(serial.status.success(), "serial run failed");
    assert!(parallel.status.success(), "parallel run failed");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "stdout differs by thread count"
    );
    let j1 = std::fs::read(&p1).unwrap();
    let j4 = std::fs::read(&p4).unwrap();
    assert_eq!(j1, j4, "JSON results differ by thread count");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_thread_counts_are_rejected() {
    let out = repro(&["table6", "--threads", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
    let out = repro(&["table6", "--threads", "many"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid thread count"));
    // The option value must not be mistaken for an experiment name.
    let out = repro(&["--threads", "2", "table6"]);
    assert!(out.status.success());
}
