//! Integration tests for the `repro` binary: argument handling, JSON
//! output, and determinism of the quick experiments.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_experiment_fails() {
    let out = repro(&["fig99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn table6_prints_the_area_breakdown() {
    let out = repro(&["table6"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table VI"));
    assert!(text.contains("Atomputer"));
    assert!(text.contains("1.296"));
}

#[test]
fn json_output_is_written_and_parses() {
    let dir = std::env::temp_dir().join(format!("repro_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t6.json");
    let out = repro(&["table6", "--json", path.to_str().unwrap()]);
    assert!(out.status.success());
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let rows = json
        .get("table6")
        .and_then(|v| v.as_array())
        .expect("table6 rows");
    assert_eq!(rows.len(), 10);
    assert!(rows.iter().any(|r| r["block"] == "Atomizer"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quick_fig18_is_deterministic() {
    let a = repro(&["fig18", "--quick"]);
    let b = repro(&["fig18", "--quick"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("w/a balancing"));
}

#[test]
fn fig15_runs_quick() {
    let out = repro(&["fig15", "--quick"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("atom sparsity"));
    assert!(text.contains("speedup"));
}

#[test]
fn thread_count_does_not_change_any_output_byte() {
    // The tentpole determinism guarantee: `repro all --quick` emits
    // byte-identical stdout, JSON and metrics at any worker-thread count —
    // every parallel fan-out collects results in input order, and the
    // observability counters use only commutative integer accumulation.
    let dir = std::env::temp_dir().join(format!("repro_threads_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p1 = dir.join("t1.json");
    let p4 = dir.join("t4.json");
    let m1 = dir.join("m1.json");
    let m4 = dir.join("m4.json");
    let serial = repro(&[
        "all",
        "--quick",
        "--threads",
        "1",
        "--json",
        p1.to_str().unwrap(),
        "--metrics",
        m1.to_str().unwrap(),
    ]);
    let parallel = repro(&[
        "all",
        "--quick",
        "--threads",
        "4",
        "--json",
        p4.to_str().unwrap(),
        "--metrics",
        m4.to_str().unwrap(),
    ]);
    assert!(serial.status.success(), "serial run failed");
    assert!(parallel.status.success(), "parallel run failed");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "stdout differs by thread count"
    );
    let j1 = std::fs::read(&p1).unwrap();
    let j4 = std::fs::read(&p4).unwrap();
    assert_eq!(j1, j4, "JSON results differ by thread count");
    let b1 = std::fs::read(&m1).unwrap();
    let b4 = std::fs::read(&m4).unwrap();
    assert_eq!(b1, b4, "metrics differ by thread count");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_schema_is_stable_and_counters_populate() {
    // Any single experiment writes the full sorted counter schema, with
    // the counters its simulators touch non-zero and everything else zero.
    let dir = std::env::temp_dir().join(format!("repro_metrics_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig15.json");
    let out = repro(&["fig15", "--quick", "--metrics", path.to_str().unwrap()]);
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let counters = parsed
        .get("counters")
        .and_then(|v| v.as_object())
        .expect("counters object");
    assert_eq!(counters.len(), obs::Event::COUNT);
    let keys: Vec<&String> = counters.keys().collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "counters must be emitted in sorted order");
    // fig15 sweeps the cycle-level tile simulator.
    assert!(
        counters
            .get("atomputer.atom_mults")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(
        counters
            .get("atomulator.deliveries")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    // ...and never touches the analytic model.
    assert_eq!(counters.get("analytic.layers").unwrap().as_u64(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

/// The golden file checked into the repository root.
const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../golden_stats.json");

#[test]
fn stats_check_passes_against_checked_in_golden() {
    let dir = std::env::temp_dir().join(format!("repro_gate_ok_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("live.json");
    let out = repro(&[
        "stats-check",
        "--golden",
        GOLDEN,
        "--metrics",
        metrics.to_str().unwrap(),
        "--threads",
        "4",
    ]);
    assert!(
        out.status.success(),
        "stats-check failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("stats-check OK"));
    // The live metrics must agree with the golden's counters exactly where
    // tolerance is zero; spot-check one counter.
    let live: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let golden: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(GOLDEN).unwrap()).unwrap();
    assert_eq!(
        live["counters"]["intersect.calls"],
        golden["counters"]["intersect.calls"]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_check_fails_on_perturbed_golden() {
    // Copy the checked-in golden, bump one zero-tolerance counter by one,
    // and confirm the gate exits non-zero naming the drifted counter.
    let dir = std::env::temp_dir().join(format!("repro_gate_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let text = std::fs::read_to_string(GOLDEN).unwrap();
    let mut root: serde_json::Value = serde_json::from_str(&text).unwrap();
    let serde_json::Value::Object(ref mut obj) = root else {
        panic!("golden root is not an object")
    };
    let serde_json::Value::Object(mut counters) = obj.remove("counters").unwrap() else {
        panic!("counters is not an object")
    };
    let old = counters.get("intersect.calls").unwrap().as_u64().unwrap();
    counters.insert(
        "intersect.calls".to_string(),
        serde_json::Value::Number(serde_json::Number::PosInt(old + 1)),
    );
    obj.insert("counters".to_string(), serde_json::Value::Object(counters));
    let bad = dir.join("bad_golden.json");
    std::fs::write(&bad, serde_json::to_string_pretty(&root).unwrap()).unwrap();

    let out = repro(&[
        "stats-check",
        "--golden",
        bad.to_str().unwrap(),
        "--threads",
        "4",
    ]);
    assert!(!out.status.success(), "perturbed golden must fail the gate");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("stats-check FAILED"), "{err}");
    assert!(err.contains("intersect.calls"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gate_options_are_validated() {
    let out = repro(&["stats-check"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --golden"));
    let out = repro(&["table6", "--golden", "x.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only applies to `stats-check`"));
    let out = repro(&["table6", "--update"]);
    assert!(!out.status.success());
    let out = repro(&["table6", "--metrics"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--metrics requires a path"));
}

#[test]
fn diffcheck_quick_budget_finds_no_divergences() {
    let dir = std::env::temp_dir().join(format!("repro_diffcheck_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let repros = dir.join("repros");
    let out = repro(&[
        "diffcheck",
        "--cases",
        "60",
        "--seed",
        "1",
        "--repro-dir",
        repros.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "diffcheck found divergences:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("60 cases, 0 divergences (seed 1)"), "{text}");
    // No divergences means no repro directory is created.
    assert!(!repros.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diffcheck_is_deterministic_across_runs() {
    let a = repro(&["diffcheck", "--cases", "25", "--seed", "7"]);
    let b = repro(&["diffcheck", "--cases", "25", "--seed", "7"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn diffcheck_options_are_validated() {
    let out = repro(&["table6", "--cases", "10"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only applies to `diffcheck`"));
    let out = repro(&["table6", "--shrink"]);
    assert!(!out.status.success());
    let out = repro(&["diffcheck", "--cases"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--cases requires a count"));
    let out = repro(&["diffcheck", "--cases", "zero"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid case count"));
}

#[test]
fn invalid_thread_counts_are_rejected() {
    let out = repro(&["table6", "--threads", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
    let out = repro(&["table6", "--threads", "many"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid thread count"));
    // The option value must not be mistaken for an experiment name.
    let out = repro(&["--threads", "2", "table6"]);
    assert!(out.status.success());
}

#[test]
fn stats_check_rejects_truncated_golden_before_running() {
    // A truncated golden file is a typed error in milliseconds — the gate
    // must not burn the full quick suite before noticing.
    let dir = std::env::temp_dir().join(format!("repro_gate_trunc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trunc = dir.join("trunc.json");
    std::fs::write(&trunc, r#"{"counters": {"#).unwrap();
    let start = std::time::Instant::now();
    let out = repro(&["stats-check", "--golden", trunc.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("malformed golden file"), "{err}");
    assert!(
        err.contains("trunc.json"),
        "error must name the path: {err}"
    );
    assert!(
        start.elapsed().as_secs() < 20,
        "truncated golden should fail fast, took {:?}",
        start.elapsed()
    );
    // Invalid (non-JSON) content takes the same path.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json at all").unwrap();
    let out = repro(&["stats-check", "--golden", garbage.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("malformed golden file"));
    // A missing golden is a typed error too.
    let missing = dir.join("missing.json");
    let out = repro(&["stats-check", "--golden", missing.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read golden file"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diffcheck_unwritable_repro_dir_fails_before_the_sweep() {
    // `--repro-dir` pointing under a regular file can never hold repros;
    // the probe must reject it up front with a typed error naming the path.
    let dir = std::env::temp_dir().join(format!("repro_dc_probe_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "a regular file").unwrap();
    let bad = blocker.join("repros");
    let out = repro(&[
        "diffcheck",
        "--cases",
        "1",
        "--repro-dir",
        bad.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("is not writable"), "{err}");
    assert!(err.contains("repros"), "error must name the path: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_campaign_passes_and_is_thread_invariant() {
    let one = repro(&["chaos", "--campaign", "4", "--seed", "3", "--threads", "1"]);
    let four = repro(&["chaos", "--campaign", "4", "--seed", "3", "--threads", "4"]);
    assert!(
        one.status.success(),
        "chaos failed:\n{}",
        String::from_utf8_lossy(&one.stderr)
    );
    assert!(four.status.success());
    assert_eq!(
        one.stdout, four.stdout,
        "chaos report differs by thread count"
    );
    let text = String::from_utf8_lossy(&one.stdout);
    assert!(text.contains("chaos: PASS"), "{text}");
    assert!(text.contains("0 silent with detection on"), "{text}");
}

#[test]
fn chaos_json_report_is_written_and_parses() {
    let dir = std::env::temp_dir().join(format!("repro_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chaos.json");
    let out = repro(&[
        "chaos",
        "--campaign",
        "3",
        "--seed",
        "5",
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(json["seed"], 5u64);
    assert_eq!(json["campaign"], 3u64);
    assert_eq!(json["silent_with_detection"], 0u64);
    let structures = json["structures"].as_array().expect("structures array");
    assert_eq!(structures.len(), 5);
    assert!(structures.iter().any(|s| s["structure"] == "weight_buffer"));
    assert!(json["injected_total"].as_u64().unwrap() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_options_are_validated() {
    let out = repro(&["table6", "--campaign", "10"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only applies to `chaos`"));
    let out = repro(&["chaos", "--campaign", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--campaign must be at least 1"));
    let out = repro(&["chaos", "--campaign", "many"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid campaign size"));
}

#[test]
fn bench_quick_writes_schema_stable_json() {
    let dir = std::env::temp_dir().join(format!("repro_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.json");
    let out = repro(&["bench", "--quick", "--json", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "bench failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("csc_streams_steady"), "{text}");
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(json["schema"], "ristretto-bench/v3");
    assert_eq!(json["quick"].as_bool(), Some(true));
    let micro = json["micro"].as_array().expect("micro rows");
    let names: Vec<&str> = micro.iter().map(|r| r["name"].as_str().unwrap()).collect();
    assert_eq!(
        names,
        [
            "dense_reference_conv",
            "csc_sparse_conv",
            "csc_streams_reference",
            "csc_streams_cold",
            "csc_streams_steady",
        ]
    );
    assert!(micro.iter().all(|r| r["median_ns"].as_u64().unwrap() > 0));
    let batch = json["batch"].as_array().expect("batch rows");
    assert_eq!(batch.len(), 3);
    assert!(batch
        .iter()
        .all(|b| b["per_image_ms"].as_f64().unwrap() > 0.0));
    let cache = json["cache"].as_array().expect("cache rows");
    assert_eq!(cache.len(), 3);
    for row in cache {
        assert!(row["compile_ms"].as_f64().unwrap() > 0.0);
        assert!(row["load_ms"].as_f64().unwrap() > 0.0);
        assert!(row["artifact_bytes"].as_u64().unwrap() > 0);
    }
    let fleet = json["fleet"].as_array().expect("fleet rows");
    assert_eq!(fleet.len(), 3);
    for row in fleet {
        assert!(row["run_ms"].as_f64().unwrap() > 0.0);
        assert!(row["cores"].as_u64().unwrap() >= 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watchdog_aborts_hung_steps_and_spares_fast_ones() {
    // A campaign far larger than one second of work trips the watchdog,
    // which exits 124 naming the hung step.
    let out = repro(&["chaos", "--campaign", "1000000", "--timeout-secs", "1"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(124));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[watchdog]"), "{err}");
    assert!(err.contains("chaos campaign"), "{err}");
    // A fast experiment under a generous budget is untouched.
    let out = repro(&["table6", "--timeout-secs", "120"]);
    assert!(out.status.success());
    // The flag's value is validated.
    let out = repro(&["table6", "--timeout-secs", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--timeout-secs must be at least 1"));
}

#[test]
fn serve_report_is_byte_identical_across_thread_counts() {
    let dir = std::env::temp_dir().join(format!("repro_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    const COMMON: [&str; 10] = [
        "serve",
        "--quick",
        "--clients",
        "5",
        "--requests",
        "3",
        "--lambda",
        "80",
        "--mix",
        "AlexNet=3,GoogLeNet=1",
    ];
    let p1 = dir.join("serve1.json");
    let p4 = dir.join("serve4.json");
    let mut args1: Vec<&str> = COMMON.to_vec();
    args1.extend(["--threads", "1", "--json", p1.to_str().unwrap()]);
    let mut args4: Vec<&str> = COMMON.to_vec();
    args4.extend(["--threads", "4", "--json", p4.to_str().unwrap()]);
    let a = repro(&args1);
    let b = repro(&args4);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "thread count leaked into stdout");
    assert_eq!(
        std::fs::read(&p1).unwrap(),
        std::fs::read(&p4).unwrap(),
        "thread count leaked into the JSON report"
    );
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&p1).unwrap()).unwrap();
    let submitted = json["submitted"].as_u64().unwrap();
    let served = json["served"].as_u64().unwrap();
    let rejected = json["rejected"].as_u64().unwrap();
    let shed = json["shed"].as_u64().unwrap();
    assert_eq!(submitted, 15);
    assert_eq!(shed, 0, "no deadlines, nothing sheds");
    assert_eq!(submitted, served + rejected + shed, "conservation at drain");
    assert!(json["batches"].as_u64().unwrap() > 0);
    assert!(json["output_digest"].as_u64().unwrap() > 0);
    // Only AlexNet and GoogLeNet are in the mix, but all quick networks
    // are registered.
    assert_eq!(json["models"].as_array().unwrap().len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_chaos_is_deterministic_and_conserves() {
    let dir = std::env::temp_dir().join(format!("repro_serve_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chaos.json");
    let args = [
        "serve",
        "--quick",
        "--chaos",
        "--clients",
        "4",
        "--requests",
        "2",
        "--seed",
        "7",
        "--json",
    ];
    let mut argv: Vec<&str> = args.to_vec();
    argv.push(path.to_str().unwrap());
    let a = repro(&argv);
    let b = repro(&argv);
    assert!(
        a.status.success(),
        "chaos run failed:\n{}",
        String::from_utf8_lossy(&a.stderr)
    );
    assert!(b.status.success());
    assert_eq!(a.stdout, b.stdout, "chaos run must be reproducible");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("faults injected"));
    // The campaign fires on every quick network at the baked-in rate.
    assert!(
        !text.contains("faults injected                              0"),
        "{text}"
    );
    // The quiescent twin rides along: every request both runs served must
    // have produced byte-identical output under faults and core deaths.
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let twin = &json["chaos_twin"];
    assert!(
        twin["survivors"]
            .as_u64()
            .expect("--chaos attaches the twin")
            > 0,
        "{twin:?}"
    );
    assert_eq!(
        twin["survivor_digest"], twin["twin_survivor_digest"],
        "chaos survivors diverged from the quiescent twin: {json:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_options_are_validated() {
    // Serve-only flags are rejected elsewhere, naming the flag.
    for (args, msg) in [
        (
            vec!["table6", "--clients", "3"],
            "--clients only applies to `serve`",
        ),
        (vec!["fig1", "--chaos"], "--chaos only applies to `serve`"),
        (
            vec!["fig4", "--mix", "AlexNet=1"],
            "--mix only applies to `serve`",
        ),
        (
            vec!["serve", "--clients", "0"],
            "--clients must be at least 1",
        ),
        (
            vec!["serve", "--max-batch", "0"],
            "--max-batch must be at least 1",
        ),
        (
            vec!["serve", "--queue-cap", "0"],
            "--queue-cap must be at least 1",
        ),
        (
            vec!["serve", "--lambda", "0"],
            "--lambda must be at least 1",
        ),
        (
            vec!["serve", "--fleet-cores", "0"],
            "--fleet-cores must be at least 1",
        ),
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(msg), "{args:?}: {err}");
    }
    // A bad mix fails with an actionable message naming the networks.
    let out = repro(&["serve", "--quick", "--mix", "VGG16=1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("VGG16") && err.contains("AlexNet"), "{err}");
}

#[test]
fn serve_admission_pressure_rejects_but_conserves() {
    let dir = std::env::temp_dir().join(format!("repro_serve_adm_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("adm.json");
    // A tiny queue under many fast clients must reject some arrivals.
    let out = repro(&[
        "serve",
        "--quick",
        "--clients",
        "12",
        "--requests",
        "4",
        "--lambda",
        "400",
        "--queue-cap",
        "2",
        "--max-batch",
        "2",
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let submitted = json["submitted"].as_u64().unwrap();
    let served = json["served"].as_u64().unwrap();
    let rejected = json["rejected"].as_u64().unwrap();
    let shed = json["shed"].as_u64().unwrap();
    assert_eq!(submitted, 48);
    assert!(rejected > 0, "pressure must trigger admission control");
    assert_eq!(submitted, served + rejected + shed);
    // Per-tenant conservation too.
    for t in json["per_tenant"].as_array().unwrap() {
        assert_eq!(
            t["submitted"].as_u64().unwrap(),
            t["served"].as_u64().unwrap()
                + t["rejected"].as_u64().unwrap()
                + t["shed"].as_u64().unwrap()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_slo_flags_are_validated() {
    // The SLO flags are serve-only, range-checked at parse time, and
    // cross-checked against each other — every error names the flag.
    for (args, msg) in [
        (
            vec!["table6", "--deadline", "5"],
            "--deadline only applies to `serve`",
        ),
        (
            vec!["fig1", "--slo-class", "batch"],
            "--slo-class only applies to `serve`",
        ),
        (
            vec!["fig4", "--brownout", "500"],
            "--brownout only applies to `serve`",
        ),
        (
            vec!["chaos", "--retry-budget", "2"],
            "--retry-budget only applies to `serve`",
        ),
        (
            vec!["serve", "--deadline", "0"],
            "--deadline must be at least 1 microtick",
        ),
        (vec!["serve", "--deadline", "soon"], "invalid deadline"),
        (
            vec!["serve", "--brownout", "0"],
            "--brownout must be within 1..=1000 permille (got 0)",
        ),
        (
            vec!["serve", "--brownout", "1500"],
            "--brownout must be within 1..=1000 permille (got 1500)",
        ),
        (
            vec!["serve", "--retry-budget", "17"],
            "--retry-budget must be at most 16 retries per request (got 17)",
        ),
        (
            vec!["serve", "--slo-class", "interactive,gold"],
            "--slo-class clause `gold`: unknown class (have: interactive, batch, best-effort)",
        ),
        // Well-formed flags that conflict: brownout can never fire
        // without a best-effort tenant to shed.
        (
            vec!["serve", "--brownout", "500"],
            "--brownout below 1000 needs at least one best-effort tenant (see --slo-class)",
        ),
        // ...and a model cache is only exercised by the chaos pass.
        (
            vec!["serve", "--model-cache", "/tmp/x"],
            "--model-cache under `serve` only applies with --chaos",
        ),
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(msg), "{args:?}: {err}");
    }
}

#[test]
fn serve_overload_sheds_and_conserves_per_class() {
    let dir = std::env::temp_dir().join(format!("repro_serve_slo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("slo.json");
    // Hot arrivals against a tight deadline with a retry budget: some
    // requests expire in queue, rejected ones are retried, and the books
    // must still balance at every level.
    let args = [
        "serve",
        "--quick",
        "--clients",
        "6",
        "--requests",
        "3",
        "--lambda",
        "2000",
        "--max-wait",
        "1000",
        "--deadline",
        "1500",
        "--retry-budget",
        "2",
        "--slo-class",
        "interactive,best-effort",
        "--brownout",
        "750",
        "--json",
    ];
    let mut argv: Vec<&str> = args.to_vec();
    argv.push(path.to_str().unwrap());
    let a = repro(&argv);
    assert!(
        a.status.success(),
        "overload run failed:\n{}",
        String::from_utf8_lossy(&a.stderr)
    );
    let b = repro(&argv);
    assert_eq!(a.stdout, b.stdout, "overload run must be reproducible");
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let submitted = json["submitted"].as_u64().unwrap();
    let served = json["served"].as_u64().unwrap();
    let rejected = json["rejected"].as_u64().unwrap();
    let shed = json["shed"].as_u64().unwrap();
    assert!(shed > 0, "tight deadlines must shed: {json:?}");
    assert!(served > 0, "overload must not shed everything: {json:?}");
    assert_eq!(submitted, served + rejected + shed);
    // Per-class accounting covers all three classes and sums to the
    // global ledger.
    let classes = json["per_class"].as_array().unwrap();
    assert_eq!(classes.len(), 3);
    let mut sum = (0, 0, 0, 0);
    for c in classes {
        let (s, v, r, d) = (
            c["submitted"].as_u64().unwrap(),
            c["served"].as_u64().unwrap(),
            c["rejected"].as_u64().unwrap(),
            c["shed"].as_u64().unwrap(),
        );
        assert_eq!(s, v + r + d, "class ledger must balance: {c:?}");
        sum = (sum.0 + s, sum.1 + v, sum.2 + r, sum.3 + d);
    }
    assert_eq!(sum, (submitted, served, rejected, shed));
    std::fs::remove_dir_all(&dir).ok();
}
