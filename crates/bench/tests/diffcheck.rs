//! Integration tests for the differential-correctness harness: the full
//! oracle over a seeded case budget, shrinking against a live oracle, and
//! JSON repro round-trips.

use bench::diffcheck::{self, DiffCase, DiffOutcome};

#[test]
fn fixed_seed_budget_has_zero_divergences() {
    // A slice of the CI budget (`repro diffcheck --cases 500 --seed 1`),
    // run in-process so a failure points straight at the oracle family.
    let outcome = diffcheck::run(80, 1, false);
    assert_eq!(outcome.cases, 80);
    assert_eq!(outcome.seed, 1);
    assert!(
        outcome.divergences.is_empty(),
        "divergences: {:#?}",
        outcome.divergences
    );
}

#[test]
fn different_seeds_draw_different_cases() {
    let a = diffcheck::generate_case(1, 0);
    let b = diffcheck::generate_case(2, 0);
    let c = diffcheck::generate_case(1, 1);
    assert_ne!(a, b);
    assert_ne!(a, c);
    // Same (seed, index) must reproduce byte-identically — that is what
    // makes a dumped repro case replayable.
    assert_eq!(a, diffcheck::generate_case(1, 0));
}

#[test]
fn shrinking_against_the_live_oracle_keeps_the_failure() {
    // A synthetic failure predicate tied to real case structure: "fails
    // whenever the fmap has a non-zero in channel 0". The shrinker must
    // hand back a case that still satisfies the predicate and is no
    // larger than the input.
    let fails = |case: &DiffCase| {
        let (_, h, w) = case.fmap.shape();
        (0..h).any(|y| (0..w).any(|x| case.fmap.get(0, y, x) != 0))
    };
    let seed_case = (0..64)
        .map(|i| diffcheck::generate_case(3, i))
        .find(|c| fails(c))
        .expect("some case has a non-zero in channel 0");
    let shrunk = diffcheck::shrink_with(&seed_case, &fails);
    assert!(fails(&shrunk), "shrinking must preserve the failure");
    let (c0, h0, w0) = seed_case.fmap.shape();
    let (c1, h1, w1) = shrunk.fmap.shape();
    assert!(c1 * h1 * w1 <= c0 * h0 * w0);
    // The shrunk case must still pass the real oracle's geometry checks
    // (it describes a runnable layer, not a degenerate config).
    let nonzero = (0..c1)
        .flat_map(|ch| shrunk.fmap.channel(ch).iter())
        .filter(|&&v| v != 0)
        .count();
    assert!(nonzero >= 1);
}

#[test]
fn outcome_round_trips_through_json() {
    let outcome = diffcheck::run(5, 9, false);
    let text = serde_json::to_string_pretty(&outcome).unwrap();
    let back: DiffOutcome = serde_json::from_str(&text).unwrap();
    assert_eq!(back.cases, outcome.cases);
    assert_eq!(back.seed, outcome.seed);
    assert_eq!(back.divergences.len(), outcome.divergences.len());
}

#[test]
fn check_case_accepts_a_replayed_json_case() {
    // Serialize a generated case to JSON (the repro dump format), read it
    // back, and run the full oracle on the replayed copy.
    let case = diffcheck::generate_case(1, 3);
    let text = serde_json::to_string(&case).unwrap();
    let replayed: DiffCase = serde_json::from_str(&text).unwrap();
    assert_eq!(replayed, case);
    diffcheck::check_case(&replayed).expect("replayed case passes the oracle");
}
