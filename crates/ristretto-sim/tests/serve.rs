//! Scheduler coverage for the serving layer: batch-coalescing
//! determinism across thread counts, weighted fairness under a starved
//! tenant, admission-control accounting, the max-wait dispatch bound,
//! and chaos-under-load byte-reproducibility.

use qnn::mini::MiniNetwork;
use qnn::models::NetworkId;
use qnn::quant::BitWidth;
use qnn::tensor::Tensor3;
use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::engine::NetworkModel;
use ristretto_sim::fault::FaultConfig;
use ristretto_sim::serve::{
    run_load, LoadGenConfig, ModelId, ModelRegistry, ServeConfig, ServeError, ServeReport, Server,
};

fn model(id: NetworkId, seed: u64) -> NetworkModel {
    let mini = MiniNetwork::try_new(id).unwrap();
    let mut gen = WorkloadGen::new(seed);
    let wp = WeightProfile::benchmark(BitWidth::W4);
    NetworkModel::from_mini(&mini, &mut gen, &wp).unwrap()
}

fn input_for(server: &Server, model: ModelId, seed: u64) -> Tensor3 {
    let (c, h, w) = server.registry().get(model).unwrap().net.input();
    WorkloadGen::new(seed)
        .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
        .unwrap()
}

/// Builds a two-model server and runs the standard closed loop under a
/// dedicated `threads`-wide rayon pool.
fn load_report(cfg: &RistrettoConfig, serve: ServeConfig, threads: usize) -> ServeReport {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let mut reg = ModelRegistry::new(None);
        let a = reg
            .register(&model(NetworkId::AlexNet, 11), cfg, &serve)
            .unwrap();
        let g = reg
            .register(&model(NetworkId::GoogLeNet, 13), cfg, &serve)
            .unwrap();
        let mut server = Server::new(reg, serve).unwrap();
        let load = LoadGenConfig {
            seed: 20220101,
            clients: 6,
            requests_per_client: 4,
            lambda_per_mtick: 50,
            mix: vec![(a, 3), (g, 1)],
        };
        run_load(&mut server, &load).unwrap()
    })
}

/// The serialized report — not just the struct — must be byte-identical
/// at any thread count: parallelism stays inside the engine kernels.
#[test]
fn load_report_is_byte_identical_across_thread_counts() {
    let cfg = RistrettoConfig::paper_default();
    let reports: Vec<ServeReport> = [1usize, 4]
        .iter()
        .map(|&t| load_report(&cfg, ServeConfig::paper_default(), t))
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "thread count leaked into the report"
    );
    let json: Vec<String> = reports
        .iter()
        .map(|r| serde_json::to_string_pretty(r).unwrap())
        .collect();
    assert_eq!(json[0], json[1], "thread count leaked into the JSON bytes");
    assert!(reports[0].conserves_requests());
    assert_eq!(reports[0].submitted, 24);
    assert_eq!(reports[0].served, 24);
    assert!(reports[0].batches > 0);
    // A second identical run reproduces the bytes exactly.
    let again = load_report(&cfg, ServeConfig::paper_default(), 4);
    assert_eq!(json[1], serde_json::to_string_pretty(&again).unwrap());
}

/// A flooded heavy tenant must not starve a light one: with weights 2:1
/// and both queues non-empty, every full batch carries requests from
/// both tenants in the weighted ratio.
#[test]
fn weighted_fairness_protects_the_starved_tenant() {
    let cfg = RistrettoConfig::paper_default();
    let serve = ServeConfig {
        max_batch: 6,
        max_wait_ticks: 1_000,
        queue_capacity: 64,
        tenant_weights: vec![2, 1],
        fleet_cores: 1,
        fleet_batch_threshold: usize::MAX,
    };
    let mut reg = ModelRegistry::new(None);
    let m = reg
        .register(&model(NetworkId::AlexNet, 17), &cfg, &serve)
        .unwrap();
    let mut server = Server::new(reg, serve).unwrap();
    let input = input_for(&server, m, 23);
    // Heavy tenant 0 floods; light tenant 1 trickles.
    for c in 0..12u64 {
        server.submit(0, m, 0, c, input.clone()).unwrap();
    }
    for c in 12..18u64 {
        server.submit(0, m, 1, c, input.clone()).unwrap();
    }
    let done = server.drain().unwrap();
    assert_eq!(done.len(), 18);
    // Group completions into batches by finish tick (lanes serialize, so
    // each dispatch has a distinct finish).
    let mut finishes: Vec<u64> = done.iter().map(|c| c.finish).collect();
    finishes.sort_unstable();
    finishes.dedup();
    assert_eq!(finishes.len(), 3, "18 requests at max_batch 6 → 3 batches");
    for (i, &f) in finishes.iter().enumerate() {
        let batch: Vec<usize> = done
            .iter()
            .filter(|c| c.finish == f)
            .map(|c| c.tenant)
            .collect();
        assert_eq!(batch.len(), 6);
        let light = batch.iter().filter(|&&t| t == 1).count();
        // Batches 1 and 2 drain both queues in the 2:1 weighted ratio
        // (4 heavy + 2 light); batch 3 carries the leftovers.
        if i < 2 {
            assert_eq!(light, 2, "batch {i} under-served the light tenant");
        }
    }
    let stats = server.stats();
    assert_eq!(stats.per_tenant[0], (12, 12, 0));
    assert_eq!(stats.per_tenant[1], (6, 6, 0));
}

/// Admission control: the bounded queue rejects with a typed error that
/// names the numbers, every rejection is counted, and the post-drain
/// conservation invariant holds globally and per tenant.
#[test]
fn admission_rejections_are_counted_and_conserved() {
    let cfg = RistrettoConfig::paper_default();
    let serve = ServeConfig {
        max_batch: 4,
        max_wait_ticks: 1_000,
        queue_capacity: 4,
        tenant_weights: vec![1, 1],
        fleet_cores: 1,
        fleet_batch_threshold: usize::MAX,
    };
    let mut reg = ModelRegistry::new(None);
    let m = reg
        .register(&model(NetworkId::AlexNet, 19), &cfg, &serve)
        .unwrap();
    let mut server = Server::new(reg, serve).unwrap();
    let input = input_for(&server, m, 29);
    let mut rejected = 0;
    for c in 0..10u64 {
        match server.submit(0, m, (c % 2) as usize, c, input.clone()) {
            Ok(_) => {}
            Err(ServeError::Rejected {
                queue_depth,
                capacity,
                ..
            }) => {
                assert_eq!((queue_depth, capacity), (4, 4));
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(rejected, 6, "capacity 4 admits 4 of 10");
    let done = server.drain().unwrap();
    assert_eq!(done.len(), 4);
    let report = ServeReport::from_stats(server.stats(), 0, 10, 2, vec!["m".into()]);
    assert_eq!(
        (report.submitted, report.served, report.rejected),
        (10, 4, 6)
    );
    assert!(report.conserves_requests());
    assert_eq!(report.queue_depth_max, 4);
}

/// An undersized batch must not wait forever: a lone request dispatches
/// once the oldest arrival has aged `max_wait_ticks`, so its latency is
/// the wait bound plus the priced span — never less than the bound.
#[test]
fn max_wait_bounds_idle_dispatch() {
    let cfg = RistrettoConfig::paper_default();
    let serve = ServeConfig {
        max_batch: 8,
        max_wait_ticks: 7_777,
        queue_capacity: 8,
        tenant_weights: vec![1],
        fleet_cores: 1,
        fleet_batch_threshold: usize::MAX,
    };
    let mut reg = ModelRegistry::new(None);
    let m = reg
        .register(&model(NetworkId::AlexNet, 31), &cfg, &serve)
        .unwrap();
    let mut server = Server::new(reg, serve).unwrap();
    let input = input_for(&server, m, 37);
    server.submit(100, m, 0, 0, input).unwrap();
    let done = server.drain().unwrap();
    assert_eq!(done.len(), 1);
    assert!(
        done[0].finish > 100 + 7_777,
        "finish {} must clear submit + max_wait",
        done[0].finish
    );
    assert_eq!(server.stats().batch_histogram[0], 1, "a singleton batch");
}

/// Chaos under load: the same closed loop against a fault-injected config
/// is (a) byte-reproducible run-to-run, (b) SLO-visible — injections are
/// counted and priced into the span — and (c) corruption-free: the
/// order-insensitive output digest matches the quiescent run exactly.
#[test]
fn chaos_under_load_is_reproducible_and_corruption_free() {
    let clean_cfg = RistrettoConfig::paper_default();
    let chaos_cfg = RistrettoConfig::paper_default().with_faults(Some(
        FaultConfig::uniform(59, 120_000)
            .with_detect(true)
            .with_recover(true),
    ));
    // Roomy queue: both runs must admit the identical request set for the
    // digest comparison to be meaningful.
    let serve = ServeConfig {
        queue_capacity: 1024,
        ..ServeConfig::paper_default()
    };
    let clean = load_report(&clean_cfg, serve.clone(), 4);
    let chaos = load_report(&chaos_cfg, serve.clone(), 4);
    let chaos_again = load_report(&chaos_cfg, serve, 1);
    assert_eq!(
        serde_json::to_string_pretty(&chaos).unwrap(),
        serde_json::to_string_pretty(&chaos_again).unwrap(),
        "chaos run must be byte-reproducible at any thread count"
    );
    assert!(chaos.faults_injected > 0, "campaign must fire");
    assert!(chaos.faults_detected > 0, "monitors must see it");
    assert!(
        chaos.fault_penalty_ticks > 0,
        "detection and recovery must be SLO-visible in the span"
    );
    assert!(chaos.busy_ticks > clean.busy_ticks);
    assert_eq!(clean.faults_injected, 0);
    assert_eq!(clean.fault_penalty_ticks, 0);
    assert_eq!((clean.served, chaos.served), (24, 24));
    assert_eq!(
        chaos.output_digest, clean.output_digest,
        "recovery must be byte-exact: no silent corruption under load"
    );
}
