//! Scheduler coverage for the serving layer: batch-coalescing
//! determinism across thread counts, weighted fairness under a starved
//! tenant, admission-control accounting, the max-wait dispatch bound,
//! deadline shedding, brownout, client retries, the circuit-breaker
//! degradation ladder, and chaos-under-load byte-reproducibility.

use qnn::mini::MiniNetwork;
use qnn::models::NetworkId;
use qnn::quant::BitWidth;
use qnn::tensor::Tensor3;
use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::engine::NetworkModel;
use ristretto_sim::fault::{CoreDeathConfig, FaultConfig};
use ristretto_sim::serve::{
    run_load, Disposition, LoadGenConfig, ModelId, ModelRegistry, ServeConfig, ServeError,
    ServeReport, Server, SloClass,
};

fn model(id: NetworkId, seed: u64) -> NetworkModel {
    let mini = MiniNetwork::try_new(id).unwrap();
    let mut gen = WorkloadGen::new(seed);
    let wp = WeightProfile::benchmark(BitWidth::W4);
    NetworkModel::from_mini(&mini, &mut gen, &wp).unwrap()
}

fn input_for(server: &Server, model: ModelId, seed: u64) -> Tensor3 {
    let (c, h, w) = server.registry().get(model).unwrap().net.input();
    WorkloadGen::new(seed)
        .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
        .unwrap()
}

/// The standard closed loop of the determinism tests.
fn standard_load(mix: Vec<(ModelId, u64)>) -> LoadGenConfig {
    LoadGenConfig {
        seed: 20220101,
        clients: 6,
        requests_per_client: 4,
        lambda_per_mtick: 50,
        mix,
        deadline_ticks: None,
        retry_budget: 0,
        retry_base_ticks: 500,
    }
}

/// Builds a two-model server and runs a closed loop under a dedicated
/// `threads`-wide rayon pool; `tweak` edits the load shape.
fn load_report_with(
    cfg: &RistrettoConfig,
    serve: ServeConfig,
    threads: usize,
    tweak: impl Fn(&mut LoadGenConfig),
) -> ServeReport {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let mut reg = ModelRegistry::new(None);
        let a = reg
            .register(&model(NetworkId::AlexNet, 11), cfg, &serve)
            .unwrap();
        let g = reg
            .register(&model(NetworkId::GoogLeNet, 13), cfg, &serve)
            .unwrap();
        let mut server = Server::new(reg, serve).unwrap();
        let mut load = standard_load(vec![(a, 3), (g, 1)]);
        tweak(&mut load);
        run_load(&mut server, &load).unwrap()
    })
}

fn load_report(cfg: &RistrettoConfig, serve: ServeConfig, threads: usize) -> ServeReport {
    load_report_with(cfg, serve, threads, |_| {})
}

/// The serialized report — not just the struct — must be byte-identical
/// at any thread count: parallelism stays inside the engine kernels.
#[test]
fn load_report_is_byte_identical_across_thread_counts() {
    let cfg = RistrettoConfig::paper_default();
    let reports: Vec<ServeReport> = [1usize, 4]
        .iter()
        .map(|&t| load_report(&cfg, ServeConfig::paper_default(), t))
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "thread count leaked into the report"
    );
    let json: Vec<String> = reports
        .iter()
        .map(|r| serde_json::to_string_pretty(r).unwrap())
        .collect();
    assert_eq!(json[0], json[1], "thread count leaked into the JSON bytes");
    assert!(reports[0].conserves_requests());
    assert_eq!(reports[0].submitted, 24);
    assert_eq!(reports[0].served, 24);
    assert_eq!(reports[0].shed, 0);
    assert!(reports[0].batches > 0);
    // A second identical run reproduces the bytes exactly.
    let again = load_report(&cfg, ServeConfig::paper_default(), 4);
    assert_eq!(json[1], serde_json::to_string_pretty(&again).unwrap());
}

/// A flooded heavy tenant must not starve a light one: with weights 2:1
/// and both queues non-empty, every full batch carries requests from
/// both tenants in the weighted ratio.
#[test]
fn weighted_fairness_protects_the_starved_tenant() {
    let cfg = RistrettoConfig::paper_default();
    let serve = ServeConfig {
        max_batch: 6,
        max_wait_ticks: 1_000,
        queue_capacity: 64,
        tenant_weights: vec![2, 1],
        tenant_classes: vec![SloClass::Batch, SloClass::Batch],
        fleet_cores: 1,
        fleet_batch_threshold: usize::MAX,
        ..ServeConfig::paper_default()
    };
    let mut reg = ModelRegistry::new(None);
    let m = reg
        .register(&model(NetworkId::AlexNet, 17), &cfg, &serve)
        .unwrap();
    let mut server = Server::new(reg, serve).unwrap();
    let input = input_for(&server, m, 23);
    // Heavy tenant 0 floods; light tenant 1 trickles.
    for c in 0..12u64 {
        server.submit(0, m, 0, c, input.clone(), None).unwrap();
    }
    for c in 12..18u64 {
        server.submit(0, m, 1, c, input.clone(), None).unwrap();
    }
    let done = server.drain().unwrap();
    assert_eq!(done.len(), 18);
    // Group completions into batches by finish tick (lanes serialize, so
    // each dispatch has a distinct finish).
    let mut finishes: Vec<u64> = done.iter().map(|c| c.finish).collect();
    finishes.sort_unstable();
    finishes.dedup();
    assert_eq!(finishes.len(), 3, "18 requests at max_batch 6 → 3 batches");
    for (i, &f) in finishes.iter().enumerate() {
        let batch: Vec<usize> = done
            .iter()
            .filter(|c| c.finish == f)
            .map(|c| c.tenant)
            .collect();
        assert_eq!(batch.len(), 6);
        let light = batch.iter().filter(|&&t| t == 1).count();
        // Batches 1 and 2 drain both queues in the 2:1 weighted ratio
        // (4 heavy + 2 light); batch 3 carries the leftovers.
        if i < 2 {
            assert_eq!(light, 2, "batch {i} under-served the light tenant");
        }
    }
    let stats = server.stats();
    assert_eq!(stats.per_tenant[0], (12, 12, 0, 0));
    assert_eq!(stats.per_tenant[1], (6, 6, 0, 0));
}

/// Admission control: the bounded queue rejects with a typed error that
/// names the numbers, every rejection is counted, and the post-drain
/// conservation invariant holds globally and per tenant.
#[test]
fn admission_rejections_are_counted_and_conserved() {
    let cfg = RistrettoConfig::paper_default();
    let classes = [SloClass::Interactive, SloClass::Batch];
    let serve = ServeConfig {
        max_batch: 4,
        max_wait_ticks: 1_000,
        queue_capacity: 4,
        tenant_weights: vec![1, 1],
        tenant_classes: classes.to_vec(),
        fleet_cores: 1,
        fleet_batch_threshold: usize::MAX,
        ..ServeConfig::paper_default()
    };
    let mut reg = ModelRegistry::new(None);
    let m = reg
        .register(&model(NetworkId::AlexNet, 19), &cfg, &serve)
        .unwrap();
    let mut server = Server::new(reg, serve).unwrap();
    let input = input_for(&server, m, 29);
    let mut rejected = 0;
    for c in 0..10u64 {
        match server.submit(0, m, (c % 2) as usize, c, input.clone(), None) {
            Ok(_) => {}
            Err(ServeError::Rejected {
                queue_depth,
                capacity,
                ..
            }) => {
                assert_eq!((queue_depth, capacity), (4, 4));
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(rejected, 6, "capacity 4 admits 4 of 10");
    let done = server.drain().unwrap();
    assert_eq!(done.len(), 4);
    let report =
        ServeReport::from_stats(server.stats(), 0, 10, 2, vec!["m".into()], &classes, 0, 0);
    assert_eq!(
        (report.submitted, report.served, report.rejected),
        (10, 4, 6)
    );
    assert!(report.conserves_requests());
    assert_eq!(report.queue_depth_max, 4);
}

/// An undersized batch must not wait forever: a lone request dispatches
/// once the oldest arrival has aged `max_wait_ticks`, so its latency is
/// the wait bound plus the priced span — never less than the bound.
#[test]
fn max_wait_bounds_idle_dispatch() {
    let cfg = RistrettoConfig::paper_default();
    let serve = ServeConfig {
        max_batch: 8,
        max_wait_ticks: 7_777,
        queue_capacity: 8,
        tenant_weights: vec![1],
        tenant_classes: vec![SloClass::Batch],
        fleet_cores: 1,
        fleet_batch_threshold: usize::MAX,
        ..ServeConfig::paper_default()
    };
    let mut reg = ModelRegistry::new(None);
    let m = reg
        .register(&model(NetworkId::AlexNet, 31), &cfg, &serve)
        .unwrap();
    let mut server = Server::new(reg, serve).unwrap();
    let input = input_for(&server, m, 37);
    server.submit(100, m, 0, 0, input, None).unwrap();
    let done = server.drain().unwrap();
    assert_eq!(done.len(), 1);
    assert!(
        done[0].finish > 100 + 7_777,
        "finish {} must clear submit + max_wait",
        done[0].finish
    );
    assert_eq!(server.stats().batch_histogram[0], 1, "a singleton batch");
}

/// Chaos under load: the same closed loop against a fault-injected config
/// is (a) byte-reproducible run-to-run, (b) SLO-visible — injections are
/// counted and priced into the span — and (c) corruption-free: the
/// order-insensitive output digest matches the quiescent run exactly.
#[test]
fn chaos_under_load_is_reproducible_and_corruption_free() {
    let clean_cfg = RistrettoConfig::paper_default();
    let chaos_cfg = RistrettoConfig::paper_default().with_faults(Some(
        FaultConfig::uniform(59, 120_000)
            .with_detect(true)
            .with_recover(true),
    ));
    // Roomy queue: both runs must admit the identical request set for the
    // digest comparison to be meaningful.
    let serve = ServeConfig {
        queue_capacity: 1024,
        ..ServeConfig::paper_default()
    };
    let clean = load_report(&clean_cfg, serve.clone(), 4);
    let chaos = load_report(&chaos_cfg, serve.clone(), 4);
    let chaos_again = load_report(&chaos_cfg, serve, 1);
    assert_eq!(
        serde_json::to_string_pretty(&chaos).unwrap(),
        serde_json::to_string_pretty(&chaos_again).unwrap(),
        "chaos run must be byte-reproducible at any thread count"
    );
    assert!(chaos.faults_injected > 0, "campaign must fire");
    assert!(chaos.faults_detected > 0, "monitors must see it");
    assert!(
        chaos.fault_penalty_ticks > 0,
        "detection and recovery must be SLO-visible in the span"
    );
    assert!(chaos.busy_ticks > clean.busy_ticks);
    assert_eq!(clean.faults_injected, 0);
    assert_eq!(clean.fault_penalty_ticks, 0);
    assert_eq!((clean.served, chaos.served), (24, 24));
    assert_eq!(
        chaos.output_digest, clean.output_digest,
        "recovery must be byte-exact: no silent corruption under load"
    );
    // A faulted streak trips the lane breaker; the degraded route and the
    // probes are all counted.
    assert!(
        chaos.breaker_trips > 0,
        "faulted streak must trip: {chaos:?}"
    );
}

/// Deadline shedding: requests whose deadline passes while queued are
/// shed at dispatch — never executed, reported as
/// [`Disposition::DeadlineExceeded`], and conserved as
/// `submitted == served + rejected + shed` at every level. The whole
/// overloaded run stays byte-identical across thread counts.
#[test]
fn expired_deadlines_shed_at_dispatch_and_conserve() {
    let cfg = RistrettoConfig::paper_default();
    // Hot load (tiny think times) against a tight deadline: queues back
    // up behind busy lanes and the tail expires before dispatch.
    let tweak = |l: &mut LoadGenConfig| {
        l.lambda_per_mtick = 2_000;
        l.deadline_ticks = Some(1_500);
    };
    let serve = ServeConfig {
        queue_capacity: 1024,
        ..ServeConfig::paper_default()
    };
    let r1 = load_report_with(&cfg, serve.clone(), 1, tweak);
    let r4 = load_report_with(&cfg, serve, 4, tweak);
    assert_eq!(
        serde_json::to_string_pretty(&r1).unwrap(),
        serde_json::to_string_pretty(&r4).unwrap(),
        "shedding must not depend on thread count"
    );
    assert!(r1.shed > 0, "tight deadlines must shed: {r1:?}");
    assert!(r1.served > 0, "not everything expires");
    assert!(r1.conserves_requests());
    assert_eq!(r1.submitted, r1.served + r1.rejected + r1.shed);
}

/// A shed request surfaces as a completion with the deadline disposition,
/// carrying the deadline it missed; it never reaches an execution lane.
#[test]
fn shed_notice_names_the_missed_deadline() {
    let cfg = RistrettoConfig::paper_default();
    let serve = ServeConfig {
        max_batch: 8,
        max_wait_ticks: 5_000,
        queue_capacity: 8,
        tenant_weights: vec![1],
        tenant_classes: vec![SloClass::Batch],
        fleet_cores: 1,
        fleet_batch_threshold: usize::MAX,
        ..ServeConfig::paper_default()
    };
    let mut reg = ModelRegistry::new(None);
    let m = reg
        .register(&model(NetworkId::AlexNet, 41), &cfg, &serve)
        .unwrap();
    let mut server = Server::new(reg, serve).unwrap();
    let input = input_for(&server, m, 43);
    // Deadline (tick 100) expires long before the max-wait dispatch at
    // tick 5_000: the lone request must be shed, not served.
    server.submit(0, m, 0, 7, input, Some(100)).unwrap();
    let done = server.drain().unwrap();
    assert_eq!(done.len(), 1);
    assert_eq!(
        done[0].disposition,
        Disposition::DeadlineExceeded { deadline: 100 }
    );
    assert_eq!(done[0].client, 7);
    let stats = server.stats();
    assert_eq!((stats.shed, stats.served, stats.batches), (1, 0, 0));
    assert_eq!(stats.per_tenant[0], (1, 0, 0, 1));
}

/// Brownout: once queue depth crosses the high-water mark, `BestEffort`
/// admissions are shed with the typed error while higher classes keep
/// admitting; after the queue drains, best-effort flows again (no
/// permanent starvation).
#[test]
fn brownout_sheds_best_effort_then_recovers() {
    let cfg = RistrettoConfig::paper_default();
    let serve = ServeConfig {
        max_batch: 4,
        max_wait_ticks: 1_000,
        queue_capacity: 8,
        tenant_weights: vec![1, 1],
        tenant_classes: vec![SloClass::Interactive, SloClass::BestEffort],
        brownout_permille: 500, // high-water at depth 4
        fleet_cores: 1,
        fleet_batch_threshold: usize::MAX,
        ..ServeConfig::paper_default()
    };
    let mut reg = ModelRegistry::new(None);
    let m = reg
        .register(&model(NetworkId::AlexNet, 47), &cfg, &serve)
        .unwrap();
    let mut server = Server::new(reg, serve).unwrap();
    let input = input_for(&server, m, 53);
    // Fill to the high-water mark with interactive requests.
    for c in 0..4u64 {
        server.submit(0, m, 0, c, input.clone(), None).unwrap();
    }
    // Best-effort is browned out at the mark...
    match server.submit(0, m, 1, 100, input.clone(), None) {
        Err(ServeError::BrownedOut {
            tenant,
            queue_depth,
            highwater,
            ..
        }) => {
            assert_eq!((tenant, queue_depth, highwater), (1, 4, 4));
        }
        other => panic!("expected BrownedOut, got {other:?}"),
    }
    // ...while interactive still admits past it.
    server.submit(0, m, 0, 4, input.clone(), None).unwrap();
    assert_eq!(server.stats().brownout_rejected, 1);
    // Drain the backlog; the queue is now empty, so best-effort admits
    // and gets served — brownout is load shedding, not starvation.
    server.drain().unwrap();
    server.submit(50_000, m, 1, 101, input, None).unwrap();
    let done = server.drain().unwrap();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].tenant, 1);
    assert_eq!(done[0].disposition, Disposition::Served);
    let stats = server.stats();
    assert_eq!(stats.per_tenant[1], (2, 1, 1, 0));
    assert!(stats.submitted == stats.served + stats.rejected + stats.shed);
}

/// Client retries: a rejected submission re-offers the same request after
/// deterministic backoff; the retry stream is counted, conserves, and is
/// byte-identical across thread counts.
#[test]
fn retry_backoff_is_deterministic_and_conserved() {
    let cfg = RistrettoConfig::paper_default();
    // A 2-deep queue under hot load: plenty of rejections to retry.
    let tweak = |l: &mut LoadGenConfig| {
        l.lambda_per_mtick = 2_000;
        l.retry_budget = 3;
    };
    let serve = ServeConfig {
        queue_capacity: 2,
        ..ServeConfig::paper_default()
    };
    let r1 = load_report_with(&cfg, serve.clone(), 1, tweak);
    let r4 = load_report_with(&cfg, serve, 4, tweak);
    assert_eq!(
        serde_json::to_string_pretty(&r1).unwrap(),
        serde_json::to_string_pretty(&r4).unwrap(),
        "retry timing must not depend on thread count"
    );
    assert!(r1.retries > 0, "rejections must be retried: {r1:?}");
    assert!(r1.rejected > 0);
    assert!(r1.conserves_requests());
    // Every offer (fresh or retried) is accounted: submitted grows with
    // the retries, so the books still balance exactly.
    assert_eq!(r1.submitted, r1.served + r1.rejected + r1.shed);
}

/// The degradation ladder's bottom rung: a primary route that *aborts* on
/// an undetained fault (detection on, recovery off) is re-run on the
/// single-core lane with recovery forced — the serving loop completes,
/// the rerun is counted, and outputs match the quiescent run exactly.
#[test]
fn fault_abort_reruns_degraded_instead_of_failing() {
    let clean_cfg = RistrettoConfig::paper_default();
    // Detection without recovery: the first detected fault aborts the
    // engine run with a typed error.
    let abort_cfg = RistrettoConfig::paper_default()
        .with_faults(Some(FaultConfig::uniform(59, 120_000).with_recover(false)));
    let serve = ServeConfig {
        queue_capacity: 1024,
        ..ServeConfig::paper_default()
    };
    let clean = load_report(&clean_cfg, serve.clone(), 4);
    let degraded = load_report(&abort_cfg, serve.clone(), 4);
    let degraded_again = load_report(&abort_cfg, serve, 1);
    assert_eq!(
        serde_json::to_string_pretty(&degraded).unwrap(),
        serde_json::to_string_pretty(&degraded_again).unwrap()
    );
    assert!(
        degraded.breaker_reruns > 0,
        "aborted batches must re-run degraded: {degraded:?}"
    );
    assert_eq!(degraded.served, clean.served);
    assert_eq!(
        degraded.output_digest, clean.output_digest,
        "the degraded rerun must be byte-exact"
    );
}

/// Serve-level core deaths: a campaign attached to the fleet lane fires
/// inside fleet batches mid-serve; migration keeps outputs byte-exact and
/// the whole run reproducible at any thread count.
#[test]
fn core_deaths_mid_serve_stay_byte_exact() {
    let cfg = RistrettoConfig::paper_default();
    let serve_quiet = ServeConfig {
        queue_capacity: 1024,
        ..ServeConfig::paper_default()
    };
    let serve_deaths = ServeConfig {
        core_deaths: Some(CoreDeathConfig::new(61, 200_000)),
        ..serve_quiet.clone()
    };
    let quiet = load_report(&cfg, serve_quiet, 4);
    let deaths = load_report(&cfg, serve_deaths.clone(), 4);
    let deaths_again = load_report(&cfg, serve_deaths, 1);
    assert_eq!(
        serde_json::to_string_pretty(&deaths).unwrap(),
        serde_json::to_string_pretty(&deaths_again).unwrap(),
        "core deaths must be deterministic in virtual time"
    );
    assert!(deaths.fleet_batches > 0, "campaign needs fleet batches");
    assert_eq!(deaths.served, quiet.served);
    assert_eq!(
        deaths.output_digest, quiet.output_digest,
        "migration after death must not corrupt outputs"
    );
}
