//! Property-based tests for the Ristretto simulator: balancing invariants
//! and cycle-level tile behaviour.

use atomstream::atom::AtomBits;
use atomstream::compress::{compress_activations, compress_weights};
use atomstream::cycles::ideal_steps;
use atomstream::flatten::{FlatActivation, FlatWeight};
use proptest::prelude::*;
use qnn::rng::SeededRng;
use ristretto_sim::balance::{balance, BalanceStrategy, ChannelWorkload};
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::tile::TileSim;

fn workloads(n: usize, seed: u64) -> Vec<ChannelWorkload> {
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|channel| ChannelWorkload {
            channel,
            act_atoms: 1 + rng.below(2000) as u64,
            weight_atoms: 1 + rng.below(800) as u64,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn balancing_is_a_partition(
        n_channels in 1usize..200,
        tiles in 1usize..=64,
        seed in 0u64..10_000,
    ) {
        let w = workloads(n_channels, seed);
        for strategy in [BalanceStrategy::None, BalanceStrategy::WeightOnly, BalanceStrategy::WeightActivation] {
            let a = balance(&w, tiles, 16, strategy);
            prop_assert_eq!(a.groups.len(), tiles);
            let mut all: Vec<usize> = a.groups.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n_channels).collect::<Vec<_>>());
            // Total work is strategy-invariant.
            let expected: u64 = w.iter().map(|c| c.cycles(16)).sum();
            prop_assert_eq!(a.total_cycles(), expected);
            prop_assert!(a.utilization() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn wa_never_loses_to_cyclic(
        n_channels in 2usize..150,
        tiles in 2usize..=32,
        seed in 0u64..10_000,
    ) {
        let w = workloads(n_channels, seed);
        let none = balance(&w, tiles, 16, BalanceStrategy::None);
        let wa = balance(&w, tiles, 16, BalanceStrategy::WeightActivation);
        prop_assert!(wa.makespan() <= none.makespan());
        // LPT is within 4/3 of optimal; the optimum is at least both the
        // mean load and the largest indivisible channel.
        let mean = wa.total_cycles().div_ceil(tiles as u64);
        let biggest = w.iter().map(|c| c.cycles(16)).max().unwrap_or(0);
        let lower = mean.max(biggest).max(1);
        prop_assert!(
            wa.makespan() * 3 <= lower * 4 + 3,
            "makespan {} vs lower bound {lower}",
            wa.makespan()
        );
    }

    #[test]
    fn tile_sim_counters_are_exact(
        seed in 0u64..10_000,
        n_acts in 1usize..40,
        n_weights in 1usize..60,
        mults in 1usize..=32,
    ) {
        let mut rng = SeededRng::new(seed);
        let fa: Vec<FlatActivation> = (0..n_acts)
            .map(|i| FlatActivation {
                value: 1 + rng.below(255) as i32,
                x: (i % 8) as u16,
                y: (i / 8) as u16,
            })
            .collect();
        let fw: Vec<FlatWeight> = (0..n_weights)
            .map(|i| {
                let m = 1 + rng.below(127) as i32;
                FlatWeight {
                    value: if rng.bernoulli(0.5) { -m } else { m },
                    x: rng.below(3) as u16,
                    y: rng.below(3) as u16,
                    out_ch: (i % 37) as u16,
                }
            })
            .collect();
        let acts = compress_activations(&fa, 8, AtomBits::B2).unwrap();
        let weights = compress_weights(&fw, 8, AtomBits::B2).unwrap();
        let cfg = RistrettoConfig { multipliers: mults, ..RistrettoConfig::paper_default() };
        let sim = TileSim::new(&cfg);
        let r = sim.run(&weights, &acts);
        // Counters are exact regardless of scheduling.
        prop_assert_eq!(r.atom_mults, acts.len() as u64 * weights.len() as u64);
        prop_assert_eq!(r.deliveries, acts.value_count() as u64 * weights.len() as u64);
        // Cycles bounded below by Eq 3 and above by Eq 3 + residue + stalls.
        let ideal = ideal_steps(acts.len() as u64, weights.len() as u64, mults as u64);
        prop_assert!(r.ideal_cycles() >= ideal);
        prop_assert!(r.ideal_cycles() <= ideal + mults as u64);
        prop_assert_eq!(r.cycles, r.ideal_cycles() + r.stall_cycles);
    }

    #[test]
    fn utilization_perfect_when_uniform(
        tiles in 1usize..=16,
        per_tile in 1usize..=8,
    ) {
        // Identical channels spread perfectly.
        let n = tiles * per_tile;
        let w: Vec<ChannelWorkload> = (0..n)
            .map(|channel| ChannelWorkload { channel, act_atoms: 100, weight_atoms: 64 })
            .collect();
        let a = balance(&w, tiles, 16, BalanceStrategy::WeightActivation);
        prop_assert!((a.utilization() - 1.0).abs() < 1e-9);
    }
}
