//! Byte-determinism sweep of the sharded fleet simulator: every
//! `(cores, threads)` combination must produce the same bytes — outputs
//! *and* the full integer [`FleetReport`] — and the scaling efficiencies
//! derived from those reports must respect their theoretical bounds.
//! A core-death chaos case closes the loop: a fleet losing cores mid-run
//! reshards deterministically and still reproduces the fault-free bytes.

use qnn::mini::MiniNetwork;
use qnn::models::NetworkId;
use qnn::quant::BitWidth;
use qnn::tensor::Tensor3;
use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
use ristretto_sim::config::{FleetConfig, RistrettoConfig};
use ristretto_sim::engine::{compile, CompiledNetwork, NetworkModel, Session};
use ristretto_sim::fault::CoreDeathConfig;
use ristretto_sim::fleet::{Fleet, FleetRun, ShardStrategy};
use std::sync::Arc;

const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn compiled_and_inputs(seed: u64, inputs: usize) -> (Arc<CompiledNetwork>, Vec<Tensor3>) {
    let mini = MiniNetwork::try_new(NetworkId::GoogLeNet).unwrap();
    let mut gen = WorkloadGen::new(seed);
    let wp = WeightProfile::benchmark(BitWidth::W4);
    let model = NetworkModel::from_mini(&mini, &mut gen, &wp).unwrap();
    let (c, h, w) = model.input;
    let images = (0..inputs)
        .map(|_| {
            gen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
                .unwrap()
        })
        .collect();
    let net = compile(&model, &RistrettoConfig::paper_default()).unwrap();
    (net, images)
}

/// Runs `cfg` over `inputs` inside a dedicated `threads`-wide pool.
fn run_pooled(
    net: &Arc<CompiledNetwork>,
    cfg: FleetConfig,
    inputs: &[Tensor3],
    threads: usize,
) -> FleetRun {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    let fleet = Fleet::try_new(net.clone(), cfg).unwrap();
    pool.install(|| fleet.run(inputs).unwrap())
}

/// The full `(cores, threads)` matrix: per `(strategy, cores)` point the
/// 1-thread and 4-thread runs must agree on every byte, and per strategy
/// the outputs must be byte-identical across core counts.
#[test]
fn cores_by_threads_sweep_is_byte_identical() {
    let (net, inputs) = compiled_and_inputs(41, 2);
    let session_out: Vec<Tensor3> = {
        let session = Session::new(net.clone());
        inputs
            .iter()
            .map(|i| session.run(i).unwrap().output)
            .collect()
    };
    for strategy in [ShardStrategy::Batch, ShardStrategy::OutputChannel] {
        for cores in CORE_COUNTS {
            let runs: Vec<FleetRun> = THREAD_COUNTS
                .iter()
                .map(|&t| run_pooled(&net, FleetConfig::new(cores, strategy), &inputs, t))
                .collect();
            assert_eq!(
                runs[0].report, runs[1].report,
                "{strategy} x{cores}: thread count leaked into the report"
            );
            assert_eq!(
                runs[0].outputs, runs[1].outputs,
                "{strategy} x{cores}: thread count leaked into the outputs"
            );
            assert_eq!(runs[0].noc, runs[1].noc);
            // Sharding must never change the numerics.
            assert_eq!(
                runs[0].outputs, session_out,
                "{strategy} x{cores}: fleet diverges from the single-core session"
            );
        }
    }
}

/// Strong scaling (output-channel, one input): efficiency
/// `t1 / (N · tN)` stays in `(0, 1]` and latency never increases as cores
/// are added.
#[test]
fn strong_scaling_efficiency_is_bounded() {
    let (net, inputs) = compiled_and_inputs(43, 1);
    let mut makespans = Vec::new();
    for cores in CORE_COUNTS {
        let run = run_pooled(
            &net,
            FleetConfig::new(cores, ShardStrategy::OutputChannel),
            &inputs,
            4,
        );
        makespans.push(run.report.makespan_cycles);
    }
    let t1 = makespans[0];
    for (i, &cores) in CORE_COUNTS.iter().enumerate() {
        let eff = t1 as f64 / (cores as f64 * makespans[i] as f64);
        assert!(
            eff > 0.0 && eff <= 1.0,
            "strong efficiency {eff} at {cores} cores (t1 {t1}, tN {})",
            makespans[i]
        );
    }
    assert!(
        makespans.windows(2).all(|p| p[1] <= p[0]),
        "latency must not grow with cores: {makespans:?}"
    );
}

/// Weak scaling (batch, one input per core): the makespan is bounded below
/// by the 1-core single-input baseline (core 0 always serves input 0) and
/// above by the slowest input's full single-core time.
#[test]
fn weak_scaling_stays_within_bounds() {
    let (net, all_inputs) = compiled_and_inputs(47, 8);
    let t1 = run_pooled(
        &net,
        FleetConfig::new(1, ShardStrategy::Batch),
        &all_inputs[..1],
        4,
    )
    .report
    .makespan_cycles;
    // The per-input ceiling: every input served alone on one core.
    let worst: u64 = all_inputs
        .iter()
        .map(|input| {
            run_pooled(
                &net,
                FleetConfig::new(1, ShardStrategy::Batch),
                std::slice::from_ref(input),
                4,
            )
            .report
            .makespan_cycles
        })
        .max()
        .unwrap();
    for cores in CORE_COUNTS {
        let run = run_pooled(
            &net,
            FleetConfig::new(cores, ShardStrategy::Batch),
            &all_inputs[..cores],
            4,
        );
        let tn = run.report.makespan_cycles;
        let eff = t1 as f64 / tn as f64;
        assert!(
            tn >= t1 && tn <= worst,
            "{cores} cores: makespan {tn} outside [{t1}, {worst}]"
        );
        assert!(eff > 0.0 && eff <= 1.0, "weak efficiency {eff}");
        assert_eq!(run.report.link_bits, 0, "batch sharding moves no traffic");
    }
}

/// Core-death chaos: a hot campaign kills cores mid-run; the fleet
/// reshards deterministically and reproduces the fault-free bytes at any
/// thread count.
#[test]
fn core_death_chaos_reproduces_fault_free_bytes_at_any_thread_count() {
    let (net, inputs) = compiled_and_inputs(53, 2);
    let clean = run_pooled(
        &net,
        FleetConfig::new(4, ShardStrategy::OutputChannel),
        &inputs,
        4,
    );
    let chaos_cfg = FleetConfig::new(4, ShardStrategy::OutputChannel)
        .with_core_deaths(Some(CoreDeathConfig::new(61, 200_000)));
    let runs: Vec<FleetRun> = THREAD_COUNTS
        .iter()
        .map(|&t| run_pooled(&net, chaos_cfg, &inputs, t))
        .collect();
    assert!(runs[0].report.core_deaths > 0, "campaign must fire");
    assert!(runs[0].report.reshards > 0);
    assert_eq!(runs[0].report, runs[1].report);
    assert_eq!(runs[0].outputs, runs[1].outputs);
    assert_eq!(
        runs[0].outputs, clean.outputs,
        "recovery must be byte-exact against the fault-free fleet"
    );
    assert_eq!(runs[0].report.output_digest, clean.report.output_digest);
    assert!(runs[0].report.latency_cycles > clean.report.latency_cycles);
}
