//! Compile-once/run-many inference engine.
//!
//! Ristretto's weight side is *static*: the CSC flow intersects a static
//! weight atom stream with a sliding activation stream (§III, Fig 5), so
//! everything derived from the trained network — flattened kernels,
//! compressed + shuffled weight atom streams, per-channel weight atom
//! statistics, the weight-only balancer grouping and the weight-buffer
//! layout — can be produced once and shared. [`compile`] builds those
//! artifacts into a [`CompiledNetwork`] held behind an [`Arc`];
//! [`Session`]s then perform only per-input work (activation tiling and
//! compression, stream intersection, PPU, pooling), amortizing the compile
//! cost across a batch.

use crate::config::{ConfigError, RistrettoConfig};
use crate::core::{CoreReport, CoreSim};
use crate::pipeline::{LayerTrace, PipelineLayer};
use crate::ppu::{PostProcessor, PpuOutput};
use crate::weightbuf::WeightBufferImage;
use atomstream::conv_csc::{conv2d_csc_streams, CscConfig, WeightStreamSet};
use atomstream::error::AtomError;
use qnn::conv::ConvGeometry;
use qnn::error::QnnError;
use qnn::mini::MiniNetwork;
use qnn::pool::{pool2d, PoolKind};
use qnn::quant::BitWidth;
use qnn::tensor::Tensor3;
use qnn::workload::{WeightProfile, WorkloadGen};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors from the compile/run engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The architecture configuration is inconsistent.
    Config(ConfigError),
    /// Stream construction or geometry failed.
    Atom(AtomError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "configuration error: {e}"),
            EngineError::Atom(e) => write!(f, "stream error: {e}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::Atom(e) => Some(e),
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<AtomError> for EngineError {
    fn from(e: AtomError) -> Self {
        EngineError::Atom(e)
    }
}

impl From<QnnError> for EngineError {
    fn from(e: QnnError) -> Self {
        EngineError::Atom(AtomError::Qnn(e))
    }
}

/// A trained network as the engine sees it: named layer plan plus the
/// declared input shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Network name for reporting.
    pub name: String,
    /// Input shape `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// The layer plan in execution order.
    pub layers: Vec<PipelineLayer>,
}

impl NetworkModel {
    /// Builds a model from an explicit layer plan.
    pub fn new(
        name: impl Into<String>,
        input: (usize, usize, usize),
        layers: Vec<PipelineLayer>,
    ) -> Self {
        Self {
            name: name.into(),
            input,
            layers,
        }
    }

    /// Builds a model from a miniature benchmark network, materializing
    /// 4-bit benchmark-sparsity weights with the given generator.
    ///
    /// # Errors
    /// Propagates geometry errors from weight materialization.
    pub fn from_mini(
        mini: &MiniNetwork,
        gen: &mut WorkloadGen,
        wp: &WeightProfile,
    ) -> Result<Self, QnnError> {
        let layers = mini
            .stages
            .iter()
            .map(|stage| {
                let l = &stage.layer;
                Ok(PipelineLayer {
                    name: l.name.clone(),
                    kernels: gen.weights(l.out_channels, l.in_channels, l.kernel, l.kernel, wp)?,
                    geom: l.geometry(),
                    w_bits: wp.bits,
                    a_bits: BitWidth::W8,
                    requant_shift: 5,
                    out_bits: 8,
                    pool: stage.pool,
                })
            })
            .collect::<Result<_, QnnError>>()?;
        Ok(Self {
            name: mini.id.name().to_string(),
            input: mini.input,
            layers,
        })
    }
}

/// One layer's static artifacts: everything derivable from the trained
/// weights alone.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledLayer {
    name: String,
    weights: WeightStreamSet,
    geom: ConvGeometry,
    a_bits: BitWidth,
    requant_shift: u32,
    out_bits: u8,
    pool: Option<(PoolKind, usize, usize, usize)>,
    weight_atoms_per_channel: Vec<u64>,
    weight_buffer_bits: Option<usize>,
    static_groups: Vec<Vec<usize>>,
}

impl CompiledLayer {
    /// Compiles one pipeline layer's static side under a core
    /// configuration.
    fn compile(layer: &PipelineLayer, cfg: &RistrettoConfig) -> Result<Self, AtomError> {
        let weights = WeightStreamSet::compile(&layer.kernels, layer.w_bits, cfg.atom_bits)?;
        let weight_atoms_per_channel: Vec<u64> = (0..weights.in_channels())
            .map(|c| weights.atoms(c))
            .collect();
        // SRAM layout of the compressed weights; `None` when the layer
        // exceeds the weight buffer's header limits (it would stream from
        // DRAM instead of residing on-chip).
        let weight_buffer_bits =
            WeightBufferImage::encode(&layer.kernels, layer.w_bits.bits(), cfg.atom_bits)
                .ok()
                .map(|img| img.storage_bits());
        // The weight-side half of the §IV-E balancer is input-independent,
        // so its grouping is a compile-time artifact. The joint w/a
        // grouping still happens per input (it needs measured activation
        // atom counts).
        let workloads: Vec<crate::balance::ChannelWorkload> = weight_atoms_per_channel
            .iter()
            .enumerate()
            .map(|(channel, &weight_atoms)| crate::balance::ChannelWorkload {
                channel,
                act_atoms: 1,
                weight_atoms,
            })
            .collect();
        let static_groups = crate::balance::balance(
            &workloads,
            cfg.tiles,
            cfg.multipliers as u64,
            crate::balance::BalanceStrategy::WeightOnly,
        )
        .groups;
        Ok(Self {
            name: layer.name.clone(),
            weights,
            geom: layer.geom,
            a_bits: layer.a_bits,
            requant_shift: layer.requant_shift,
            out_bits: layer.out_bits,
            pool: layer.pool,
            weight_atoms_per_channel,
            weight_buffer_bits,
            static_groups,
        })
    }

    /// Runs this layer's per-input work: activation compression, stream
    /// intersection, PPU and optional pooling.
    fn execute(&self, csc: &CscConfig, act: &Tensor3) -> Result<(Tensor3, LayerTrace), AtomError> {
        let out = conv2d_csc_streams(act, &self.weights, self.geom, self.a_bits, csc)?;
        let ppu = PostProcessor {
            requant_shift: self.requant_shift,
            out_bits: self.out_bits,
            atom_bits: csc.atom_bits,
            tile_h: csc.tile_h,
            tile_w: csc.tile_w,
        };
        let PpuOutput {
            activations,
            values_per_channel,
            atoms_per_channel,
            ..
        } = ppu.try_process(&out.output)?;
        let next = match self.pool {
            Some((kind, window, stride, padding)) => {
                pool2d(&activations, kind, window, stride, padding)?
            }
            None => activations,
        };
        Ok((
            next,
            LayerTrace {
                name: self.name.clone(),
                stats: out.stats,
                out_values_per_channel: values_per_channel,
                out_atoms_per_channel: atoms_per_channel,
            },
        ))
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled static weight streams.
    pub fn weights(&self) -> &WeightStreamSet {
        &self.weights
    }

    /// Static weight atoms per input channel (the balancer's `S_i`).
    pub fn weight_atoms_per_channel(&self) -> &[u64] {
        &self.weight_atoms_per_channel
    }

    /// Total static weight atoms in the layer.
    pub fn weight_atoms(&self) -> u64 {
        self.weight_atoms_per_channel.iter().sum()
    }

    /// Compressed weight-buffer footprint in bits, or `None` when the
    /// layer exceeds the on-chip buffer's addressing limits.
    pub fn weight_buffer_bits(&self) -> Option<usize> {
        self.weight_buffer_bits
    }

    /// The weight-only balancer grouping (the input-independent half of
    /// §IV-E, precomputed at compile time).
    pub fn static_groups(&self) -> &[Vec<usize>] {
        &self.static_groups
    }
}

/// A network compiled into per-layer static artifacts, shared by sessions
/// behind an [`Arc`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNetwork {
    name: String,
    input: (usize, usize, usize),
    cfg: RistrettoConfig,
    csc: CscConfig,
    layers: Vec<CompiledLayer>,
}

impl CompiledNetwork {
    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared input shape `(channels, height, width)`.
    pub fn input(&self) -> (usize, usize, usize) {
        self.input
    }

    /// The architecture configuration the network was compiled for.
    pub fn config(&self) -> &RistrettoConfig {
        &self.cfg
    }

    /// The CSC configuration derived from the architecture.
    pub fn csc_config(&self) -> &CscConfig {
        &self.csc
    }

    /// Per-layer compiled artifacts, in execution order.
    pub fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    /// Total static weight atoms across all layers.
    pub fn weight_atoms(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_atoms()).sum()
    }
}

/// Compiles a network's static artifacts once, for any number of sessions.
///
/// ```
/// use qnn::mini::MiniNetwork;
/// use qnn::models::NetworkId;
/// use qnn::quant::BitWidth;
/// use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
/// use ristretto_sim::config::RistrettoConfig;
/// use ristretto_sim::engine::{compile, NetworkModel, Session};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mini = MiniNetwork::try_new(NetworkId::ResNet18)?;
/// let mut gen = WorkloadGen::new(7);
/// let wp = WeightProfile::benchmark(BitWidth::W4);
/// let model = NetworkModel::from_mini(&mini, &mut gen, &wp)?;
///
/// // Compile once; the Arc'd artifacts are shared by every session.
/// let compiled = compile(&model, &RistrettoConfig::paper_default())?;
/// let session = Session::new(compiled.clone());
///
/// let (c, h, w) = compiled.input();
/// let input = gen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))?;
/// let run = session.run(&input)?;
/// assert_eq!(run.traces.len(), compiled.layers().len());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Returns [`EngineError::Config`] for inconsistent architecture
/// configurations and [`EngineError::Atom`] when weight streams cannot be
/// built (non-square kernels, overwide values).
pub fn compile(
    model: &NetworkModel,
    cfg: &RistrettoConfig,
) -> Result<Arc<CompiledNetwork>, EngineError> {
    let _span = obs::span("engine.compile");
    cfg.validate()?;
    let csc = CscConfig {
        atom_bits: cfg.atom_bits,
        multipliers: cfg.multipliers,
        tile_h: cfg.tile_h,
        tile_w: cfg.tile_w,
    };
    let layers = model
        .layers
        .iter()
        .map(|l| CompiledLayer::compile(l, cfg))
        .collect::<Result<Vec<_>, AtomError>>()?;
    obs::record(obs::Event::EngineCompileNetworks, 1);
    obs::record(obs::Event::EngineCompileLayers, layers.len() as u64);
    obs::record(
        obs::Event::EngineCompileWeightAtoms,
        layers.iter().map(|l| l.weight_atoms()).sum(),
    );
    Ok(Arc::new(CompiledNetwork {
        name: model.name.clone(),
        input: model.input,
        cfg: *cfg,
        csc,
        layers,
    }))
}

/// Result of one functional inference through a [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRun {
    /// Final activation tensor.
    pub output: Tensor3,
    /// Per-layer execution traces (byte-identical to the per-call
    /// [`crate::pipeline::FunctionalPipeline::run`] path).
    pub traces: Vec<LayerTrace>,
}

/// Result of one cycle-level inference through a [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCycleRun {
    /// Functional result (used to advance activations between layers).
    pub functional: SessionRun,
    /// Per-layer cycle-level core reports (byte-identical to
    /// [`CoreSim::run_layer`] on the same tensors).
    pub core_reports: Vec<CoreReport>,
}

/// A per-client handle over a shared [`CompiledNetwork`]: only per-input
/// work happens here.
#[derive(Debug, Clone)]
pub struct Session {
    net: Arc<CompiledNetwork>,
}

impl Session {
    /// Opens a session over compiled artifacts (cheap — the artifacts are
    /// shared, not copied).
    pub fn new(net: Arc<CompiledNetwork>) -> Self {
        obs::record(obs::Event::EngineSessions, 1);
        Self { net }
    }

    /// The compiled network this session serves.
    pub fn network(&self) -> &CompiledNetwork {
        &self.net
    }

    /// Runs one functional inference: activation compression,
    /// intersection, PPU and pooling per layer, against the shared static
    /// weight streams.
    ///
    /// ```
    /// use qnn::mini::MiniNetwork;
    /// use qnn::models::NetworkId;
    /// use qnn::quant::BitWidth;
    /// use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
    /// use ristretto_sim::config::RistrettoConfig;
    /// use ristretto_sim::engine::{compile, NetworkModel, Session};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mini = MiniNetwork::try_new(NetworkId::Vgg16)?;
    /// let mut gen = WorkloadGen::new(3);
    /// let model =
    ///     NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4))?;
    /// let compiled = compile(&model, &RistrettoConfig::paper_default())?;
    /// let session = Session::new(compiled);
    ///
    /// // One compile, many inputs: per-image cost excludes weight work.
    /// for seed in 0..3u64 {
    ///     let mut igen = WorkloadGen::new(100 + seed);
    ///     let (c, h, w) = session.network().input();
    ///     let input = igen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))?;
    ///     let run = session.run(&input)?;
    ///     assert!(run.traces.iter().all(|t| t.stats.weight_atoms > 0));
    /// }
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// Propagates activation-side atomization and geometry errors.
    pub fn run(&self, input: &Tensor3) -> Result<SessionRun, AtomError> {
        let _span = obs::span("engine.run");
        let mut act = input.clone();
        let mut traces = Vec::with_capacity(self.net.layers.len());
        for layer in &self.net.layers {
            let (next, trace) = layer.execute(&self.net.csc, &act)?;
            obs::record(obs::Event::EngineRunLayers, 1);
            obs::record(obs::Event::EngineRunActAtoms, trace.stats.act_atoms);
            act = next;
            traces.push(trace);
        }
        Ok(SessionRun {
            output: act,
            traces,
        })
    }

    /// Runs one cycle-level inference: every layer additionally goes
    /// through the multi-tile core simulator against the compiled weight
    /// streams, with per-input w/a balancing (§IV-E).
    ///
    /// # Errors
    /// Propagates atomization and geometry errors.
    pub fn run_cycle_level(&self, input: &Tensor3) -> Result<SessionCycleRun, AtomError> {
        let _span = obs::span("engine.run_cycle_level");
        let core =
            CoreSim::try_new(self.net.cfg).expect("configuration was validated at compile time");
        let mut act = input.clone();
        let mut traces = Vec::with_capacity(self.net.layers.len());
        let mut core_reports = Vec::with_capacity(self.net.layers.len());
        for layer in &self.net.layers {
            core_reports.push(core.run_layer_streams(&layer.weights, &act, layer.a_bits.bits())?);
            let (next, trace) = layer.execute(&self.net.csc, &act)?;
            obs::record(obs::Event::EngineRunLayers, 1);
            obs::record(obs::Event::EngineRunActAtoms, trace.stats.act_atoms);
            act = next;
            traces.push(trace);
        }
        Ok(SessionCycleRun {
            functional: SessionRun {
                output: act,
                traces,
            },
            core_reports,
        })
    }
}

/// Crate-internal bridge for [`crate::pipeline::FunctionalPipeline`]: one
/// layer compiled transiently and executed immediately (the pre-engine
/// behavior, kept byte-identical).
pub(crate) fn compile_and_execute_layer(
    layer: &PipelineLayer,
    csc: &CscConfig,
    act: &Tensor3,
) -> Result<(Tensor3, LayerTrace), AtomError> {
    let weights = WeightStreamSet::compile(&layer.kernels, layer.w_bits, csc.atom_bits)?;
    let compiled = CompiledLayer {
        name: layer.name.clone(),
        weights,
        geom: layer.geom,
        a_bits: layer.a_bits,
        requant_shift: layer.requant_shift,
        out_bits: layer.out_bits,
        pool: layer.pool,
        weight_atoms_per_channel: Vec::new(),
        weight_buffer_bits: None,
        static_groups: Vec::new(),
    };
    compiled.execute(csc, act)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FunctionalPipeline;
    use qnn::models::NetworkId;
    use qnn::workload::ActivationProfile;

    fn model_and_input(seed: u64) -> (NetworkModel, Tensor3) {
        let mini = MiniNetwork::try_new(NetworkId::GoogLeNet).unwrap();
        let mut gen = WorkloadGen::new(seed);
        let wp = WeightProfile::benchmark(BitWidth::W4);
        let model = NetworkModel::from_mini(&mini, &mut gen, &wp).unwrap();
        let (c, h, w) = model.input;
        let input = gen
            .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
            .unwrap();
        (model, input)
    }

    #[test]
    fn compile_produces_static_artifacts() {
        let (model, _) = model_and_input(5);
        let cfg = RistrettoConfig::paper_default();
        let compiled = compile(&model, &cfg).unwrap();
        assert_eq!(compiled.layers().len(), model.layers.len());
        assert!(compiled.weight_atoms() > 0);
        for (cl, pl) in compiled.layers().iter().zip(&model.layers) {
            assert_eq!(cl.name(), pl.name);
            assert_eq!(
                cl.weight_atoms(),
                cl.weights().total_atoms(),
                "per-channel stats must sum to the stream total"
            );
            assert!(cl.weight_buffer_bits().unwrap() > 0);
            let grouped: usize = cl.static_groups().iter().map(Vec::len).sum();
            assert_eq!(grouped, cl.weights().in_channels());
        }
    }

    #[test]
    fn sessions_share_compiled_artifacts() {
        let (model, input) = model_and_input(8);
        let compiled = compile(&model, &RistrettoConfig::paper_default()).unwrap();
        let a = Session::new(compiled.clone());
        let b = Session::new(compiled.clone());
        assert_eq!(Arc::strong_count(&compiled), 3);
        let ra = a.run(&input).unwrap();
        let rb = b.run(&input).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn session_matches_functional_pipeline() {
        let (model, input) = model_and_input(13);
        let cfg = RistrettoConfig::paper_default();
        let compiled = compile(&model, &cfg).unwrap();
        let run = Session::new(compiled).run(&input).unwrap();

        let pipeline = FunctionalPipeline::new(
            model.layers.clone(),
            CscConfig {
                atom_bits: cfg.atom_bits,
                multipliers: cfg.multipliers,
                tile_h: cfg.tile_h,
                tile_w: cfg.tile_w,
            },
        );
        let (out, traces) = pipeline.run(&input).unwrap();
        assert_eq!(run.output, out);
        assert_eq!(run.traces, traces);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let (model, _) = model_and_input(2);
        let bad = RistrettoConfig::paper_default().with_tiles(0);
        assert_eq!(
            compile(&model, &bad).unwrap_err(),
            EngineError::Config(ConfigError::ZeroTiles)
        );
    }
}
