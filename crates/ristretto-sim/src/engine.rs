//! Compile-once/run-many inference engine.
//!
//! Ristretto's weight side is *static*: the CSC flow intersects a static
//! weight atom stream with a sliding activation stream (§III, Fig 5), so
//! everything derived from the trained network — flattened kernels,
//! compressed + shuffled weight atom streams, per-channel weight atom
//! statistics, the weight-only balancer grouping and the weight-buffer
//! layout — can be produced once and shared. [`compile`] builds those
//! artifacts into a [`CompiledNetwork`] held behind an [`Arc`];
//! [`Session`]s then perform only per-input work (activation tiling and
//! compression, stream intersection, PPU, pooling), amortizing the compile
//! cost across a batch.

use crate::config::{ConfigError, RistrettoConfig};
use crate::core::{CoreError, CoreReport, CoreSim};
use crate::fault::{
    plane_digest, FaultConfig, FaultDetected, FaultInjector, FaultSite, FaultStats, FaultStructure,
};
use crate::pipeline::{LayerTrace, PipelineLayer};
use crate::ppu::{PostProcessor, PpuOutput};
use crate::weightbuf::WeightBufferImage;
use atomstream::compress::compress_activations;
use atomstream::conv_csc::{conv2d_csc_streams_with, CscConfig, CscStats, WeightStreamSet};
use atomstream::error::AtomError;
use atomstream::flatten::flatten_tile;
use atomstream::intersect::{
    act_value_sum, intersect, weight_term_sum, FullConvAcc, IntersectConfig,
};
use atomstream::kernel::CscScratch;
use atomstream::stream::{ActivationStream, WeightStream};
use qnn::conv::{conv2d, ConvGeometry};
use qnn::error::QnnError;
use qnn::mini::MiniNetwork;
use qnn::pool::{pool2d, PoolKind};
use qnn::quant::BitWidth;
use qnn::tensor::{AccTensor3, Tensor3, Tensor4};
use qnn::workload::{WeightProfile, WorkloadGen};
use rayon::prelude::*;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors from the compile/run engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The architecture configuration is inconsistent.
    Config(ConfigError),
    /// Stream construction or geometry failed.
    Atom(AtomError),
    /// A fault escaped its tile's retry budget with recovery disabled.
    Fault(FaultDetected),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "configuration error: {e}"),
            EngineError::Atom(e) => write!(f, "stream error: {e}"),
            EngineError::Fault(e) => e.fmt(f),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::Atom(e) => Some(e),
            EngineError::Fault(e) => Some(e),
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<AtomError> for EngineError {
    fn from(e: AtomError) -> Self {
        EngineError::Atom(e)
    }
}

impl From<QnnError> for EngineError {
    fn from(e: QnnError) -> Self {
        EngineError::Atom(AtomError::Qnn(e))
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Atom(a) => EngineError::Atom(a),
            CoreError::Fault(f) => EngineError::Fault(f),
        }
    }
}

impl From<FaultDetected> for EngineError {
    fn from(e: FaultDetected) -> Self {
        EngineError::Fault(e)
    }
}

/// A trained network as the engine sees it: named layer plan plus the
/// declared input shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Network name for reporting.
    pub name: String,
    /// Input shape `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// The layer plan in execution order.
    pub layers: Vec<PipelineLayer>,
}

impl NetworkModel {
    /// Builds a model from an explicit layer plan.
    pub fn new(
        name: impl Into<String>,
        input: (usize, usize, usize),
        layers: Vec<PipelineLayer>,
    ) -> Self {
        Self {
            name: name.into(),
            input,
            layers,
        }
    }

    /// Builds a model from a miniature benchmark network, materializing
    /// 4-bit benchmark-sparsity weights with the given generator.
    ///
    /// # Errors
    /// Propagates geometry errors from weight materialization.
    pub fn from_mini(
        mini: &MiniNetwork,
        gen: &mut WorkloadGen,
        wp: &WeightProfile,
    ) -> Result<Self, QnnError> {
        let layers = mini
            .stages
            .iter()
            .map(|stage| {
                let l = &stage.layer;
                Ok(PipelineLayer {
                    name: l.name.clone(),
                    kernels: gen.weights(l.out_channels, l.in_channels, l.kernel, l.kernel, wp)?,
                    geom: l.geometry(),
                    w_bits: wp.bits,
                    a_bits: BitWidth::W8,
                    requant_shift: 5,
                    out_bits: 8,
                    pool: stage.pool,
                })
            })
            .collect::<Result<_, QnnError>>()?;
        Ok(Self {
            name: mini.id.name().to_string(),
            input: mini.input,
            layers,
        })
    }
}

/// One layer's static artifacts: everything derivable from the trained
/// weights alone.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledLayer {
    pub(crate) name: String,
    pub(crate) weights: WeightStreamSet,
    /// Dense kernels retained for the fault-recovery fallback: a layer
    /// whose sparse path keeps faulting re-executes on the bit-exact dense
    /// reference convolution.
    pub(crate) kernels: Tensor4,
    pub(crate) geom: ConvGeometry,
    pub(crate) a_bits: BitWidth,
    pub(crate) requant_shift: u32,
    pub(crate) out_bits: u8,
    pub(crate) pool: Option<(PoolKind, usize, usize, usize)>,
    pub(crate) weight_atoms_per_channel: Vec<u64>,
    pub(crate) weight_buffer_bits: Option<usize>,
    pub(crate) static_groups: Vec<Vec<usize>>,
}

impl CompiledLayer {
    /// Compiles one pipeline layer's static side under a core
    /// configuration.
    pub(crate) fn compile(layer: &PipelineLayer, cfg: &RistrettoConfig) -> Result<Self, AtomError> {
        let weights = WeightStreamSet::compile(&layer.kernels, layer.w_bits, cfg.atom_bits)?;
        let weight_atoms_per_channel: Vec<u64> = (0..weights.in_channels())
            .map(|c| weights.atoms(c))
            .collect();
        // SRAM layout of the compressed weights; `None` when the layer
        // exceeds the weight buffer's header limits (it would stream from
        // DRAM instead of residing on-chip).
        let weight_buffer_bits =
            WeightBufferImage::encode(&layer.kernels, layer.w_bits.bits(), cfg.atom_bits)
                .ok()
                .map(|img| img.storage_bits());
        // The weight-side half of the §IV-E balancer is input-independent,
        // so its grouping is a compile-time artifact. The joint w/a
        // grouping still happens per input (it needs measured activation
        // atom counts).
        let workloads: Vec<crate::balance::ChannelWorkload> = weight_atoms_per_channel
            .iter()
            .enumerate()
            .map(|(channel, &weight_atoms)| crate::balance::ChannelWorkload {
                channel,
                act_atoms: 1,
                weight_atoms,
            })
            .collect();
        let static_groups = crate::balance::balance(
            &workloads,
            cfg.tiles,
            cfg.multipliers as u64,
            crate::balance::BalanceStrategy::WeightOnly,
        )
        .groups;
        Ok(Self {
            name: layer.name.clone(),
            weights,
            kernels: layer.kernels.clone(),
            geom: layer.geom,
            a_bits: layer.a_bits,
            requant_shift: layer.requant_shift,
            out_bits: layer.out_bits,
            pool: layer.pool,
            weight_atoms_per_channel,
            weight_buffer_bits,
            static_groups,
        })
    }

    /// Runs this layer's per-input work: activation compression, stream
    /// intersection, PPU and optional pooling. The scratch arena supplies
    /// the accumulator planes and per-channel weight plans; a persistent
    /// arena (one per layer inside a [`Session`]) makes the steady state
    /// allocation-free, while a transient `&CscScratch::new()` reproduces
    /// the pre-arena behavior exactly.
    pub(crate) fn execute(
        &self,
        csc: &CscConfig,
        act: &Tensor3,
        scratch: &CscScratch,
    ) -> Result<(Tensor3, LayerTrace), AtomError> {
        let out =
            conv2d_csc_streams_with(act, &self.weights, self.geom, self.a_bits, csc, scratch)?;
        self.post_process(csc, &out.output, out.stats)
    }

    /// The PPU + pooling tail shared by the clean and fault-aware paths.
    fn post_process(
        &self,
        csc: &CscConfig,
        conv_out: &AccTensor3,
        stats: CscStats,
    ) -> Result<(Tensor3, LayerTrace), AtomError> {
        let ppu = PostProcessor {
            requant_shift: self.requant_shift,
            out_bits: self.out_bits,
            atom_bits: csc.atom_bits,
            tile_h: csc.tile_h,
            tile_w: csc.tile_w,
        };
        let PpuOutput {
            activations,
            values_per_channel,
            atoms_per_channel,
            ..
        } = ppu.try_process(conv_out)?;
        let next = match self.pool {
            Some((kind, window, stride, padding)) => {
                pool2d(&activations, kind, window, stride, padding)?
            }
            None => activations,
        };
        Ok((
            next,
            LayerTrace {
                name: self.name.clone(),
                stats,
                out_values_per_channel: values_per_channel,
                out_atoms_per_channel: atoms_per_channel,
            },
        ))
    }

    /// Fault-aware variant of [`CompiledLayer::execute`]: faults are
    /// injected into the weight-buffer records, both atom streams and the
    /// accumulate-buffer words of every tile attempt per the campaign,
    /// the online monitors (stream checksums, the Eq 4/5 conservation law
    /// and the accumulate-plane digest) gate each tile, detected tiles
    /// re-execute within the retry budget (faults re-roll per attempt),
    /// and a tile that exhausts its budget triggers the dense-reference
    /// fallback for the whole layer when recovery is on — keeping the
    /// layer output byte-identical to a fault-free run.
    ///
    /// Byte-deterministic at any thread count: injection decisions are
    /// pure site hashes, channels merge in channel order, and `i64`
    /// plane addition commutes.
    pub(crate) fn execute_with_faults(
        &self,
        csc: &CscConfig,
        act: &Tensor3,
        injector: &FaultInjector,
        layer_idx: usize,
        acc_bits: u8,
    ) -> Result<(Tensor3, LayerTrace, FaultStats), EngineError> {
        let (c, h, w) = act.shape();
        let (o, i, k) = (
            self.weights.out_channels(),
            self.weights.in_channels(),
            self.weights.kernel(),
        );
        if c != i {
            return Err(QnnError::ChannelMismatch { fmap: c, kernel: i }.into());
        }
        if csc.atom_bits != self.weights.atom_bits() {
            return Err(AtomError::GranularityMismatch {
                compiled: self.weights.atom_bits().bits(),
                requested: csc.atom_bits.bits(),
            }
            .into());
        }
        let out_h = self.geom.out_extent(h, k)?;
        let out_w = self.geom.out_extent(w, k)?;
        if csc.tile_h == 0 || csc.tile_w == 0 {
            return Err(QnnError::EmptyDimension("tile extent").into());
        }
        let icfg = IntersectConfig {
            multipliers: csc.multipliers,
        };
        let tiles_x = w.div_ceil(csc.tile_w);
        let max_attempts = injector.max_attempts();

        struct ChannelOutcome {
            acc: Option<FullConvAcc>,
            stats: CscStats,
            faults: FaultStats,
            failed: Option<FaultDetected>,
        }

        // Same fan-out/merge shape as `conv2d_csc_streams`; outcomes
        // collect in channel order, so the run is thread-count
        // deterministic.
        let per_channel: Vec<Result<ChannelOutcome, AtomError>> = (0..c)
            .into_par_iter()
            .map(|ci| {
                let mut stats = CscStats::default();
                let mut faults = FaultStats::default();
                // The stored stream's always-on integrity monitor; the
                // injected copies below model in-flight corruption.
                self.weights.verify_channel(ci)?;
                let w_stream = self.weights.stream(ci);
                stats.weight_atoms += w_stream.len() as u64;
                if w_stream.is_empty() {
                    return Ok(ChannelOutcome {
                        acc: None,
                        stats,
                        faults,
                        failed: None,
                    });
                }
                let mut acc = FullConvAcc::new(o, h, w, k)?;
                for y0 in (0..h).step_by(csc.tile_h) {
                    for x0 in (0..w).step_by(csc.tile_w) {
                        let a_flat = flatten_tile(act, ci, y0, x0, csc.tile_h, csc.tile_w);
                        if a_flat.is_empty() {
                            continue;
                        }
                        let a_clean =
                            compress_activations(&a_flat, self.a_bits.bits(), csc.atom_bits)?;
                        stats.act_values += a_clean.value_count() as u64;
                        stats.act_atoms += a_clean.len() as u64;
                        stats.tiles_processed += 1;
                        // Logical tile-grid index: stable across thread
                        // counts and attempt numbers.
                        let tile_idx = (y0 / csc.tile_h) * tiles_x + x0 / csc.tile_w;
                        let mut attempt = 0u32;
                        let committed = loop {
                            let base = FaultSite {
                                layer: layer_idx,
                                channel: ci,
                                tile: tile_idx,
                                attempt,
                                item: 0,
                            };
                            // Weight side: one packed-record flip per hit in
                            // the buffer read (WeightBuffer) or on the wire
                            // into the Atomputer (WeightStream); both
                            // manifest as value-bit flips on the entry.
                            let mut w_entries = w_stream.entries().to_vec();
                            let (mut wb_cnt, mut ws_cnt) = (0u64, 0u64);
                            for (idx, e) in w_entries.iter_mut().enumerate() {
                                let site = FaultSite { item: idx, ..base };
                                if let Some(ent) =
                                    injector.decide(FaultStructure::WeightBuffer, site)
                                {
                                    FaultInjector::corrupt_weight_entry(e, ent);
                                    wb_cnt += 1;
                                }
                                if let Some(ent) =
                                    injector.decide(FaultStructure::WeightStream, site)
                                {
                                    FaultInjector::corrupt_weight_entry(e, ent);
                                    ws_cnt += 1;
                                }
                            }
                            faults.record_injected(FaultStructure::WeightBuffer, wb_cnt);
                            faults.record_injected(FaultStructure::WeightStream, ws_cnt);
                            let w_faulty = WeightStream::from_entries(w_entries);
                            // Activation side: magnitude-bit flips in the
                            // Atomizer's output stream.
                            let mut a_entries = a_clean.entries().to_vec();
                            let mut as_cnt = 0u64;
                            for (idx, e) in a_entries.iter_mut().enumerate() {
                                let site = FaultSite { item: idx, ..base };
                                if let Some(ent) =
                                    injector.decide(FaultStructure::ActivationStream, site)
                                {
                                    FaultInjector::corrupt_act_entry(e, ent);
                                    as_cnt += 1;
                                }
                            }
                            faults.record_injected(FaultStructure::ActivationStream, as_cnt);
                            let a_faulty = ActivationStream::from_entries(a_entries);
                            // Pre-intersect monitors: re-hash both streams
                            // against their reference digests before any
                            // multiply happens.
                            if injector.detect() {
                                let mut tripped = None;
                                if w_faulty.checksum() != self.weights.checksum(ci) {
                                    faults.record_detected(FaultStructure::WeightBuffer, wb_cnt);
                                    faults.record_detected(FaultStructure::WeightStream, ws_cnt);
                                    tripped = Some(if wb_cnt > 0 {
                                        FaultStructure::WeightBuffer
                                    } else {
                                        FaultStructure::WeightStream
                                    });
                                }
                                if a_faulty.checksum() != a_clean.checksum() {
                                    faults
                                        .record_detected(FaultStructure::ActivationStream, as_cnt);
                                    tripped.get_or_insert(FaultStructure::ActivationStream);
                                }
                                if let Some(structure) = tripped {
                                    if attempt >= max_attempts {
                                        break Err(FaultDetected {
                                            structure,
                                            layer: layer_idx,
                                            channel: ci,
                                            tile: tile_idx,
                                            attempts: attempt + 1,
                                        });
                                    }
                                    faults.record_retry();
                                    attempt += 1;
                                    continue;
                                }
                            }
                            // Intersect into a scratch plane so a rejected
                            // attempt never touches the committed
                            // accumulator.
                            let mut scratch = FullConvAcc::new(o, h, w, k)?;
                            let istats =
                                intersect(&w_faulty, &a_faulty, icfg, &mut scratch, y0, x0)?;
                            let reference_digest = plane_digest(scratch.cells());
                            let expected_sum =
                                weight_term_sum(&w_faulty) * act_value_sum(&a_faulty);
                            // Accumulate-buffer faults: word flips over the
                            // plane this tile pass wrote.
                            let mut acc_cnt = 0u64;
                            for (idx, word) in scratch.cells_mut().iter_mut().enumerate() {
                                let site = FaultSite { item: idx, ..base };
                                if let Some(ent) =
                                    injector.decide(FaultStructure::AccumBuffer, site)
                                {
                                    FaultInjector::corrupt_accum_word(word, acc_bits, ent);
                                    acc_cnt += 1;
                                }
                            }
                            faults.record_injected(FaultStructure::AccumBuffer, acc_cnt);
                            // Post-intersect monitors: the Eq 4/5
                            // conservation law (plane total = weight-term
                            // sum × activation-value sum) plus the
                            // incremental plane digest for the rare
                            // cancelling pair.
                            if injector.detect()
                                && (scratch.total_sum() != expected_sum
                                    || plane_digest(scratch.cells()) != reference_digest)
                            {
                                faults.record_detected(FaultStructure::AccumBuffer, acc_cnt);
                                faults.record_wasted(istats.atom_mults, istats.deliveries);
                                if attempt >= max_attempts {
                                    break Err(FaultDetected {
                                        structure: FaultStructure::AccumBuffer,
                                        layer: layer_idx,
                                        channel: ci,
                                        tile: tile_idx,
                                        attempts: attempt + 1,
                                    });
                                }
                                faults.record_retry();
                                attempt += 1;
                                continue;
                            }
                            break Ok((scratch, istats));
                        };
                        match committed {
                            Ok((scratch, istats)) => {
                                if attempt > 0 {
                                    faults.record_recovered_tile();
                                }
                                acc.merge(&scratch);
                                stats.intersect.merge(&istats);
                            }
                            Err(fault) => {
                                return Ok(ChannelOutcome {
                                    acc: None,
                                    stats,
                                    faults,
                                    failed: Some(fault),
                                });
                            }
                        }
                    }
                }
                Ok(ChannelOutcome {
                    acc: Some(acc),
                    stats,
                    faults,
                    failed: None,
                })
            })
            .collect();

        let mut acc = FullConvAcc::new(o, h, w, k)?;
        let mut stats = CscStats::default();
        let mut faults = FaultStats::default();
        let mut failure: Option<FaultDetected> = None;
        for result in per_channel {
            let outcome = result?;
            stats.merge(&outcome.stats);
            faults.merge(&outcome.faults);
            if let Some(f) = outcome.failed {
                failure.get_or_insert(f);
            } else if let Some(channel_acc) = outcome.acc {
                acc.merge(&channel_acc);
            }
        }
        let conv_out = match failure {
            None => acc.extract(self.geom, out_h, out_w)?,
            Some(fault) => {
                if !injector.recover() {
                    return Err(EngineError::Fault(fault));
                }
                // A tile exhausted its retry budget: replay the whole
                // layer on the dense reference convolution, which is
                // bit-exact against the sparse path.
                faults.record_layer_fallback();
                conv2d(act, &self.kernels, self.geom)?
            }
        };
        let (next, trace) = self.post_process(csc, &conv_out, stats)?;
        Ok((next, trace, faults))
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dense kernels retained for the fault-recovery fallback path.
    pub fn kernels(&self) -> &Tensor4 {
        &self.kernels
    }

    /// The compiled static weight streams.
    pub fn weights(&self) -> &WeightStreamSet {
        &self.weights
    }

    /// Static weight atoms per input channel (the balancer's `S_i`).
    pub fn weight_atoms_per_channel(&self) -> &[u64] {
        &self.weight_atoms_per_channel
    }

    /// Total static weight atoms in the layer.
    pub fn weight_atoms(&self) -> u64 {
        self.weight_atoms_per_channel.iter().sum()
    }

    /// Compressed weight-buffer footprint in bits, or `None` when the
    /// layer exceeds the on-chip buffer's addressing limits.
    pub fn weight_buffer_bits(&self) -> Option<usize> {
        self.weight_buffer_bits
    }

    /// The weight-only balancer grouping (the input-independent half of
    /// §IV-E, precomputed at compile time).
    pub fn static_groups(&self) -> &[Vec<usize>] {
        &self.static_groups
    }

    /// Static weight atoms per *output* channel — the workload metric the
    /// fleet's output-channel shard planner balances on.
    pub fn weight_atoms_per_out_channel(&self) -> Vec<u64> {
        let mut atoms = vec![0u64; self.weights.out_channels()];
        for stream in self.weights.streams() {
            for e in stream.entries() {
                atoms[e.out_ch as usize] += 1;
            }
        }
        atoms
    }

    /// Restricts this layer's static side to the given output channels
    /// (ascending, as a fleet shard plan provides them): slices the dense
    /// kernels and recompiles streams, per-channel statistics, buffer
    /// layout and the static balancer grouping for the slice. All input
    /// channels are kept — a shard consumes the full (all-gathered)
    /// activation tensor.
    ///
    /// # Errors
    /// Propagates stream-compilation errors from the sliced kernels.
    pub fn shard(
        &self,
        out_channels: &[usize],
        cfg: &RistrettoConfig,
    ) -> Result<CompiledLayer, AtomError> {
        let (_, in_c, kh, kw) = self.kernels.shape();
        let kernels = Tensor4::from_fn(out_channels.len(), in_c, kh, kw, |o, i, y, x| {
            self.kernels.get(out_channels[o], i, y, x)
        })?;
        let layer = PipelineLayer {
            name: self.name.clone(),
            kernels,
            geom: self.geom,
            w_bits: self.weights.w_bits(),
            a_bits: self.a_bits,
            requant_shift: self.requant_shift,
            out_bits: self.out_bits,
            pool: self.pool,
        };
        CompiledLayer::compile(&layer, cfg)
    }
}

/// A network compiled into per-layer static artifacts, shared by sessions
/// behind an [`Arc`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNetwork {
    pub(crate) name: String,
    pub(crate) input: (usize, usize, usize),
    pub(crate) cfg: RistrettoConfig,
    pub(crate) csc: CscConfig,
    pub(crate) layers: Vec<CompiledLayer>,
}

impl CompiledNetwork {
    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared input shape `(channels, height, width)`.
    pub fn input(&self) -> (usize, usize, usize) {
        self.input
    }

    /// The architecture configuration the network was compiled for.
    pub fn config(&self) -> &RistrettoConfig {
        &self.cfg
    }

    /// The CSC configuration derived from the architecture.
    pub fn csc_config(&self) -> &CscConfig {
        &self.csc
    }

    /// Per-layer compiled artifacts, in execution order.
    pub fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    /// Total static weight atoms across all layers.
    pub fn weight_atoms(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_atoms()).sum()
    }

    /// Builds one core's shard-scoped view of this network:
    /// `channels_per_layer[li]` is the (ascending) set of output channels
    /// the core owns at layer `li` — an empty set means the core idles
    /// through that layer (more cores than output channels). Layer indices
    /// stay global, so fault-injection sites and scratch arenas line up
    /// with the unsharded network.
    ///
    /// # Errors
    /// Propagates stream-compilation errors from the sliced kernels.
    pub fn shard_view(&self, channels_per_layer: &[Vec<usize>]) -> Result<ShardView, EngineError> {
        assert_eq!(
            channels_per_layer.len(),
            self.layers.len(),
            "shard plan must cover every layer"
        );
        let layers = self
            .layers
            .iter()
            .zip(channels_per_layer)
            .map(|(layer, channels)| {
                if channels.is_empty() {
                    Ok(None)
                } else {
                    layer.shard(channels, &self.cfg).map(Some)
                }
            })
            .collect::<Result<Vec<_>, AtomError>>()?;
        Ok(ShardView { layers })
    }
}

/// One core's slice of a sharded [`CompiledNetwork`]: per global layer
/// index, either the recompiled restriction of that layer to the core's
/// output channels, or `None` when the core idles through the layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardView {
    pub(crate) layers: Vec<Option<CompiledLayer>>,
}

impl ShardView {
    /// Per-layer shard artifacts (global layer order; `None` = idle).
    pub fn layers(&self) -> &[Option<CompiledLayer>] {
        &self.layers
    }

    /// Static weight atoms resident on this core.
    pub fn weight_atoms(&self) -> u64 {
        self.layers
            .iter()
            .flatten()
            .map(CompiledLayer::weight_atoms)
            .sum()
    }
}

/// Compiles a network's static artifacts once, for any number of sessions.
///
/// ```
/// use qnn::mini::MiniNetwork;
/// use qnn::models::NetworkId;
/// use qnn::quant::BitWidth;
/// use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
/// use ristretto_sim::config::RistrettoConfig;
/// use ristretto_sim::engine::{compile, NetworkModel, Session};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mini = MiniNetwork::try_new(NetworkId::ResNet18)?;
/// let mut gen = WorkloadGen::new(7);
/// let wp = WeightProfile::benchmark(BitWidth::W4);
/// let model = NetworkModel::from_mini(&mini, &mut gen, &wp)?;
///
/// // Compile once; the Arc'd artifacts are shared by every session.
/// let compiled = compile(&model, &RistrettoConfig::paper_default())?;
/// let session = Session::new(compiled.clone());
///
/// let (c, h, w) = compiled.input();
/// let input = gen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))?;
/// let run = session.run(&input)?;
/// assert_eq!(run.traces.len(), compiled.layers().len());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Returns [`EngineError::Config`] for inconsistent architecture
/// configurations and [`EngineError::Atom`] when weight streams cannot be
/// built (non-square kernels, overwide values).
pub fn compile(
    model: &NetworkModel,
    cfg: &RistrettoConfig,
) -> Result<Arc<CompiledNetwork>, EngineError> {
    let _span = obs::span("engine.compile");
    cfg.validate()?;
    let csc = CscConfig {
        atom_bits: cfg.atom_bits,
        multipliers: cfg.multipliers,
        tile_h: cfg.tile_h,
        tile_w: cfg.tile_w,
    };
    let layers = model
        .layers
        .iter()
        .map(|l| CompiledLayer::compile(l, cfg))
        .collect::<Result<Vec<_>, AtomError>>()?;
    obs::record(obs::Event::EngineCompileNetworks, 1);
    obs::record(obs::Event::EngineCompileLayers, layers.len() as u64);
    obs::record(
        obs::Event::EngineCompileWeightAtoms,
        layers.iter().map(|l| l.weight_atoms()).sum(),
    );
    Ok(Arc::new(CompiledNetwork {
        name: model.name.clone(),
        input: model.input,
        cfg: *cfg,
        csc,
        layers,
    }))
}

/// Result of one functional inference through a [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRun {
    /// Final activation tensor.
    pub output: Tensor3,
    /// Per-layer execution traces (byte-identical to the per-call
    /// [`crate::pipeline::FunctionalPipeline::run`] path).
    pub traces: Vec<LayerTrace>,
    /// Fault-campaign counters; all-zero when no campaign is configured.
    pub faults: FaultStats,
}

/// Result of one cycle-level inference through a [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCycleRun {
    /// Functional result (used to advance activations between layers).
    pub functional: SessionRun,
    /// Per-layer cycle-level core reports (byte-identical to
    /// [`CoreSim::run_layer`] on the same tensors).
    pub core_reports: Vec<CoreReport>,
}

/// A per-client handle over a shared [`CompiledNetwork`]: only per-input
/// work happens here.
///
/// Each session also owns one [`CscScratch`] arena per layer, so the
/// accumulator planes, weight plans and stream buffers of `run` are
/// recycled across inputs — after the first inference, the steady state
/// performs zero accumulator-plane heap allocations (observable through
/// [`Session::scratch_plane_allocations`]). Cloning a session shares the
/// arenas (they are internally synchronized).
#[derive(Debug, Clone)]
pub struct Session {
    net: Arc<CompiledNetwork>,
    scratch: Arc<Vec<CscScratch>>,
}

impl Session {
    /// Opens a session over compiled artifacts (cheap — the artifacts are
    /// shared, not copied; the per-layer scratch arenas start empty and
    /// fill lazily on the first run).
    pub fn new(net: Arc<CompiledNetwork>) -> Self {
        obs::record(obs::Event::EngineSessions, 1);
        let scratch = Arc::new((0..net.layers.len()).map(|_| CscScratch::new()).collect());
        Self { net, scratch }
    }

    /// The compiled network this session serves.
    pub fn network(&self) -> &CompiledNetwork {
        &self.net
    }

    /// Total accumulator-plane allocations performed by this session's
    /// scratch arenas since creation. In steady state (after the first
    /// input at a given layer geometry) consecutive [`Session::run`] calls
    /// leave this counter unchanged — the zero-allocation invariant the
    /// arena exists to provide.
    pub fn scratch_plane_allocations(&self) -> u64 {
        self.scratch.iter().map(|s| s.plane_allocations()).sum()
    }

    /// Runs one functional inference: activation compression,
    /// intersection, PPU and pooling per layer, against the shared static
    /// weight streams.
    ///
    /// ```
    /// use qnn::mini::MiniNetwork;
    /// use qnn::models::NetworkId;
    /// use qnn::quant::BitWidth;
    /// use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
    /// use ristretto_sim::config::RistrettoConfig;
    /// use ristretto_sim::engine::{compile, NetworkModel, Session};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mini = MiniNetwork::try_new(NetworkId::Vgg16)?;
    /// let mut gen = WorkloadGen::new(3);
    /// let model =
    ///     NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4))?;
    /// let compiled = compile(&model, &RistrettoConfig::paper_default())?;
    /// let session = Session::new(compiled);
    ///
    /// // One compile, many inputs: per-image cost excludes weight work.
    /// for seed in 0..3u64 {
    ///     let mut igen = WorkloadGen::new(100 + seed);
    ///     let (c, h, w) = session.network().input();
    ///     let input = igen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))?;
    ///     let run = session.run(&input)?;
    ///     assert!(run.traces.iter().all(|t| t.stats.weight_atoms > 0));
    /// }
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// Propagates activation-side atomization and geometry errors, and —
    /// when a fault campaign with recovery disabled is configured — an
    /// uncontained fault as [`EngineError::Fault`].
    pub fn run(&self, input: &Tensor3) -> Result<SessionRun, EngineError> {
        let _span = obs::span("engine.run");
        let injector = self.net.cfg.faults.map(FaultInjector::new);
        let mut act = input.clone();
        let mut traces = Vec::with_capacity(self.net.layers.len());
        let mut faults = FaultStats::default();
        for (li, layer) in self.net.layers.iter().enumerate() {
            let (next, trace) = match &injector {
                None => layer.execute(&self.net.csc, &act, &self.scratch[li])?,
                Some(inj) => {
                    let (next, trace, layer_faults) = layer.execute_with_faults(
                        &self.net.csc,
                        &act,
                        inj,
                        li,
                        self.net.cfg.acc_bits,
                    )?;
                    faults.merge(&layer_faults);
                    (next, trace)
                }
            };
            obs::record(obs::Event::EngineRunLayers, 1);
            obs::record(obs::Event::EngineRunActAtoms, trace.stats.act_atoms);
            act = next;
            traces.push(trace);
        }
        Ok(SessionRun {
            output: act,
            traces,
            faults,
        })
    }

    /// Runs exactly one layer (by global index) of the compiled network on
    /// `act` — the per-layer stepping primitive the fleet driver uses to
    /// interleave shard execution with inter-core activation exchange.
    /// Fault-injection sites depend only on the global layer index and the
    /// activation geometry, so stepping a network layer-by-layer is
    /// byte-identical to [`Session::run`].
    ///
    /// # Panics
    /// Panics if `li` is out of range.
    ///
    /// # Errors
    /// Same surface as [`Session::run`].
    pub fn run_layer(
        &self,
        li: usize,
        act: &Tensor3,
    ) -> Result<(Tensor3, LayerTrace, FaultStats), EngineError> {
        self.run_layer_with(li, act, self.net.cfg.faults)
    }

    /// [`Session::run_layer`] under an explicit fault campaign instead of
    /// the compiled one — the serving circuit breaker uses this to re-run
    /// degraded batches with [`FaultConfig::forced_recovery`] without
    /// recompiling the network. Passing `self.net.cfg.faults` reproduces
    /// [`Session::run_layer`] exactly.
    ///
    /// # Panics
    /// Panics if `li` is out of range.
    ///
    /// # Errors
    /// Same surface as [`Session::run`].
    pub fn run_layer_with(
        &self,
        li: usize,
        act: &Tensor3,
        campaign: Option<FaultConfig>,
    ) -> Result<(Tensor3, LayerTrace, FaultStats), EngineError> {
        assert!(li < self.net.layers.len(), "layer index out of range");
        let layer = &self.net.layers[li];
        let mut faults = FaultStats::default();
        let (next, trace) = match campaign.map(FaultInjector::new) {
            None => layer.execute(&self.net.csc, act, &self.scratch[li])?,
            Some(inj) => {
                let (next, trace, layer_faults) = layer.execute_with_faults(
                    &self.net.csc,
                    act,
                    &inj,
                    li,
                    self.net.cfg.acc_bits,
                )?;
                faults.merge(&layer_faults);
                (next, trace)
            }
        };
        obs::record(obs::Event::EngineRunLayers, 1);
        obs::record(obs::Event::EngineRunActAtoms, trace.stats.act_atoms);
        Ok((next, trace, faults))
    }

    /// Runs one cycle-level inference: every layer additionally goes
    /// through the multi-tile core simulator against the compiled weight
    /// streams, with per-input w/a balancing (§IV-E).
    ///
    /// # Errors
    /// Propagates atomization and geometry errors, and — when a fault
    /// campaign with recovery disabled is configured — an uncontained
    /// fault as [`EngineError::Fault`].
    pub fn run_cycle_level(&self, input: &Tensor3) -> Result<SessionCycleRun, EngineError> {
        let _span = obs::span("engine.run_cycle_level");
        let core =
            CoreSim::try_new(self.net.cfg).expect("configuration was validated at compile time");
        let injector = self.net.cfg.faults.map(FaultInjector::new);
        let mut act = input.clone();
        let mut traces = Vec::with_capacity(self.net.layers.len());
        let mut core_reports = Vec::with_capacity(self.net.layers.len());
        let mut faults = FaultStats::default();
        for (li, layer) in self.net.layers.iter().enumerate() {
            match &injector {
                None => core_reports.push(core.run_layer_streams(
                    &layer.weights,
                    &act,
                    layer.a_bits.bits(),
                )?),
                Some(inj) => {
                    let (report, core_faults) = core.run_layer_streams_faulty(
                        &layer.weights,
                        &act,
                        layer.a_bits.bits(),
                        inj,
                        li,
                    )?;
                    faults.merge(&core_faults);
                    core_reports.push(report);
                }
            }
            let (next, trace) = match &injector {
                None => layer.execute(&self.net.csc, &act, &self.scratch[li])?,
                Some(inj) => {
                    let (next, trace, layer_faults) = layer.execute_with_faults(
                        &self.net.csc,
                        &act,
                        inj,
                        li,
                        self.net.cfg.acc_bits,
                    )?;
                    faults.merge(&layer_faults);
                    (next, trace)
                }
            };
            obs::record(obs::Event::EngineRunLayers, 1);
            obs::record(obs::Event::EngineRunActAtoms, trace.stats.act_atoms);
            act = next;
            traces.push(trace);
        }
        Ok(SessionCycleRun {
            functional: SessionRun {
                output: act,
                traces,
                faults,
            },
            core_reports,
        })
    }
}

/// Crate-internal bridge for [`crate::pipeline::FunctionalPipeline`]: one
/// layer compiled transiently and executed immediately (the pre-engine
/// behavior, kept byte-identical).
pub(crate) fn compile_and_execute_layer(
    layer: &PipelineLayer,
    csc: &CscConfig,
    act: &Tensor3,
) -> Result<(Tensor3, LayerTrace), AtomError> {
    let weights = WeightStreamSet::compile(&layer.kernels, layer.w_bits, csc.atom_bits)?;
    let compiled = CompiledLayer {
        name: layer.name.clone(),
        weights,
        kernels: layer.kernels.clone(),
        geom: layer.geom,
        a_bits: layer.a_bits,
        requant_shift: layer.requant_shift,
        out_bits: layer.out_bits,
        pool: layer.pool,
        weight_atoms_per_channel: Vec::new(),
        weight_buffer_bits: None,
        static_groups: Vec::new(),
    };
    compiled.execute(csc, act, &CscScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FunctionalPipeline;
    use qnn::models::NetworkId;
    use qnn::workload::ActivationProfile;

    fn model_and_input(seed: u64) -> (NetworkModel, Tensor3) {
        let mini = MiniNetwork::try_new(NetworkId::GoogLeNet).unwrap();
        let mut gen = WorkloadGen::new(seed);
        let wp = WeightProfile::benchmark(BitWidth::W4);
        let model = NetworkModel::from_mini(&mini, &mut gen, &wp).unwrap();
        let (c, h, w) = model.input;
        let input = gen
            .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
            .unwrap();
        (model, input)
    }

    #[test]
    fn compile_produces_static_artifacts() {
        let (model, _) = model_and_input(5);
        let cfg = RistrettoConfig::paper_default();
        let compiled = compile(&model, &cfg).unwrap();
        assert_eq!(compiled.layers().len(), model.layers.len());
        assert!(compiled.weight_atoms() > 0);
        for (cl, pl) in compiled.layers().iter().zip(&model.layers) {
            assert_eq!(cl.name(), pl.name);
            assert_eq!(
                cl.weight_atoms(),
                cl.weights().total_atoms(),
                "per-channel stats must sum to the stream total"
            );
            assert!(cl.weight_buffer_bits().unwrap() > 0);
            let grouped: usize = cl.static_groups().iter().map(Vec::len).sum();
            assert_eq!(grouped, cl.weights().in_channels());
        }
    }

    #[test]
    fn sessions_share_compiled_artifacts() {
        let (model, input) = model_and_input(8);
        let compiled = compile(&model, &RistrettoConfig::paper_default()).unwrap();
        let a = Session::new(compiled.clone());
        let b = Session::new(compiled.clone());
        assert_eq!(Arc::strong_count(&compiled), 3);
        let ra = a.run(&input).unwrap();
        let rb = b.run(&input).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn session_matches_functional_pipeline() {
        let (model, input) = model_and_input(13);
        let cfg = RistrettoConfig::paper_default();
        let compiled = compile(&model, &cfg).unwrap();
        let run = Session::new(compiled).run(&input).unwrap();

        let pipeline = FunctionalPipeline::new(
            model.layers.clone(),
            CscConfig {
                atom_bits: cfg.atom_bits,
                multipliers: cfg.multipliers,
                tile_h: cfg.tile_h,
                tile_w: cfg.tile_w,
            },
        );
        let (out, traces) = pipeline.run(&input).unwrap();
        assert_eq!(run.output, out);
        assert_eq!(run.traces, traces);
    }

    #[test]
    fn fault_recovery_preserves_outputs_byte_for_byte() {
        use crate::fault::FaultConfig;
        let (model, input) = model_and_input(31);
        let clean_cfg = RistrettoConfig::paper_default();
        let clean = Session::new(compile(&model, &clean_cfg).unwrap())
            .run(&input)
            .unwrap();
        assert_eq!(clean.faults, FaultStats::default());

        let faulty_cfg = clean_cfg.with_faults(Some(FaultConfig::uniform(97, 200)));
        let faulty = Session::new(compile(&model, &faulty_cfg).unwrap())
            .run(&input)
            .unwrap();
        assert!(faulty.faults.total_injected() > 0, "campaign must fire");
        assert_eq!(
            faulty.faults.total_detected(),
            faulty.faults.total_injected(),
            "every injected fault must be caught by a monitor"
        );
        assert!(faulty.faults.recovered_tiles > 0 || faulty.faults.layer_fallbacks > 0);
        // Recovery keeps the network output and every per-layer trace
        // byte-identical to the fault-free run.
        assert_eq!(faulty.output, clean.output);

        // Determinism: the same seed reproduces the same campaign exactly.
        let again = Session::new(compile(&model, &faulty_cfg).unwrap())
            .run(&input)
            .unwrap();
        assert_eq!(faulty.output, again.output);
        assert_eq!(faulty.faults, again.faults);
    }

    #[test]
    fn quiescent_campaign_is_byte_identical_to_no_campaign() {
        use crate::fault::FaultConfig;
        let (model, input) = model_and_input(37);
        let off = Session::new(compile(&model, &RistrettoConfig::paper_default()).unwrap())
            .run(&input)
            .unwrap();
        let quiet_cfg =
            RistrettoConfig::paper_default().with_faults(Some(FaultConfig::quiescent(5)));
        let quiet = Session::new(compile(&model, &quiet_cfg).unwrap())
            .run(&input)
            .unwrap();
        assert_eq!(off, quiet);
    }

    #[test]
    fn unrecovered_fault_surfaces_as_typed_error() {
        use crate::fault::FaultConfig;
        let (model, input) = model_and_input(41);
        let cfg = RistrettoConfig::paper_default()
            .with_faults(Some(FaultConfig::uniform(11, 20_000).with_recover(false)));
        let err = Session::new(compile(&model, &cfg).unwrap())
            .run(&input)
            .unwrap_err();
        match err {
            EngineError::Fault(f) => {
                assert!(f.attempts >= 1);
                assert!(f.to_string().contains("fault detected"));
            }
            other => panic!("expected a fault error, got {other}"),
        }
    }

    #[test]
    fn mismatched_input_geometry_is_a_typed_error() {
        let (model, _) = model_and_input(43);
        let compiled = compile(&model, &RistrettoConfig::paper_default()).unwrap();
        let session = Session::new(compiled);
        let (c, h, w) = session.network().input();
        // Wrong channel count: typed error, not a panic.
        let bad = Tensor3::zeros(c + 1, h, w).unwrap();
        match session.run(&bad).unwrap_err() {
            EngineError::Atom(AtomError::Qnn(QnnError::ChannelMismatch { fmap, kernel })) => {
                assert_eq!(fmap, c + 1);
                assert_eq!(kernel, c);
            }
            other => panic!("expected a channel mismatch, got {other}"),
        }
        // Input too small for the kernel: also a typed error.
        let tiny = Tensor3::zeros(c, 1, 1).unwrap();
        assert!(matches!(
            session.run(&tiny).unwrap_err(),
            EngineError::Atom(_)
        ));
    }

    #[test]
    fn cycle_level_run_with_faults_recovers_reports() {
        use crate::fault::FaultConfig;
        let (model, input) = model_and_input(47);
        let clean = Session::new(compile(&model, &RistrettoConfig::paper_default()).unwrap())
            .run_cycle_level(&input)
            .unwrap();
        let cfg = RistrettoConfig::paper_default().with_faults(Some(FaultConfig::uniform(7, 200)));
        let faulty = Session::new(compile(&model, &cfg).unwrap())
            .run_cycle_level(&input)
            .unwrap();
        assert_eq!(faulty.functional.output, clean.functional.output);
        assert_eq!(faulty.core_reports, clean.core_reports);
        assert!(faulty.functional.faults.total_injected() > 0);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let (model, _) = model_and_input(2);
        let bad = RistrettoConfig::paper_default().with_tiles(0);
        assert_eq!(
            compile(&model, &bad).unwrap_err(),
            EngineError::Config(ConfigError::ZeroTiles)
        );
    }
}
