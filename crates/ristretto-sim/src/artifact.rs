//! Versioned, checksummed binary artifacts for [`CompiledNetwork`].
//!
//! A compiled network is input-independent state — sparsity-condensed
//! weight streams, per-channel weight-atom statistics, balancer groups,
//! weight-buffer footprints, and plan geometry — so it can be persisted
//! once and loaded by any number of later processes instead of being
//! recompiled per process. This module defines that on-disk form:
//!
//! ```text
//! [magic "RSTRETTO": 8 bytes][format version: u32 LE]
//! section "header"           name, input shape, full RistrettoConfig,
//!                            layer count
//! per layer i:
//!   section "layer{i}.meta"      name, conv geometry, activation width,
//!                                requant shift, output width, pooling,
//!                                weight-buffer bits, dense kernels
//!   section "layer{i}.streams"   the compiled WeightStreamSet with its
//!                                per-channel compile-time checksums
//!   section "layer{i}.stats"     per-channel weight-atom counts
//!   section "layer{i}.balancer"  static channel groups (§IV-E)
//!   section "layer{i}.plan"      per-channel (out_ch, atoms) plan run
//!                                tables
//! ```
//!
//! Every section rides the [`atomstream::wire`] framing: a name, a
//! payload length, and an FNV-1a 64 checksum over the payload — the same
//! hash the runtime stream-integrity monitor uses. [`decode`] verifies
//! each section checksum before touching its payload and then
//! cross-checks the sections against each other (stream checksums
//! re-verified, stats re-counted, balancer groups shape-checked, plan
//! geometry recomputed), so corruption is always reported as a typed
//! [`WireError`] naming the damaged section rather than surfacing later
//! as wrong arithmetic.
//!
//! ## Versioning policy
//!
//! `FORMAT_VERSION` must be bumped on **any** byte-layout change, however
//! small; decoders reject other versions with [`WireError::VersionSkew`]
//! and never attempt cross-version migration (the cache simply recompiles
//! — artifacts are a cache, not a source of truth). The checked-in golden
//! artifact test (`tests/artifact_golden.rs`) exists to catch layout
//! drift that forgets the bump.

use crate::balance::BalanceStrategy;
use crate::config::RistrettoConfig;
use crate::engine::{CompiledLayer, CompiledNetwork, NetworkModel};
use crate::fault::FaultConfig;
use atomstream::atom::AtomBits;
use atomstream::conv_csc::CscConfig;
use atomstream::kernel::plan_group_geometry;
use atomstream::wire::{self, WireError, WireReader, WireWriter};
use qnn::conv::ConvGeometry;
use qnn::pool::PoolKind;
use qnn::quant::BitWidth;
use qnn::tensor::Tensor4;

/// Leading magic bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"RSTRETTO";

/// Current artifact format version; bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

fn invalid(section: &str, detail: impl Into<String>) -> WireError {
    WireError::Invalid {
        section: section.to_string(),
        detail: detail.into(),
    }
}

/// Serializes a compiled network into the versioned artifact byte format.
///
/// Encoding is deterministic: the same compiled network always produces
/// the same bytes, which is what makes the content-addressed cache and
/// the golden-artifact CI check possible.
#[must_use]
pub fn encode(net: &CompiledNetwork) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.section("header", |s| {
        s.put_str(&net.name);
        s.put_u64(net.input.0 as u64);
        s.put_u64(net.input.1 as u64);
        s.put_u64(net.input.2 as u64);
        write_config(s, &net.cfg);
        s.put_u64(net.layers.len() as u64);
    });
    for (i, layer) in net.layers.iter().enumerate() {
        w.section(&format!("layer{i}.meta"), |s| write_layer_meta(s, layer));
        w.section(&format!("layer{i}.streams"), |s| {
            wire::write_weight_stream_set(s, &layer.weights);
        });
        w.section(&format!("layer{i}.stats"), |s| {
            s.put_u64(layer.weight_atoms_per_channel.len() as u64);
            for &atoms in &layer.weight_atoms_per_channel {
                s.put_u64(atoms);
            }
        });
        w.section(&format!("layer{i}.balancer"), |s| {
            s.put_u64(layer.static_groups.len() as u64);
            for group in &layer.static_groups {
                s.put_u64(group.len() as u64);
                for &channel in group {
                    s.put_u64(channel as u64);
                }
            }
        });
        w.section(&format!("layer{i}.plan"), |s| {
            let weights = &layer.weights;
            s.put_u64(weights.in_channels() as u64);
            for c in 0..weights.in_channels() {
                // The plan compiler is infallible here: the stream's
                // coordinates were validated when the layer compiled.
                let runs = plan_group_geometry(
                    weights.stream(c),
                    weights.kernel(),
                    weights.out_channels(),
                )
                .expect("compiled stream has in-kernel coordinates");
                s.put_u64(runs.len() as u64);
                for (oc, atoms) in runs {
                    s.put_u16(oc);
                    s.put_u32(atoms);
                }
            }
        });
    }
    w.into_bytes()
}

/// Deserializes and fully verifies an artifact produced by [`encode`].
///
/// Verification happens in three rings: the wire layer checks magic,
/// version, section names, and per-section FNV-1a checksums; the stream
/// layer re-verifies each channel's compile-time checksum; and this
/// function cross-checks sections against each other (stats vs. stream
/// lengths, balancer group shape, recomputed plan geometry, kernel/stream
/// dimension agreement).
///
/// # Errors
/// Any [`WireError`] variant, each naming the damaged section.
pub fn decode(bytes: &[u8]) -> Result<CompiledNetwork, WireError> {
    let mut r = WireReader::new(bytes, "artifact");
    let magic = r.get_bytes(MAGIC.len())?;
    if magic != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(WireError::BadMagic {
            found,
            expected: MAGIC,
        });
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(WireError::VersionSkew {
            found: version,
            supported: FORMAT_VERSION,
        });
    }

    let mut h = r.section("header")?;
    let name = h.get_str()?;
    let input = (h.get_usize()?, h.get_usize()?, h.get_usize()?);
    let cfg = read_config(&mut h)?;
    cfg.validate()
        .map_err(|e| invalid("header", e.to_string()))?;
    let layer_count = h.get_usize()?;
    h.finish()?;

    // Derived exactly as `engine::compile` derives it, so a decoded
    // network is field-for-field identical to a fresh compile.
    let csc = CscConfig {
        atom_bits: cfg.atom_bits,
        multipliers: cfg.multipliers,
        tile_h: cfg.tile_h,
        tile_w: cfg.tile_w,
    };

    let mut layers = Vec::with_capacity(layer_count);
    for i in 0..layer_count {
        layers.push(decode_layer(&mut r, i, &cfg)?);
    }
    r.finish()?;
    Ok(CompiledNetwork {
        name,
        input,
        cfg,
        csc,
        layers,
    })
}

fn decode_layer(
    r: &mut WireReader<'_>,
    i: usize,
    cfg: &RistrettoConfig,
) -> Result<CompiledLayer, WireError> {
    let meta_sec = format!("layer{i}.meta");
    let mut m = r.section(&meta_sec)?;
    let name = m.get_str()?;
    let stride = m.get_usize()?;
    let padding = m.get_usize()?;
    let geom = ConvGeometry::new(stride, padding).map_err(|e| invalid(&meta_sec, e.to_string()))?;
    let a_bits = BitWidth::new(m.get_u8()?).map_err(|e| invalid(&meta_sec, e.to_string()))?;
    let requant_shift = m.get_u32()?;
    let out_bits = m.get_u8()?;
    let pool = match m.get_u8()? {
        0 => None,
        tag @ (1 | 2) => {
            let kind = if tag == 1 {
                PoolKind::Max
            } else {
                PoolKind::Average
            };
            Some((kind, m.get_usize()?, m.get_usize()?, m.get_usize()?))
        }
        other => return Err(invalid(&meta_sec, format!("unknown pool tag {other}"))),
    };
    let weight_buffer_bits = if m.get_bool()? {
        Some(m.get_usize()?)
    } else {
        None
    };
    let (o, ic, kh, kw) = (
        m.get_usize()?,
        m.get_usize()?,
        m.get_usize()?,
        m.get_usize()?,
    );
    let volume = o
        .checked_mul(ic)
        .and_then(|v| v.checked_mul(kh))
        .and_then(|v| v.checked_mul(kw))
        .ok_or_else(|| invalid(&meta_sec, "kernel volume overflows"))?;
    let mut values = Vec::with_capacity(volume.min(1 << 24));
    for _ in 0..volume {
        values.push(m.get_i32()?);
    }
    let kernels =
        Tensor4::from_vec(o, ic, kh, kw, values).map_err(|e| invalid(&meta_sec, e.to_string()))?;
    m.finish()?;

    let streams_sec = format!("layer{i}.streams");
    let mut s = r.section(&streams_sec)?;
    let weights = wire::read_weight_stream_set(&mut s)?;
    s.finish()?;
    if weights.out_channels() != o
        || weights.in_channels() != ic
        || weights.kernel() != kh
        || kh != kw
    {
        return Err(invalid(
            &streams_sec,
            format!(
                "stream dims ({}, {}, k={}) disagree with kernel dims ({o}, {ic}, {kh}x{kw})",
                weights.out_channels(),
                weights.in_channels(),
                weights.kernel()
            ),
        ));
    }
    if weights.atom_bits() != cfg.atom_bits {
        return Err(invalid(
            &streams_sec,
            format!(
                "stream granularity B{} disagrees with config B{}",
                weights.atom_bits().bits(),
                cfg.atom_bits.bits()
            ),
        ));
    }

    let stats_sec = format!("layer{i}.stats");
    let mut st = r.section(&stats_sec)?;
    let stat_count = st.get_usize()?;
    if stat_count != ic {
        return Err(invalid(
            &stats_sec,
            format!("{stat_count} channel stats for {ic} input channels"),
        ));
    }
    let mut weight_atoms_per_channel = Vec::with_capacity(stat_count);
    for c in 0..stat_count {
        let atoms = st.get_u64()?;
        if atoms != weights.atoms(c) {
            return Err(invalid(
                &stats_sec,
                format!(
                    "channel {c} records {atoms} weight atoms but its stream holds {}",
                    weights.atoms(c)
                ),
            ));
        }
        weight_atoms_per_channel.push(atoms);
    }
    st.finish()?;

    let bal_sec = format!("layer{i}.balancer");
    let mut b = r.section(&bal_sec)?;
    let group_count = b.get_usize()?;
    if group_count != cfg.tiles {
        return Err(invalid(
            &bal_sec,
            format!("{group_count} groups for {} tiles", cfg.tiles),
        ));
    }
    let mut static_groups = Vec::with_capacity(group_count);
    let mut seen = vec![false; ic];
    let mut covered = 0usize;
    for _ in 0..group_count {
        let len = b.get_usize()?;
        let mut group = Vec::with_capacity(len);
        for _ in 0..len {
            let channel = b.get_usize()?;
            if channel >= ic || seen[channel] {
                return Err(invalid(
                    &bal_sec,
                    format!("channel {channel} out of range or repeated in groups"),
                ));
            }
            seen[channel] = true;
            covered += 1;
            group.push(channel);
        }
        static_groups.push(group);
    }
    if covered != ic {
        return Err(invalid(
            &bal_sec,
            format!("groups cover {covered} of {ic} channels"),
        ));
    }
    b.finish()?;

    let plan_sec = format!("layer{i}.plan");
    let mut p = r.section(&plan_sec)?;
    let chan_count = p.get_usize()?;
    if chan_count != ic {
        return Err(invalid(
            &plan_sec,
            format!("{chan_count} plan tables for {ic} input channels"),
        ));
    }
    for c in 0..chan_count {
        let run_count = p.get_usize()?;
        let mut recorded = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            let oc = p.get_u16()?;
            let atoms = p.get_u32()?;
            recorded.push((oc, atoms));
        }
        let recomputed = plan_group_geometry(weights.stream(c), kh, o)
            .map_err(|e| invalid(&plan_sec, e.to_string()))?;
        if recorded != recomputed {
            return Err(invalid(
                &plan_sec,
                format!("channel {c} plan geometry disagrees with its stream"),
            ));
        }
    }
    p.finish()?;

    Ok(CompiledLayer {
        name,
        weights,
        kernels,
        geom,
        a_bits,
        requant_shift,
        out_bits,
        pool,
        weight_atoms_per_channel,
        weight_buffer_bits,
        static_groups,
    })
}

fn write_layer_meta(s: &mut WireWriter, layer: &CompiledLayer) {
    s.put_str(&layer.name);
    s.put_u64(layer.geom.stride as u64);
    s.put_u64(layer.geom.padding as u64);
    s.put_u8(layer.a_bits.bits());
    s.put_u32(layer.requant_shift);
    s.put_u8(layer.out_bits);
    match layer.pool {
        None => s.put_u8(0),
        Some((kind, window, stride, padding)) => {
            s.put_u8(match kind {
                PoolKind::Max => 1,
                PoolKind::Average => 2,
            });
            s.put_u64(window as u64);
            s.put_u64(stride as u64);
            s.put_u64(padding as u64);
        }
    }
    match layer.weight_buffer_bits {
        None => s.put_bool(false),
        Some(bits) => {
            s.put_bool(true);
            s.put_u64(bits as u64);
        }
    }
    let (o, ic, kh, kw) = layer.kernels.shape();
    s.put_u64(o as u64);
    s.put_u64(ic as u64);
    s.put_u64(kh as u64);
    s.put_u64(kw as u64);
    for &v in layer.kernels.as_slice() {
        s.put_i32(v);
    }
}

/// Writes a [`RistrettoConfig`] as a raw wire payload (all fields, in
/// declaration order). Shared by the artifact header and the cache key.
pub(crate) fn write_config(w: &mut WireWriter, cfg: &RistrettoConfig) {
    w.put_u64(cfg.tiles as u64);
    w.put_u64(cfg.multipliers as u64);
    w.put_u8(cfg.atom_bits.bits());
    w.put_u64(cfg.tile_h as u64);
    w.put_u64(cfg.tile_w as u64);
    w.put_u64(cfg.input_buf_kb as u64);
    w.put_u64(cfg.weight_buf_kb as u64);
    w.put_u64(cfg.output_buf_kb as u64);
    w.put_u8(cfg.acc_bits);
    w.put_u64(cfg.accu_entries_per_bank as u64);
    w.put_u64(cfg.fifo_depth as u64);
    w.put_bool(cfg.sparse);
    w.put_u8(match cfg.balancing {
        BalanceStrategy::None => 0,
        BalanceStrategy::WeightOnly => 1,
        BalanceStrategy::WeightActivation => 2,
    });
    match cfg.faults {
        None => w.put_bool(false),
        Some(f) => {
            w.put_bool(true);
            w.put_u64(f.seed);
            w.put_u32(f.weight_buffer_ppm);
            w.put_u32(f.weight_stream_ppm);
            w.put_u32(f.act_stream_ppm);
            w.put_u32(f.accum_ppm);
            w.put_u32(f.fifo_ppm);
            w.put_bool(f.detect);
            w.put_bool(f.recover);
            w.put_u32(f.retry_budget);
        }
    }
}

/// Reads a [`RistrettoConfig`] written by [`write_config`].
pub(crate) fn read_config(r: &mut WireReader<'_>) -> Result<RistrettoConfig, WireError> {
    let tiles = r.get_usize()?;
    let multipliers = r.get_usize()?;
    let atom_bits = AtomBits::new(r.get_u8()?).map_err(|e| invalid("header", e.to_string()))?;
    let tile_h = r.get_usize()?;
    let tile_w = r.get_usize()?;
    let input_buf_kb = r.get_usize()?;
    let weight_buf_kb = r.get_usize()?;
    let output_buf_kb = r.get_usize()?;
    let acc_bits = r.get_u8()?;
    let accu_entries_per_bank = r.get_usize()?;
    let fifo_depth = r.get_usize()?;
    let sparse = r.get_bool()?;
    let balancing = match r.get_u8()? {
        0 => BalanceStrategy::None,
        1 => BalanceStrategy::WeightOnly,
        2 => BalanceStrategy::WeightActivation,
        other => {
            return Err(invalid(
                "header",
                format!("unknown balance strategy tag {other}"),
            ))
        }
    };
    let faults = if r.get_bool()? {
        Some(FaultConfig {
            seed: r.get_u64()?,
            weight_buffer_ppm: r.get_u32()?,
            weight_stream_ppm: r.get_u32()?,
            act_stream_ppm: r.get_u32()?,
            accum_ppm: r.get_u32()?,
            fifo_ppm: r.get_u32()?,
            detect: r.get_bool()?,
            recover: r.get_bool()?,
            retry_budget: r.get_u32()?,
        })
    } else {
        None
    };
    Ok(RistrettoConfig {
        tiles,
        multipliers,
        atom_bits,
        tile_h,
        tile_w,
        input_buf_kb,
        weight_buf_kb,
        output_buf_kb,
        acc_bits,
        accu_entries_per_bank,
        fifo_depth,
        sparse,
        balancing,
        faults,
    })
}

/// Leading magic bytes of a standalone shard-plan artifact.
///
/// Shard plans ride *next to* compiled-network artifacts rather than
/// inside them — the `RSTRETTO` byte layout (and [`FORMAT_VERSION`]) is
/// untouched by fleet support, so existing caches stay valid.
pub const SHARD_MAGIC: [u8; 8] = *b"RSTSHARD";

/// Current shard-plan format version; versioned independently of
/// [`FORMAT_VERSION`], same bump-on-any-layout-change policy.
pub const SHARD_FORMAT_VERSION: u32 = 1;

/// Serializes a fleet [`crate::fleet::ShardPlan`] into its standalone artifact form.
/// Deterministic: the same plan always produces the same bytes.
#[must_use]
pub fn encode_shard_plan(plan: &crate::fleet::ShardPlan) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&SHARD_MAGIC);
    w.put_u32(SHARD_FORMAT_VERSION);
    w.section("plan", |s| {
        s.put_u64(plan.group_size as u64);
        s.put_u64(plan.layers.len() as u64);
        for groups in &plan.layers {
            for group in groups {
                s.put_u64(group.len() as u64);
                for &channel in group {
                    s.put_u64(channel as u64);
                }
            }
        }
    });
    w.into_bytes()
}

/// Deserializes and verifies a shard plan produced by
/// [`encode_shard_plan`]: wire checksums, slot counts per layer, and the
/// planner's ascending-channel invariant within every group.
///
/// # Errors
/// Any [`WireError`] variant naming the damaged section.
pub fn decode_shard_plan(bytes: &[u8]) -> Result<crate::fleet::ShardPlan, WireError> {
    let mut r = WireReader::new(bytes, "shard-plan");
    let magic = r.get_bytes(SHARD_MAGIC.len())?;
    if magic != SHARD_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(WireError::BadMagic {
            found,
            expected: SHARD_MAGIC,
        });
    }
    let version = r.get_u32()?;
    if version != SHARD_FORMAT_VERSION {
        return Err(WireError::VersionSkew {
            found: version,
            supported: SHARD_FORMAT_VERSION,
        });
    }
    let mut p = r.section("plan")?;
    let group_size = p.get_usize()?;
    if group_size == 0 {
        return Err(invalid("plan", "zero shard slots"));
    }
    let layer_count = p.get_usize()?;
    let mut layers = Vec::with_capacity(layer_count);
    for li in 0..layer_count {
        let mut groups = Vec::with_capacity(group_size);
        for slot in 0..group_size {
            let len = p.get_usize()?;
            let mut group = Vec::with_capacity(len);
            for _ in 0..len {
                let channel = p.get_usize()?;
                if group.last().is_some_and(|&prev| prev >= channel) {
                    return Err(invalid(
                        "plan",
                        format!("layer {li} slot {slot} channels are not ascending"),
                    ));
                }
                group.push(channel);
            }
            groups.push(group);
        }
        layers.push(groups);
    }
    p.finish()?;
    r.finish()?;
    Ok(crate::fleet::ShardPlan { group_size, layers })
}

/// Canonical content bytes of an (uncompiled) network model, hashed into
/// the model half of the cache key. Covers everything that can influence
/// compilation: name, input shape, and every layer field including the
/// dense kernel values.
#[must_use]
pub(crate) fn model_cache_bytes(model: &NetworkModel) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_str(&model.name);
    w.put_u64(model.input.0 as u64);
    w.put_u64(model.input.1 as u64);
    w.put_u64(model.input.2 as u64);
    w.put_u64(model.layers.len() as u64);
    for layer in &model.layers {
        w.put_str(&layer.name);
        w.put_u64(layer.geom.stride as u64);
        w.put_u64(layer.geom.padding as u64);
        w.put_u8(layer.w_bits.bits());
        w.put_u8(layer.a_bits.bits());
        w.put_u32(layer.requant_shift);
        w.put_u8(layer.out_bits);
        match layer.pool {
            None => w.put_u8(0),
            Some((kind, window, stride, padding)) => {
                w.put_u8(match kind {
                    PoolKind::Max => 1,
                    PoolKind::Average => 2,
                });
                w.put_u64(window as u64);
                w.put_u64(stride as u64);
                w.put_u64(padding as u64);
            }
        }
        let (o, ic, kh, kw) = layer.kernels.shape();
        w.put_u64(o as u64);
        w.put_u64(ic as u64);
        w.put_u64(kh as u64);
        w.put_u64(kw as u64);
        for &v in layer.kernels.as_slice() {
            w.put_i32(v);
        }
    }
    w.into_bytes()
}

/// Canonical content bytes of a configuration, hashed into the config
/// half of the cache key.
#[must_use]
pub(crate) fn config_cache_bytes(cfg: &RistrettoConfig) -> Vec<u8> {
    let mut w = WireWriter::new();
    write_config(&mut w, cfg);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::compile;
    use crate::pipeline::PipelineLayer;

    fn tiny_network() -> (NetworkModel, RistrettoConfig) {
        let kernels = Tensor4::from_vec(
            2,
            1,
            3,
            3,
            vec![
                1, 0, -2, 0, 3, 0, -1, 0, 2, // oc 0
                0, 2, 0, -3, 0, 1, 0, -1, 0, // oc 1
            ],
        )
        .unwrap();
        let layer = PipelineLayer {
            name: "l0".to_string(),
            kernels,
            geom: ConvGeometry::unit_stride(1),
            w_bits: BitWidth::W4,
            a_bits: BitWidth::W4,
            requant_shift: 2,
            out_bits: 4,
            pool: None,
        };
        let model = NetworkModel::new("tiny", (1, 6, 6), vec![layer]);
        (model, RistrettoConfig::paper_default())
    }

    #[test]
    fn encode_decode_round_trips_field_for_field() {
        let (model, cfg) = tiny_network();
        let net = compile(&model, &cfg).unwrap();
        let bytes = encode(&net);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(*net, decoded);
        // Deterministic re-encode: the cache's content addressing and the
        // golden artifact check both rely on this.
        assert_eq!(bytes, encode(&decoded));
    }

    #[test]
    fn bad_magic_and_version_skew_are_typed() {
        let (model, cfg) = tiny_network();
        let net = compile(&model, &cfg).unwrap();
        let bytes = encode(&net);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            decode(&wrong_magic),
            Err(WireError::BadMagic { .. })
        ));

        let mut skewed = bytes;
        skewed[8] = FORMAT_VERSION as u8 + 1;
        assert_eq!(
            decode(&skewed).unwrap_err(),
            WireError::VersionSkew {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            }
        );
    }

    #[test]
    fn shard_plan_round_trips_and_rejects_damage() {
        let (model, cfg) = tiny_network();
        let net = compile(&model, &cfg).unwrap();
        let plan = crate::fleet::ShardPlan::compute(&net, 2);
        let bytes = encode_shard_plan(&plan);
        let decoded = decode_shard_plan(&bytes).unwrap();
        assert_eq!(plan, decoded);
        assert_eq!(plan.digest(), decoded.digest());
        assert_eq!(bytes, encode_shard_plan(&decoded));

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            decode_shard_plan(&wrong_magic),
            Err(WireError::BadMagic { .. })
        ));
        let mut flipped = bytes;
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(decode_shard_plan(&flipped).is_err());
    }

    #[test]
    fn config_bytes_round_trip() {
        let mut cfg = RistrettoConfig::paper_default();
        cfg.faults = Some(FaultConfig::uniform(42, 100));
        let bytes = config_cache_bytes(&cfg);
        let mut r = WireReader::new(&bytes, "header");
        let back = read_config(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(cfg, back);
    }
}
