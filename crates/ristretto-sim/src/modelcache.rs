//! Content-addressed on-disk cache of compiled networks.
//!
//! The cache directory holds one artifact per `(network, config)` pair,
//! named `{model_hash:016x}-{config_hash:016x}.rma` where both halves are
//! FNV-1a 64 hashes over canonical wire encodings of the model (name,
//! input shape, every layer field including kernel values) and the full
//! [`RistrettoConfig`]. Content addressing makes invalidation automatic:
//! touch a weight, a geometry field, or any config knob and the key
//! changes, so the stale artifact is simply never looked up again.
//!
//! [`ModelCache::compile_cached`] is the drop-in replacement for
//! [`compile`]: on a hit it loads and fully verifies the artifact
//! (section checksums, stream checksums, cross-section consistency, and a
//! final comparison against the requested model and config); any
//! verification failure — corruption, version skew, hash collision — is
//! counted under `engine.cache.rejected` and silently falls back to a
//! fresh compile whose artifact atomically replaces the bad one. A
//! cache-hit session is therefore byte-identical to an in-memory-compile
//! session or it does not load at all.

use crate::artifact;
use crate::config::RistrettoConfig;
use crate::engine::{compile, CompiledNetwork, EngineError, NetworkModel};
use crate::pipeline::PipelineLayer;
use atomstream::wire::{fnv1a_bytes, WireError};
use std::fmt;
use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Artifact file extension (Ristretto Model Artifact).
pub const ARTIFACT_EXT: &str = "rma";

/// The two content hashes a cache entry is addressed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a 64 over the canonical model bytes.
    pub model_hash: u64,
    /// FNV-1a 64 over the canonical config bytes.
    pub config_hash: u64,
}

impl CacheKey {
    /// Derives the key for a `(model, config)` pair.
    #[must_use]
    pub fn derive(model: &NetworkModel, cfg: &RistrettoConfig) -> Self {
        Self {
            model_hash: fnv1a_bytes(&artifact::model_cache_bytes(model)),
            config_hash: fnv1a_bytes(&artifact::config_cache_bytes(cfg)),
        }
    }

    /// The artifact file name this key addresses.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "{:016x}-{:016x}.{ARTIFACT_EXT}",
            self.model_hash, self.config_hash
        )
    }
}

/// Typed failures of the strict cache operations (`load`, `store`,
/// `verify`, `stats`, `clear`). `compile_cached` never surfaces these —
/// it counts them and recompiles.
#[derive(Debug)]
pub enum CacheError {
    /// A filesystem operation failed.
    Io {
        /// File or directory the operation targeted.
        path: PathBuf,
        /// Operation name (`read`, `write`, `rename`, ...).
        op: &'static str,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// The artifact's bytes failed decode-time verification.
    Artifact {
        /// The damaged artifact file.
        path: PathBuf,
        /// The wire-level error, naming the damaged section.
        source: WireError,
    },
    /// The artifact decoded cleanly but does not belong under its name or
    /// key (content-address mismatch, or a different model/config than
    /// requested).
    Mismatch {
        /// The misfiled artifact.
        path: PathBuf,
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io { path, op, message } => {
                write!(f, "{op} {}: {message}", path.display())
            }
            CacheError::Artifact { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CacheError::Mismatch { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Artifact { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Aggregate numbers for `repro cache stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of artifact files in the cache directory.
    pub entries: usize,
    /// Total artifact bytes on disk.
    pub bytes: u64,
}

/// A content-addressed artifact directory.
#[derive(Debug, Clone)]
pub struct ModelCache {
    dir: PathBuf,
}

impl ModelCache {
    /// Wraps a cache directory (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Compile-through-cache: load and verify the artifact for
    /// `(model, cfg)` if present, otherwise (or on any verification
    /// failure) compile in memory and persist the artifact atomically.
    ///
    /// Outcomes are counted under the `engine.cache.*` observability
    /// events: `hits`, `misses` (no artifact), `rejected` (artifact
    /// present but refused), `writes`/`store_fail`, and byte totals.
    /// Store failures are deliberately non-fatal — the compiled network
    /// is always returned.
    ///
    /// # Errors
    /// Only compile errors ([`EngineError`]) propagate; cache trouble
    /// degrades to a recompile.
    pub fn compile_cached(
        &self,
        model: &NetworkModel,
        cfg: &RistrettoConfig,
    ) -> Result<Arc<CompiledNetwork>, EngineError> {
        let key = CacheKey::derive(model, cfg);
        let path = self.dir.join(key.file_name());
        match fs::read(&path) {
            Ok(bytes) => {
                obs::record(obs::Event::EngineCacheBytesRead, bytes.len() as u64);
                match artifact::decode(&bytes) {
                    Ok(net) if decoded_matches(&net, model, cfg) => {
                        obs::record(obs::Event::EngineCacheHits, 1);
                        return Ok(Arc::new(net));
                    }
                    // Decoded into a *different* model or config: a hash
                    // collision or a misfiled artifact. Same treatment as
                    // corruption — reject and recompile.
                    Ok(_) | Err(_) => obs::record(obs::Event::EngineCacheRejected, 1),
                }
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {
                obs::record(obs::Event::EngineCacheMisses, 1);
            }
            Err(_) => obs::record(obs::Event::EngineCacheRejected, 1),
        }
        let net = compile(model, cfg)?;
        match self.store(&net, key) {
            Ok(bytes) => {
                obs::record(obs::Event::EngineCacheWrites, 1);
                obs::record(obs::Event::EngineCacheBytesWritten, bytes);
            }
            Err(_) => obs::record(obs::Event::EngineCacheStoreFail, 1),
        }
        Ok(net)
    }

    /// Strictly loads and verifies one artifact file, including its
    /// content address: both halves of the key are recomputed from the
    /// decoded contents and compared against the file name.
    ///
    /// # Errors
    /// [`CacheError::Io`] on read failure, [`CacheError::Artifact`] on
    /// decode/verification failure, [`CacheError::Mismatch`] when the
    /// contents do not hash to the file's name.
    pub fn load(&self, path: &Path) -> Result<CompiledNetwork, CacheError> {
        let bytes = fs::read(path).map_err(|e| CacheError::Io {
            path: path.to_path_buf(),
            op: "read",
            message: e.to_string(),
        })?;
        let net = artifact::decode(&bytes).map_err(|source| CacheError::Artifact {
            path: path.to_path_buf(),
            source,
        })?;
        let expected = CacheKey::derive(&reconstruct_model(&net), &net.cfg).file_name();
        let actual = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if expected != actual {
            return Err(CacheError::Mismatch {
                path: path.to_path_buf(),
                detail: format!("contents hash to `{expected}` but the file is named `{actual}`"),
            });
        }
        Ok(net)
    }

    /// Atomically persists an artifact under its content address
    /// (write to a temp file in the same directory, then rename).
    ///
    /// Returns the artifact size in bytes.
    ///
    /// # Errors
    /// [`CacheError::Io`] on any filesystem failure.
    pub fn store(&self, net: &CompiledNetwork, key: CacheKey) -> Result<u64, CacheError> {
        fs::create_dir_all(&self.dir).map_err(|e| CacheError::Io {
            path: self.dir.clone(),
            op: "create_dir_all",
            message: e.to_string(),
        })?;
        let bytes = artifact::encode(net);
        let final_path = self.dir.join(key.file_name());
        let tmp_path = self
            .dir
            .join(format!(".{}.tmp.{}", key.file_name(), std::process::id()));
        fs::write(&tmp_path, &bytes).map_err(|e| CacheError::Io {
            path: tmp_path.clone(),
            op: "write",
            message: e.to_string(),
        })?;
        fs::rename(&tmp_path, &final_path).map_err(|e| {
            let _ = fs::remove_file(&tmp_path);
            CacheError::Io {
                path: final_path.clone(),
                op: "rename",
                message: e.to_string(),
            }
        })?;
        Ok(bytes.len() as u64)
    }

    /// Flips one byte in the middle of the on-disk artifact for `key`
    /// (chaos harness hook: the next [`ModelCache::compile_cached`] must
    /// reject it and take the recompile path). Returns whether an
    /// artifact existed to corrupt.
    ///
    /// # Errors
    /// [`CacheError::Io`] on read or write failure.
    pub fn corrupt_artifact(&self, key: &CacheKey) -> Result<bool, CacheError> {
        let path = self.dir.join(key.file_name());
        let mut bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(false),
            Err(e) => {
                return Err(CacheError::Io {
                    path,
                    op: "read",
                    message: e.to_string(),
                })
            }
        };
        if bytes.is_empty() {
            return Ok(false);
        }
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).map_err(|e| CacheError::Io {
            path,
            op: "write",
            message: e.to_string(),
        })?;
        Ok(true)
    }

    /// Paths of every artifact file currently in the cache, sorted.
    ///
    /// # Errors
    /// [`CacheError::Io`] if the directory exists but cannot be listed.
    pub fn entries(&self) -> Result<Vec<PathBuf>, CacheError> {
        let dir = match fs::read_dir(&self.dir) {
            Ok(dir) => dir,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(CacheError::Io {
                    path: self.dir.clone(),
                    op: "read_dir",
                    message: e.to_string(),
                })
            }
        };
        let mut paths: Vec<PathBuf> = dir
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == ARTIFACT_EXT))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Entry count and byte total for `repro cache stats`.
    ///
    /// # Errors
    /// [`CacheError::Io`] on directory or metadata failure.
    pub fn stats(&self) -> Result<CacheStats, CacheError> {
        let mut stats = CacheStats::default();
        for path in self.entries()? {
            let meta = fs::metadata(&path).map_err(|e| CacheError::Io {
                path: path.clone(),
                op: "metadata",
                message: e.to_string(),
            })?;
            stats.entries += 1;
            stats.bytes += meta.len();
        }
        Ok(stats)
    }

    /// Deletes every artifact file; returns how many were removed.
    ///
    /// # Errors
    /// [`CacheError::Io`] on the first failed removal.
    pub fn clear(&self) -> Result<usize, CacheError> {
        let mut removed = 0;
        for path in self.entries()? {
            fs::remove_file(&path).map_err(|e| CacheError::Io {
                path: path.clone(),
                op: "remove_file",
                message: e.to_string(),
            })?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Strictly verifies every artifact in the cache (`repro cache
    /// verify`): full decode plus content-address check per file.
    ///
    /// # Errors
    /// [`CacheError::Io`] if the directory cannot be listed; per-file
    /// failures are returned in the result list, not as an early error.
    #[allow(clippy::type_complexity)]
    pub fn verify(&self) -> Result<Vec<(PathBuf, Result<(), CacheError>)>, CacheError> {
        Ok(self
            .entries()?
            .into_iter()
            .map(|path| {
                let outcome = self.load(&path).map(|_| ());
                (path, outcome)
            })
            .collect())
    }
}

/// Free-function form of [`ModelCache::compile_cached`].
///
/// # Errors
/// Only compile errors propagate; cache trouble degrades to a recompile.
pub fn compile_cached(
    model: &NetworkModel,
    cfg: &RistrettoConfig,
    cache_dir: impl Into<PathBuf>,
) -> Result<Arc<CompiledNetwork>, EngineError> {
    ModelCache::new(cache_dir).compile_cached(model, cfg)
}

/// Rebuilds the uncompiled model a compiled network came from — the
/// artifact retains every model field (weight bit-width lives in the
/// stream set), which is what lets `verify` recompute the model half of
/// the content address without the original model at hand.
fn reconstruct_model(net: &CompiledNetwork) -> NetworkModel {
    let layers = net
        .layers
        .iter()
        .map(|l| PipelineLayer {
            name: l.name.clone(),
            kernels: l.kernels.clone(),
            geom: l.geom,
            w_bits: l.weights.w_bits(),
            a_bits: l.a_bits,
            requant_shift: l.requant_shift,
            out_bits: l.out_bits,
            pool: l.pool,
        })
        .collect();
    NetworkModel::new(net.name.clone(), net.input, layers)
}

/// A decoded artifact must be exactly the network the caller asked for.
fn decoded_matches(net: &CompiledNetwork, model: &NetworkModel, cfg: &RistrettoConfig) -> bool {
    net.cfg == *cfg && reconstruct_model(net) == *model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::FORMAT_VERSION;
    use qnn::conv::ConvGeometry;
    use qnn::quant::BitWidth;
    use qnn::tensor::{Tensor3, Tensor4};

    fn tiny_model() -> (NetworkModel, RistrettoConfig) {
        let kernels = Tensor4::from_vec(
            2,
            1,
            3,
            3,
            vec![1, 0, -2, 0, 3, 0, -1, 0, 2, 0, 2, 0, -3, 0, 1, 0, -1, 0],
        )
        .unwrap();
        let layer = PipelineLayer {
            name: "l0".to_string(),
            kernels,
            geom: ConvGeometry::unit_stride(1),
            w_bits: BitWidth::W4,
            a_bits: BitWidth::W4,
            requant_shift: 2,
            out_bits: 4,
            pool: None,
        };
        let model = NetworkModel::new("tiny", (1, 6, 6), vec![layer]);
        (model, RistrettoConfig::paper_default())
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ristretto_modelcache_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn miss_then_hit_round_trips_and_counts() {
        let (model, cfg) = tiny_model();
        let dir = tmp_dir("hit");
        let cache = ModelCache::new(&dir);

        obs::enable(true);
        let before = obs::snapshot();
        let cold = cache.compile_cached(&model, &cfg).unwrap();
        let warm = cache.compile_cached(&model, &cfg).unwrap();
        let after = obs::snapshot();
        assert_eq!(*cold, *warm);

        let delta = |e: obs::Event| after.get(e) - before.get(e);
        assert_eq!(delta(obs::Event::EngineCacheMisses), 1);
        assert_eq!(delta(obs::Event::EngineCacheHits), 1);
        assert_eq!(delta(obs::Event::EngineCacheWrites), 1);
        assert_eq!(delta(obs::Event::EngineCacheRejected), 0);
        assert!(delta(obs::Event::EngineCacheBytesWritten) > 0);
        assert!(delta(obs::Event::EngineCacheBytesRead) > 0);

        // A hit must be byte-identical to an in-memory compile.
        let fresh = compile(&model, &cfg).unwrap();
        assert_eq!(*fresh, *warm);

        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        assert_eq!(cache.clear().unwrap(), 1);
        assert_eq!(cache.stats().unwrap().entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_artifact_is_rejected_and_results_stay_identical() {
        let (model, cfg) = tiny_model();
        let dir = tmp_dir("corrupt");
        let cache = ModelCache::new(&dir);
        let baseline = cache.compile_cached(&model, &cfg).unwrap();
        let path = dir.join(CacheKey::derive(&model, &cfg).file_name());

        // Flip one payload bit on disk.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            cache.load(&path),
            Err(CacheError::Artifact { .. })
        ));

        obs::enable(true);
        let before = obs::snapshot();
        let recovered = cache.compile_cached(&model, &cfg).unwrap();
        let after = obs::snapshot();
        assert_eq!(
            after.get(obs::Event::EngineCacheRejected)
                - before.get(obs::Event::EngineCacheRejected),
            1
        );
        // Fallback recompile is byte-identical, and the bad artifact was
        // atomically replaced by a good one.
        assert_eq!(*baseline, *recovered);
        cache.load(&path).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_helper_forces_the_recompile_path() {
        let (model, cfg) = tiny_model();
        let dir = tmp_dir("chaos_corrupt");
        let cache = ModelCache::new(&dir);
        let key = CacheKey::derive(&model, &cfg);
        // Nothing on disk yet: nothing to corrupt.
        assert!(!cache.corrupt_artifact(&key).unwrap());
        let baseline = cache.compile_cached(&model, &cfg).unwrap();
        assert!(cache.corrupt_artifact(&key).unwrap());
        let path = dir.join(key.file_name());
        assert!(cache.load(&path).is_err(), "corruption must be detectable");
        // The next cached compile rejects the artifact and recompiles to
        // byte-identical output.
        let recovered = cache.compile_cached(&model, &cfg).unwrap();
        assert_eq!(*baseline, *recovered);
        cache.load(&path).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_rejected_with_a_typed_error() {
        let (model, cfg) = tiny_model();
        let dir = tmp_dir("skew");
        let cache = ModelCache::new(&dir);
        cache.compile_cached(&model, &cfg).unwrap();
        let path = dir.join(CacheKey::derive(&model, &cfg).file_name());
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = FORMAT_VERSION as u8 + 9;
        fs::write(&path, &bytes).unwrap();
        match cache.load(&path) {
            Err(CacheError::Artifact {
                source: WireError::VersionSkew { found, supported },
                ..
            }) => {
                assert_eq!(found, u32::from(FORMAT_VERSION as u8 + 9));
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version skew, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn misnamed_artifact_fails_the_content_address_check() {
        let (model, cfg) = tiny_model();
        let dir = tmp_dir("misfile");
        let cache = ModelCache::new(&dir);
        cache.compile_cached(&model, &cfg).unwrap();
        let good = dir.join(CacheKey::derive(&model, &cfg).file_name());
        let bad = dir.join(format!("{:016x}-{:016x}.rma", 0u64, 0u64));
        fs::copy(&good, &bad).unwrap();
        assert!(matches!(cache.load(&bad), Err(CacheError::Mismatch { .. })));
        let report = cache.verify().unwrap();
        assert_eq!(report.len(), 2);
        let failures = report.iter().filter(|(_, r)| r.is_err()).count();
        assert_eq!(failures, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_cache_dir_still_serves_compiles_and_counts_store_fail() {
        let (model, cfg) = tiny_model();
        // A *file* where the cache directory should be: `create_dir_all`
        // fails portably, no permission tricks needed.
        let dir = tmp_dir("unwritable");
        fs::write(&dir, b"not a directory").unwrap();
        let cache = ModelCache::new(&dir);

        obs::enable(true);
        let before = obs::snapshot();
        let served = cache.compile_cached(&model, &cfg).unwrap();
        let after = obs::snapshot();
        let delta = |e: obs::Event| after.get(e) - before.get(e);

        // The compile is served correctly (byte-identical to in-memory)...
        let fresh = compile(&model, &cfg).unwrap();
        assert_eq!(*fresh, *served);
        // ...the failure is counted, not swallowed...
        assert_eq!(delta(obs::Event::EngineCacheStoreFail), 1);
        assert_eq!(delta(obs::Event::EngineCacheWrites), 0);
        // ...and the strict API names the path and operation.
        let key = CacheKey::derive(&model, &cfg);
        match cache.store(&fresh, key) {
            Err(CacheError::Io { path, op, .. }) => {
                assert_eq!(path, dir);
                assert_eq!(op, "create_dir_all");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        let _ = fs::remove_file(&dir);
    }

    #[test]
    fn cache_hit_run_is_byte_identical_across_thread_counts() {
        let (model, cfg) = tiny_model();
        let dir = tmp_dir("threads");
        let cache = ModelCache::new(&dir);
        let cold = cache.compile_cached(&model, &cfg).unwrap();
        let warm = cache.compile_cached(&model, &cfg).unwrap();

        let input = Tensor3::from_vec(1, 6, 6, (0..36).map(|v| v % 5).collect()).unwrap();
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (a, b) = pool.install(|| {
                let a = crate::engine::Session::new(cold.clone())
                    .run(&input)
                    .unwrap();
                let b = crate::engine::Session::new(warm.clone())
                    .run(&input)
                    .unwrap();
                (a, b)
            });
            assert_eq!(a, b, "thread count {threads}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
