//! Multi-tile core: cycle-level execution of one layer across all compute
//! tiles.
//!
//! Distributes input channels to tiles with the configured balancer (the
//! §IV-E flow: statistics → groups → per-tile streams), runs every tile's
//! cycle-level simulation, and reports the makespan. Cross-validates the
//! analytic Eq 5 model on real (materialized) layers — the integration
//! tests assert the two agree within the ε/stall terms the closed form
//! drops.

use crate::balance::{balance, ChannelWorkload};
use crate::config::{ConfigError, RistrettoConfig};
use crate::fault::{FaultDetected, FaultInjector, FaultSite, FaultStats, FaultStructure};
use crate::tile::{TileReport, TileSim};
use atomstream::compress::compress_activations;
use atomstream::conv_csc::WeightStreamSet;
use atomstream::error::AtomError;
use atomstream::flatten::flatten_tile;
use atomstream::stream::ActivationStream;
use qnn::error::QnnError;
use qnn::tensor::{Tensor3, Tensor4};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error from a cycle-level core run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Stream construction or geometry error.
    Atom(AtomError),
    /// A fault escaped the retry budget with recovery disabled.
    Fault(FaultDetected),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Atom(e) => e.fmt(f),
            CoreError::Fault(e) => e.fmt(f),
        }
    }
}

impl Error for CoreError {}

impl From<AtomError> for CoreError {
    fn from(e: AtomError) -> Self {
        CoreError::Atom(e)
    }
}

impl From<FaultDetected> for CoreError {
    fn from(e: FaultDetected) -> Self {
        CoreError::Fault(e)
    }
}

/// Result of a cycle-level core run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreReport {
    /// Layer latency: the slowest tile.
    pub makespan: u64,
    /// Per-tile cycle counts.
    pub tile_cycles: Vec<u64>,
    /// Per-tile reports (stalls, multiplications, deliveries).
    pub tiles: Vec<TileReport>,
    /// Channel groups the balancer produced.
    pub groups: Vec<Vec<usize>>,
}

impl CoreReport {
    /// Total effectual atom multiplications across tiles.
    pub fn atom_mults(&self) -> u64 {
        self.tiles.iter().map(|t| t.atom_mults).sum()
    }

    /// Total stall cycles (FIFO backpressure) across tiles.
    pub fn stall_cycles(&self) -> u64 {
        self.tiles.iter().map(|t| t.stall_cycles).sum()
    }

    /// Total crossbar bank collisions across tiles.
    pub fn crossbar_conflicts(&self) -> u64 {
        self.tiles.iter().map(|t| t.crossbar_conflicts).sum()
    }

    /// Compute utilization: mean tile work over makespan.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.tile_cycles.is_empty() {
            return 1.0;
        }
        self.tile_cycles.iter().sum::<u64>() as f64
            / (self.makespan as f64 * self.tile_cycles.len() as f64)
    }
}

/// A cycle-level multi-tile core simulator.
#[derive(Debug, Clone)]
pub struct CoreSim {
    cfg: RistrettoConfig,
}

impl CoreSim {
    /// Builds a core simulator, rejecting inconsistent configurations.
    ///
    /// ```
    /// use ristretto_sim::config::{ConfigError, RistrettoConfig};
    /// use ristretto_sim::core::CoreSim;
    ///
    /// assert!(CoreSim::try_new(RistrettoConfig::paper_default()).is_ok());
    /// assert_eq!(
    ///     CoreSim::try_new(RistrettoConfig::paper_default().with_tiles(0)).unwrap_err(),
    ///     ConfigError::ZeroTiles
    /// );
    /// ```
    ///
    /// # Errors
    /// Returns the [`ConfigError`] describing the inconsistency.
    pub fn try_new(cfg: RistrettoConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// Builds the per-tile activation streams of every input channel (the
    /// Atomizer's per-input work).
    ///
    /// # Errors
    /// Propagates atomization errors.
    fn activation_streams(
        &self,
        fmap: &Tensor3,
        a_bits: u8,
    ) -> Result<Vec<Vec<ActivationStream>>, AtomError> {
        let (c, h, w) = fmap.shape();
        // Channels are independent; build them in parallel, collected back in
        // channel order so every downstream consumer sees the serial layout.
        (0..c)
            .into_par_iter()
            .map(|ci| {
                let mut tiles = Vec::new();
                for y0 in (0..h).step_by(self.cfg.tile_h) {
                    for x0 in (0..w).step_by(self.cfg.tile_w) {
                        let af = flatten_tile(fmap, ci, y0, x0, self.cfg.tile_h, self.cfg.tile_w);
                        if af.is_empty() {
                            continue;
                        }
                        tiles.push(compress_activations(&af, a_bits, self.cfg.atom_bits)?);
                    }
                }
                Ok(tiles)
            })
            .collect()
    }

    /// Runs one layer cycle-level across all tiles.
    ///
    /// Compiles the static weight side inline; equivalent to
    /// [`WeightStreamSet::compile`] followed by
    /// [`CoreSim::run_layer_streams`], which amortizes that work across
    /// inputs.
    ///
    /// # Errors
    /// Propagates atomization errors from stream construction.
    pub fn run_layer(
        &self,
        fmap: &Tensor3,
        kernels: &Tensor4,
        a_bits: u8,
        w_bits: u8,
    ) -> Result<CoreReport, AtomError> {
        let weights = WeightStreamSet::compile(
            kernels,
            qnn::quant::BitWidth::new(w_bits)?,
            self.cfg.atom_bits,
        )?;
        self.run_layer_streams(&weights, fmap, a_bits)
    }

    /// Runs one layer cycle-level against precompiled weight streams (the
    /// run phase of the compile/run split).
    ///
    /// Balancing happens here, not at compile time: the §IV-E balancer
    /// weighs *measured* per-input activation atom counts against the
    /// static weight atom counts, so groups legitimately differ per input.
    ///
    /// # Errors
    /// Propagates atomization errors, a channel-count mismatch between the
    /// feature map and the compiled streams, and a granularity mismatch
    /// against the core configuration.
    pub fn run_layer_streams(
        &self,
        weights: &WeightStreamSet,
        fmap: &Tensor3,
        a_bits: u8,
    ) -> Result<CoreReport, AtomError> {
        let _span = obs::span("core.run_layer");
        let (c, _, _) = fmap.shape();
        if c != weights.in_channels() {
            return Err(QnnError::ChannelMismatch {
                fmap: c,
                kernel: weights.in_channels(),
            }
            .into());
        }
        if weights.atom_bits() != self.cfg.atom_bits {
            return Err(AtomError::GranularityMismatch {
                compiled: weights.atom_bits().bits(),
                requested: self.cfg.atom_bits.bits(),
            });
        }
        let act_streams = self.activation_streams(fmap, a_bits)?;
        // Balance on the measured per-channel statistics, as the hardware
        // would (§IV-E).
        let workloads: Vec<ChannelWorkload> = act_streams
            .iter()
            .enumerate()
            .map(|(i, tiles)| ChannelWorkload {
                channel: i,
                act_atoms: tiles.iter().map(|t| t.len() as u64).sum(),
                weight_atoms: weights.atoms(i),
            })
            .collect();
        let assignment = balance(
            &workloads,
            self.cfg.tiles,
            self.cfg.multipliers as u64,
            self.cfg.balancing,
        );

        let tile_sim = TileSim::new(&self.cfg);
        // One simulated tile per group; tiles never interact, so they run in
        // parallel. Results come back in group order, so the report is
        // byte-identical to the serial loop.
        let tiles: Vec<TileReport> = assignment
            .groups
            .par_iter()
            .map(|group| {
                let mut agg = TileReport::default();
                for &ci in group {
                    // Always-on weight-path integrity monitor: the compiled
                    // checksum register must match the stream about to enter
                    // the Atomputer.
                    weights.verify_channel(ci)?;
                    let ws = weights.stream(ci);
                    for acts in &act_streams[ci] {
                        let r = tile_sim.run(ws, acts);
                        debug_assert!(
                            r.ideal_cycles() >= tile_sim.ideal(acts.len() as u64, ws.len() as u64),
                            "Eq 3 lower bound violated: a tile cannot beat its ideal step count"
                        );
                        agg.cycles += r.cycles;
                        agg.stall_cycles += r.stall_cycles;
                        agg.atom_mults += r.atom_mults;
                        agg.deliveries += r.deliveries;
                        agg.crossbar_conflicts += r.crossbar_conflicts;
                        agg.max_queue = agg.max_queue.max(r.max_queue);
                    }
                }
                Ok(agg)
            })
            .collect::<Result<_, AtomError>>()?;
        let tile_cycles: Vec<u64> = tiles.iter().map(|t| t.cycles).collect();
        Ok(CoreReport {
            makespan: tile_cycles.iter().copied().max().unwrap_or(0),
            tile_cycles,
            tiles,
            groups: assignment.groups,
        })
    }

    /// Fault-aware variant of [`CoreSim::run_layer_streams`]: Atomulator
    /// FIFO faults are injected per the configured campaign, the
    /// enqueue-accounting digests and the Eq 3 lower bound act as online
    /// monitors, and detected tiles re-execute within the retry budget
    /// (faults re-roll per attempt). Exhausting the budget falls back to a
    /// clean re-run when recovery is on, and raises
    /// [`CoreError::Fault`] otherwise.
    ///
    /// Byte-deterministic for a given campaign seed at any thread count:
    /// every injection decision is a pure hash of its site, and group
    /// results (including the merged [`FaultStats`]) collect in group
    /// order.
    ///
    /// # Errors
    /// Propagates stream/geometry errors, and an uncontained fault as
    /// [`CoreError::Fault`] when recovery is disabled.
    pub fn run_layer_streams_faulty(
        &self,
        weights: &WeightStreamSet,
        fmap: &Tensor3,
        a_bits: u8,
        injector: &FaultInjector,
        layer: usize,
    ) -> Result<(CoreReport, FaultStats), CoreError> {
        let _span = obs::span("core.run_layer_faulty");
        let (c, _, _) = fmap.shape();
        if c != weights.in_channels() {
            return Err(CoreError::Atom(
                QnnError::ChannelMismatch {
                    fmap: c,
                    kernel: weights.in_channels(),
                }
                .into(),
            ));
        }
        if weights.atom_bits() != self.cfg.atom_bits {
            return Err(CoreError::Atom(AtomError::GranularityMismatch {
                compiled: weights.atom_bits().bits(),
                requested: self.cfg.atom_bits.bits(),
            }));
        }
        let act_streams = self.activation_streams(fmap, a_bits)?;
        let workloads: Vec<ChannelWorkload> = act_streams
            .iter()
            .enumerate()
            .map(|(i, tiles)| ChannelWorkload {
                channel: i,
                act_atoms: tiles.iter().map(|t| t.len() as u64).sum(),
                weight_atoms: weights.atoms(i),
            })
            .collect();
        let assignment = balance(
            &workloads,
            self.cfg.tiles,
            self.cfg.multipliers as u64,
            self.cfg.balancing,
        );

        let tile_sim = TileSim::new(&self.cfg);
        let results: Vec<(TileReport, FaultStats)> = assignment
            .groups
            .par_iter()
            .map(|group| {
                let mut agg = TileReport::default();
                let mut stats = FaultStats::default();
                for &ci in group {
                    weights.verify_channel(ci).map_err(CoreError::Atom)?;
                    let ws = weights.stream(ci);
                    for (tidx, acts) in act_streams[ci].iter().enumerate() {
                        let ideal = tile_sim.ideal(acts.len() as u64, ws.len() as u64);
                        let max_attempts = injector.max_attempts();
                        let mut attempt = 0u32;
                        let r = loop {
                            let site = FaultSite {
                                layer,
                                channel: ci,
                                tile: tidx,
                                attempt,
                                item: 0,
                            };
                            let (r, check) = tile_sim.run_faulty(ws, acts, injector, site);
                            stats.record_injected(FaultStructure::Fifo, check.injected);
                            // Two FIFO monitors: the enqueue-accounting
                            // digests, and the Eq 3 lower bound (a dropped
                            // delivery can only shorten the run).
                            let detected =
                                injector.detect() && (check.detected() || r.ideal_cycles() < ideal);
                            if !detected {
                                if attempt > 0 {
                                    stats.record_recovered_tile();
                                }
                                break r;
                            }
                            stats.record_detected(FaultStructure::Fifo, check.injected);
                            stats.record_wasted(r.atom_mults, r.deliveries);
                            if attempt >= max_attempts {
                                if injector.recover() {
                                    // Budget exhausted: tile-level clean
                                    // re-execution (the dense fallback of
                                    // the functional path has no cycle
                                    // analogue).
                                    stats.record_recovered_tile();
                                    break tile_sim.run(ws, acts);
                                }
                                return Err(CoreError::Fault(FaultDetected {
                                    structure: FaultStructure::Fifo,
                                    layer,
                                    channel: ci,
                                    tile: tidx,
                                    attempts: attempt + 1,
                                }));
                            }
                            stats.record_retry();
                            attempt += 1;
                        };
                        agg.cycles += r.cycles;
                        agg.stall_cycles += r.stall_cycles;
                        agg.atom_mults += r.atom_mults;
                        agg.deliveries += r.deliveries;
                        agg.crossbar_conflicts += r.crossbar_conflicts;
                        agg.max_queue = agg.max_queue.max(r.max_queue);
                    }
                }
                Ok((agg, stats))
            })
            .collect::<Result<_, CoreError>>()?;
        let mut stats = FaultStats::default();
        let tiles: Vec<TileReport> = results
            .into_iter()
            .map(|(r, s)| {
                stats.merge(&s);
                r
            })
            .collect();
        let tile_cycles: Vec<u64> = tiles.iter().map(|t| t.cycles).collect();
        Ok((
            CoreReport {
                makespan: tile_cycles.iter().copied().max().unwrap_or(0),
                tile_cycles,
                tiles,
                groups: assignment.groups,
            },
            stats,
        ))
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &RistrettoConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::BalanceStrategy;
    use qnn::quant::BitWidth;
    use qnn::workload::{ActivationProfile, SyntheticLayer, WeightProfile, WorkloadGen};

    fn materialized(seed: u64) -> SyntheticLayer {
        let layer = qnn::layers::ConvLayer::conv("core", 12, 8, 3, 1, 1, 12, 12).unwrap();
        let mut gen = WorkloadGen::new(seed);
        SyntheticLayer::generate(
            &layer,
            &WeightProfile::benchmark(BitWidth::W4),
            &ActivationProfile::new(BitWidth::W8),
            &mut gen,
        )
    }

    fn small_cfg(strategy: BalanceStrategy) -> RistrettoConfig {
        RistrettoConfig {
            tiles: 4,
            multipliers: 8,
            tile_h: 6,
            tile_w: 6,
            balancing: strategy,
            ..RistrettoConfig::paper_default()
        }
    }

    #[test]
    fn core_counters_match_functional_csc() {
        let s = materialized(5);
        let core = CoreSim::try_new(small_cfg(BalanceStrategy::WeightActivation)).unwrap();
        let report = core.run_layer(&s.fmap, &s.kernels, 8, 4).unwrap();
        let cfg = atomstream::conv_csc::CscConfig {
            multipliers: 8,
            tile_h: 6,
            tile_w: 6,
            ..atomstream::conv_csc::CscConfig::default()
        };
        let csc = atomstream::conv_csc::conv2d_csc(
            &s.fmap,
            &s.kernels,
            s.layer.geometry(),
            BitWidth::W8,
            BitWidth::W4,
            &cfg,
        )
        .unwrap();
        assert_eq!(report.atom_mults(), csc.stats.intersect.atom_mults);
    }

    #[test]
    fn balanced_core_beats_or_matches_cyclic() {
        let s = materialized(9);
        let wa = CoreSim::try_new(small_cfg(BalanceStrategy::WeightActivation))
            .unwrap()
            .run_layer(&s.fmap, &s.kernels, 8, 4)
            .unwrap();
        let none = CoreSim::try_new(small_cfg(BalanceStrategy::None))
            .unwrap()
            .run_layer(&s.fmap, &s.kernels, 8, 4)
            .unwrap();
        assert!(
            wa.makespan <= none.makespan,
            "{} vs {}",
            wa.makespan,
            none.makespan
        );
        assert!(wa.utilization() >= 0.5);
        assert_eq!(wa.atom_mults(), none.atom_mults());
    }

    #[test]
    fn faulty_run_with_recovery_matches_clean_report() {
        use crate::fault::{FaultConfig, FaultInjector, FaultStructure};
        let s = materialized(21);
        let core = CoreSim::try_new(small_cfg(BalanceStrategy::WeightActivation)).unwrap();
        let weights = WeightStreamSet::compile(
            &s.kernels,
            qnn::quant::BitWidth::W4,
            core.config().atom_bits,
        )
        .unwrap();
        let clean = core.run_layer_streams(&weights, &s.fmap, 8).unwrap();
        let cfg_f = FaultConfig::quiescent(3).with_rate(FaultStructure::Fifo, 5_000);
        let injector = FaultInjector::new(cfg_f);
        let (faulty, stats) = core
            .run_layer_streams_faulty(&weights, &s.fmap, 8, &injector, 0)
            .unwrap();
        assert!(stats.injected(FaultStructure::Fifo) > 0);
        assert_eq!(
            stats.detected(FaultStructure::Fifo),
            stats.injected(FaultStructure::Fifo),
            "every FIFO drop/duplicate must trip the enqueue digests"
        );
        assert!(stats.recovered_tiles > 0);
        // Recovery restores the clean cycle-level report exactly.
        assert_eq!(faulty, clean);
        // Determinism across repeated runs.
        let (again, stats2) = core
            .run_layer_streams_faulty(&weights, &s.fmap, 8, &injector, 0)
            .unwrap();
        assert_eq!(faulty, again);
        assert_eq!(stats, stats2);
    }

    #[test]
    fn unrecovered_fault_is_a_typed_error() {
        use crate::fault::{FaultConfig, FaultInjector, FaultStructure};
        let s = materialized(23);
        let core = CoreSim::try_new(small_cfg(BalanceStrategy::WeightActivation)).unwrap();
        let weights = WeightStreamSet::compile(
            &s.kernels,
            qnn::quant::BitWidth::W4,
            core.config().atom_bits,
        )
        .unwrap();
        let cfg_f = FaultConfig::quiescent(5)
            .with_rate(FaultStructure::Fifo, 50_000)
            .with_recover(false);
        let injector = FaultInjector::new(cfg_f);
        let err = core
            .run_layer_streams_faulty(&weights, &s.fmap, 8, &injector, 4)
            .unwrap_err();
        match err {
            CoreError::Fault(f) => {
                assert_eq!(f.structure, FaultStructure::Fifo);
                assert_eq!(f.layer, 4);
                assert_eq!(f.attempts, 1);
            }
            other => panic!("expected a fault error, got {other}"),
        }
    }

    #[test]
    fn quiescent_faulty_run_matches_clean_run() {
        use crate::fault::{FaultConfig, FaultInjector};
        let s = materialized(25);
        let core = CoreSim::try_new(small_cfg(BalanceStrategy::WeightActivation)).unwrap();
        let weights = WeightStreamSet::compile(
            &s.kernels,
            qnn::quant::BitWidth::W4,
            core.config().atom_bits,
        )
        .unwrap();
        let clean = core.run_layer_streams(&weights, &s.fmap, 8).unwrap();
        let injector = FaultInjector::new(FaultConfig::quiescent(1));
        let (faulty, stats) = core
            .run_layer_streams_faulty(&weights, &s.fmap, 8, &injector, 0)
            .unwrap();
        assert_eq!(faulty, clean);
        assert_eq!(stats, crate::fault::FaultStats::default());
    }

    #[test]
    fn groups_partition_all_channels() {
        let s = materialized(11);
        let core = CoreSim::try_new(small_cfg(BalanceStrategy::WeightActivation)).unwrap();
        let report = core.run_layer(&s.fmap, &s.kernels, 8, 4).unwrap();
        let mut all: Vec<usize> = report.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        assert_eq!(report.tile_cycles.len(), 4);
    }
}
