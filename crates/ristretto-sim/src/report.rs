//! Result types for layer- and network-level simulation.

use hwmodel::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// Result of simulating one layer on Ristretto.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Inference cycles (makespan across compute tiles).
    pub cycles: u64,
    /// Compute-tile utilization in `[0, 1]`.
    pub utilization: f64,
    /// Effectual atom multiplications performed.
    pub atom_mults: u64,
    /// Accumulator deliveries routed through the Atomulators.
    pub deliveries: u64,
    /// Off-chip traffic in bits (compressed).
    pub dram_bits: u64,
    /// Activation share of `dram_bits` (input fetch + re-fetch + output
    /// writeback). `act_dram_bits + weight_dram_bits == dram_bits`.
    pub act_dram_bits: u64,
    /// Weight share of `dram_bits` (fetch + re-fetch).
    pub weight_dram_bits: u64,
    /// On-chip buffer traffic in bits.
    pub buffer_bits: u64,
    /// Priced energy breakdown.
    pub energy: EnergyBreakdown,
}

/// Result of simulating a whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// Precision label ("8b", "mixed 2/4b", …).
    pub precision: String,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
}

impl NetworkReport {
    /// Total cycles across layers (layers run sequentially).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total energy across layers.
    pub fn total_energy(&self) -> EnergyBreakdown {
        self.layers
            .iter()
            .fold(EnergyBreakdown::default(), |acc, l| acc + l.energy)
    }

    /// Mean utilization weighted by cycles.
    pub fn mean_utilization(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 1.0;
        }
        self.layers
            .iter()
            .map(|l| l.utilization * l.cycles as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cycles: u64, util: f64, compute_pj: f64) -> LayerReport {
        LayerReport {
            name: "l".into(),
            cycles,
            utilization: util,
            atom_mults: 0,
            deliveries: 0,
            dram_bits: 0,
            act_dram_bits: 0,
            weight_dram_bits: 0,
            buffer_bits: 0,
            energy: EnergyBreakdown {
                compute_pj,
                ..Default::default()
            },
        }
    }

    #[test]
    fn totals_sum_layers() {
        let r = NetworkReport {
            network: "net".into(),
            precision: "8b".into(),
            layers: vec![layer(100, 0.5, 10.0), layer(300, 1.0, 20.0)],
        };
        assert_eq!(r.total_cycles(), 400);
        assert!((r.total_energy().compute_pj - 30.0).abs() < 1e-12);
        let u = r.mean_utilization();
        assert!((u - (0.5 * 100.0 + 300.0) / 400.0).abs() < 1e-12);
    }

    #[test]
    fn empty_network_is_well_behaved() {
        let r = NetworkReport {
            network: "n".into(),
            precision: "2b".into(),
            layers: vec![],
        };
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.mean_utilization(), 1.0);
    }
}
