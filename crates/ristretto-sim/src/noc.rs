//! Deterministic inter-core NoC / queueing model.
//!
//! Fig 7 organizes Ristretto as an array of compute cores behind a shared
//! I/O interface. When a compiled network is sharded output-channel-wise
//! across cores ([`crate::fleet`]), every layer boundary is an all-gather:
//! each core owns a slice of the produced activation channels and must
//! deliver it to every peer before the next layer starts. This module
//! models that exchange as a ring of unidirectional links with explicit
//! serialization (link bits/cycle), per-hop latency and single-server
//! ingress ports whose FIFO occupancy and order-sensitive digests are
//! tracked — integer arithmetic only, so every number is byte-identical at
//! any thread count, in the same spirit as SCNN's explicit inter-PE
//! delivery modeling and S2Engine's queueing treatment of sparse dataflow.
//!
//! The exchange makespan produced here is what generalizes the Eq 5
//! balancer counters across cores: a layer's cross-core latency is
//! `max(per-core compute) + exchange makespan`, and idle cycles split into
//! residual compute imbalance plus communication wait.

use crate::config::ConfigError;
use crate::fault::splitmix64;
use serde::{Deserialize, Serialize};

/// Interconnect parameters of the core array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Payload bits a link moves per cycle (flit width × issue rate).
    pub link_bits_per_cycle: u64,
    /// Cycles one hop adds to a message's arrival.
    pub hop_latency_cycles: u64,
    /// Entries in each ingress port's FIFO. Occupancy above this depth
    /// back-pressures the sender (modeled as arrival-time stalling).
    pub port_fifo_depth: usize,
}

impl NocConfig {
    /// A modest on-package ring: 256-bit links, 2-cycle hops, 8-entry
    /// ingress FIFOs.
    pub fn paper_default() -> Self {
        Self {
            link_bits_per_cycle: 256,
            hop_latency_cycles: 2,
            port_fifo_depth: 8,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Never panics; returns a typed [`ConfigError`] on inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.link_bits_per_cycle == 0 {
            return Err(ConfigError::ZeroLinkBandwidth);
        }
        if self.port_fifo_depth == 0 {
            return Err(ConfigError::ZeroNocFifoDepth);
        }
        Ok(())
    }

    /// Cycles a `bits`-wide payload occupies a link (serialization time).
    /// Zero-bit payloads still cost one header flit.
    pub fn serialize_cycles(&self, bits: u64) -> u64 {
        bits.div_ceil(self.link_bits_per_cycle).max(1)
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Aggregate counters of one NoC's lifetime, mirrored into the `fleet.*`
/// observability registry by the fleet driver.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocReport {
    /// Messages routed.
    pub messages: u64,
    /// Payload bits moved over links (each message counted once).
    pub link_bits: u64,
    /// Cycles links spent serializing flits, summed over all links.
    pub link_busy_cycles: u64,
    /// Deepest ingress-FIFO occupancy observed at any port.
    pub queue_highwater: u64,
    /// Order-sensitive splitmix64 fold of `(src, bits)` per ingress port,
    /// in arrival order — a determinism witness: any reordering or payload
    /// change at any thread count changes the digest.
    pub port_digests: Vec<u64>,
}

impl NocReport {
    /// Single fold of all port digests (stable summary for reports).
    pub fn digest(&self) -> u64 {
        let mut h = 0xF1EE7u64;
        for &d in &self.port_digests {
            h = splitmix64(h ^ d);
        }
        h
    }
}

/// One message queued for an exchange: `src` core sends `bits` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Message {
    src: usize,
    dst: usize,
    bits: u64,
}

/// A deterministic ring NoC over `cores` ports.
#[derive(Debug, Clone)]
pub struct Noc {
    cores: usize,
    cfg: NocConfig,
    report: NocReport,
}

impl Noc {
    /// A NoC over `cores` ports.
    ///
    /// # Panics
    /// Panics if `cores == 0` or the configuration is invalid; fleet
    /// construction validates both beforehand.
    pub fn new(cores: usize, cfg: NocConfig) -> Self {
        assert!(cores > 0, "NoC needs at least one port");
        cfg.validate().expect("valid NoC configuration");
        Self {
            cores,
            cfg,
            report: NocReport {
                port_digests: vec![0; cores],
                ..NocReport::default()
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn report(&self) -> &NocReport {
        &self.report
    }

    /// Ring distance between two ports (shorter direction).
    pub fn hops(&self, src: usize, dst: usize) -> u64 {
        let d = (src as i64 - dst as i64).unsigned_abs();
        d.min(self.cores as u64 - d)
    }

    /// Executes one all-gather: `slice_bits[c]` is the compressed payload
    /// core `c` must deliver to every other participating core
    /// (`alive[c]` false means the port is powered off and neither sends
    /// nor receives). Returns the exchange makespan in cycles.
    ///
    /// The model: each source serializes its `k-1` copies back-to-back
    /// through its single egress port in ascending destination order; a
    /// message arrives `hops × hop_latency` after serialization completes;
    /// each ingress port is a single server draining one message per
    /// serialization time, FIFO in arrival order (ties broken by source
    /// index). Occupancy above the FIFO depth stalls the drain start — a
    /// coarse but deterministic back-pressure charge.
    pub fn all_gather(&mut self, slice_bits: &[u64], alive: &[bool]) -> u64 {
        assert_eq!(slice_bits.len(), self.cores);
        assert_eq!(alive.len(), self.cores);
        let live: Vec<usize> = (0..self.cores).filter(|&c| alive[c]).collect();
        if live.len() < 2 {
            return 0;
        }

        // Egress: serialize each source's copies back-to-back; record the
        // (arrival_time, message) pairs at every destination.
        let mut arrivals: Vec<(u64, Message)> = Vec::new();
        let mut makespan = 0u64;
        for &src in &live {
            let ser = self.cfg.serialize_cycles(slice_bits[src]);
            let mut egress_done = 0u64;
            for &dst in &live {
                if dst == src {
                    continue;
                }
                egress_done = egress_done.saturating_add(ser);
                let hop_latency = self
                    .hops(src, dst)
                    .saturating_mul(self.cfg.hop_latency_cycles);
                let at = egress_done.saturating_add(hop_latency);
                arrivals.push((
                    at,
                    Message {
                        src,
                        dst,
                        bits: slice_bits[src],
                    },
                ));
                self.report.messages += 1;
                self.report.link_bits = self.report.link_bits.saturating_add(slice_bits[src]);
                self.report.link_busy_cycles = self.report.link_busy_cycles.saturating_add(ser);
            }
            makespan = makespan.max(egress_done);
        }

        // Ingress: per-port single-server FIFO in deterministic arrival
        // order.
        arrivals.sort_by_key(|&(at, m)| (m.dst, at, m.src));
        let mut port_done: Vec<u64> = vec![0; self.cores];
        let mut resident: Vec<Vec<u64>> = vec![Vec::new(); self.cores]; // drain-completion times
        for (at, m) in arrivals {
            let ser = self.cfg.serialize_cycles(m.bits);
            // Occupancy when this message arrives: peers not yet drained.
            resident[m.dst].retain(|&done| done > at);
            let occupancy = resident[m.dst].len() as u64 + 1;
            self.report.queue_highwater = self.report.queue_highwater.max(occupancy);
            // Back-pressure: a full FIFO delays the drain start until a
            // slot frees (one drain period per excess entry).
            let stall = occupancy
                .saturating_sub(self.cfg.port_fifo_depth as u64)
                .saturating_mul(ser);
            let start = at.max(port_done[m.dst]).saturating_add(stall);
            let done = start.saturating_add(ser);
            port_done[m.dst] = done;
            resident[m.dst].push(done);
            makespan = makespan.max(done);
            self.report.port_digests[m.dst] = splitmix64(
                self.report.port_digests[m.dst]
                    ^ splitmix64((m.src as u64) ^ m.bits.rotate_left(17)),
            );
        }
        makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates() {
        assert!(NocConfig::paper_default().validate().is_ok());
        let mut c = NocConfig::paper_default();
        c.link_bits_per_cycle = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroLinkBandwidth));
        let mut c = NocConfig::paper_default();
        c.port_fifo_depth = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroNocFifoDepth));
        assert_eq!(NocConfig::paper_default().serialize_cycles(0), 1);
        assert_eq!(NocConfig::paper_default().serialize_cycles(257), 2);
    }

    #[test]
    fn ring_hops_take_the_short_way() {
        let noc = Noc::new(8, NocConfig::paper_default());
        assert_eq!(noc.hops(0, 1), 1);
        assert_eq!(noc.hops(0, 7), 1);
        assert_eq!(noc.hops(0, 4), 4);
        assert_eq!(noc.hops(3, 3), 0);
    }

    #[test]
    fn single_or_dead_ports_exchange_nothing() {
        let mut noc = Noc::new(1, NocConfig::paper_default());
        assert_eq!(noc.all_gather(&[1000], &[true]), 0);
        let mut noc = Noc::new(4, NocConfig::paper_default());
        assert_eq!(noc.all_gather(&[1000; 4], &[true, false, false, false]), 0);
        assert_eq!(noc.report().messages, 0);
    }

    #[test]
    fn all_gather_is_deterministic_and_counts_traffic() {
        let run = || {
            let mut noc = Noc::new(4, NocConfig::paper_default());
            let span = noc.all_gather(&[1000, 2000, 0, 500], &[true; 4]);
            (span, noc.report().clone())
        };
        let (span_a, rep_a) = run();
        let (span_b, rep_b) = run();
        assert_eq!(span_a, span_b);
        assert_eq!(rep_a, rep_b);
        assert_eq!(rep_a.messages, 4 * 3);
        // Slot 2 contributes zero bits; the other three slices each cross
        // all three links of the 4-ring.
        assert_eq!(rep_a.link_bits, (1000 + 2000 + 500) * 3);
        assert!(rep_a.queue_highwater >= 1);
        assert!(span_a > 0);
        assert!(rep_a.port_digests.iter().all(|&d| d != 0));
    }

    #[test]
    fn narrower_links_lengthen_the_exchange() {
        let span = |bw: u64| {
            let mut cfg = NocConfig::paper_default();
            cfg.link_bits_per_cycle = bw;
            let mut noc = Noc::new(4, cfg);
            noc.all_gather(&[4096; 4], &[true; 4])
        };
        assert!(span(64) > span(256));
        assert!(span(256) > span(4096));
    }

    #[test]
    fn adversarial_payloads_saturate_instead_of_wrapping() {
        // u64::MAX-adjacent payloads on a 1-bit link: serialization alone
        // is ~u64::MAX cycles, so every downstream sum/product must
        // saturate rather than wrap (mirrors the cycles.rs checked-math
        // fix). Wrapping would produce a tiny makespan; saturation pins
        // the span at u64::MAX.
        let mut cfg = NocConfig::paper_default();
        cfg.link_bits_per_cycle = 1;
        cfg.port_fifo_depth = 1;
        let mut noc = Noc::new(4, cfg);
        let span = noc.all_gather(&[u64::MAX, u64::MAX - 1, u64::MAX, 0], &[true; 4]);
        assert_eq!(span, u64::MAX);
        let rep = noc.report();
        assert_eq!(rep.link_bits, u64::MAX);
        assert_eq!(rep.link_busy_cycles, u64::MAX);
        assert_eq!(rep.messages, 4 * 3);

        // Hop latency × hops must also saturate on its own.
        let mut cfg = NocConfig::paper_default();
        cfg.hop_latency_cycles = u64::MAX;
        let mut noc = Noc::new(4, cfg);
        let span = noc.all_gather(&[64; 4], &[true; 4]);
        assert_eq!(span, u64::MAX);

        // Determinism survives saturation: two identical adversarial runs
        // produce identical reports.
        let run = || {
            let mut cfg = NocConfig::paper_default();
            cfg.link_bits_per_cycle = 1;
            let mut noc = Noc::new(3, cfg);
            let span = noc.all_gather(&[u64::MAX, u64::MAX, u64::MAX], &[true; 3]);
            (span, noc.report().clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn digest_sees_payload_and_order() {
        let digest = |bits: [u64; 3]| {
            let mut noc = Noc::new(3, NocConfig::paper_default());
            noc.all_gather(&bits, &[true; 3]);
            noc.report().digest()
        };
        assert_eq!(digest([10, 20, 30]), digest([10, 20, 30]));
        assert_ne!(digest([10, 20, 30]), digest([10, 20, 31]));
        assert_ne!(digest([10, 20, 30]), digest([30, 20, 10]));
    }
}
